//! Cost declarations as knobs: truthful traffic engineering.
//!
//! In the paper's model a transit cost is private information, but it is
//! also an honest *signal*: an AS whose internal network becomes congested
//! genuinely incurs a higher per-packet cost, re-declares it, and the
//! mechanism re-routes traffic and re-prices everyone — no out-of-band
//! coordination, no incentive distortion (re-declaring your true cost *is*
//! the dominant strategy). This example walks a congestion episode on a
//! two-tier ISP topology:
//!
//! 1. converge, settle payments;
//! 2. the busiest core AS's true cost triples (congestion) → re-declare,
//!    reconverge, watch its traffic share fall and the network re-price;
//! 3. congestion clears → re-declare down, everything returns exactly to
//!    the initial state.
//!
//! Run with: `cargo run --example traffic_engineering`

use bgp_vcg::bgp::TopologyEvent;
use bgp_vcg::core::accounting::PaymentLedger;
use bgp_vcg::netgraph::generators::{hierarchy, HierarchyConfig};
use bgp_vcg::{protocol, vcg, AsId, Cost, TrafficMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;

fn busiest_core(ledger: &PaymentLedger, core: usize) -> AsId {
    (0..core as u32)
        .map(AsId::new)
        .max_by_key(|&k| ledger.packets_carried(k))
        .expect("non-empty core")
}

fn settle(
    engine: &bgp_vcg::bgp::engine::SyncEngine<bgp_vcg::PricingBgpNode>,
    traffic: &TrafficMatrix,
) -> PaymentLedger {
    let nodes: Vec<_> = engine.nodes().cloned().collect();
    PaymentLedger::settle_from_nodes(&nodes, traffic).expect("converged network delivers")
}

fn main() -> Result<(), Box<dyn Error>> {
    let mut rng = StdRng::seed_from_u64(1961); // Vickrey's counterspeculation paper
    let config = HierarchyConfig {
        core_size: 5,
        stub_count: 27,
        core_cost: (1, 3),
        stub_cost: (4, 10),
    };
    let graph = hierarchy(config, &mut rng);
    let traffic = TrafficMatrix::gravity(graph.node_count(), 12, &mut rng);

    let mut engine = protocol::build_sync_engine(&graph)?;
    engine.run_to_convergence();
    let ledger = settle(&engine, &traffic);
    let hot = busiest_core(&ledger, config.core_size);
    let before_packets = ledger.packets_carried(hot);
    let before_payment = ledger.payment(hot);
    let original_cost = graph.cost(hot);
    println!(
        "Initial state: {hot} is the busiest core AS — {before_packets} transit packets, paid {before_payment}."
    );

    // --- Congestion: the true cost triples; honesty says re-declare. ---
    let congested_cost = Cost::new(original_cost.finite().unwrap() * 3 + 2);
    println!(
        "\n*** {hot} congests: true per-packet cost rises {original_cost} -> {congested_cost} ***"
    );
    let report = engine.apply_event(TopologyEvent::CostChange(hot, congested_cost));
    println!("Reconverged in {} stages.", report.stages);
    let congested_graph = graph.with_cost(hot, congested_cost);
    // The network's prices are again exactly the VCG prices for the new
    // declaration profile.
    let nodes: Vec<_> = engine.nodes().cloned().collect();
    assert_eq!(
        protocol::outcome_from_nodes(&nodes)?,
        vcg::compute(&congested_graph)?
    );
    let ledger = settle(&engine, &traffic);
    let during_packets = ledger.packets_carried(hot);
    println!(
        "{hot} now carries {during_packets} transit packets (was {before_packets}): traffic \
         shifted to cheaper cores automatically."
    );
    assert!(during_packets < before_packets);

    // --- Recovery: cost returns; so does the routing, exactly. ---
    println!("\n*** congestion clears: {hot} re-declares {original_cost} ***");
    let report = engine.apply_event(TopologyEvent::CostChange(hot, original_cost));
    println!("Reconverged in {} stages.", report.stages);
    let nodes: Vec<_> = engine.nodes().cloned().collect();
    assert_eq!(protocol::outcome_from_nodes(&nodes)?, vcg::compute(&graph)?);
    let ledger = settle(&engine, &traffic);
    assert_eq!(ledger.packets_carried(hot), before_packets);
    assert_eq!(ledger.payment(hot), before_payment);
    println!(
        "Traffic and payments returned exactly to the initial state — the mechanism is a \
         memoryless function of the declared profile."
    );
    println!(
        "\nBecause truthful declaration is dominant (Theorem 1), using cost re-declaration \
         for traffic engineering carries no strategic penalty: the knob is the truth."
    );
    Ok(())
}
