//! Asynchrony does not matter: one OS thread per AS, channels as links.
//!
//! The paper proves its convergence bound in a synchronous-stage model, but
//! the algorithm itself is a monotone relaxation whose fixpoint is unique.
//! This example runs every AS of a random Internet-like topology as its own
//! thread, exchanging updates over crossbeam channels with no global
//! coordination, and shows the resulting routes and prices are *identical*
//! to both the synchronous engine and the centralized VCG reference.
//!
//! Run with: `cargo run --example async_simulation`

use bgp_vcg::netgraph::generators::{barabasi_albert, random_costs};
use bgp_vcg::{protocol, vcg};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;
use std::time::Instant;

fn main() -> Result<(), Box<dyn Error>> {
    let mut rng = StdRng::seed_from_u64(7);
    let n = 40;
    let costs = random_costs(n, 1, 10, &mut rng);
    let graph = barabasi_albert(costs, 2, &mut rng);
    println!(
        "Barabási–Albert topology: {n} ASs, {} links — one OS thread per AS.",
        graph.link_count()
    );

    let reference = vcg::compute(&graph)?;

    let t0 = Instant::now();
    let sync_run = protocol::run_sync(&graph)?;
    let sync_time = t0.elapsed();
    println!(
        "Synchronous engine:  {} stages, {} messages in {sync_time:?}.",
        sync_run.report.stages, sync_run.report.messages
    );

    for trial in 1..=3 {
        let t0 = Instant::now();
        let (async_outcome, report) = protocol::run_async(&graph)?;
        let async_time = t0.elapsed();
        println!(
            "Asynchronous run {trial}: {} messages in {async_time:?} (interleaving differs every run).",
            report.messages
        );
        assert_eq!(
            async_outcome, reference,
            "async outcome must equal the centralized VCG prices"
        );
    }
    assert_eq!(sync_run.outcome, reference);
    println!("\nAll runs produced bit-identical routes and prices: the fixpoint is unique.");
    Ok(())
}
