//! Auditing the computation: Sect. 7's open problem, demonstrated.
//!
//! The paper's mechanism makes lying about *costs* unprofitable, but the
//! ASs themselves run the pricing algorithm — "what is to stop them from
//! running a different algorithm that computes prices more favorable to
//! them?" This example converges the protocol on Fig. 1, has AS B tamper
//! with its advertised state in two ways, and shows the replay-and-diff
//! auditor (`bgp_vcg::core::audit`) flagging both while the honest network
//! passes clean.
//!
//! Run with: `cargo run --example audit_demo`

use bgp_vcg::bgp::{RouteAdvertisement, RouteInfo};
use bgp_vcg::core::audit;
use bgp_vcg::netgraph::generators::structured::{fig1, Fig1};
use bgp_vcg::{protocol, AsId, Cost};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let g = fig1();
    let mut engine = protocol::build_sync_engine(&g)?;
    engine.run_to_convergence();
    let nodes: Vec<_> = engine.into_nodes();

    // 1. Honest network: the auditor finds nothing.
    let findings = audit::audit_network(&g, &nodes);
    println!(
        "Honest converged network: {} audit findings (expected 0).\n",
        findings.len()
    );
    assert!(findings.is_empty());

    let neighbor_tables = |subject: AsId| -> Vec<(AsId, Vec<RouteAdvertisement>)> {
        g.neighbors(subject)
            .iter()
            .map(|&a| (a, audit::converged_advertisements(&nodes[a.index()])))
            .collect()
    };

    // 2. B inflates its advertised price entries for destination Z —
    //    "running a different algorithm that computes prices more
    //    favorable to them".
    let mut tampered = audit::converged_advertisements(&nodes[Fig1::B.index()]);
    for ad in &mut tampered {
        if ad.destination == Fig1::Z {
            if let RouteInfo::Reachable { prices, .. } = &mut ad.info {
                for p in prices.iter_mut() {
                    *p += Cost::new(100);
                }
            }
        }
    }
    let findings = audit::audit_node(&g, Fig1::B, &tampered, &neighbor_tables(Fig1::B));
    println!("B inflates its advertised prices for Z by 100:");
    for f in &findings {
        println!("  FLAGGED: {f}");
    }
    assert!(!findings.is_empty());

    // 3. B understates its advertised route cost to attract traffic
    //    without re-declaring its cost input.
    let mut tampered = audit::converged_advertisements(&nodes[Fig1::B.index()]);
    for ad in &mut tampered {
        if ad.destination == Fig1::Z {
            if let RouteInfo::Reachable { path_cost, .. } = &mut ad.info {
                *path_cost = Cost::ZERO;
            }
        }
    }
    let findings = audit::audit_node(&g, Fig1::B, &tampered, &neighbor_tables(Fig1::B));
    println!("\nB understates its advertised route cost to Z:");
    for f in &findings {
        println!("  FLAGGED: {f}");
    }
    assert!(!findings.is_empty());

    println!(
        "\nEvery advertised quantity is a deterministic function of the neighborhood's \
         advertisements, so unilateral computation manipulation is detectable from data \
         the protocol already exchanges."
    );
    Ok(())
}
