//! Quickstart: the paper's Fig. 1 network, end to end.
//!
//! Builds the six-AS example graph from Sect. 4 of the paper, runs the
//! BGP-based pricing protocol to convergence, verifies it against the
//! centralized Theorem-1 computation, and prints the routes and per-packet
//! prices — including the two worked examples (X→Z and the overcharged
//! Y→Z).
//!
//! Run with: `cargo run --example quickstart`

use bgp_vcg::netgraph::generators::structured::{fig1, Fig1};
use bgp_vcg::{protocol, vcg};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let graph = fig1();
    println!("The paper's Fig. 1 AS graph:");
    println!("{graph}");

    // Distributed computation: every AS is a BGP speaker; prices ride in
    // the routing updates.
    let run = protocol::run_sync(&graph)?;
    println!(
        "Pricing protocol converged in {} stages ({} messages, {} bytes).",
        run.report.stages, run.report.messages, run.report.bytes
    );

    // Cross-check against the centralized Theorem-1 reference.
    let reference = vcg::compute(&graph)?;
    assert_eq!(
        run.outcome, reference,
        "Theorem 2: the protocol computes VCG prices"
    );
    println!("Distributed prices match the centralized VCG computation exactly.\n");

    let names = ["X", "A", "Z", "D", "B", "Y"];
    println!("All routes and per-packet transit prices:");
    for (i, j, pair) in run.outcome.pairs() {
        let path: Vec<&str> = pair
            .route()
            .nodes()
            .iter()
            .map(|k| names[k.index()])
            .collect();
        let prices: Vec<String> = pair
            .prices()
            .iter()
            .map(|(k, p)| format!("{}={p}", names[k.index()]))
            .collect();
        println!(
            "  {} -> {}: {:<14} cost {:<3} prices [{}]",
            names[i.index()],
            names[j.index()],
            path.join(" "),
            pair.route().transit_cost().to_string(),
            prices.join(", ")
        );
    }

    println!("\nThe paper's worked examples:");
    let d_price = run.outcome.price(Fig1::X, Fig1::Z, Fig1::D).unwrap();
    let b_price = run.outcome.price(Fig1::X, Fig1::Z, Fig1::B).unwrap();
    let y_price = run.outcome.price(Fig1::Y, Fig1::Z, Fig1::D).unwrap();
    println!("  X->Z: D is paid {d_price} (paper: 3), B is paid {b_price} (paper: 4)");
    println!("  Y->Z: D is paid {y_price} (paper: 9) for a path that costs only 1 — overcharging");
    Ok(())
}
