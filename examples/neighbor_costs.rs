//! The paper's Sect. 3 extension: per-neighbor (edge) transit costs.
//!
//! Demonstrates the generalized cost model where each AS declares one cost
//! per adjacent link (its cost of receiving transit traffic over that
//! link): routing becomes direction- and link-sensitive, the VCG mechanism
//! stays strategyproof with the *cost vector* as the agent's type, and the
//! distributed margin-relaxation protocol still computes the exact prices.
//!
//! Run with: `cargo run --example neighbor_costs`

use bgp_vcg::core::neighbor_costs::{self, NeighborCostGraph};
use bgp_vcg::netgraph::generators::structured::{fig1, Fig1};
use bgp_vcg::{vcg, Cost, TrafficMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;

const NAMES: [&str; 6] = ["X", "A", "Z", "D", "B", "Y"];

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Lifting the base model: uniform per-link costs reduce exactly.
    let base = fig1();
    let uniform = NeighborCostGraph::uniform(&base);
    assert_eq!(neighbor_costs::compute(&uniform)?, vcg::compute(&base)?);
    println!("Uniform per-link costs reproduce the base mechanism exactly.\n");

    // 2. Congest one link: D's interface toward B becomes expensive.
    let congested = uniform.with_recv_cost(Fig1::D, Fig1::B, Cost::new(4))?;
    println!("Raise D's cost of receiving from B to 4 (its Y side stays at 1):");
    let outcome = neighbor_costs::compute(&congested)?;

    // The distributed protocol agrees bit-for-bit.
    let (distributed, report) = neighbor_costs::run_nc_sync(&congested)?;
    assert_eq!(distributed, outcome);
    println!(
        "Distributed margin protocol converged in {} stages and matches the centralized \
         computation.\n",
        report.stages
    );

    for (src, dst) in [(Fig1::X, Fig1::Z), (Fig1::Y, Fig1::Z)] {
        let pair = outcome.pair(src, dst).unwrap();
        let path: Vec<&str> = pair
            .route()
            .nodes()
            .iter()
            .map(|k| NAMES[k.index()])
            .collect();
        let prices: Vec<String> = pair
            .prices()
            .iter()
            .map(|(k, p)| format!("{}={p}", NAMES[k.index()]))
            .collect();
        println!(
            "  {}->{}: {} (cost {}), prices [{}]",
            NAMES[src.index()],
            NAMES[dst.index()],
            path.join(" "),
            pair.route().transit_cost(),
            prices.join(", ")
        );
    }
    println!(
        "\nThe X->Z flow routes around D's congested interface while Y->Z still uses D \
         through its cheap side — routing is now link-sensitive."
    );

    // 3. Strategyproofness survives: random cost-vector lies never profit.
    let traffic = TrafficMatrix::uniform(base.node_count(), 1);
    let mut rng = StdRng::seed_from_u64(3);
    let mut tested = 0;
    for k in congested.nodes() {
        for _ in 0..10 {
            let dev = neighbor_costs::deviate(&congested, k, 12, &traffic, &mut rng)?;
            assert!(!dev.profitable(), "vector lie must not profit: {dev:?}");
            tested += 1;
        }
    }
    println!("\n{tested} random cost-vector lies tested: none profitable (Theorem 1 generalizes).");
    Ok(())
}
