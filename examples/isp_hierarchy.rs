//! An Internet-like two-tier ISP hierarchy with gravity-model traffic.
//!
//! Generates a transit core + multi-homed stub topology, runs the pricing
//! protocol, settles a gravity-model traffic matrix into per-AS payments
//! (Sect. 6.4 of the paper), and reports who earns what and how much the
//! VCG premium (Sect. 7 overcharging) costs the network.
//!
//! Run with: `cargo run --example isp_hierarchy`

use bgp_vcg::core::accounting::PaymentLedger;
use bgp_vcg::core::overcharge::OverchargeReport;
use bgp_vcg::netgraph::generators::{hierarchy, HierarchyConfig};
use bgp_vcg::{protocol, AsId, TrafficMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let mut rng = StdRng::seed_from_u64(2002); // the year of the paper
    let config = HierarchyConfig {
        core_size: 5,
        stub_count: 25,
        core_cost: (1, 3),
        stub_cost: (4, 10),
    };
    let graph = hierarchy(config, &mut rng);
    println!(
        "Two-tier ISP topology: {} core ASs (full mesh), {} stubs (dual-homed), {} links.",
        config.core_size,
        config.stub_count,
        graph.link_count()
    );

    let run = protocol::run_sync(&graph)?;
    println!(
        "Pricing protocol converged in {} stages, {} messages, {} KiB.\n",
        run.report.stages,
        run.report.messages,
        run.report.bytes / 1024
    );

    // Gravity-model interdomain traffic (real matrices are proprietary).
    let traffic = TrafficMatrix::gravity(graph.node_count(), 20, &mut rng);
    let ledger = PaymentLedger::settle(&run.outcome, &traffic)?;

    println!("Top transit earners (payment vs. incurred cost):");
    let mut rows: Vec<(AsId, u128, u128)> = graph
        .nodes()
        .map(|k| (k, ledger.payment(k), ledger.incurred_cost(k, graph.cost(k))))
        .collect();
    rows.sort_by_key(|&(_, p, _)| std::cmp::Reverse(p));
    println!(
        "  {:<6} {:>12} {:>12} {:>10}",
        "AS", "paid", "cost", "profit"
    );
    for (k, paid, cost) in rows.iter().take(8) {
        let role = if k.index() < config.core_size {
            "core"
        } else {
            "stub"
        };
        println!(
            "  {:<6} {:>12} {:>12} {:>10}   ({role})",
            k.to_string(),
            paid,
            cost,
            *paid as i128 - *cost as i128
        );
    }

    // Every stub that carries no transit traffic must be paid nothing —
    // the normalization that makes the mechanism unique (Theorem 1).
    let unpaid_nontransit = graph
        .nodes()
        .filter(|&k| ledger.packets_carried(k) == 0 && ledger.payment(k) == 0)
        .count();
    println!("\n{unpaid_nontransit} ASs carried no transit traffic and were paid exactly 0.");

    let report = OverchargeReport::analyze(&run.outcome);
    let (payments, costs) = report.totals();
    println!(
        "Overcharging: per-packet payments total {payments} against true path costs {costs} \
         (max pair ratio {:.2}).",
        report.max_ratio().unwrap_or(f64::NAN)
    );
    Ok(())
}
