//! Strategyproofness in action: why lying about costs never pays.
//!
//! Takes the paper's Fig. 1 network and lets each AS try a sweep of false
//! cost declarations — both understating (to attract traffic) and
//! overstating (to inflate prices), the two temptations of the paper's
//! footnote 1. For every lie the example prints the resulting traffic,
//! payment, and utility, showing the utility never exceeds the truthful
//! one (Theorem 1).
//!
//! Run with: `cargo run --example strategic_deviation`

use bgp_vcg::core::strategy;
use bgp_vcg::netgraph::generators::structured::fig1;
use bgp_vcg::{Cost, TrafficMatrix};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let graph = fig1();
    let traffic = TrafficMatrix::uniform(graph.node_count(), 1);
    let names = ["X", "A", "Z", "D", "B", "Y"];

    println!("Each AS tries declaring costs 0..=12 instead of its true cost.");
    println!("Utility = payment received − (true cost × transit packets carried).\n");

    let mut any_profitable = false;
    for k in graph.nodes() {
        let true_cost = graph.cost(k);
        let truthful = strategy::evaluate(&graph, k, true_cost, &traffic)?;
        println!(
            "{} (true cost {true_cost}): truthful utility {}, carrying {} transit packets",
            names[k.index()],
            truthful.utility,
            truthful.packets_carried
        );
        for declared in 0..=12u64 {
            let lie = Cost::new(declared);
            if lie == true_cost {
                continue;
            }
            let view = strategy::evaluate(&graph, k, lie, &traffic)?;
            let verdict = match view.utility.cmp(&truthful.utility) {
                std::cmp::Ordering::Greater => {
                    any_profitable = true;
                    "PROFITABLE LIE — STRATEGYPROOFNESS VIOLATED"
                }
                std::cmp::Ordering::Equal => "no gain",
                std::cmp::Ordering::Less => "loses",
            };
            println!(
                "    declare {declared:>2}: carries {:>2} packets, paid {:>3}, utility {:>4}  ({verdict})",
                view.packets_carried, view.payment, view.utility
            );
        }
        println!();
    }

    assert!(
        !any_profitable,
        "Theorem 1 guarantees no unilateral lie is profitable"
    );
    println!("No profitable deviation exists: truth-telling is a dominant strategy.");
    Ok(())
}
