//! Topology dynamics: link failures, recoveries, and cost re-declarations.
//!
//! The paper notes (Sect. 6) that "the process of converging begins again
//! each time a route is changed". This example converges the pricing
//! protocol on the Fig. 1 network, then fails the B–D link, watches routes
//! and prices reconverge, brings the link back, and finally has D triple
//! its declared cost — verifying after every event that the distributed
//! prices again match a fresh centralized VCG computation on the changed
//! network.
//!
//! Run with: `cargo run --example dynamic_network`

use bgp_vcg::bgp::TopologyEvent;
use bgp_vcg::netgraph::generators::structured::{fig1, Fig1};
use bgp_vcg::{protocol, vcg, AsGraph, Cost};
use std::error::Error;

fn show_x_to_z(outcome: &bgp_vcg::RoutingOutcome) {
    let names = ["X", "A", "Z", "D", "B", "Y"];
    let pair = outcome.pair(Fig1::X, Fig1::Z).expect("X reaches Z");
    let path: Vec<&str> = pair
        .route()
        .nodes()
        .iter()
        .map(|k| names[k.index()])
        .collect();
    let prices: Vec<String> = pair
        .prices()
        .iter()
        .map(|(k, p)| format!("{}={p}", names[k.index()]))
        .collect();
    println!(
        "  X->Z now routes {} (cost {}), prices [{}]",
        path.join(" "),
        pair.route().transit_cost(),
        prices.join(", ")
    );
}

fn main() -> Result<(), Box<dyn Error>> {
    let graph = fig1();
    let mut engine = protocol::build_sync_engine(&graph)?;
    let report = engine.run_to_convergence();
    println!("Initial convergence: {} stages.", report.stages);
    let outcome = protocol::outcome_from_nodes(&clone_nodes(&engine))?;
    show_x_to_z(&outcome);

    // 1. The B–D link fails: X must fall back to the expensive X A Z path.
    println!("\n*** Link B–D fails ***");
    let report = engine.apply_event(TopologyEvent::LinkDown(Fig1::B, Fig1::D));
    println!(
        "Reconverged in {} stages, {} messages.",
        report.stages, report.messages
    );
    let failed_graph = graph.without_link(Fig1::B, Fig1::D)?;
    verify(&engine, &failed_graph)?;

    // 2. The link comes back: the original routes and prices return.
    println!("\n*** Link B–D restored ***");
    let report = engine.apply_event(TopologyEvent::LinkUp(Fig1::B, Fig1::D));
    println!(
        "Reconverged in {} stages, {} messages.",
        report.stages, report.messages
    );
    verify(&engine, &graph)?;

    // 3. D re-declares a triple cost: traffic routes around it, its prices
    //    change everywhere.
    println!("\n*** D re-declares cost 3 ***");
    let report = engine.apply_event(TopologyEvent::CostChange(Fig1::D, Cost::new(3)));
    println!(
        "Reconverged in {} stages, {} messages.",
        report.stages, report.messages
    );
    let repriced_graph = graph.with_cost(Fig1::D, Cost::new(3));
    verify(&engine, &repriced_graph)?;
    Ok(())
}

fn clone_nodes(
    engine: &bgp_vcg::bgp::engine::SyncEngine<bgp_vcg::PricingBgpNode>,
) -> Vec<bgp_vcg::PricingBgpNode> {
    engine.nodes().cloned().collect()
}

fn verify(
    engine: &bgp_vcg::bgp::engine::SyncEngine<bgp_vcg::PricingBgpNode>,
    expected_graph: &AsGraph,
) -> Result<(), Box<dyn Error>> {
    let outcome = protocol::outcome_from_nodes(&clone_nodes(engine))?;
    let reference = vcg::compute(expected_graph)?;
    assert_eq!(
        outcome, reference,
        "after the event, distributed state must equal centralized VCG on the new network"
    );
    println!("Distributed prices again match the centralized computation.");
    show_x_to_z(&outcome);
    Ok(())
}
