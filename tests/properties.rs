//! Property-based tests (proptest) for the mechanism's core invariants.
//!
//! Random biconnected graphs are generated from a `(size, density, seed)`
//! triple so failures shrink to small, reproducible instances.

use bgp_vcg::core::accounting::PaymentLedger;
use bgp_vcg::core::audit;
use bgp_vcg::core::neighbor_costs;
use bgp_vcg::core::overcharge::OverchargeReport;
use bgp_vcg::core::strategy;
use bgp_vcg::lcp::avoiding::{avoiding_tree, AvoidanceTable};
use bgp_vcg::lcp::{diameter, shortest_tree, AllPairsLcp};
use bgp_vcg::netgraph::generators::{erdos_renyi, random_costs};
use bgp_vcg::{protocol, vcg, AsGraph, AsId, Cost, TrafficMatrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random biconnected graph with costs in `[0, max_cost]`.
fn graph_from(n: usize, density: f64, max_cost: u64, seed: u64) -> AsGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let costs = random_costs(n, 0, max_cost, &mut rng);
    erdos_renyi(costs, density, &mut rng)
}

/// A proptest strategy over graph parameters: small enough to run many
/// cases, varied enough to hit ties, zero costs, and sparse/dense regimes.
fn graph_params() -> impl Strategy<Value = (usize, f64, u64, u64)> {
    (6usize..14, 0.15f64..0.7, 0u64..12, 0u64..u64::MAX)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 2: the distributed protocol's output equals the centralized
    /// Theorem-1 prices exactly, on arbitrary graphs.
    #[test]
    fn protocol_equals_vcg((n, density, max_cost, seed) in graph_params()) {
        let g = graph_from(n, density, max_cost, seed);
        let run = protocol::run_sync(&g).expect("generated graphs are valid");
        prop_assert!(run.report.converged);
        prop_assert_eq!(run.outcome, vcg::compute(&g).unwrap());
    }

    /// Corollary 1: convergence within max(d, d') synchronous stages.
    #[test]
    fn convergence_bound_holds((n, density, max_cost, seed) in graph_params()) {
        let g = graph_from(n, density, max_cost, seed);
        let lcp = AllPairsLcp::compute(&g);
        let avoidance = AvoidanceTable::compute(&g, &lcp);
        let bound = diameter::convergence_bound(&lcp, &avoidance);
        let run = protocol::run_sync(&g).unwrap();
        prop_assert!(
            run.report.stages <= bound,
            "{} stages > max(d, d') = {}", run.report.stages, bound
        );
    }

    /// Theorem 1 (individual rationality): on-path prices are at least the
    /// declared cost; off-path nodes have no price.
    #[test]
    fn prices_cover_costs((n, density, max_cost, seed) in graph_params()) {
        let g = graph_from(n, density, max_cost, seed);
        let outcome = vcg::compute(&g).unwrap();
        for (_, _, pair) in outcome.pairs() {
            for &(k, p) in pair.prices() {
                prop_assert!(p >= g.cost(k));
                prop_assert!(pair.route().is_transit(k));
            }
        }
    }

    /// Theorem 1 (strategyproofness): a random unilateral lie never
    /// strictly increases utility.
    #[test]
    fn no_profitable_lie(
        (n, density, max_cost, seed) in graph_params(),
        agent_pick in 0usize..64,
        lie in 0u64..25,
    ) {
        let g = graph_from(n, density, max_cost, seed);
        let k = AsId::new((agent_pick % n) as u32);
        prop_assume!(Cost::new(lie) != g.cost(k));
        let traffic = TrafficMatrix::uniform(n, 1);
        let dev = strategy::deviate(&g, k, Cost::new(lie), &traffic).unwrap();
        prop_assert!(
            !dev.profitable(),
            "agent {} profits from declaring {} (truth {}): {:?}",
            k, lie, g.cost(k), dev
        );
    }

    /// The normalization that makes the mechanism unique: zero payment to
    /// nodes carrying no transit traffic.
    #[test]
    fn zero_payment_without_transit((n, density, max_cost, seed) in graph_params()) {
        let g = graph_from(n, density, max_cost, seed);
        let outcome = vcg::compute(&g).unwrap();
        let ledger = PaymentLedger::settle(&outcome, &TrafficMatrix::uniform(n, 2)).unwrap();
        for k in g.nodes() {
            if ledger.packets_carried(k) == 0 {
                prop_assert_eq!(ledger.payment(k), 0);
            }
        }
    }

    /// Sect. 7: total payments dominate true path costs on every pair.
    #[test]
    fn payments_dominate((n, density, max_cost, seed) in graph_params()) {
        let g = graph_from(n, density, max_cost, seed);
        let outcome = vcg::compute(&g).unwrap();
        let report = OverchargeReport::analyze(&outcome);
        prop_assert!(report.payments_dominate_costs());
    }

    /// Payments are linear in the traffic matrix (prices are per-packet and
    /// traffic-independent — the surprising part of Theorem 1).
    #[test]
    fn payments_linear_in_traffic(
        (n, density, max_cost, seed) in graph_params(),
        scale in 1u64..5,
    ) {
        let g = graph_from(n, density, max_cost, seed);
        let outcome = vcg::compute(&g).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        let base = TrafficMatrix::random(n, 0, 6, &mut rng);
        let mut scaled = TrafficMatrix::zero(n);
        for (i, j, t) in base.flows() {
            scaled.set(i, j, t * scale);
        }
        let l1 = PaymentLedger::settle(&outcome, &base).unwrap();
        let l2 = PaymentLedger::settle(&outcome, &scaled).unwrap();
        for k in g.nodes() {
            prop_assert_eq!(l2.payment(k), l1.payment(k) * u128::from(scale));
        }
    }

    /// Sect. 6.2's structural fact: every suffix of a lowest-cost
    /// k-avoiding path is itself either the LCP from that node or its
    /// lowest-cost k-avoiding path — the invariant behind Lemma 2.
    #[test]
    fn avoiding_path_suffix_property((n, density, max_cost, seed) in graph_params()) {
        let g = graph_from(n, density, max_cost, seed);
        for j in g.nodes() {
            let plain = shortest_tree(&g, j);
            for k in g.nodes() {
                if k == j {
                    continue;
                }
                let avoid = avoiding_tree(&g, j, k);
                for i in g.nodes() {
                    if i == j {
                        continue;
                    }
                    let Some(route) = avoid.route(i) else { continue };
                    for &s in route.transit_nodes() {
                        let suffix = route.suffix_from(&g, s).unwrap();
                        let suffix_cost = suffix.transit_cost();
                        let is_lcp_cost = plain.cost(s) == suffix_cost;
                        let is_avoid_cost = avoid.cost(s) == suffix_cost;
                        prop_assert!(
                            is_lcp_cost || is_avoid_cost,
                            "suffix of P_-k from {s} is neither LCP nor k-avoiding optimal"
                        );
                    }
                }
            }
        }
    }

    /// Avoiding-path costs never beat the unrestricted LCP, and avoiding a
    /// node off the LCP leaves the cost unchanged.
    #[test]
    fn avoidance_table_consistency((n, density, max_cost, seed) in graph_params()) {
        let g = graph_from(n, density, max_cost, seed);
        let lcp = AllPairsLcp::compute(&g);
        let table = AvoidanceTable::compute(&g, &lcp);
        for i in g.nodes() {
            for j in g.nodes() {
                if i == j {
                    continue;
                }
                let route = lcp.route(i, j).unwrap();
                for entry in table.entries(i, j) {
                    prop_assert!(entry.cost >= route.transit_cost());
                    prop_assert!(route.is_transit(entry.avoided));
                }
            }
        }
    }

    /// The Sect. 3 extension: with random per-link receive costs, the
    /// distributed margin protocol equals the centralized generalized
    /// mechanism exactly.
    #[test]
    fn nc_distributed_equals_centralized((n, density, max_cost, seed) in graph_params()) {
        let base = graph_from(n, density, max_cost, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
        let mut g = neighbor_costs::NeighborCostGraph::uniform(&base);
        for k in base.nodes() {
            for &a in base.neighbors(k) {
                g = g
                    .with_recv_cost(k, a, Cost::new(rng.gen_range(0..=max_cost)))
                    .unwrap();
            }
        }
        let (distributed, report) = neighbor_costs::run_nc_sync(&g).unwrap();
        prop_assert!(report.converged);
        prop_assert_eq!(distributed, neighbor_costs::compute(&g).unwrap());
    }

    /// Sect. 7's audit: every honest converged network passes with zero
    /// findings.
    #[test]
    fn honest_networks_pass_audit((n, density, max_cost, seed) in graph_params()) {
        let g = graph_from(n, density, max_cost, seed);
        let mut engine = protocol::build_sync_engine(&g).unwrap();
        prop_assert!(engine.run_to_convergence().converged);
        let nodes = engine.into_nodes();
        prop_assert!(audit::audit_network(&g, &nodes).is_empty());
    }

    /// The total-cost objective V(c) is minimized by the selected routes:
    /// no single route swap to a neighbor-advertised alternative lowers it
    /// (spot-check of LCP optimality through the public API).
    #[test]
    fn selected_routes_minimize_pair_costs((n, density, max_cost, seed) in graph_params()) {
        let g = graph_from(n, density, max_cost, seed);
        let lcp = AllPairsLcp::compute(&g);
        for j in g.nodes() {
            let tree = lcp.tree(j);
            for i in g.nodes() {
                if i == j {
                    continue;
                }
                // Any one-hop deviation through a neighbor cannot be cheaper.
                for &a in g.neighbors(i) {
                    if a == j {
                        // Adjacent to the destination: the direct link is
                        // free, so the selected cost must be zero.
                        prop_assert_eq!(tree.cost(i), Cost::ZERO);
                        continue;
                    }
                    let via = tree.cost(a) + g.cost(a);
                    prop_assert!(
                        tree.cost(i) <= via,
                        "{i}->{j}: selected {} beats via {a} = {via}", tree.cost(i)
                    );
                }
            }
        }
    }
}
