//! Heavier soak tests, `#[ignore]`d by default (run with
//! `cargo test --release -- --ignored`). These push sizes and event counts
//! well beyond the regular suite; they exist to catch anything that only
//! shows up at scale (quadratic blowups, counter overflows, convergence
//! pathologies).

use bgp_vcg::bgp::TopologyEvent;
use bgp_vcg::netgraph::generators::{barabasi_albert, random_costs};
use bgp_vcg::{protocol, vcg, AsGraph, AsId, Cost};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn big_graph(n: usize, seed: u64) -> AsGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let costs = random_costs(n, 1, 10, &mut rng);
    barabasi_albert(costs, 2, &mut rng)
}

/// Full distributed-vs-centralized exactness at n = 128 (≈ 16k pairs,
/// ≈ 100k priced entries).
#[test]
#[ignore = "soak test: run with --ignored (release recommended)"]
fn exactness_at_n128() {
    let g = big_graph(128, 1);
    let run = protocol::run_sync(&g).unwrap();
    assert!(run.report.converged);
    assert_eq!(run.outcome, vcg::compute(&g).unwrap());
}

/// An event storm: 25 random events applied in sequence, with exactness
/// verified against a fresh centralized computation after every one.
#[test]
#[ignore = "soak test: run with --ignored (release recommended)"]
fn event_storm_stays_exact() {
    let mut g = big_graph(48, 2);
    let mut engine = protocol::build_sync_engine(&g).unwrap();
    engine.run_to_convergence();
    let mut rng = StdRng::seed_from_u64(3);
    let mut applied = 0;
    let mut guard = 0;
    while applied < 25 && guard < 500 {
        guard += 1;
        let event = match rng.gen_range(0..4) {
            0 => {
                let link = g.links()[rng.gen_range(0..g.link_count())];
                let Ok(reduced) = g.without_link(link.a(), link.b()) else {
                    continue;
                };
                if !reduced.is_biconnected() {
                    continue;
                }
                TopologyEvent::LinkDown(link.a(), link.b())
            }
            1 => {
                let a = AsId::new(rng.gen_range(0..g.node_count() as u32));
                let b = AsId::new(rng.gen_range(0..g.node_count() as u32));
                if a == b || g.has_link(a, b) {
                    continue;
                }
                TopologyEvent::LinkUp(a, b)
            }
            2 => {
                let k = AsId::new(rng.gen_range(0..g.node_count() as u32));
                let c = Cost::new(rng.gen_range(0..15));
                if c == g.cost(k) {
                    continue;
                }
                TopologyEvent::CostChange(k, c)
            }
            _ => {
                // Crash/restart round-trip: take a node down (if the
                // survivors stay biconnected — otherwise the fallible
                // path must reject it without damage) and bring it
                // straight back, so the engine must reconverge to the
                // full-graph fixpoint.
                let k = AsId::new(rng.gen_range(0..g.node_count() as u32));
                match engine.try_apply_event(TopologyEvent::NodeDown(k)) {
                    Ok(down) => {
                        assert!(down.converged, "NodeDown({k}) must reconverge");
                        TopologyEvent::NodeUp(k)
                    }
                    Err(_) => continue,
                }
            }
        };
        let report = engine.apply_event(event);
        assert!(report.converged, "event #{applied}: {event:?}");
        g = match event {
            TopologyEvent::LinkDown(a, b) => g.without_link(a, b).unwrap(),
            TopologyEvent::LinkUp(a, b) => g.with_link(a, b).unwrap(),
            TopologyEvent::CostChange(k, c) => g.with_cost(k, c),
            // The paired NodeDown already parked and restored the same
            // links, so the reference topology is unchanged.
            TopologyEvent::NodeUp(_) => g,
            TopologyEvent::NodeDown(_) => unreachable!("storm applies crashes as down/up pairs"),
        };
        let nodes: Vec<_> = engine.nodes().cloned().collect();
        let outcome = protocol::outcome_from_nodes(&nodes).unwrap();
        assert_eq!(
            outcome,
            vcg::compute(&g).unwrap(),
            "after event #{applied}: {event:?}"
        );
        applied += 1;
    }
    assert_eq!(applied, 25, "storm must complete");
}

/// Asynchronous chaos soak: adversarial cross-sender scheduling at n = 64,
/// several seeds, all reaching the exact fixpoint.
#[test]
#[ignore = "soak test: run with --ignored (release recommended)"]
fn chaotic_async_soak() {
    use bgp_vcg::bgp::engine::run_event_driven_chaotic;
    let g = big_graph(64, 4);
    let reference = vcg::compute(&g).unwrap();
    for seed in 0..4 {
        let (nodes, _) =
            run_event_driven_chaotic(&g, bgp_vcg::PricingBgpNode::from_graph(&g), 0.5, seed);
        assert_eq!(
            protocol::outcome_from_nodes(&nodes).unwrap(),
            reference,
            "seed {seed}"
        );
    }
}
