//! The grand differential-consistency test: every independent
//! implementation path in the workspace, run on the same random instance,
//! must agree exactly.
//!
//! Routing has three implementations (Dijkstra, Bellman–Ford fixpoint,
//! path-vector protocol), the avoidance table has two (punctured Dijkstra,
//! subtree relaxation), price computation has two (Theorem-1 closed form,
//! distributed relaxation), the distributed run has three schedulers
//! (synchronous, asynchronous, chaotic-asynchronous), and settlement has
//! two (closed-form, source-side over the forwarding plane). Any
//! disagreement anywhere is a bug in at least one of them; agreement across
//! all on random instances is the strongest single check the workspace has.

use bgp_vcg::bgp::engine::{run_event_driven, run_event_driven_chaotic, SyncEngine};
use bgp_vcg::bgp::{forwarding, PlainBgpNode, RouteSelector};
use bgp_vcg::core::accounting::PaymentLedger;
use bgp_vcg::lcp::avoiding::AvoidanceTable;
use bgp_vcg::lcp::{bellman, shortest_tree, AllPairsLcp};
use bgp_vcg::netgraph::generators::{barabasi_albert, erdos_renyi, random_costs};
use bgp_vcg::{protocol, vcg, AsGraph, PricingBgpNode, TrafficMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn instance(seed: u64) -> AsGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let costs = random_costs(16, 0, 9, &mut rng);
    if seed.is_multiple_of(2) {
        erdos_renyi(costs, 0.3, &mut rng)
    } else {
        barabasi_albert(costs, 2, &mut rng)
    }
}

#[test]
fn all_implementation_paths_agree() {
    for seed in 0..6 {
        let g = instance(seed);

        // --- Routing: three implementations. ---
        let lcp = AllPairsLcp::compute(&g);
        for j in g.nodes() {
            assert_eq!(
                shortest_tree(&g, j),
                bellman::fixpoint(&g, j).tree,
                "seed {seed}: dijkstra vs bellman, dest {j}"
            );
        }
        let mut plain = SyncEngine::new(&g, PlainBgpNode::from_graph(&g));
        assert!(plain.run_to_convergence().converged);
        for i in g.nodes() {
            for j in g.nodes() {
                assert_eq!(
                    plain.node(i).selector().route(j).as_ref(),
                    lcp.route(i, j),
                    "seed {seed}: protocol vs dijkstra, {i}->{j}"
                );
            }
        }

        // --- Avoidance table: two implementations. ---
        let slow = AvoidanceTable::compute(&g, &lcp);
        let fast = AvoidanceTable::compute_fast(&g, &lcp);
        assert_eq!(slow, fast, "seed {seed}: avoidance tables");

        // --- Prices: closed form vs three distributed schedulers. ---
        let reference = vcg::from_parts(&g, &lcp, &fast).unwrap();
        let sync_run = protocol::run_sync(&g).unwrap();
        assert_eq!(sync_run.outcome, reference, "seed {seed}: sync protocol");
        let (async_nodes, _) = run_event_driven(&g, PricingBgpNode::from_graph(&g));
        assert_eq!(
            protocol::outcome_from_nodes(&async_nodes).unwrap(),
            reference,
            "seed {seed}: async protocol"
        );
        let (chaos_nodes, _) =
            run_event_driven_chaotic(&g, PricingBgpNode::from_graph(&g), 0.3, seed);
        assert_eq!(
            protocol::outcome_from_nodes(&chaos_nodes).unwrap(),
            reference,
            "seed {seed}: chaotic protocol"
        );

        // --- Forwarding plane composes with the control plane. ---
        let selectors: Vec<&RouteSelector> =
            async_nodes.iter().map(PricingBgpNode::selector).collect();
        forwarding::verify_consistency(&selectors).unwrap();

        // --- Settlement: closed form vs distributed source-side tallies. ---
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
        let traffic = TrafficMatrix::random(g.node_count(), 0, 4, &mut rng);
        let closed = PaymentLedger::settle(&reference, &traffic).unwrap();
        let distributed = PaymentLedger::settle_from_nodes(&async_nodes, &traffic).unwrap();
        assert_eq!(closed, distributed, "seed {seed}: settlement");
    }
}
