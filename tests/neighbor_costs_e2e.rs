//! Root-level integration tests for the Sect. 3 per-neighbor-cost
//! extension, exercised purely through the public facade.

use bgp_vcg::core::neighbor_costs::{self, NeighborCostGraph};
use bgp_vcg::netgraph::generators::structured::{fig1, Fig1};
use bgp_vcg::netgraph::generators::{barabasi_albert, random_costs};
use bgp_vcg::{vcg, Cost, TrafficMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn randomized_nc(n: usize, seed: u64) -> NeighborCostGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let base = barabasi_albert(random_costs(n, 1, 9, &mut rng), 2, &mut rng);
    let mut g = NeighborCostGraph::uniform(&base);
    for k in base.nodes() {
        for &a in base.neighbors(k) {
            g = g
                .with_recv_cost(k, a, Cost::new(rng.gen_range(0..12)))
                .unwrap();
        }
    }
    g
}

/// The three computations of the generalized mechanism agree: centralized,
/// synchronous distributed, asynchronous distributed.
#[test]
fn nc_three_way_agreement() {
    for seed in 0..4 {
        let g = randomized_nc(14, seed);
        let reference = neighbor_costs::compute(&g).unwrap();
        let (sync_outcome, sync_report) = neighbor_costs::run_nc_sync(&g).unwrap();
        assert!(sync_report.converged, "seed {seed}");
        assert_eq!(sync_outcome, reference, "seed {seed}: sync");
        let (async_outcome, _) = neighbor_costs::run_nc_async(&g).unwrap();
        assert_eq!(async_outcome, reference, "seed {seed}: async");
    }
}

/// Lifting Fig. 1 and re-pricing one link reproduces the base mechanism on
/// an equivalent node-cost graph when the change is cost-neutral per node.
#[test]
fn nc_uniform_round_trip_through_facade() {
    let base = fig1();
    let lifted = NeighborCostGraph::uniform(&base);
    let nc_outcome = neighbor_costs::compute(&lifted).unwrap();
    let base_outcome = vcg::compute(&base).unwrap();
    assert_eq!(nc_outcome, base_outcome);
    // Worked-example payments survive the lift.
    assert_eq!(
        nc_outcome.price(Fig1::Y, Fig1::Z, Fig1::D),
        Some(Cost::new(9))
    );
}

/// Generalized strategyproofness through the facade: random vector lies on
/// a randomized instance never profit.
#[test]
fn nc_vector_lies_never_profit() {
    let g = randomized_nc(10, 99);
    let traffic = TrafficMatrix::uniform(10, 1);
    let mut rng = StdRng::seed_from_u64(5);
    for k in g.nodes() {
        for _ in 0..5 {
            let dev = neighbor_costs::deviate(&g, k, 15, &traffic, &mut rng).unwrap();
            assert!(!dev.profitable(), "{dev:?}");
        }
    }
}

/// Direction sensitivity end to end: pricing one incoming link off the LCP
/// re-routes only the flows that used it.
#[test]
fn nc_asymmetry_is_flow_specific() {
    let g = NeighborCostGraph::uniform(&fig1())
        .with_recv_cost(Fig1::D, Fig1::B, Cost::new(50))
        .unwrap();
    let outcome = neighbor_costs::compute(&g).unwrap();
    // X->Z rerouted off D...
    assert_eq!(
        outcome.pair(Fig1::X, Fig1::Z).unwrap().route().nodes(),
        &[Fig1::X, Fig1::A, Fig1::Z]
    );
    // ...while Y->Z still uses D through its untouched Y-facing link.
    assert_eq!(
        outcome.pair(Fig1::Y, Fig1::Z).unwrap().route().nodes(),
        &[Fig1::Y, Fig1::D, Fig1::Z]
    );
    // And the distributed protocol agrees on the asymmetric instance.
    let (distributed, _) = neighbor_costs::run_nc_sync(&g).unwrap();
    assert_eq!(distributed, outcome);
}
