//! Cross-crate integration tests: the full pipeline from topology
//! generation through distributed price computation, checked against the
//! centralized Theorem-1 reference.

use bgp_vcg::bgp::TopologyEvent;
use bgp_vcg::core::accounting::PaymentLedger;
use bgp_vcg::core::overcharge::OverchargeReport;
use bgp_vcg::netgraph::generators::structured::{fig1, petersen, ring, torus, wheel, Fig1};
use bgp_vcg::netgraph::generators::{
    barabasi_albert, erdos_renyi, hierarchy, random_costs, waxman, HierarchyConfig, WaxmanConfig,
};
use bgp_vcg::{protocol, vcg, AsGraph, AsId, Cost, TrafficMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The headline reproduction: on every topology family, the distributed
/// BGP-based protocol computes *bit-for-bit* the centralized VCG prices.
#[test]
fn distributed_equals_centralized_across_families() {
    let mut rng = StdRng::seed_from_u64(20020721); // PODC 2002
    let graphs: Vec<AsGraph> = vec![
        fig1(),
        ring(12, Cost::new(3)),
        torus(3, 5, Cost::new(2)),
        wheel(9, Cost::new(1), Cost::new(7)),
        petersen(Cost::new(4)),
        erdos_renyi(random_costs(20, 0, 9, &mut rng), 0.25, &mut rng),
        barabasi_albert(random_costs(25, 1, 10, &mut rng), 2, &mut rng),
        waxman(
            random_costs(20, 1, 8, &mut rng),
            WaxmanConfig::default(),
            &mut rng,
        ),
        hierarchy(HierarchyConfig::default(), &mut rng),
    ];
    for (idx, g) in graphs.iter().enumerate() {
        let run = protocol::run_sync(g).expect("valid graph");
        assert!(run.report.converged, "graph #{idx}");
        let reference = vcg::compute(g).expect("valid graph");
        assert_eq!(run.outcome, reference, "graph #{idx}");
    }
}

/// The asynchronous engine (threads + channels) reaches the same unique
/// fixpoint as the synchronous one, under arbitrary interleavings.
#[test]
fn async_equals_sync_equals_centralized() {
    let mut rng = StdRng::seed_from_u64(5);
    let g = barabasi_albert(random_costs(20, 1, 9, &mut rng), 2, &mut rng);
    let reference = vcg::compute(&g).unwrap();
    let sync_run = protocol::run_sync(&g).unwrap();
    assert_eq!(sync_run.outcome, reference);
    for _ in 0..3 {
        let (async_outcome, _) = protocol::run_async(&g).unwrap();
        assert_eq!(async_outcome, reference);
    }
}

/// Fig. 1 end-to-end with payments: one uniform packet between every pair,
/// settled through the Sect. 6.4 counters.
#[test]
fn fig1_payments_under_uniform_traffic() {
    let g = fig1();
    let run = protocol::run_sync(&g).unwrap();
    let traffic = TrafficMatrix::uniform(g.node_count(), 1);
    let ledger = PaymentLedger::settle(&run.outcome, &traffic).unwrap();
    // Every node's payment covers its incurred cost (individual
    // rationality under truth-telling).
    for k in g.nodes() {
        assert!(ledger.welfare(k, g.cost(k)) >= 0, "{k}");
    }
    // A is on the X<->Z avoiding path but no LCP except its own pairs:
    // it must carry nothing and be paid nothing.
    assert_eq!(ledger.packets_carried(Fig1::A), 0);
    assert_eq!(ledger.payment(Fig1::A), 0);
}

/// A sequence of topology events, each followed by verification against a
/// fresh centralized computation on the evolved graph.
#[test]
fn event_sequence_stays_exact() {
    let g = fig1();
    let mut engine = protocol::build_sync_engine(&g).unwrap();
    engine.run_to_convergence();

    let mut current = g;
    let events = [
        TopologyEvent::CostChange(Fig1::B, Cost::new(6)),
        TopologyEvent::LinkDown(Fig1::B, Fig1::D),
        TopologyEvent::CostChange(Fig1::A, Cost::new(1)),
        TopologyEvent::LinkUp(Fig1::B, Fig1::D),
        TopologyEvent::NodeDown(Fig1::Y),
        TopologyEvent::NodeUp(Fig1::Y),
        TopologyEvent::CostChange(Fig1::B, Cost::new(2)),
    ];
    for event in events {
        let report = engine.apply_event(event);
        assert!(report.converged);
        current = match event {
            TopologyEvent::LinkDown(a, b) => current.without_link(a, b).unwrap(),
            TopologyEvent::LinkUp(a, b) => current.with_link(a, b).unwrap(),
            TopologyEvent::CostChange(k, c) => current.with_cost(k, c),
            // While an AS is down some pairs are unroutable and the
            // mechanism's outcome is not comparable against a fixed-size
            // reference; verification resumes at `NodeUp`, which must
            // restore the exact fixpoint of the never-crashed graph
            // (self-stabilization).
            TopologyEvent::NodeDown(_) => continue,
            TopologyEvent::NodeUp(_) => current,
        };
        let nodes: Vec<_> = engine.nodes().cloned().collect();
        let outcome = protocol::outcome_from_nodes(&nodes).unwrap();
        assert_eq!(outcome, vcg::compute(&current).unwrap(), "after {event:?}");
    }
}

/// Overcharging (Sect. 7) composes with the distributed outcome, not just
/// the centralized one.
#[test]
fn overcharge_report_from_distributed_outcome() {
    let g = fig1();
    let run = protocol::run_sync(&g).unwrap();
    let report = OverchargeReport::analyze(&run.outcome);
    assert!(report.payments_dominate_costs());
    assert_eq!(report.max_ratio(), Some(9.0), "the Y→Z pair");
}

/// The mechanism refuses graphs where prices would be undefined, at every
/// entry point.
#[test]
fn non_biconnected_rejected_everywhere() {
    let mut b = AsGraph::builder();
    let ids = b.add_nodes(vec![Cost::new(1); 4]);
    b.add_link(ids[0], ids[1]).unwrap();
    b.add_link(ids[1], ids[2]).unwrap();
    b.add_link(ids[2], ids[3]).unwrap();
    let path = b.build();
    assert!(vcg::compute(&path).is_err());
    assert!(protocol::run_sync(&path).is_err());
    assert!(protocol::run_async(&path).is_err());
    assert!(protocol::build_sync_engine(&path).is_err());
}

/// Zero-cost nodes are legal and the protocol still agrees with the
/// reference (exercises tie-breaking hard).
#[test]
fn all_zero_costs_still_exact() {
    let g = torus(3, 4, Cost::ZERO);
    let run = protocol::run_sync(&g).unwrap();
    assert_eq!(run.outcome, vcg::compute(&g).unwrap());
    // With zero costs every price is zero: the avoiding margin is the only
    // term and all paths cost 0.
    for (_, _, pair) in run.outcome.pairs() {
        for &(_, p) in pair.prices() {
            assert_eq!(p, Cost::ZERO);
        }
    }
}

/// Heterogeneous extreme costs (0 next to huge) stay exact — exercises the
/// saturating arithmetic paths.
#[test]
fn extreme_cost_spread_stays_exact() {
    let mut b = AsGraph::builder();
    let big = 1_000_000_000_000u64;
    let costs: Vec<Cost> = [0, big, 3, 0, big, 7, 1, big]
        .iter()
        .map(|&c| Cost::new(c))
        .collect();
    let ids = b.add_nodes(costs);
    for i in 0..ids.len() {
        b.add_link(ids[i], ids[(i + 1) % ids.len()]).unwrap();
        b.add_link(ids[i], ids[(i + 3) % ids.len()]).ok();
    }
    let g = b.build();
    assert!(g.is_biconnected());
    let run = protocol::run_sync(&g).unwrap();
    assert_eq!(run.outcome, vcg::compute(&g).unwrap());
}

/// AsId sanity: outcome indices round-trip through the public API.
#[test]
fn outcome_indexing_round_trip() {
    let g = fig1();
    let run = protocol::run_sync(&g).unwrap();
    for (i, j, pair) in run.outcome.pairs() {
        assert_eq!(pair.route().source(), i);
        assert_eq!(pair.route().destination(), j);
        assert_eq!(run.outcome.route(i, j), Some(pair.route()));
        for &(k, p) in pair.prices() {
            assert_eq!(run.outcome.price(i, j, k), Some(p));
            assert!(k != i && k != j);
        }
    }
    let total: usize = run.outcome.pairs().count();
    assert_eq!(total, 6 * 5);
}

/// AS identifiers in routes always name nodes of the graph.
#[test]
fn routes_stay_within_graph() {
    let mut rng = StdRng::seed_from_u64(77);
    let g = erdos_renyi(random_costs(15, 1, 9, &mut rng), 0.3, &mut rng);
    let run = protocol::run_sync(&g).unwrap();
    for (_, _, pair) in run.outcome.pairs() {
        for &node in pair.route().nodes() {
            assert!(g.contains_node(node));
        }
        for w in pair.route().nodes().windows(2) {
            assert!(g.has_link(w[0], w[1]), "route uses a non-existent link");
        }
    }
}

/// The public facade re-exports compose: build everything through the
/// `bgp_vcg::` paths only (this test failing to compile would mean the
/// facade is broken).
#[test]
fn facade_reexports_compose() {
    let g: AsGraph = fig1();
    let _: AsId = Fig1::D;
    let outcome: bgp_vcg::RoutingOutcome = vcg::compute(&g).unwrap();
    let _: Option<&bgp_vcg::PairOutcome> = outcome.pair(Fig1::X, Fig1::Z);
    let _ = bgp_vcg::PricingBgpNode::from_graph(&g);
}
