#!/usr/bin/env bash
# Regenerates every experiment (E1..E17) in release mode, saving outputs
# under results/. Fails if any experiment's verdict assertion trips.
set -euo pipefail
cd "$(dirname "$0")/.." || exit 1
mkdir -p results
experiments=(
  e1_worked_example e2_strategyproofness e3_bgp_convergence
  e4_price_convergence e5_state_overhead e6_communication
  e7_dprime_vs_d e8_overcharging e9_baseline_comparison e10_dynamics
  e11_ablation_full_table e12_neighbor_costs e13_audit e14_scale
  e15_per_node_convergence e16_topology_realism e17_uniqueness
  e18_overcharge_vs_diversity
)
# Build everything up front, then verify each expected binary actually
# exists: a typo'd experiment name fails here in seconds instead of
# mid-run after the earlier experiments have already been regenerated.
cargo build --quiet --release -p bgpvcg-bench --bins
target_dir="${CARGO_TARGET_DIR:-target}/release"
missing=0
for e in "${experiments[@]}"; do
  if [[ ! -x "$target_dir/$e" ]]; then
    echo "error: experiment binary '$e' not found in $target_dir" >&2
    missing=1
  fi
done
if [[ "$missing" -ne 0 ]]; then
  echo "aborting: missing experiment binaries (names drifted from crates/bench/src/bin/?)" >&2
  exit 1
fi

for e in "${experiments[@]}"; do
  echo "== $e =="
  "$target_dir/$e" | tee "results/$e.txt"
done
echo "All ${#experiments[@]} experiments passed."
