#!/usr/bin/env bash
# Regenerates every experiment (E1..E17) in release mode, saving outputs
# under results/. Fails if any experiment's verdict assertion trips.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
experiments=(
  e1_worked_example e2_strategyproofness e3_bgp_convergence
  e4_price_convergence e5_state_overhead e6_communication
  e7_dprime_vs_d e8_overcharging e9_baseline_comparison e10_dynamics
  e11_ablation_full_table e12_neighbor_costs e13_audit e14_scale
  e15_per_node_convergence e16_topology_realism e17_uniqueness
  e18_overcharge_vs_diversity
)
for e in "${experiments[@]}"; do
  echo "== $e =="
  cargo run --quiet --release -p bgpvcg-bench --bin "$e" | tee "results/$e.txt"
done
echo "All ${#experiments[@]} experiments passed."
