//! `bgpvcg` — command-line driver for the BGP-VCG mechanism.
//!
//! A small CLI so the library can be exercised without writing code:
//!
//! ```text
//! bgpvcg fig1
//! bgpvcg simulate  --family barabasi-albert --nodes 64 --seed 7 [--engine async]
//! bgpvcg deviate   --family hierarchy --nodes 24 --seed 1 --agent 3 --declare 9
//! bgpvcg diameters --family waxman --nodes 48 --seed 2
//! ```
//!
//! Argument parsing is hand-rolled (the project's dependency policy admits
//! no CLI crates) and unit-tested below.

use bgp_vcg::core::accounting::PaymentLedger;
use bgp_vcg::core::overcharge::OverchargeReport;
use bgp_vcg::core::strategy;
use bgp_vcg::lcp::avoiding::AvoidanceTable;
use bgp_vcg::lcp::{diameter, AllPairsLcp};
use bgp_vcg::netgraph::generators::structured::{fig1, Fig1};
use bgp_vcg::netgraph::generators::{
    barabasi_albert, erdos_renyi, hierarchy, random_costs, waxman, HierarchyConfig, WaxmanConfig,
};
use bgp_vcg::{protocol, vcg, AsGraph, AsId, Cost, TrafficMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

const USAGE: &str = "\
bgpvcg — strategyproof lowest-cost interdomain routing (PODC 2002)

USAGE:
    bgpvcg fig1
        Run the paper's Fig. 1 worked example end to end.
    bgpvcg simulate --family <F> --nodes <N> [--seed <S>] [--engine sync|async]
                    [--trace stages]
        Converge the pricing protocol on a generated topology and report
        stages, traffic, diameters, payments, and overcharging; with
        --trace stages, print per-stage progress.
    bgpvcg deviate --family <F> --nodes <N> --agent <K> --declare <C> [--seed <S>]
        Evaluate one strategic deviation: agent K declares cost C.
    bgpvcg diameters --family <F> --nodes <N> [--seed <S>]
        Print d, d', and the convergence bound max(d, d').
    bgpvcg dot --family <F> --nodes <N> [--seed <S>] [--route <I>,<J>]
        Emit the topology in Graphviz DOT (optionally highlighting the
        LCP between two ASs) for `dot -Tsvg` rendering.
    bgpvcg metrics --family <F> --nodes <N> [--seed <S>]
        Print the topology's structural signature (degrees, clustering,
        assortativity) — the numbers behind the Internet-likeness claim.
    bgpvcg audit --family <F> --nodes <N> [--seed <S>]
        Converge the pricing protocol, then replay-audit every AS against
        its neighborhood (Sect. 7's open problem).
    bgpvcg help
        Show this message.

FAMILIES:
    ring | erdos-renyi | barabasi-albert | waxman | hierarchy
";

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
enum Command {
    Fig1,
    Simulate {
        family: String,
        nodes: usize,
        seed: u64,
        asynchronous: bool,
        trace: bool,
    },
    Deviate {
        family: String,
        nodes: usize,
        seed: u64,
        agent: u32,
        declare: u64,
    },
    Diameters {
        family: String,
        nodes: usize,
        seed: u64,
    },
    Dot {
        family: String,
        nodes: usize,
        seed: u64,
        route: Option<(u32, u32)>,
    },
    Metrics {
        family: String,
        nodes: usize,
        seed: u64,
    },
    Audit {
        family: String,
        nodes: usize,
        seed: u64,
    },
    Help,
}

/// Extracts `--key value` pairs; returns an error naming the first
/// unknown or value-less flag.
fn parse_flags(args: &[String]) -> Result<Vec<(String, String)>, String> {
    let mut pairs = Vec::new();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let Some(key) = flag.strip_prefix("--") else {
            return Err(format!(
                "unexpected argument '{flag}' (flags start with --)"
            ));
        };
        let Some(value) = iter.next() else {
            return Err(format!("flag --{key} is missing a value"));
        };
        pairs.push((key.to_string(), value.clone()));
    }
    Ok(pairs)
}

fn flag<'a>(pairs: &'a [(String, String)], key: &str) -> Option<&'a str> {
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

fn required_usize(pairs: &[(String, String)], key: &str) -> Result<usize, String> {
    flag(pairs, key)
        .ok_or_else(|| format!("missing required flag --{key}"))?
        .parse()
        .map_err(|_| format!("--{key} must be a non-negative integer"))
}

fn parse_command(args: &[String]) -> Result<Command, String> {
    let Some(verb) = args.first() else {
        return Ok(Command::Help);
    };
    let rest = &args[1..];
    match verb.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "fig1" => {
            if rest.is_empty() {
                Ok(Command::Fig1)
            } else {
                Err("fig1 takes no arguments".to_string())
            }
        }
        "simulate" => {
            let pairs = parse_flags(rest)?;
            let engine = flag(&pairs, "engine").unwrap_or("sync");
            if engine != "sync" && engine != "async" {
                return Err("--engine must be 'sync' or 'async'".to_string());
            }
            let trace = match flag(&pairs, "trace") {
                None => false,
                Some("stages") => true,
                Some(other) => return Err(format!("--trace supports 'stages', not '{other}'")),
            };
            if trace && engine == "async" {
                return Err("--trace requires the sync engine".to_string());
            }
            Ok(Command::Simulate {
                family: flag(&pairs, "family")
                    .ok_or("missing required flag --family")?
                    .to_string(),
                nodes: required_usize(&pairs, "nodes")?,
                seed: flag(&pairs, "seed")
                    .unwrap_or("1")
                    .parse()
                    .map_err(|_| "--seed must be an integer")?,
                asynchronous: engine == "async",
                trace,
            })
        }
        "deviate" => {
            let pairs = parse_flags(rest)?;
            Ok(Command::Deviate {
                family: flag(&pairs, "family")
                    .ok_or("missing required flag --family")?
                    .to_string(),
                nodes: required_usize(&pairs, "nodes")?,
                seed: flag(&pairs, "seed")
                    .unwrap_or("1")
                    .parse()
                    .map_err(|_| "--seed must be an integer")?,
                agent: required_usize(&pairs, "agent")? as u32,
                declare: required_usize(&pairs, "declare")? as u64,
            })
        }
        "diameters" => {
            let pairs = parse_flags(rest)?;
            Ok(Command::Diameters {
                family: flag(&pairs, "family")
                    .ok_or("missing required flag --family")?
                    .to_string(),
                nodes: required_usize(&pairs, "nodes")?,
                seed: flag(&pairs, "seed")
                    .unwrap_or("1")
                    .parse()
                    .map_err(|_| "--seed must be an integer")?,
            })
        }
        "metrics" | "audit" => {
            let pairs = parse_flags(rest)?;
            let family = flag(&pairs, "family")
                .ok_or("missing required flag --family")?
                .to_string();
            let nodes = required_usize(&pairs, "nodes")?;
            let seed = flag(&pairs, "seed")
                .unwrap_or("1")
                .parse()
                .map_err(|_| "--seed must be an integer")?;
            Ok(if verb == "metrics" {
                Command::Metrics {
                    family,
                    nodes,
                    seed,
                }
            } else {
                Command::Audit {
                    family,
                    nodes,
                    seed,
                }
            })
        }
        "dot" => {
            let pairs = parse_flags(rest)?;
            let route = match flag(&pairs, "route") {
                None => None,
                Some(spec) => {
                    let parts: Vec<&str> = spec.split(',').collect();
                    let [i, j] = parts.as_slice() else {
                        return Err("--route must be '<I>,<J>'".to_string());
                    };
                    let parse = |s: &str| {
                        s.trim()
                            .parse::<u32>()
                            .map_err(|_| format!("--route component '{s}' is not an AS number"))
                    };
                    Some((parse(i)?, parse(j)?))
                }
            };
            Ok(Command::Dot {
                family: flag(&pairs, "family")
                    .ok_or("missing required flag --family")?
                    .to_string(),
                nodes: required_usize(&pairs, "nodes")?,
                seed: flag(&pairs, "seed")
                    .unwrap_or("1")
                    .parse()
                    .map_err(|_| "--seed must be an integer")?,
                route,
            })
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

/// Builds a named topology family (mirrors `bgpvcg-bench`'s families; kept
/// here so the CLI has no dependency on the bench crate).
fn build_family(name: &str, n: usize, seed: u64) -> Result<AsGraph, String> {
    if n < 8 {
        return Err("--nodes must be at least 8".to_string());
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = match name {
        "ring" => bgp_vcg::netgraph::generators::structured::ring(n, Cost::new(2)),
        "erdos-renyi" => {
            let costs = random_costs(n, 1, 10, &mut rng);
            erdos_renyi(costs, (5.0 / n as f64).min(1.0), &mut rng)
        }
        "barabasi-albert" => {
            let costs = random_costs(n, 1, 10, &mut rng);
            barabasi_albert(costs, 2, &mut rng)
        }
        "waxman" => {
            let costs = random_costs(n, 1, 10, &mut rng);
            waxman(costs, WaxmanConfig::default(), &mut rng)
        }
        "hierarchy" => {
            let core = (n / 8).clamp(3, 12);
            hierarchy(
                HierarchyConfig {
                    core_size: core,
                    stub_count: n - core,
                    core_cost: (1, 3),
                    stub_cost: (4, 10),
                },
                &mut rng,
            )
        }
        other => return Err(format!("unknown family '{other}' (see `bgpvcg help`)")),
    };
    Ok(graph)
}

fn run_fig1() -> Result<(), String> {
    let g = fig1();
    let run = protocol::run_sync(&g).map_err(|e| e.to_string())?;
    let reference = vcg::compute(&g).map_err(|e| e.to_string())?;
    assert_eq!(run.outcome, reference);
    println!(
        "Fig. 1: converged in {} stages, {} messages; distributed == centralized VCG.",
        run.report.stages, run.report.messages
    );
    let d = run.outcome.price(Fig1::X, Fig1::Z, Fig1::D).unwrap();
    let b = run.outcome.price(Fig1::X, Fig1::Z, Fig1::B).unwrap();
    let y = run.outcome.price(Fig1::Y, Fig1::Z, Fig1::D).unwrap();
    println!("X->Z: D paid {d} (paper: 3), B paid {b} (paper: 4); Y->Z: D paid {y} (paper: 9).");
    Ok(())
}

fn run_simulate(
    family: &str,
    n: usize,
    seed: u64,
    asynchronous: bool,
    trace: bool,
) -> Result<(), String> {
    let g = build_family(family, n, seed)?;
    println!(
        "{family} topology: {} ASs, {} links (seed {seed}).",
        g.node_count(),
        g.link_count()
    );
    let lcp = AllPairsLcp::compute(&g);
    let avoidance = AvoidanceTable::compute(&g, &lcp);
    let d = diameter::lcp_hop_diameter(&lcp);
    let dprime = diameter::avoiding_hop_diameter(&avoidance);
    println!(
        "d = {d}, d' = {dprime}, convergence bound max(d, d') = {}.",
        d.max(dprime)
    );

    let outcome = if asynchronous {
        let (outcome, report) = protocol::run_async(&g).map_err(|e| e.to_string())?;
        println!(
            "Asynchronous engine: {} messages to quiescence.",
            report.messages
        );
        outcome
    } else if trace {
        let mut engine = protocol::build_sync_engine(&g).map_err(|e| e.to_string())?;
        let report = engine.run_to_convergence_traced(|t| println!("  {t}"));
        println!(
            "Synchronous engine: {} stages, {} messages, {} KiB.",
            report.stages,
            report.messages,
            report.bytes / 1024
        );
        let nodes: Vec<_> = engine.into_nodes();
        protocol::outcome_from_nodes(&nodes).map_err(|e| e.to_string())?
    } else {
        let run = protocol::run_sync(&g).map_err(|e| e.to_string())?;
        println!(
            "Synchronous engine: {} stages, {} messages, {} KiB.",
            run.report.stages,
            run.report.messages,
            run.report.bytes / 1024
        );
        run.outcome
    };
    let reference = vcg::compute(&g).map_err(|e| e.to_string())?;
    assert_eq!(outcome, reference, "protocol must compute the VCG prices");
    println!("Distributed prices verified against the centralized Theorem-1 computation.");

    let traffic = TrafficMatrix::uniform(n, 1);
    let ledger = PaymentLedger::settle(&outcome, &traffic).map_err(|e| e.to_string())?;
    let mut earners: Vec<(AsId, u128)> = g.nodes().map(|k| (k, ledger.payment(k))).collect();
    earners.sort_by_key(|&(_, p)| std::cmp::Reverse(p));
    println!("Top transit earners under uniform traffic:");
    for (k, p) in earners.iter().take(5) {
        println!(
            "  {k}: paid {p} for {} transit packets",
            ledger.packets_carried(*k)
        );
    }
    let report = OverchargeReport::analyze(&outcome);
    let (pay, cost) = report.totals();
    println!(
        "Overcharging: payments {pay} vs true costs {cost} (max pair ratio {:.2}).",
        report.max_ratio().unwrap_or(f64::NAN)
    );
    Ok(())
}

fn run_deviate(family: &str, n: usize, seed: u64, agent: u32, declare: u64) -> Result<(), String> {
    let g = build_family(family, n, seed)?;
    let k = AsId::new(agent);
    if !g.contains_node(k) {
        return Err(format!("agent {agent} out of range (0..{})", n - 1));
    }
    let traffic = TrafficMatrix::uniform(n, 1);
    let dev = strategy::deviate(&g, k, Cost::new(declare), &traffic).map_err(|e| e.to_string())?;
    println!(
        "{k} (true cost {}): truthful utility {} on {} transit packets.",
        g.cost(k),
        dev.truthful.utility,
        dev.truthful.packets_carried
    );
    println!(
        "Declaring {declare}: utility {} on {} transit packets ({}).",
        dev.deviant.utility,
        dev.deviant.packets_carried,
        if dev.profitable() {
            "PROFITABLE — impossible if Theorem 1 holds"
        } else if dev.regret() == 0 {
            "no gain"
        } else {
            "a loss"
        }
    );
    if dev.profitable() {
        return Err("strategyproofness violated — this is a bug".to_string());
    }
    Ok(())
}

fn run_diameters(family: &str, n: usize, seed: u64) -> Result<(), String> {
    let g = build_family(family, n, seed)?;
    let lcp = AllPairsLcp::compute(&g);
    let avoidance = AvoidanceTable::compute(&g, &lcp);
    let d = diameter::lcp_hop_diameter(&lcp);
    let dprime = diameter::avoiding_hop_diameter(&avoidance);
    println!(
        "{family} (n={n}, seed={seed}): d = {d}, d' = {dprime}, max(d, d') = {}",
        d.max(dprime)
    );
    Ok(())
}

fn run_metrics(family: &str, n: usize, seed: u64) -> Result<(), String> {
    use bgp_vcg::netgraph::metrics;
    let g = build_family(family, n, seed)?;
    let stats = metrics::degree_stats(&g);
    println!("{family} (n={n}, seed={seed}): {} links", g.link_count());
    println!(
        "  degrees: min {} / mean {:.1} / max {} (hub dominance {:.1})",
        stats.min, stats.mean, stats.max, stats.hub_dominance
    );
    println!("  stub fraction (degree <= 3): {:.2}", stats.stub_fraction);
    println!(
        "  clustering coefficient: {:.3}",
        metrics::clustering_coefficient(&g)
    );
    println!(
        "  degree assortativity: {:.2}",
        metrics::degree_assortativity(&g)
    );
    Ok(())
}

fn run_audit(family: &str, n: usize, seed: u64) -> Result<(), String> {
    use bgp_vcg::core::audit;
    let g = build_family(family, n, seed)?;
    let mut engine = protocol::build_sync_engine(&g).map_err(|e| e.to_string())?;
    let report = engine.run_to_convergence();
    println!(
        "{family} (n={n}, seed={seed}): pricing protocol converged in {} stages.",
        report.stages
    );
    let nodes: Vec<_> = engine.into_nodes();
    let findings = audit::audit_network(&g, &nodes);
    if findings.is_empty() {
        println!("Audit: every AS's advertisements match a replay of the algorithm (0 findings).");
        Ok(())
    } else {
        for f in &findings {
            println!("  FLAGGED: {f}");
        }
        Err(format!(
            "{} audit findings on a supposedly honest run",
            findings.len()
        ))
    }
}

fn run_dot(family: &str, n: usize, seed: u64, route: Option<(u32, u32)>) -> Result<(), String> {
    let g = build_family(family, n, seed)?;
    let highlight: Vec<AsId> = match route {
        None => Vec::new(),
        Some((i, j)) => {
            let (i, j) = (AsId::new(i), AsId::new(j));
            if !g.contains_node(i) || !g.contains_node(j) {
                return Err("--route names an unknown AS".to_string());
            }
            let tree = bgp_vcg::lcp::shortest_tree(&g, j);
            tree.route(i)
                .map(|r| r.nodes().to_vec())
                .ok_or("no route between the given ASs")?
        }
    };
    print!("{}", bgp_vcg::netgraph::dot::to_dot(&g, &highlight));
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse_command(&args) {
        Ok(c) => c,
        Err(message) => {
            eprintln!("error: {message}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Fig1 => run_fig1(),
        Command::Simulate {
            family,
            nodes,
            seed,
            asynchronous,
            trace,
        } => run_simulate(&family, nodes, seed, asynchronous, trace),
        Command::Deviate {
            family,
            nodes,
            seed,
            agent,
            declare,
        } => run_deviate(&family, nodes, seed, agent, declare),
        Command::Diameters {
            family,
            nodes,
            seed,
        } => run_diameters(&family, nodes, seed),
        Command::Dot {
            family,
            nodes,
            seed,
            route,
        } => run_dot(&family, nodes, seed, route),
        Command::Metrics {
            family,
            nodes,
            seed,
        } => run_metrics(&family, nodes, seed),
        Command::Audit {
            family,
            nodes,
            seed,
        } => run_audit(&family, nodes, seed),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn empty_args_show_help() {
        assert_eq!(parse_command(&[]).unwrap(), Command::Help);
        assert_eq!(parse_command(&strings(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse_command(&strings(&["--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn fig1_parses() {
        assert_eq!(parse_command(&strings(&["fig1"])).unwrap(), Command::Fig1);
        assert!(parse_command(&strings(&["fig1", "extra"])).is_err());
    }

    #[test]
    fn simulate_parses_with_defaults() {
        let cmd =
            parse_command(&strings(&["simulate", "--family", "ring", "--nodes", "16"])).unwrap();
        assert_eq!(
            cmd,
            Command::Simulate {
                family: "ring".into(),
                nodes: 16,
                seed: 1,
                asynchronous: false,
                trace: false
            }
        );
    }

    #[test]
    fn simulate_parses_async_engine() {
        let cmd = parse_command(&strings(&[
            "simulate", "--family", "waxman", "--nodes", "24", "--seed", "9", "--engine", "async",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Simulate {
                family: "waxman".into(),
                nodes: 24,
                seed: 9,
                asynchronous: true,
                trace: false
            }
        );
    }

    #[test]
    fn simulate_rejects_bad_engine() {
        assert!(parse_command(&strings(&[
            "simulate", "--family", "ring", "--nodes", "16", "--engine", "warp",
        ]))
        .is_err());
    }

    #[test]
    fn deviate_requires_agent_and_declare() {
        assert!(
            parse_command(&strings(&["deviate", "--family", "ring", "--nodes", "16"])).is_err()
        );
        let cmd = parse_command(&strings(&[
            "deviate",
            "--family",
            "ring",
            "--nodes",
            "16",
            "--agent",
            "3",
            "--declare",
            "7",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Deviate {
                family: "ring".into(),
                nodes: 16,
                seed: 1,
                agent: 3,
                declare: 7
            }
        );
    }

    #[test]
    fn unknown_command_is_an_error() {
        let err = parse_command(&strings(&["frobnicate"])).unwrap_err();
        assert!(err.contains("frobnicate"));
    }

    #[test]
    fn flags_must_have_values() {
        let err = parse_command(&strings(&["diameters", "--family"])).unwrap_err();
        assert!(err.contains("missing a value"));
    }

    #[test]
    fn non_flag_argument_is_rejected() {
        let err = parse_command(&strings(&["diameters", "family", "ring"])).unwrap_err();
        assert!(err.contains("unexpected argument"));
    }

    #[test]
    fn dot_parses_with_and_without_route() {
        let cmd = parse_command(&strings(&["dot", "--family", "ring", "--nodes", "12"])).unwrap();
        assert_eq!(
            cmd,
            Command::Dot {
                family: "ring".into(),
                nodes: 12,
                seed: 1,
                route: None
            }
        );
        let cmd = parse_command(&strings(&[
            "dot", "--family", "ring", "--nodes", "12", "--route", "0,5",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Dot {
                family: "ring".into(),
                nodes: 12,
                seed: 1,
                route: Some((0, 5))
            }
        );
        assert!(parse_command(&strings(&[
            "dot", "--family", "ring", "--nodes", "12", "--route", "zero,5",
        ]))
        .is_err());
    }

    #[test]
    fn metrics_and_audit_parse() {
        let cmd =
            parse_command(&strings(&["metrics", "--family", "ring", "--nodes", "16"])).unwrap();
        assert_eq!(
            cmd,
            Command::Metrics {
                family: "ring".into(),
                nodes: 16,
                seed: 1
            }
        );
        let cmd = parse_command(&strings(&[
            "audit", "--family", "waxman", "--nodes", "12", "--seed", "4",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Audit {
                family: "waxman".into(),
                nodes: 12,
                seed: 4
            }
        );
        assert!(parse_command(&strings(&["metrics", "--nodes", "16"])).is_err());
    }

    #[test]
    fn build_family_rejects_unknown_and_small() {
        assert!(build_family("nope", 16, 1).is_err());
        assert!(build_family("ring", 4, 1).is_err());
        assert!(build_family("ring", 16, 1).is_ok());
    }

    #[test]
    fn all_cli_families_build() {
        for family in [
            "ring",
            "erdos-renyi",
            "barabasi-albert",
            "waxman",
            "hierarchy",
        ] {
            let g = build_family(family, 16, 2).unwrap();
            assert!(g.is_biconnected(), "{family}");
        }
    }
}
