//! # bgp-vcg — Strategyproof lowest-cost interdomain routing
//!
//! A faithful, production-quality Rust implementation of
//!
//! > Joan Feigenbaum, Christos Papadimitriou, Rahul Sami, Scott Shenker.
//! > *A BGP-based mechanism for lowest-cost routing.* PODC 2002
//! > (journal version: Distributed Computing 18(1), 2005).
//!
//! The paper treats interdomain routing as a game: every Autonomous System
//! (AS) has a private per-packet transit cost, packets should follow
//! lowest-cost paths, and each transit node is paid a VCG price that makes
//! truthful cost declaration a dominant strategy (**Theorem 1**). The
//! paper's key contribution is that these prices can be computed by a
//! *straightforward extension of BGP* — same messages, same neighbors, a
//! constant-factor increase in state — converging in `max(d, d′)`
//! synchronous stages (**Theorem 2**).
//!
//! This crate re-exports the full implementation:
//!
//! * [`netgraph`] — AS graphs, costs, traffic matrices, topology generators.
//! * [`lcp`] — centralized lowest-cost routing, k-avoiding paths, diameters.
//! * [`bgp`] — the abstract BGP substrate: path-vector nodes and both
//!   synchronous-stage and asynchronous channel-driven engines.
//! * [`core`] — the mechanism itself: Theorem-1 pricing, the distributed
//!   price-computation protocol, payment accounting, the strategyproofness
//!   and efficiency-loss harnesses, overcharging analysis, baselines, the
//!   per-neighbor-cost extension (centralized and distributed), the
//!   replay-and-diff computation auditor, and the Theorem-1 uniqueness
//!   probe.
//!
//! The most common entry points are also re-exported at the top level.
//!
//! # Quickstart
//!
//! ```
//! use bgp_vcg::{protocol, vcg};
//! use bgp_vcg::netgraph::generators::structured::{fig1, Fig1};
//! use bgp_vcg::netgraph::Cost;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's Fig. 1 example network.
//! let graph = fig1();
//!
//! // Run the BGP-based distributed mechanism...
//! let run = protocol::run_sync(&graph)?;
//!
//! // ...and check it against the centralized Theorem-1 prices.
//! assert_eq!(run.outcome, vcg::compute(&graph)?);
//!
//! // Sect. 4's worked example: for X→Z traffic, D is paid 3 and B is paid 4.
//! assert_eq!(run.outcome.price(Fig1::X, Fig1::Z, Fig1::D), Some(Cost::new(3)));
//! assert_eq!(run.outcome.price(Fig1::X, Fig1::Z, Fig1::B), Some(Cost::new(4)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use bgpvcg_bgp as bgp;
pub use bgpvcg_core as core;
pub use bgpvcg_lcp as lcp;
pub use bgpvcg_netgraph as netgraph;

pub use bgpvcg_core::{
    accounting, baseline, overcharge, protocol, strategy, vcg, PairOutcome, PricingBgpNode,
    RoutingOutcome,
};
pub use bgpvcg_netgraph::{AsGraph, AsId, Cost, GraphError, TrafficMatrix};
