//! Exact per-packet transit costs.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// A per-packet transit cost, or a path cost (a sum of transit costs).
///
/// The mechanism's arithmetic — VCG prices are sums and differences of
/// declared costs — must be exact for the distributed protocol to agree
/// bit-for-bit with the centralized Theorem-1 computation, so `Cost` wraps an
/// integer rather than a float.
///
/// `Cost` is a lattice with top element [`Cost::INFINITE`]: the distributed
/// price computation initializes every price entry to `∞` and relaxes it
/// monotonically downward (paper, Sect. 6.1), and the uniqueness proof of
/// Theorem 1 sets `c_k = ∞` to zero out a node's traffic. Addition saturates
/// at `∞`, mirroring path costs through an unreachable node.
///
/// # Example
///
/// ```
/// use bgpvcg_netgraph::Cost;
///
/// let a = Cost::new(5);
/// let b = Cost::new(2);
/// assert_eq!(a + b, Cost::new(7));
/// assert_eq!(a + Cost::INFINITE, Cost::INFINITE);
/// assert!(a < Cost::INFINITE);
/// assert_eq!((a + b).checked_sub(a), Some(b));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cost(u64);

/// Sentinel raw value representing an infinite cost.
const INFINITE_RAW: u64 = u64::MAX;

impl Cost {
    /// The zero cost. Endpoints of a route contribute `ZERO` to its cost.
    pub const ZERO: Cost = Cost(0);

    /// The infinite cost: the top of the price lattice, and the cost of any
    /// path through a removed node.
    pub const INFINITE: Cost = Cost(INFINITE_RAW);

    /// Creates a finite cost.
    ///
    /// # Panics
    ///
    /// Panics if `value` equals the reserved infinite sentinel (`u64::MAX`);
    /// use [`Cost::INFINITE`] for infinity.
    pub const fn new(value: u64) -> Self {
        assert!(
            value != INFINITE_RAW,
            "u64::MAX is reserved for Cost::INFINITE"
        );
        Cost(value)
    }

    /// Returns `true` if this is the infinite cost.
    pub const fn is_infinite(self) -> bool {
        self.0 == INFINITE_RAW
    }

    /// Returns `true` if this cost is finite.
    pub const fn is_finite(self) -> bool {
        !self.is_infinite()
    }

    /// Returns the finite value, or `None` if infinite.
    pub const fn finite(self) -> Option<u64> {
        if self.is_infinite() {
            None
        } else {
            Some(self.0)
        }
    }

    /// Subtracts `rhs`, returning `None` on underflow or if either side is
    /// infinite. VCG price formulas only ever subtract an LCP cost from the
    /// (never smaller) cost of a k-avoiding path, so `None` signals a logic
    /// error in the caller rather than a meaningful quantity.
    pub fn checked_sub(self, rhs: Cost) -> Option<Cost> {
        if self.is_infinite() || rhs.is_infinite() {
            return None;
        }
        self.0.checked_sub(rhs.0).map(Cost)
    }

    /// Adds `rhs`, saturating at [`Cost::INFINITE`] (both when either operand
    /// is infinite and on `u64` overflow).
    pub fn saturating_add(self, rhs: Cost) -> Cost {
        if self.is_infinite() || rhs.is_infinite() {
            return Cost::INFINITE;
        }
        match self.0.checked_add(rhs.0) {
            Some(v) if v != INFINITE_RAW => Cost(v),
            _ => Cost::INFINITE,
        }
    }
}

impl Add for Cost {
    type Output = Cost;

    /// Saturating addition: `∞ + x = ∞`.
    fn add(self, rhs: Cost) -> Cost {
        self.saturating_add(rhs)
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        *self = *self + rhs;
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, Add::add)
    }
}

impl From<u32> for Cost {
    fn from(value: u32) -> Self {
        Cost(u64::from(value))
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "∞")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_construction_and_query() {
        let c = Cost::new(17);
        assert!(c.is_finite());
        assert!(!c.is_infinite());
        assert_eq!(c.finite(), Some(17));
    }

    #[test]
    fn infinite_is_infinite() {
        assert!(Cost::INFINITE.is_infinite());
        assert_eq!(Cost::INFINITE.finite(), None);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn new_rejects_sentinel() {
        let _ = Cost::new(u64::MAX);
    }

    #[test]
    fn addition_is_exact_when_finite() {
        assert_eq!(Cost::new(3) + Cost::new(4), Cost::new(7));
        assert_eq!(Cost::ZERO + Cost::new(9), Cost::new(9));
    }

    #[test]
    fn addition_saturates_at_infinity() {
        assert_eq!(Cost::new(1) + Cost::INFINITE, Cost::INFINITE);
        assert_eq!(Cost::INFINITE + Cost::INFINITE, Cost::INFINITE);
        // Overflow also saturates.
        assert_eq!(Cost(u64::MAX - 1) + Cost::new(5), Cost::INFINITE);
    }

    #[test]
    fn checked_sub_behaves() {
        assert_eq!(Cost::new(9).checked_sub(Cost::new(3)), Some(Cost::new(6)));
        assert_eq!(Cost::new(3).checked_sub(Cost::new(9)), None);
        assert_eq!(Cost::INFINITE.checked_sub(Cost::new(1)), None);
        assert_eq!(Cost::new(1).checked_sub(Cost::INFINITE), None);
    }

    #[test]
    fn infinite_dominates_order() {
        assert!(Cost::new(u64::MAX - 1) < Cost::INFINITE);
        assert!(Cost::ZERO < Cost::new(1));
    }

    #[test]
    fn sum_of_costs() {
        let total: Cost = [Cost::new(1), Cost::new(2), Cost::new(3)].into_iter().sum();
        assert_eq!(total, Cost::new(6));
        let with_inf: Cost = [Cost::new(1), Cost::INFINITE].into_iter().sum();
        assert_eq!(with_inf, Cost::INFINITE);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Cost::new(12).to_string(), "12");
        assert_eq!(Cost::INFINITE.to_string(), "∞");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Cost::default(), Cost::ZERO);
    }
}
