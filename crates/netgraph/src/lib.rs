//! AS-graph substrate for the BGP-VCG mechanism.
//!
//! This crate provides the network model of Feigenbaum, Papadimitriou, Sami,
//! and Shenker's *"A BGP-based mechanism for lowest-cost routing"* (PODC
//! 2002): an undirected **AS graph** whose nodes are Autonomous Systems, each
//! with a private per-packet transit cost, plus everything needed to set up
//! experiments on such graphs:
//!
//! * [`AsId`] — a typed AS number.
//! * [`Cost`] — exact (integer) per-packet transit cost with an explicit
//!   [`Cost::INFINITE`] sentinel, so VCG price arithmetic is bit-exact.
//! * [`AsGraph`] — the biconnectivity-checkable topology + declared costs.
//! * [`TrafficMatrix`] — packet intensities `T_ij` used by payment
//!   accounting.
//! * [`generators`] — Internet-like synthetic topologies (Barabási–Albert,
//!   Waxman, Erdős–Rényi, two-tier ISP hierarchy) and structured graphs,
//!   including the paper's Fig. 1 example.
//!
//! # Example
//!
//! ```
//! use bgpvcg_netgraph::{AsGraph, AsId, Cost};
//!
//! # fn main() -> Result<(), bgpvcg_netgraph::GraphError> {
//! let mut g = AsGraph::builder();
//! let a = g.add_node(Cost::new(5));
//! let b = g.add_node(Cost::new(2));
//! let c = g.add_node(Cost::new(1));
//! g.add_link(a, b)?;
//! g.add_link(b, c)?;
//! g.add_link(c, a)?;
//! let graph = g.build();
//! assert!(graph.is_biconnected());
//! assert_eq!(graph.cost(b), Cost::new(2));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod biconnectivity;
mod cost;
mod error;
mod graph;
mod id;
mod traffic;

pub mod dot;
pub mod generators;
pub mod metrics;

pub use cost::Cost;
pub use error::GraphError;
pub use graph::{AsGraph, AsGraphBuilder, Link};
pub use id::AsId;
pub use traffic::TrafficMatrix;
