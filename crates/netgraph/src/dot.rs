//! Graphviz DOT export for AS graphs.
//!
//! Purely a developer/paper-figure convenience: `dot -Tsvg` on the output
//! renders topology diagrams like the paper's Fig. 1.

use crate::graph::AsGraph;
use std::fmt::Write as _;

/// Renders the graph in Graphviz DOT syntax. Nodes are labelled
/// `AS<k>\nc=<cost>`; an optional `highlight` path (a node sequence) is
/// drawn in bold.
///
/// # Example
///
/// ```
/// use bgpvcg_netgraph::generators::structured::fig1;
/// use bgpvcg_netgraph::dot::to_dot;
///
/// let dot = to_dot(&fig1(), &[]);
/// assert!(dot.starts_with("graph as_graph {"));
/// assert!(dot.contains("AS0"));
/// ```
pub fn to_dot(graph: &AsGraph, highlight: &[crate::AsId]) -> String {
    let mut out = String::from("graph as_graph {\n");
    let _ = writeln!(out, "  layout=neato;");
    let _ = writeln!(out, "  node [shape=circle, fontsize=10];");
    for k in graph.nodes() {
        let emphasized = highlight.contains(&k);
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\\nc={}\"{}];",
            k.raw(),
            k,
            graph.cost(k),
            if emphasized { ", penwidth=2.5" } else { "" }
        );
    }
    for link in graph.links() {
        let on_path = highlight.windows(2).any(|w| {
            (w[0] == link.a() && w[1] == link.b()) || (w[0] == link.b() && w[1] == link.a())
        });
        let _ = writeln!(
            out,
            "  n{} -- n{}{};",
            link.a().raw(),
            link.b().raw(),
            if on_path { " [penwidth=2.5]" } else { "" }
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::structured::{fig1, Fig1};

    #[test]
    fn dot_lists_all_nodes_and_links() {
        let g = fig1();
        let dot = to_dot(&g, &[]);
        for k in g.nodes() {
            assert!(dot.contains(&format!("n{} [label=\"{k}", k.raw())));
        }
        assert_eq!(dot.matches(" -- ").count(), g.link_count());
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn highlight_emphasizes_path_nodes_and_links() {
        let g = fig1();
        let path = [Fig1::X, Fig1::B, Fig1::D, Fig1::Z];
        let dot = to_dot(&g, &path);
        // 4 bold nodes + 3 bold links.
        assert_eq!(dot.matches("penwidth=2.5").count(), 7);
    }

    #[test]
    fn empty_graph_renders() {
        let g = crate::AsGraph::builder().build();
        let dot = to_dot(&g, &[]);
        assert!(dot.starts_with("graph as_graph {"));
        assert!(dot.ends_with("}\n"));
    }
}
