//! Topology metrics: are the synthetic graphs actually Internet-like?
//!
//! The reproduction substitutes synthetic families for the proprietary AS
//! graph (DESIGN.md, "Substitutions"). The substitution's justification is
//! structural — power-law-ish degree distributions, small diameters, low
//! per-node degree for stubs — and this module computes the numbers that
//! back it: degree statistics, clustering, and degree assortativity.
//! Experiment E16 reports them per family.

use crate::graph::AsGraph;
use crate::id::AsId;

/// Degree statistics of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Mean degree (`2|L| / n`).
    pub mean: f64,
    /// Maximum degree.
    pub max: usize,
    /// Ratio `max / mean`: large values indicate hubs (heavy tails).
    pub hub_dominance: f64,
    /// Fraction of nodes with degree at most 3 (stub-like nodes).
    pub stub_fraction: f64,
}

/// Computes degree statistics.
///
/// # Panics
///
/// Panics on an empty graph.
///
/// # Example
///
/// ```
/// use bgpvcg_netgraph::generators::structured::ring;
/// use bgpvcg_netgraph::metrics::degree_stats;
/// use bgpvcg_netgraph::Cost;
///
/// let stats = degree_stats(&ring(10, Cost::new(1)));
/// assert_eq!((stats.min, stats.max), (2, 2));
/// assert_eq!(stats.mean, 2.0);
/// ```
pub fn degree_stats(graph: &AsGraph) -> DegreeStats {
    assert!(graph.node_count() > 0, "empty graph has no degrees");
    let degrees: Vec<usize> = graph.nodes().map(|k| graph.degree(k)).collect();
    let min = *degrees.iter().min().expect("non-empty");
    let max = *degrees.iter().max().expect("non-empty");
    let mean = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
    let stubs = degrees.iter().filter(|&&d| d <= 3).count();
    DegreeStats {
        min,
        mean,
        max,
        hub_dominance: max as f64 / mean,
        stub_fraction: stubs as f64 / degrees.len() as f64,
    }
}

/// The global clustering coefficient: `3 × triangles / connected triples`.
/// Real AS graphs cluster noticeably; pure random graphs of the same
/// density barely do.
///
/// Returns 0.0 when the graph has no connected triple.
pub fn clustering_coefficient(graph: &AsGraph) -> f64 {
    let mut triangles = 0usize;
    let mut triples = 0usize;
    for v in graph.nodes() {
        let neighbors = graph.neighbors(v);
        let d = neighbors.len();
        if d < 2 {
            continue;
        }
        triples += d * (d - 1) / 2;
        for (idx, &a) in neighbors.iter().enumerate() {
            for &b in &neighbors[idx + 1..] {
                if graph.has_link(a, b) {
                    triangles += 1;
                }
            }
        }
    }
    if triples == 0 {
        0.0
    } else {
        // Each triangle is counted once per corner = 3 times.
        triangles as f64 / triples as f64
    }
}

/// Degree assortativity (Pearson correlation of degrees across link
/// endpoints). The measured AS graph is strongly *disassortative*
/// (hubs attach to stubs): values well below zero.
///
/// Returns 0.0 for graphs with no links or zero degree variance.
pub fn degree_assortativity(graph: &AsGraph) -> f64 {
    let links = graph.links();
    if links.is_empty() {
        return 0.0;
    }
    let deg = |k: AsId| graph.degree(k) as f64;
    let m = links.len() as f64;
    let (mut sum_xy, mut sum_x, mut sum_y, mut sum_x2, mut sum_y2) = (0.0, 0.0, 0.0, 0.0, 0.0);
    // Treat each undirected link as two directed stubs for symmetry.
    for link in links {
        for (x, y) in [(link.a(), link.b()), (link.b(), link.a())] {
            let (dx, dy) = (deg(x), deg(y));
            sum_xy += dx * dy;
            sum_x += dx;
            sum_y += dy;
            sum_x2 += dx * dx;
            sum_y2 += dy * dy;
        }
    }
    let n = 2.0 * m;
    let cov = sum_xy / n - (sum_x / n) * (sum_y / n);
    let var_x = sum_x2 / n - (sum_x / n) * (sum_x / n);
    let var_y = sum_y2 / n - (sum_y / n) * (sum_y / n);
    let denom = (var_x * var_y).sqrt();
    if denom == 0.0 {
        0.0
    } else {
        cov / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::structured::{complete, ring, wheel};
    use crate::generators::{barabasi_albert, erdos_renyi, random_costs};
    use crate::Cost;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ring_is_perfectly_regular() {
        let g = ring(12, Cost::new(1));
        let stats = degree_stats(&g);
        assert_eq!(stats.min, 2);
        assert_eq!(stats.max, 2);
        assert_eq!(stats.hub_dominance, 1.0);
        assert_eq!(stats.stub_fraction, 1.0);
        assert_eq!(clustering_coefficient(&g), 0.0, "rings have no triangles");
        assert_eq!(degree_assortativity(&g), 0.0, "no degree variance");
    }

    #[test]
    fn complete_graph_fully_clusters() {
        let g = complete(6, Cost::new(1));
        assert!((clustering_coefficient(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn barabasi_albert_grows_hubs_erdos_renyi_does_not() {
        let mut rng = StdRng::seed_from_u64(1);
        let ba = barabasi_albert(random_costs(200, 1, 5, &mut rng), 2, &mut rng);
        let er = erdos_renyi(random_costs(200, 1, 5, &mut rng), 4.0 / 200.0, &mut rng);
        let ba_stats = degree_stats(&ba);
        let er_stats = degree_stats(&er);
        assert!(
            ba_stats.hub_dominance > 2.0 * er_stats.hub_dominance,
            "BA hubs {:.1} vs ER {:.1}",
            ba_stats.hub_dominance,
            er_stats.hub_dominance
        );
        assert!(ba_stats.stub_fraction > 0.6, "most BA nodes are stubs");
    }

    #[test]
    fn wheel_is_disassortative() {
        // The hub (high degree) attaches only to low-degree rim nodes.
        let g = wheel(20, Cost::ZERO, Cost::new(5));
        assert!(degree_assortativity(&g) < -0.2);
    }

    #[test]
    fn barabasi_albert_is_disassortative_like_the_as_graph() {
        let mut rng = StdRng::seed_from_u64(2);
        let ba = barabasi_albert(random_costs(300, 1, 5, &mut rng), 2, &mut rng);
        assert!(
            degree_assortativity(&ba) < 0.0,
            "preferential attachment yields hub-to-stub mixing"
        );
    }

    #[test]
    #[should_panic(expected = "empty graph")]
    fn degree_stats_rejects_empty() {
        let g = crate::AsGraph::builder().build();
        let _ = degree_stats(&g);
    }
}
