//! Two-tier ISP hierarchy topologies.

use super::make_biconnected;
use crate::cost::Cost;
use crate::graph::{AsGraph, AsGraphBuilder};
use crate::id::AsId;
use rand::distributions::{Distribution, Uniform};
use rand::Rng;

/// Parameters for [`hierarchy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Number of tier-1 (transit core) ASs; they form a full mesh. Must be
    /// at least 3.
    pub core_size: usize,
    /// Number of stub (edge) ASs; each multi-homes to two distinct core ASs.
    pub stub_count: usize,
    /// Inclusive range of core transit costs (core ASs are typically
    /// high-capacity and cheap per packet).
    pub core_cost: (u64, u64),
    /// Inclusive range of stub transit costs.
    pub stub_cost: (u64, u64),
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            core_size: 5,
            stub_count: 20,
            core_cost: (1, 3),
            stub_cost: (4, 10),
        }
    }
}

/// Builds a two-tier ISP hierarchy: a full-mesh transit core plus
/// multi-homed stubs.
///
/// This is the textbook cartoon of interdomain structure and the second
/// Internet-like family (besides Barabási–Albert) used by the `d′/d`
/// experiment. Every stub connects to two distinct core nodes, so the graph
/// is biconnected by construction (the call to [`make_biconnected`] is a
/// belt-and-braces no-op).
///
/// Node numbering: core ASs are `AS0 .. AS(core_size-1)`, stubs follow.
///
/// # Panics
///
/// Panics if `core_size < 3` or a cost range is inverted or touches
/// `u64::MAX`.
///
/// # Example
///
/// ```
/// use bgpvcg_netgraph::generators::{hierarchy, HierarchyConfig};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let g = hierarchy(HierarchyConfig::default(), &mut rng);
/// assert!(g.is_biconnected());
/// assert_eq!(g.node_count(), 25);
/// ```
pub fn hierarchy<R: Rng + ?Sized>(config: HierarchyConfig, rng: &mut R) -> AsGraph {
    assert!(config.core_size >= 3, "core must have at least 3 ASs");
    for (lo, hi) in [config.core_cost, config.stub_cost] {
        assert!(lo <= hi, "cost range inverted");
        assert!(hi < u64::MAX, "cost range must be finite");
    }
    let core_dist = Uniform::new_inclusive(config.core_cost.0, config.core_cost.1);
    let stub_dist = Uniform::new_inclusive(config.stub_cost.0, config.stub_cost.1);

    let mut b = AsGraphBuilder::new();
    for _ in 0..config.core_size {
        b.add_node(Cost::new(core_dist.sample(rng)));
    }
    for _ in 0..config.stub_count {
        b.add_node(Cost::new(stub_dist.sample(rng)));
    }

    // Full mesh among the core.
    for a in 0..config.core_size as u32 {
        for c in (a + 1)..config.core_size as u32 {
            b.add_link(AsId::new(a), AsId::new(c)).expect("core mesh");
        }
    }

    // Each stub multi-homes to two distinct core providers.
    for s in 0..config.stub_count {
        let stub = AsId::new((config.core_size + s) as u32);
        let first = rng.gen_range(0..config.core_size);
        let mut second = rng.gen_range(0..config.core_size - 1);
        if second >= first {
            second += 1;
        }
        b.add_link(stub, AsId::new(first as u32)).expect("homing");
        b.add_link(stub, AsId::new(second as u32)).expect("homing");
    }

    make_biconnected(b.build(), rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shape_matches_config() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = HierarchyConfig {
            core_size: 4,
            stub_count: 10,
            core_cost: (1, 1),
            stub_cost: (5, 5),
        };
        let g = hierarchy(cfg, &mut rng);
        assert_eq!(g.node_count(), 14);
        // core mesh 6 links + 2 per stub.
        assert_eq!(g.link_count(), 6 + 20);
        for c in 0..4u32 {
            assert_eq!(g.cost(AsId::new(c)), Cost::new(1));
        }
        for s in 4..14u32 {
            assert_eq!(g.cost(AsId::new(s)), Cost::new(5));
            assert_eq!(g.degree(AsId::new(s)), 2, "stubs are dual-homed");
        }
    }

    #[test]
    fn result_is_biconnected() {
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = hierarchy(HierarchyConfig::default(), &mut rng);
            assert!(g.is_biconnected(), "seed {seed}");
        }
    }

    #[test]
    fn stubs_never_peer_with_stubs() {
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = HierarchyConfig::default();
        let g = hierarchy(cfg, &mut rng);
        for s in cfg.core_size..g.node_count() {
            for &nb in g.neighbors(AsId::new(s as u32)) {
                assert!(nb.index() < cfg.core_size, "stub {s} peers with stub {nb}");
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = HierarchyConfig::default();
        let g1 = hierarchy(cfg, &mut StdRng::seed_from_u64(2));
        let g2 = hierarchy(cfg, &mut StdRng::seed_from_u64(2));
        assert_eq!(g1, g2);
    }

    #[test]
    #[should_panic(expected = "core")]
    fn rejects_tiny_core() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = hierarchy(
            HierarchyConfig {
                core_size: 2,
                ..HierarchyConfig::default()
            },
            &mut rng,
        );
    }
}
