//! Waxman geographic random graphs.

use super::make_biconnected;
use crate::cost::Cost;
use crate::graph::{AsGraph, AsGraphBuilder};
use crate::id::AsId;
use rand::Rng;

/// Parameters of the Waxman model.
///
/// Nodes are placed uniformly in the unit square; a link between nodes at
/// distance `d` appears with probability `alpha · exp(−d / (beta · L))`,
/// where `L = √2` is the maximal distance. Higher `alpha` gives denser
/// graphs; higher `beta` gives more long links.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaxmanConfig {
    /// Overall link density, in `(0, 1]`.
    pub alpha: f64,
    /// Distance decay, in `(0, 1]`.
    pub beta: f64,
}

impl Default for WaxmanConfig {
    /// The classic parameterization `alpha = 0.4`, `beta = 0.2`.
    fn default() -> Self {
        WaxmanConfig {
            alpha: 0.4,
            beta: 0.2,
        }
    }
}

/// Samples a Waxman graph over the given cost vector and augments it to be
/// biconnected.
///
/// The Waxman model was the workhorse of 1990s Internet topology generators;
/// it produces geographically clustered sparse graphs whose LCP diameters
/// grow faster than Barabási–Albert graphs, giving the convergence
/// experiments a contrasting family.
///
/// # Panics
///
/// Panics if `costs.len() < 3` or the config parameters are outside
/// `(0, 1]`.
///
/// # Example
///
/// ```
/// use bgpvcg_netgraph::generators::{waxman, WaxmanConfig, random_costs};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let costs = random_costs(25, 1, 8, &mut rng);
/// let g = waxman(costs, WaxmanConfig::default(), &mut rng);
/// assert!(g.is_biconnected());
/// ```
pub fn waxman<R: Rng + ?Sized>(costs: Vec<Cost>, config: WaxmanConfig, rng: &mut R) -> AsGraph {
    assert!(costs.len() >= 3, "need at least 3 nodes");
    assert!(
        config.alpha > 0.0 && config.alpha <= 1.0,
        "alpha must be in (0, 1]"
    );
    assert!(
        config.beta > 0.0 && config.beta <= 1.0,
        "beta must be in (0, 1]"
    );
    let n = costs.len();
    let positions: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let max_dist = std::f64::consts::SQRT_2;

    let mut b = AsGraphBuilder::new();
    b.add_nodes(costs);
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = positions[i].0 - positions[j].0;
            let dy = positions[i].1 - positions[j].1;
            let dist = (dx * dx + dy * dy).sqrt();
            let p = config.alpha * (-dist / (config.beta * max_dist)).exp();
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                b.add_link(AsId::new(i as u32), AsId::new(j as u32))
                    .expect("pairs visited once");
            }
        }
    }
    make_biconnected(b.build(), rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn result_is_biconnected() {
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = waxman(vec![Cost::new(1); 30], WaxmanConfig::default(), &mut rng);
            assert!(g.is_biconnected(), "seed {seed}");
        }
    }

    #[test]
    fn alpha_controls_density() {
        let sparse = waxman(
            vec![Cost::new(1); 60],
            WaxmanConfig {
                alpha: 0.05,
                beta: 0.2,
            },
            &mut StdRng::seed_from_u64(11),
        );
        let dense = waxman(
            vec![Cost::new(1); 60],
            WaxmanConfig {
                alpha: 0.9,
                beta: 0.9,
            },
            &mut StdRng::seed_from_u64(11),
        );
        assert!(dense.link_count() > sparse.link_count() * 2);
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = WaxmanConfig::default();
        let g1 = waxman(vec![Cost::new(1); 20], cfg, &mut StdRng::seed_from_u64(4));
        let g2 = waxman(vec![Cost::new(1); 20], cfg, &mut StdRng::seed_from_u64(4));
        assert_eq!(g1, g2);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = waxman(
            vec![Cost::ZERO; 5],
            WaxmanConfig {
                alpha: 0.0,
                beta: 0.5,
            },
            &mut rng,
        );
    }
}
