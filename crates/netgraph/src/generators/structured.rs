//! Deterministic structured topologies, including the paper's Fig. 1.

use super::from_edges;
use crate::cost::Cost;
use crate::graph::AsGraph;
use crate::id::AsId;

/// Node labels for [`fig1`], the paper's Sect. 4 worked example.
///
/// The AS numbers are fixed so tests and experiments can refer to the nodes
/// by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig1;

impl Fig1 {
    /// Node `X` (cost 2), a traffic source in the worked example.
    pub const X: AsId = AsId::new(0);
    /// Node `A` (cost 5), on the D-avoiding path `X A Z`.
    pub const A: AsId = AsId::new(1);
    /// Node `Z` (cost 4), the destination in the worked example.
    pub const Z: AsId = AsId::new(2);
    /// Node `D` (cost 1), the transit node paid 3 for `X→Z` and 9 for `Y→Z`.
    pub const D: AsId = AsId::new(3);
    /// Node `B` (cost 2), the transit node paid 4 for `X→Z`.
    pub const B: AsId = AsId::new(4);
    /// Node `Y` (cost 3), the source of the overcharging example.
    pub const Y: AsId = AsId::new(5);
}

/// The 6-node AS graph of the paper's Fig. 1.
///
/// Costs: `c_X = 2, c_A = 5, c_Z = 4, c_D = 1, c_B = 2, c_Y = 3`. Links:
/// `X–A, A–Z, X–B, B–D, D–Z, D–Y, B–Y`. The LCP from `X` to `Z` is
/// `X B D Z` (transit cost 3) and the lowest-cost D-avoiding path is
/// `X A Z` (transit cost 5), giving the payments computed in Sect. 4.
///
/// # Example
///
/// ```
/// use bgpvcg_netgraph::generators::structured::{fig1, Fig1};
///
/// let g = fig1();
/// assert!(g.is_biconnected());
/// assert_eq!(g.cost(Fig1::D).finite(), Some(1));
/// ```
pub fn fig1() -> AsGraph {
    from_edges(
        vec![
            Cost::new(2), // X
            Cost::new(5), // A
            Cost::new(4), // Z
            Cost::new(1), // D
            Cost::new(2), // B
            Cost::new(3), // Y
        ],
        &[
            (0, 1), // X–A
            (1, 2), // A–Z
            (0, 4), // X–B
            (4, 3), // B–D
            (3, 2), // D–Z
            (3, 5), // D–Y
            (4, 5), // B–Y
        ],
    )
}

/// A cycle on `n ≥ 3` nodes, all with the same cost. The smallest
/// biconnected family; `d` grows linearly, which stresses convergence-stage
/// experiments.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring(n: usize, cost: Cost) -> AsGraph {
    assert!(n >= 3, "a ring needs at least 3 nodes");
    let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
    from_edges(vec![cost; n], &edges)
}

/// The complete graph `K_n` on `n ≥ 3` nodes with uniform cost: diameter 1,
/// every 2-hop route available, maximal route churn.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn complete(n: usize, cost: Cost) -> AsGraph {
    assert!(n >= 3, "a complete graph needs at least 3 nodes here");
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for a in 0..n as u32 {
        for b in (a + 1)..n as u32 {
            edges.push((a, b));
        }
    }
    from_edges(vec![cost; n], &edges)
}

/// An `rows × cols` grid with wrap-around in both dimensions (a torus), so
/// the result is biconnected even for a single row or column pair.
///
/// # Panics
///
/// Panics if `rows * cols < 3` or either dimension is smaller than 3 (a
/// 2-wide torus would create duplicate links).
pub fn torus(rows: usize, cols: usize, cost: Cost) -> AsGraph {
    assert!(rows >= 3 && cols >= 3, "torus needs both dimensions >= 3");
    let n = rows * cols;
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            edges.push((id(r, c), id(r, (c + 1) % cols)));
            edges.push((id(r, c), id((r + 1) % rows, c)));
        }
    }
    from_edges(vec![cost; n], &edges)
}

/// A wheel: a hub (node 0, cost `hub_cost`) connected to every node of an
/// `n−1`-cycle (cost `rim_cost`). The hub is a cheap transit magnet, useful
/// for overcharging experiments: rim-to-rim LCPs go through the hub while
/// the k-avoiding alternative crawls around the rim.
///
/// # Panics
///
/// Panics if `n < 4`.
pub fn wheel(n: usize, hub_cost: Cost, rim_cost: Cost) -> AsGraph {
    assert!(n >= 4, "a wheel needs at least 4 nodes");
    let rim = n - 1;
    let mut edges = Vec::new();
    for i in 0..rim as u32 {
        edges.push((i + 1, (i + 1) % rim as u32 + 1)); // rim cycle
        edges.push((0, i + 1)); // spokes
    }
    let mut costs = vec![rim_cost; n];
    costs[0] = hub_cost;
    from_edges(costs, &edges)
}

/// A "theta" graph: two hub nodes joined by three disjoint paths — a short
/// primary (`short` interior nodes, cheap), a short backup (`short`
/// interior nodes, slightly dearer), and a long detour (`long` interior
/// nodes, dearest).
///
/// Pricing a node on the short paths for hub-to-hub traffic can force the
/// k-avoiding path the long way around, so `d′` tracks `long` — but note
/// the *all-pairs* LCP diameter `d` also grows with `long` (pairs interior
/// to the detour), so `d′/d` approaches 2 like a ring. For the truly
/// unbounded `d′/d` construction use [`wheel`]: removing its free hub
/// forces rim crawls while `d` stays 2.
///
/// Node numbering: hubs are `AS0` and `AS1`; then the primary path's
/// interior, the backup's, the detour's.
///
/// # Panics
///
/// Panics if `short == 0` or `long == 0`.
pub fn theta(short: usize, long: usize, base_cost: Cost) -> AsGraph {
    assert!(short > 0 && long > 0, "paths need interior nodes");
    let scaled =
        |factor: u64| Cost::new(base_cost.finite().expect("finite base cost") * factor + factor);
    let mut costs = vec![Cost::ZERO, Cost::ZERO]; // free hubs
    costs.extend(std::iter::repeat_n(scaled(1), short)); // primary
    costs.extend(std::iter::repeat_n(scaled(2), short)); // backup
    costs.extend(std::iter::repeat_n(scaled(3), long)); // detour
    let mut edges = Vec::new();
    let mut offset = 2u32;
    for len in [short, short, long] {
        edges.push((0, offset));
        for i in 0..(len as u32 - 1) {
            edges.push((offset + i, offset + i + 1));
        }
        edges.push((offset + len as u32 - 1, 1));
        offset += len as u32;
    }
    from_edges(costs, &edges)
}

/// The `dim`-dimensional hypercube (`2^dim` nodes, `dim`-regular) with
/// uniform cost: logarithmic diameter and exponentially many disjoint
/// paths, the opposite extreme from the ring for convergence and
/// overcharging experiments.
///
/// # Panics
///
/// Panics if `dim < 2` (lower dimensions are not biconnected).
pub fn hypercube(dim: u32, cost: Cost) -> AsGraph {
    assert!(dim >= 2, "hypercube needs dimension >= 2");
    let n = 1u32 << dim;
    let mut edges = Vec::new();
    for v in 0..n {
        for bit in 0..dim {
            let w = v ^ (1 << bit);
            if v < w {
                edges.push((v, w));
            }
        }
    }
    from_edges(vec![cost; n as usize], &edges)
}

/// The Petersen graph (10 nodes, 15 links, 3-regular, girth 5) with uniform
/// cost: a classic worst-case-ish sparse biconnected graph.
pub fn petersen(cost: Cost) -> AsGraph {
    from_edges(
        vec![cost; 10],
        &[
            // outer 5-cycle
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 0),
            // spokes
            (0, 5),
            (1, 6),
            (2, 7),
            (3, 8),
            (4, 9),
            // inner pentagram
            (5, 7),
            (7, 9),
            (9, 6),
            (6, 8),
            (8, 5),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_matches_paper() {
        let g = fig1();
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.link_count(), 7);
        assert_eq!(g.cost(Fig1::X), Cost::new(2));
        assert_eq!(g.cost(Fig1::A), Cost::new(5));
        assert_eq!(g.cost(Fig1::Z), Cost::new(4));
        assert_eq!(g.cost(Fig1::D), Cost::new(1));
        assert_eq!(g.cost(Fig1::B), Cost::new(2));
        assert_eq!(g.cost(Fig1::Y), Cost::new(3));
        assert!(g.has_link(Fig1::X, Fig1::A));
        assert!(g.has_link(Fig1::A, Fig1::Z));
        assert!(g.has_link(Fig1::X, Fig1::B));
        assert!(g.has_link(Fig1::B, Fig1::D));
        assert!(g.has_link(Fig1::D, Fig1::Z));
        assert!(g.has_link(Fig1::D, Fig1::Y));
        assert!(g.has_link(Fig1::B, Fig1::Y));
        assert!(!g.has_link(Fig1::X, Fig1::Z), "no direct X-Z link");
        assert!(g.is_biconnected());
    }

    #[test]
    fn ring_shape() {
        let g = ring(5, Cost::new(2));
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.link_count(), 5);
        for k in g.nodes() {
            assert_eq!(g.degree(k), 2);
        }
        assert!(g.is_biconnected());
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn ring_too_small() {
        let _ = ring(2, Cost::ZERO);
    }

    #[test]
    fn complete_shape() {
        let g = complete(5, Cost::new(1));
        assert_eq!(g.link_count(), 10);
        for k in g.nodes() {
            assert_eq!(g.degree(k), 4);
        }
        assert!(g.is_biconnected());
    }

    #[test]
    fn torus_shape() {
        let g = torus(3, 4, Cost::new(1));
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.link_count(), 24); // 2 links per node on a torus
        for k in g.nodes() {
            assert_eq!(g.degree(k), 4);
        }
        assert!(g.is_biconnected());
    }

    #[test]
    fn wheel_shape() {
        let g = wheel(6, Cost::ZERO, Cost::new(5));
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.degree(AsId::new(0)), 5, "hub touches all rim nodes");
        for i in 1..6u32 {
            assert_eq!(g.degree(AsId::new(i)), 3, "rim: 2 rim links + 1 spoke");
        }
        assert!(g.is_biconnected());
        assert_eq!(g.cost(AsId::new(0)), Cost::ZERO);
        assert_eq!(g.cost(AsId::new(3)), Cost::new(5));
    }

    #[test]
    fn theta_shape() {
        let g = theta(2, 6, Cost::new(1));
        assert_eq!(g.node_count(), 2 + 2 + 2 + 6);
        assert!(g.is_biconnected());
        // Hubs are free; paths are increasingly expensive.
        assert_eq!(g.cost(AsId::new(0)), Cost::ZERO);
        assert_eq!(g.cost(AsId::new(2)), Cost::new(2)); // primary: 1*1+1
        assert_eq!(g.cost(AsId::new(4)), Cost::new(4)); // backup: 1*2+2
        assert_eq!(g.cost(AsId::new(6)), Cost::new(6)); // detour: 1*3+3
                                                        // Hub degrees: one link per path.
        assert_eq!(g.degree(AsId::new(0)), 3);
        assert_eq!(g.degree(AsId::new(1)), 3);
    }

    #[test]
    #[should_panic(expected = "interior")]
    fn theta_rejects_empty_paths() {
        let _ = theta(0, 5, Cost::new(1));
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(3, Cost::new(1));
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.link_count(), 12);
        for k in g.nodes() {
            assert_eq!(g.degree(k), 3);
        }
        assert!(g.is_biconnected());
        // Antipodal nodes differ in all bits: 0 and 7 are not adjacent.
        assert!(!g.has_link(AsId::new(0), AsId::new(7)));
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn hypercube_rejects_dim_one() {
        let _ = hypercube(1, Cost::ZERO);
    }

    #[test]
    fn petersen_shape() {
        let g = petersen(Cost::new(1));
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.link_count(), 15);
        for k in g.nodes() {
            assert_eq!(g.degree(k), 3);
        }
        assert!(g.is_biconnected());
    }
}
