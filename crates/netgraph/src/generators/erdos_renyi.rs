//! Erdős–Rényi `G(n, p)` random graphs.

use super::make_biconnected;
use crate::cost::Cost;
use crate::graph::{AsGraph, AsGraphBuilder};
use crate::id::AsId;
use rand::Rng;

/// Samples a `G(n, p)` graph with the given declared costs, then augments it
/// to be biconnected (the mechanism's precondition) with
/// [`make_biconnected`].
///
/// Every unordered node pair receives a link independently with probability
/// `p`. With `p` above the connectivity threshold `ln n / n` the augmentation
/// rarely needs to add anything.
///
/// # Panics
///
/// Panics if `costs.len() < 3` or `p` is not in `[0, 1]`.
///
/// # Example
///
/// ```
/// use bgpvcg_netgraph::generators::{erdos_renyi, random_costs};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(42);
/// let costs = random_costs(20, 1, 10, &mut rng);
/// let g = erdos_renyi(costs, 0.2, &mut rng);
/// assert!(g.is_biconnected());
/// ```
pub fn erdos_renyi<R: Rng + ?Sized>(costs: Vec<Cost>, p: f64, rng: &mut R) -> AsGraph {
    assert!(costs.len() >= 3, "need at least 3 nodes");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let n = costs.len();
    let mut b = AsGraphBuilder::new();
    b.add_nodes(costs);
    for a in 0..n as u32 {
        for c in (a + 1)..n as u32 {
            if rng.gen_bool(p) {
                b.add_link(AsId::new(a), AsId::new(c))
                    .expect("pairs visited once");
            }
        }
    }
    make_biconnected(b.build(), rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn result_is_biconnected_even_with_p_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = erdos_renyi(vec![Cost::new(1); 10], 0.0, &mut rng);
        assert!(g.is_biconnected());
    }

    #[test]
    fn p_one_gives_complete_graph() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = erdos_renyi(vec![Cost::new(1); 6], 1.0, &mut rng);
        assert_eq!(g.link_count(), 15);
    }

    #[test]
    fn density_tracks_p() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 40;
        let g = erdos_renyi(vec![Cost::new(1); n], 0.5, &mut rng);
        let max_links = n * (n - 1) / 2;
        let density = g.link_count() as f64 / max_links as f64;
        assert!(
            (0.4..=0.6).contains(&density),
            "density {density} far from 0.5"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let g1 = erdos_renyi(vec![Cost::new(2); 15], 0.3, &mut StdRng::seed_from_u64(9));
        let g2 = erdos_renyi(vec![Cost::new(2); 15], 0.3, &mut StdRng::seed_from_u64(9));
        assert_eq!(g1, g2);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = erdos_renyi(vec![Cost::ZERO; 5], 1.5, &mut rng);
    }
}
