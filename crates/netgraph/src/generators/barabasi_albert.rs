//! Barabási–Albert preferential-attachment graphs.

use super::make_biconnected;
use crate::cost::Cost;
use crate::graph::{AsGraph, AsGraphBuilder};
use crate::id::AsId;
use rand::Rng;

/// Samples a Barabási–Albert preferential-attachment graph: new nodes attach
/// `m ≥ 2` links to existing nodes with probability proportional to degree.
///
/// The measured AS graph has a power-law degree distribution and a small,
/// slowly growing diameter; BA graphs are the standard synthetic stand-in,
/// which is why experiment E7 (the paper's "d′ is not much larger than d on
/// the current AS graph" remark) runs on this family. With `m ≥ 2` the
/// result is almost always biconnected already; [`make_biconnected`]
/// guarantees it.
///
/// # Panics
///
/// Panics if `costs.len() < m + 1` or `m < 2`.
///
/// # Example
///
/// ```
/// use bgpvcg_netgraph::generators::{barabasi_albert, random_costs};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let costs = random_costs(30, 1, 10, &mut rng);
/// let g = barabasi_albert(costs, 2, &mut rng);
/// assert!(g.is_biconnected());
/// ```
pub fn barabasi_albert<R: Rng + ?Sized>(costs: Vec<Cost>, m: usize, rng: &mut R) -> AsGraph {
    let n = costs.len();
    assert!(m >= 2, "m must be at least 2 for biconnectivity");
    assert!(n > m, "need more nodes than the attachment count");

    let mut b = AsGraphBuilder::new();
    b.add_nodes(costs);

    // Seed clique on the first m+1 nodes.
    for a in 0..=(m as u32) {
        for c in (a + 1)..=(m as u32) {
            b.add_link(AsId::new(a), AsId::new(c)).expect("seed clique");
        }
    }

    // `targets` holds one entry per link endpoint, so uniform sampling from
    // it is degree-proportional sampling.
    let mut targets: Vec<u32> = Vec::new();
    for a in 0..=(m as u32) {
        for _ in 0..m {
            targets.push(a);
        }
    }

    for new in (m + 1)..n {
        let mut chosen: Vec<u32> = Vec::with_capacity(m);
        while chosen.len() < m {
            let pick = targets[rng.gen_range(0..targets.len())];
            if !chosen.contains(&pick) {
                chosen.push(pick);
            }
        }
        for &t in &chosen {
            b.add_link(AsId::new(new as u32), AsId::new(t))
                .expect("new node links are fresh");
            targets.push(t);
            targets.push(new as u32);
        }
    }

    make_biconnected(b.build(), rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn link_count_matches_model() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50;
        let m = 2;
        let g = barabasi_albert(vec![Cost::new(1); n], m, &mut rng);
        // seed clique C(m+1, 2) + m links per later node, plus possibly a few
        // from biconnectivity augmentation (usually zero).
        let expected = (m + 1) * m / 2 + (n - m - 1) * m;
        assert!(g.link_count() >= expected);
        assert!(g.link_count() <= expected + 3);
    }

    #[test]
    fn result_is_biconnected() {
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = barabasi_albert(vec![Cost::new(1); 40], 2, &mut rng);
            assert!(g.is_biconnected(), "seed {seed}");
        }
    }

    #[test]
    fn hubs_emerge() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = barabasi_albert(vec![Cost::new(1); 200], 2, &mut rng);
        let max_degree = g.nodes().map(|k| g.degree(k)).max().unwrap();
        // Preferential attachment produces hubs far above the minimum degree.
        assert!(max_degree >= 10, "max degree {max_degree} too small for BA");
    }

    #[test]
    fn deterministic_under_seed() {
        let g1 = barabasi_albert(vec![Cost::new(1); 30], 3, &mut StdRng::seed_from_u64(5));
        let g2 = barabasi_albert(vec![Cost::new(1); 30], 3, &mut StdRng::seed_from_u64(5));
        assert_eq!(g1, g2);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_m_one() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = barabasi_albert(vec![Cost::ZERO; 10], 1, &mut rng);
    }
}
