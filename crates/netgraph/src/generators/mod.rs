//! Synthetic AS-graph generators.
//!
//! The paper's remarks about "the current AS graph" (Sect. 6.2) cannot be
//! reproduced on the real, proprietary AS topology, so experiments run on
//! synthetic families that reproduce the structural features the claims
//! depend on:
//!
//! * [`barabasi_albert`] — preferential attachment; power-law degrees like
//!   the measured AS graph, small diameter.
//! * [`hierarchy`] — an explicit two-tier ISP hierarchy (transit core +
//!   multi-homed stubs), the textbook cartoon of interdomain structure.
//! * [`waxman`] — the classic geographic random-graph model used by early
//!   Internet topology generators.
//! * [`erdos_renyi`] — the G(n, p) baseline.
//! * [`structured`] — deterministic graphs (ring, grid, complete,
//!   wheel, Petersen, and the paper's own Fig. 1 example) used by unit tests
//!   and worked-example experiments.
//!
//! All random generators take an explicit `Rng` so experiments are
//! reproducible from a seed, and all of them offer biconnectivity
//! post-processing via [`make_biconnected`] (the mechanism's standing
//! assumption).

mod barabasi_albert;
mod erdos_renyi;
mod hierarchy;
pub mod structured;
mod waxman;

pub use barabasi_albert::barabasi_albert;
pub use erdos_renyi::erdos_renyi;
pub use hierarchy::{hierarchy, HierarchyConfig};
pub use waxman::{waxman, WaxmanConfig};

use crate::cost::Cost;
use crate::graph::{AsGraph, AsGraphBuilder};
use crate::id::AsId;
use rand::distributions::{Distribution, Uniform};
use rand::Rng;

/// Draws one declared transit cost uniformly from `[lo, hi]`.
///
/// # Panics
///
/// Panics if `lo > hi` or `hi` is `u64::MAX` (reserved for
/// [`Cost::INFINITE`]).
pub fn random_cost<R: Rng + ?Sized>(lo: u64, hi: u64, rng: &mut R) -> Cost {
    assert!(lo <= hi, "lo must not exceed hi");
    assert!(hi < u64::MAX, "hi must be finite");
    Cost::new(Uniform::new_inclusive(lo, hi).sample(rng))
}

/// Draws a vector of `n` declared costs uniformly from `[lo, hi]`.
pub fn random_costs<R: Rng + ?Sized>(n: usize, lo: u64, hi: u64, rng: &mut R) -> Vec<Cost> {
    (0..n).map(|_| random_cost(lo, hi, rng)).collect()
}

/// Adds links to `graph` until it is biconnected, preferring links between
/// the articulation-separated parts; returns the augmented graph.
///
/// The procedure first connects components (joining each component's
/// lowest-numbered node to node 0's component), then repeatedly links a
/// neighbor-pair "around" each articulation point until none remain. It
/// terminates because each pass strictly reduces the number of biconnected-
/// component separations and the complete graph is biconnected.
///
/// # Panics
///
/// Panics if the graph has fewer than three nodes — no augmentation can make
/// it biconnected.
pub fn make_biconnected<R: Rng + ?Sized>(graph: AsGraph, rng: &mut R) -> AsGraph {
    assert!(
        graph.node_count() >= 3,
        "need at least 3 nodes to biconnect"
    );
    let mut g = graph;

    // Phase 1: connect the components.
    loop {
        let n = g.node_count();
        let mut component = vec![usize::MAX; n];
        let mut next_comp = 0usize;
        for start in 0..n {
            if component[start] != usize::MAX {
                continue;
            }
            let mut stack = vec![start];
            component[start] = next_comp;
            while let Some(u) = stack.pop() {
                for &v in g.neighbors(AsId::new(u as u32)) {
                    if component[v.index()] == usize::MAX {
                        component[v.index()] = next_comp;
                        stack.push(v.index());
                    }
                }
            }
            next_comp += 1;
        }
        if next_comp <= 1 {
            break;
        }
        // Join a random node of component 0 with the first node of another.
        let in_zero: Vec<usize> = (0..n).filter(|&k| component[k] == 0).collect();
        let other = (0..n)
            .find(|&k| component[k] != 0)
            .expect("second component");
        let a = in_zero[rng.gen_range(0..in_zero.len())];
        g = g
            .with_link(AsId::new(a as u32), AsId::new(other as u32))
            .expect("cross-component link cannot already exist");
    }

    // Phase 2: eliminate articulation points by linking around them.
    loop {
        let cuts = g.articulation_points();
        let Some(&cut) = cuts.first() else { break };
        // Removing `cut` splits its neighbors into ≥2 groups; link the first
        // neighbor to a neighbor in a different group.
        let n = g.node_count();
        let mut mark = vec![false; n];
        mark[cut.index()] = true;
        let first = g.neighbors(cut)[0];
        let mut stack = vec![first];
        mark[first.index()] = true;
        while let Some(u) = stack.pop() {
            for &v in g.neighbors(u) {
                if !mark[v.index()] {
                    mark[v.index()] = true;
                    stack.push(v);
                }
            }
        }
        let stranded = g
            .neighbors(cut)
            .iter()
            .copied()
            .find(|v| !mark[v.index()])
            .expect("articulation point must separate some neighbor");
        g = g
            .with_link(first, stranded)
            .expect("link across articulation point cannot already exist");
    }
    g
}

/// Builds a graph from an explicit node-cost vector and an edge list.
///
/// Convenience shared by generators and tests.
///
/// # Panics
///
/// Panics if any edge is invalid (unknown node, self-loop, duplicate).
pub fn from_edges(costs: Vec<Cost>, edges: &[(u32, u32)]) -> AsGraph {
    let mut b = AsGraphBuilder::new();
    b.add_nodes(costs);
    for &(x, y) in edges {
        b.add_link(AsId::new(x), AsId::new(y))
            .expect("invalid edge in from_edges");
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_cost_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let c = random_cost(3, 9, &mut rng);
            let v = c.finite().unwrap();
            assert!((3..=9).contains(&v));
        }
    }

    #[test]
    fn random_costs_length() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(random_costs(12, 0, 5, &mut rng).len(), 12);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn random_cost_rejects_sentinel_bound() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = random_cost(0, u64::MAX, &mut rng);
    }

    #[test]
    fn make_biconnected_fixes_a_path() {
        let mut rng = StdRng::seed_from_u64(4);
        let path = from_edges(
            vec![Cost::ZERO; 6],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)],
        );
        assert!(!path.is_biconnected());
        let fixed = make_biconnected(path, &mut rng);
        assert!(fixed.is_biconnected());
    }

    #[test]
    fn make_biconnected_fixes_disconnected_graph() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = from_edges(vec![Cost::ZERO; 7], &[(0, 1), (2, 3), (4, 5), (5, 6)]);
        assert!(!g.is_connected());
        let fixed = make_biconnected(g, &mut rng);
        assert!(fixed.is_biconnected());
    }

    #[test]
    fn make_biconnected_is_identity_on_biconnected_input() {
        let mut rng = StdRng::seed_from_u64(6);
        let ring = structured::ring(8, Cost::new(1));
        let fixed = make_biconnected(ring.clone(), &mut rng);
        assert_eq!(fixed, ring);
    }

    #[test]
    fn make_biconnected_star_graph() {
        let mut rng = StdRng::seed_from_u64(7);
        let star = from_edges(
            vec![Cost::ZERO; 8],
            &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6), (0, 7)],
        );
        let fixed = make_biconnected(star, &mut rng);
        assert!(fixed.is_biconnected());
    }
}
