//! Connectivity and biconnectivity testing (Hopcroft–Tarjan).
//!
//! The mechanism requires the AS graph to be biconnected (paper, Sect. 3):
//! otherwise some transit node is a monopoly and the lowest-cost k-avoiding
//! path — hence the VCG price — is undefined. This module provides an
//! iterative articulation-point algorithm (no recursion, so deep graphs
//! cannot overflow the stack).

use crate::graph::AsGraph;
use crate::id::AsId;

/// Returns `true` if the graph is connected. The empty graph and the
/// single-node graph are considered connected.
pub(crate) fn is_connected(graph: &AsGraph) -> bool {
    let n = graph.node_count();
    if n <= 1 {
        return true;
    }
    let mut seen = vec![false; n];
    let mut stack = vec![AsId::new(0)];
    seen[0] = true;
    let mut count = 1;
    while let Some(u) = stack.pop() {
        for &v in graph.neighbors(u) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                count += 1;
                stack.push(v);
            }
        }
    }
    count == n
}

/// Returns the articulation points (cut vertices) of the graph, in ascending
/// order. Nodes in different connected components never appear (a
/// disconnected graph is reported through [`is_connected`], not here).
pub(crate) fn articulation_points(graph: &AsGraph) -> Vec<AsId> {
    let n = graph.node_count();
    let mut disc = vec![usize::MAX; n]; // discovery time; MAX = unvisited
    let mut low = vec![usize::MAX; n];
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut is_cut = vec![false; n];
    let mut timer = 0usize;

    // Iterative DFS: each frame is (node, index into its adjacency list).
    for root in 0..n {
        if disc[root] != usize::MAX {
            continue;
        }
        let mut root_children = 0usize;
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        while let Some(&mut (u, ref mut next)) = stack.last_mut() {
            let neighbors = graph.neighbors(AsId::new(u as u32));
            if *next < neighbors.len() {
                let v = neighbors[*next].index();
                *next += 1;
                if disc[v] == usize::MAX {
                    parent[v] = Some(u);
                    if u == root {
                        root_children += 1;
                    }
                    disc[v] = timer;
                    low[v] = timer;
                    timer += 1;
                    stack.push((v, 0));
                } else if parent[u] != Some(v) {
                    // Back edge (or forward edge in undirected DFS): update low.
                    low[u] = low[u].min(disc[v]);
                }
            } else {
                stack.pop();
                if let Some(p) = parent[u] {
                    low[p] = low[p].min(low[u]);
                    if p != root && low[u] >= disc[p] {
                        is_cut[p] = true;
                    }
                }
            }
        }
        if root_children >= 2 {
            is_cut[root] = true;
        }
    }

    (0..n)
        .filter(|&k| is_cut[k])
        .map(|k| AsId::new(k as u32))
        .collect()
}

/// Returns `true` if the graph is biconnected: at least three nodes,
/// connected, and free of articulation points.
pub(crate) fn is_biconnected(graph: &AsGraph) -> bool {
    graph.node_count() >= 3 && is_connected(graph) && articulation_points(graph).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Cost;
    use crate::graph::AsGraphBuilder;

    fn graph_from_edges(n: usize, edges: &[(u32, u32)]) -> AsGraph {
        let mut b = AsGraphBuilder::new();
        b.add_nodes(vec![Cost::ZERO; n]);
        for &(a, bb) in edges {
            b.add_link(AsId::new(a), AsId::new(bb)).unwrap();
        }
        b.build()
    }

    #[test]
    fn empty_and_singleton_are_connected() {
        assert!(graph_from_edges(0, &[]).is_connected());
        assert!(graph_from_edges(1, &[]).is_connected());
    }

    #[test]
    fn two_isolated_nodes_are_disconnected() {
        assert!(!graph_from_edges(2, &[]).is_connected());
    }

    #[test]
    fn path_is_connected_but_not_biconnected() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(g.is_connected());
        assert!(!g.is_biconnected());
        assert_eq!(g.articulation_points(), vec![AsId::new(1), AsId::new(2)]);
    }

    #[test]
    fn cycle_is_biconnected() {
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert!(g.is_biconnected());
        assert!(g.articulation_points().is_empty());
    }

    #[test]
    fn triangle_is_biconnected_but_edge_is_not() {
        assert!(graph_from_edges(3, &[(0, 1), (1, 2), (2, 0)]).is_biconnected());
        // Two nodes joined by an edge: too small to be biconnected here.
        assert!(!graph_from_edges(2, &[(0, 1)]).is_biconnected());
    }

    #[test]
    fn bowtie_has_central_articulation_point() {
        // Two triangles sharing node 2.
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        assert!(g.is_connected());
        assert!(!g.is_biconnected());
        assert_eq!(g.articulation_points(), vec![AsId::new(2)]);
    }

    #[test]
    fn bridge_endpoints_are_articulation_points() {
        // Two triangles joined by the bridge 2-3.
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]);
        assert!(!g.is_biconnected());
        assert_eq!(g.articulation_points(), vec![AsId::new(2), AsId::new(3)]);
    }

    #[test]
    fn complete_graph_is_biconnected() {
        let mut edges = Vec::new();
        for a in 0..6u32 {
            for b in (a + 1)..6 {
                edges.push((a, b));
            }
        }
        assert!(graph_from_edges(6, &edges).is_biconnected());
    }

    #[test]
    fn paper_fig1_graph_is_biconnected() {
        // X=0, A=1, Z=2, D=3, B=4, Y=5 with the links drawn in Fig. 1.
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (0, 4), (4, 3), (3, 2), (3, 5), (4, 5)]);
        // Fig. 1 as drawn: X-A, A-Z, X-B, B-D, D-Z, D-Y, B-Y.
        assert!(g.is_biconnected());
    }

    #[test]
    fn star_center_is_articulation_point() {
        let g = graph_from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(g.articulation_points(), vec![AsId::new(0)]);
    }

    #[test]
    fn disconnected_graph_articulation_points_per_component() {
        // Component 1: path 0-1-2 (1 is a cut vertex). Component 2: triangle.
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5), (5, 3)]);
        assert!(!g.is_connected());
        assert_eq!(g.articulation_points(), vec![AsId::new(1)]);
    }

    #[test]
    fn deep_path_does_not_overflow_stack() {
        // 50k-node path exercises the iterative DFS.
        let n = 50_000;
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = graph_from_edges(n as usize, &edges);
        assert!(g.is_connected());
        assert_eq!(g.articulation_points().len(), n as usize - 2);
    }
}
