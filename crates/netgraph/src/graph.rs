//! The AS graph: topology plus declared transit costs.

use crate::biconnectivity;
use crate::cost::Cost;
use crate::error::GraphError;
use crate::id::AsId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An undirected link between two Autonomous Systems.
///
/// Endpoints are stored in normalized order (`a < b`), so two `Link`s are
/// equal iff they connect the same AS pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Link {
    a: AsId,
    b: AsId,
}

impl Link {
    /// Creates a normalized link between two distinct nodes.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`; the model has no self-loops.
    pub fn new(a: AsId, b: AsId) -> Self {
        assert!(a != b, "self-loop at {a}");
        if a < b {
            Link { a, b }
        } else {
            Link { a: b, b: a }
        }
    }

    /// The lower-numbered endpoint.
    pub fn a(self) -> AsId {
        self.a
    }

    /// The higher-numbered endpoint.
    pub fn b(self) -> AsId {
        self.b
    }

    /// Given one endpoint, returns the other, or `None` if `id` is not an
    /// endpoint of this link.
    pub fn other(self, id: AsId) -> Option<AsId> {
        if id == self.a {
            Some(self.b)
        } else if id == self.b {
            Some(self.a)
        } else {
            None
        }
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}--{}", self.a, self.b)
    }
}

/// The AS graph of the paper: a set of nodes `N` (Autonomous Systems), a set
/// `L` of bidirectional links, and a declared per-packet transit cost `c_k`
/// for every node `k`.
///
/// Nodes are numbered densely from `AS0`, so `AsId::index` indexes directly
/// into per-node arrays. The graph is immutable once built; construct it with
/// [`AsGraph::builder`] and mutate topology only through the explicit
/// derivation methods ([`AsGraph::with_cost`], [`AsGraph::without_link`],
/// [`AsGraph::with_link`]), which model the paper's dynamic events (declared
/// cost changes, link deletion/insertion).
///
/// # Example
///
/// ```
/// use bgpvcg_netgraph::{AsGraph, Cost};
///
/// # fn main() -> Result<(), bgpvcg_netgraph::GraphError> {
/// let mut b = AsGraph::builder();
/// let x = b.add_node(Cost::new(2));
/// let y = b.add_node(Cost::new(3));
/// let z = b.add_node(Cost::new(4));
/// b.add_link(x, y)?;
/// b.add_link(y, z)?;
/// b.add_link(z, x)?;
/// let g = b.build();
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.neighbors(y), &[x, z]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsGraph {
    costs: Vec<Cost>,
    /// Sorted adjacency list per node.
    adjacency: Vec<Vec<AsId>>,
    /// Normalized, sorted list of links.
    links: Vec<Link>,
}

impl AsGraph {
    /// Starts building a graph.
    pub fn builder() -> AsGraphBuilder {
        AsGraphBuilder::new()
    }

    /// Number of nodes `n = |N|`.
    pub fn node_count(&self) -> usize {
        self.costs.len()
    }

    /// Number of links `|L|`.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Iterates over all node identifiers in ascending order.
    pub fn nodes(&self) -> impl Iterator<Item = AsId> + '_ {
        (0..self.costs.len() as u32).map(AsId::new)
    }

    /// All links in normalized sorted order.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The declared transit cost `c_k` of node `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not a node of this graph.
    pub fn cost(&self, k: AsId) -> Cost {
        self.costs[k.index()]
    }

    /// The full declared cost vector `c`, indexed by `AsId::index`.
    pub fn costs(&self) -> &[Cost] {
        &self.costs
    }

    /// Neighbors of `k` in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not a node of this graph.
    pub fn neighbors(&self, k: AsId) -> &[AsId] {
        &self.adjacency[k.index()]
    }

    /// Degree of node `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not a node of this graph.
    pub fn degree(&self, k: AsId) -> usize {
        self.adjacency[k.index()].len()
    }

    /// Returns `true` if `k` is a node of this graph.
    pub fn contains_node(&self, k: AsId) -> bool {
        k.index() < self.costs.len()
    }

    /// Returns `true` if nodes `a` and `b` are directly interconnected.
    pub fn has_link(&self, a: AsId, b: AsId) -> bool {
        if a == b || !self.contains_node(a) || !self.contains_node(b) {
            return false;
        }
        self.adjacency[a.index()].binary_search(&b).is_ok()
    }

    /// Returns `true` if the graph is connected (trivially true for the
    /// empty graph).
    pub fn is_connected(&self) -> bool {
        biconnectivity::is_connected(self)
    }

    /// Returns `true` if the graph is biconnected: connected, with at least
    /// three nodes, and with no articulation point whose removal would
    /// disconnect it.
    ///
    /// Biconnectivity is the paper's standing assumption (Sect. 3): without
    /// it some node `k` is a monopoly transit provider and its VCG price is
    /// undefined.
    pub fn is_biconnected(&self) -> bool {
        biconnectivity::is_biconnected(self)
    }

    /// Returns all articulation points (cut vertices) of the graph.
    pub fn articulation_points(&self) -> Vec<AsId> {
        biconnectivity::articulation_points(self)
    }

    /// Validates that the graph satisfies the mechanism's preconditions.
    ///
    /// # Errors
    ///
    /// * [`GraphError::TooSmall`] if there are fewer than three nodes.
    /// * [`GraphError::Disconnected`] if the graph is not connected.
    /// * [`GraphError::NotBiconnected`] if it has an articulation point.
    pub fn validate_for_mechanism(&self) -> Result<(), GraphError> {
        if self.node_count() < 3 {
            return Err(GraphError::TooSmall {
                nodes: self.node_count(),
            });
        }
        if !self.is_connected() {
            return Err(GraphError::Disconnected);
        }
        if !self.is_biconnected() {
            return Err(GraphError::NotBiconnected);
        }
        Ok(())
    }

    /// Returns a copy of this graph with node `k`'s declared cost replaced.
    ///
    /// This models a strategic deviation (node `k` declaring `x` instead of
    /// its true cost) or a dynamic cost change: the paper's notation
    /// `c|^k x`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not a node of this graph.
    pub fn with_cost(&self, k: AsId, declared: Cost) -> AsGraph {
        let mut clone = self.clone();
        clone.costs[k.index()] = declared;
        clone
    }

    /// Returns a copy of this graph with one link removed, modelling a link
    /// failure.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if an endpoint does not exist and
    /// [`GraphError::Disconnected`] if the link is not present (removing a
    /// non-existent link would silently diverge from the caller's intent).
    pub fn without_link(&self, a: AsId, b: AsId) -> Result<AsGraph, GraphError> {
        for id in [a, b] {
            if !self.contains_node(id) {
                return Err(GraphError::UnknownNode(id));
            }
        }
        if !self.has_link(a, b) {
            return Err(GraphError::Disconnected);
        }
        let link = Link::new(a, b);
        let mut clone = self.clone();
        clone.links.retain(|l| *l != link);
        clone.adjacency[a.index()].retain(|x| *x != b);
        clone.adjacency[b.index()].retain(|x| *x != a);
        Ok(clone)
    }

    /// Returns a copy of this graph with one link added, modelling a link
    /// coming up.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`], [`GraphError::SelfLoop`], or
    /// [`GraphError::DuplicateLink`] on invalid input.
    pub fn with_link(&self, a: AsId, b: AsId) -> Result<AsGraph, GraphError> {
        for id in [a, b] {
            if !self.contains_node(id) {
                return Err(GraphError::UnknownNode(id));
            }
        }
        if a == b {
            return Err(GraphError::SelfLoop(a));
        }
        if self.has_link(a, b) {
            return Err(GraphError::DuplicateLink(a, b));
        }
        let mut clone = self.clone();
        let link = Link::new(a, b);
        let pos = clone.links.binary_search(&link).unwrap_err();
        clone.links.insert(pos, link);
        let pos_a = clone.adjacency[a.index()].binary_search(&b).unwrap_err();
        clone.adjacency[a.index()].insert(pos_a, b);
        let pos_b = clone.adjacency[b.index()].binary_search(&a).unwrap_err();
        clone.adjacency[b.index()].insert(pos_b, a);
        Ok(clone)
    }
}

impl fmt::Display for AsGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "AsGraph: {} nodes, {} links",
            self.node_count(),
            self.link_count()
        )?;
        for k in self.nodes() {
            writeln!(
                f,
                "  {k} (c={}) -> {}",
                self.cost(k),
                self.neighbors(k)
                    .iter()
                    .map(|n| n.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            )?;
        }
        Ok(())
    }
}

/// Incremental builder for [`AsGraph`].
///
/// Nodes receive dense AS numbers in insertion order. Links are validated as
/// they are added.
#[derive(Debug, Clone, Default)]
pub struct AsGraphBuilder {
    costs: Vec<Cost>,
    links: Vec<Link>,
}

impl AsGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        AsGraphBuilder::default()
    }

    /// Adds a node with declared transit cost `cost`, returning its AS
    /// number.
    pub fn add_node(&mut self, cost: Cost) -> AsId {
        let id = AsId::new(self.costs.len() as u32);
        self.costs.push(cost);
        id
    }

    /// Adds `n` nodes with the given costs, returning their AS numbers.
    pub fn add_nodes<I: IntoIterator<Item = Cost>>(&mut self, costs: I) -> Vec<AsId> {
        costs.into_iter().map(|c| self.add_node(c)).collect()
    }

    /// Adds a bidirectional link between two existing nodes.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`], [`GraphError::SelfLoop`], or
    /// [`GraphError::DuplicateLink`] on invalid input.
    pub fn add_link(&mut self, a: AsId, b: AsId) -> Result<&mut Self, GraphError> {
        for id in [a, b] {
            if id.index() >= self.costs.len() {
                return Err(GraphError::UnknownNode(id));
            }
        }
        if a == b {
            return Err(GraphError::SelfLoop(a));
        }
        let link = Link::new(a, b);
        if self.links.contains(&link) {
            return Err(GraphError::DuplicateLink(a, b));
        }
        self.links.push(link);
        Ok(self)
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.costs.len()
    }

    /// Returns `true` if the link is already present.
    pub fn has_link(&self, a: AsId, b: AsId) -> bool {
        a != b && self.links.contains(&Link::new(a, b))
    }

    /// Finishes construction.
    pub fn build(self) -> AsGraph {
        let n = self.costs.len();
        let mut adjacency = vec![Vec::new(); n];
        for link in &self.links {
            adjacency[link.a().index()].push(link.b());
            adjacency[link.b().index()].push(link.a());
        }
        for adj in &mut adjacency {
            adj.sort_unstable();
        }
        let mut links = self.links;
        links.sort_unstable();
        AsGraph {
            costs: self.costs,
            adjacency,
            links,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> AsGraph {
        let mut b = AsGraph::builder();
        let x = b.add_node(Cost::new(1));
        let y = b.add_node(Cost::new(2));
        let z = b.add_node(Cost::new(3));
        b.add_link(x, y).unwrap();
        b.add_link(y, z).unwrap();
        b.add_link(z, x).unwrap();
        b.build()
    }

    #[test]
    fn link_normalizes_endpoints() {
        let l1 = Link::new(AsId::new(2), AsId::new(5));
        let l2 = Link::new(AsId::new(5), AsId::new(2));
        assert_eq!(l1, l2);
        assert_eq!(l1.a(), AsId::new(2));
        assert_eq!(l1.b(), AsId::new(5));
    }

    #[test]
    fn link_other_endpoint() {
        let l = Link::new(AsId::new(1), AsId::new(4));
        assert_eq!(l.other(AsId::new(1)), Some(AsId::new(4)));
        assert_eq!(l.other(AsId::new(4)), Some(AsId::new(1)));
        assert_eq!(l.other(AsId::new(9)), None);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn link_rejects_self_loop() {
        let _ = Link::new(AsId::new(3), AsId::new(3));
    }

    #[test]
    fn builder_assigns_dense_ids() {
        let mut b = AsGraph::builder();
        assert_eq!(b.add_node(Cost::ZERO), AsId::new(0));
        assert_eq!(b.add_node(Cost::ZERO), AsId::new(1));
        assert_eq!(b.add_node(Cost::ZERO), AsId::new(2));
        assert_eq!(b.node_count(), 3);
    }

    #[test]
    fn builder_rejects_bad_links() {
        let mut b = AsGraph::builder();
        let x = b.add_node(Cost::ZERO);
        let y = b.add_node(Cost::ZERO);
        assert_eq!(
            b.add_link(x, AsId::new(9)).unwrap_err(),
            GraphError::UnknownNode(AsId::new(9))
        );
        assert_eq!(b.add_link(x, x).unwrap_err(), GraphError::SelfLoop(x));
        b.add_link(x, y).unwrap();
        assert_eq!(
            b.add_link(y, x).unwrap_err(),
            GraphError::DuplicateLink(y, x)
        );
    }

    #[test]
    fn graph_queries() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.link_count(), 3);
        assert_eq!(g.cost(AsId::new(1)), Cost::new(2));
        assert_eq!(g.degree(AsId::new(0)), 2);
        assert!(g.has_link(AsId::new(0), AsId::new(1)));
        assert!(!g.has_link(AsId::new(0), AsId::new(0)));
        assert!(g.contains_node(AsId::new(2)));
        assert!(!g.contains_node(AsId::new(3)));
        assert_eq!(
            g.nodes().collect::<Vec<_>>(),
            vec![AsId::new(0), AsId::new(1), AsId::new(2)]
        );
    }

    #[test]
    fn neighbors_are_sorted() {
        let mut b = AsGraph::builder();
        let ids = b.add_nodes(vec![Cost::ZERO; 4]);
        b.add_link(ids[3], ids[0]).unwrap();
        b.add_link(ids[1], ids[0]).unwrap();
        b.add_link(ids[2], ids[0]).unwrap();
        let g = b.build();
        assert_eq!(g.neighbors(ids[0]), &[ids[1], ids[2], ids[3]]);
    }

    #[test]
    fn with_cost_replaces_declaration() {
        let g = triangle();
        let g2 = g.with_cost(AsId::new(0), Cost::new(99));
        assert_eq!(g2.cost(AsId::new(0)), Cost::new(99));
        assert_eq!(g.cost(AsId::new(0)), Cost::new(1), "original untouched");
        assert_eq!(g2.links(), g.links());
    }

    #[test]
    fn without_link_removes_both_directions() {
        let g = triangle();
        let g2 = g.without_link(AsId::new(0), AsId::new(1)).unwrap();
        assert!(!g2.has_link(AsId::new(0), AsId::new(1)));
        assert!(!g2.has_link(AsId::new(1), AsId::new(0)));
        assert_eq!(g2.link_count(), 2);
        assert!(g2.without_link(AsId::new(0), AsId::new(1)).is_err());
    }

    #[test]
    fn with_link_adds_and_validates() {
        let g = triangle();
        let g2 = g.without_link(AsId::new(0), AsId::new(1)).unwrap();
        let g3 = g2.with_link(AsId::new(0), AsId::new(1)).unwrap();
        assert_eq!(g3, g);
        assert_eq!(
            g.with_link(AsId::new(0), AsId::new(1)).unwrap_err(),
            GraphError::DuplicateLink(AsId::new(0), AsId::new(1))
        );
        assert_eq!(
            g.with_link(AsId::new(0), AsId::new(0)).unwrap_err(),
            GraphError::SelfLoop(AsId::new(0))
        );
        assert_eq!(
            g.with_link(AsId::new(0), AsId::new(7)).unwrap_err(),
            GraphError::UnknownNode(AsId::new(7))
        );
    }

    #[test]
    fn validate_for_mechanism_accepts_triangle() {
        assert_eq!(triangle().validate_for_mechanism(), Ok(()));
    }

    #[test]
    fn validate_rejects_small_graphs() {
        let mut b = AsGraph::builder();
        b.add_node(Cost::ZERO);
        b.add_node(Cost::ZERO);
        let g = b.build();
        assert_eq!(
            g.validate_for_mechanism(),
            Err(GraphError::TooSmall { nodes: 2 })
        );
    }

    #[test]
    fn validate_rejects_disconnected() {
        let mut b = AsGraph::builder();
        let ids = b.add_nodes(vec![Cost::ZERO; 4]);
        b.add_link(ids[0], ids[1]).unwrap();
        b.add_link(ids[2], ids[3]).unwrap();
        let g = b.build();
        assert_eq!(g.validate_for_mechanism(), Err(GraphError::Disconnected));
    }

    #[test]
    fn validate_rejects_path_graph() {
        let mut b = AsGraph::builder();
        let ids = b.add_nodes(vec![Cost::ZERO; 3]);
        b.add_link(ids[0], ids[1]).unwrap();
        b.add_link(ids[1], ids[2]).unwrap();
        let g = b.build();
        assert_eq!(g.validate_for_mechanism(), Err(GraphError::NotBiconnected));
    }

    #[test]
    fn display_mentions_every_node() {
        let text = triangle().to_string();
        for k in 0..3 {
            assert!(text.contains(&format!("AS{k}")));
        }
    }
}
