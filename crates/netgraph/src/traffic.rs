//! Traffic matrices `[T_ij]`.

use crate::cost::Cost;
use crate::graph::AsGraph;
use crate::id::AsId;
use rand::distributions::{Distribution, Uniform};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The traffic matrix of the paper: `T_ij` is the intensity (number of
/// packets) of traffic originating at AS `i` destined for AS `j`.
///
/// Theorem 1 shows the per-packet prices are independent of the traffic
/// matrix; the matrix only weights payment totals
/// `p_k = Σ_ij T_ij · p^k_ij` (Sect. 6.4), so any synthetic matrix exercises
/// the accounting path. Diagonal entries are always zero — an AS does not
/// send transit traffic to itself.
///
/// # Example
///
/// ```
/// use bgpvcg_netgraph::{AsId, TrafficMatrix};
///
/// let mut t = TrafficMatrix::zero(3);
/// t.set(AsId::new(0), AsId::new(2), 10);
/// assert_eq!(t.demand(AsId::new(0), AsId::new(2)), 10);
/// assert_eq!(t.total_packets(), 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficMatrix {
    n: usize,
    /// Row-major `n × n` intensities.
    demand: Vec<u64>,
}

impl TrafficMatrix {
    /// An all-zero matrix over `n` ASs.
    pub fn zero(n: usize) -> Self {
        TrafficMatrix {
            n,
            demand: vec![0; n * n],
        }
    }

    /// The uniform matrix: one packet between every ordered pair of distinct
    /// ASs. Under this matrix payment totals equal sums of per-packet
    /// prices, which is convenient for tests.
    pub fn uniform(n: usize, packets: u64) -> Self {
        let mut t = TrafficMatrix::zero(n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    t.demand[i * n + j] = packets;
                }
            }
        }
        t
    }

    /// A random matrix with independent uniform intensities in
    /// `[lo, hi]` for every ordered pair.
    pub fn random<R: Rng + ?Sized>(n: usize, lo: u64, hi: u64, rng: &mut R) -> Self {
        assert!(lo <= hi, "lo must not exceed hi");
        let dist = Uniform::new_inclusive(lo, hi);
        let mut t = TrafficMatrix::zero(n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    t.demand[i * n + j] = dist.sample(rng);
                }
            }
        }
        t
    }

    /// A gravity-model matrix: each AS `i` gets a random "mass" `m_i ∈
    /// [1, max_mass]` and `T_ij = m_i · m_j / scale` (rounded, min 1).
    /// Gravity models are the standard synthetic stand-in for real
    /// interdomain traffic, which is proprietary.
    pub fn gravity<R: Rng + ?Sized>(n: usize, max_mass: u64, rng: &mut R) -> Self {
        assert!(max_mass >= 1, "max_mass must be at least 1");
        let dist = Uniform::new_inclusive(1, max_mass);
        let masses: Vec<u64> = (0..n).map(|_| dist.sample(rng)).collect();
        let scale = max_mass.max(1);
        let mut t = TrafficMatrix::zero(n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    t.demand[i * n + j] = (masses[i] * masses[j] / scale).max(1);
                }
            }
        }
        t
    }

    /// A hot-spot matrix: every AS sends `packets` to each of the given
    /// destinations (content providers), and nothing elsewhere.
    pub fn hotspot(n: usize, hotspots: &[AsId], packets: u64) -> Self {
        let mut t = TrafficMatrix::zero(n);
        for i in 0..n {
            for &j in hotspots {
                if i != j.index() {
                    t.demand[i * n + j.index()] = packets;
                }
            }
        }
        t
    }

    /// Number of ASs the matrix covers.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The intensity `T_ij`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn demand(&self, i: AsId, j: AsId) -> u64 {
        assert!(
            i.index() < self.n && j.index() < self.n,
            "index out of range"
        );
        self.demand[i.index() * self.n + j.index()]
    }

    /// Sets `T_ij`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range, or if `i == j` with a
    /// non-zero intensity (self-traffic is not transit traffic).
    pub fn set(&mut self, i: AsId, j: AsId, packets: u64) {
        assert!(
            i.index() < self.n && j.index() < self.n,
            "index out of range"
        );
        assert!(i != j || packets == 0, "self-traffic must be zero");
        self.demand[i.index() * self.n + j.index()] = packets;
    }

    /// Iterates over all `(source, destination, intensity)` triples with
    /// non-zero intensity.
    pub fn flows(&self) -> impl Iterator<Item = (AsId, AsId, u64)> + '_ {
        (0..self.n).flat_map(move |i| {
            (0..self.n).filter_map(move |j| {
                let d = self.demand[i * self.n + j];
                if d > 0 {
                    Some((AsId::new(i as u32), AsId::new(j as u32), d))
                } else {
                    None
                }
            })
        })
    }

    /// Total number of packets in the matrix.
    pub fn total_packets(&self) -> u64 {
        self.demand.iter().sum()
    }

    /// Total traffic-weighted cost `V(c) = Σ_ij T_ij · c(i, j)` given a
    /// lookup for the LCP cost of each pair, i.e. the objective function the
    /// mechanism minimizes (paper, Sect. 3). Pairs with zero demand are not
    /// queried.
    pub fn total_cost<F: FnMut(AsId, AsId) -> Cost>(&self, mut lcp_cost: F) -> Cost {
        let mut total = Cost::ZERO;
        for (i, j, packets) in self.flows() {
            let unit = lcp_cost(i, j);
            let Some(raw) = unit.finite() else {
                return Cost::INFINITE;
            };
            match raw.checked_mul(packets) {
                Some(weighted) if weighted < u64::MAX => total += Cost::new(weighted),
                _ => return Cost::INFINITE,
            }
        }
        total
    }

    /// Checks the matrix is compatible with a graph (same node count).
    pub fn matches(&self, graph: &AsGraph) -> bool {
        self.n == graph.node_count()
    }
}

impl fmt::Display for TrafficMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "TrafficMatrix ({} ASs):", self.n)?;
        for i in 0..self.n {
            let row: Vec<String> = (0..self.n)
                .map(|j| self.demand[i * self.n + j].to_string())
                .collect();
            writeln!(f, "  [{}]", row.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_matrix_is_empty() {
        let t = TrafficMatrix::zero(4);
        assert_eq!(t.total_packets(), 0);
        assert_eq!(t.flows().count(), 0);
        assert_eq!(t.node_count(), 4);
    }

    #[test]
    fn uniform_matrix_covers_all_ordered_pairs() {
        let t = TrafficMatrix::uniform(4, 2);
        assert_eq!(t.total_packets(), 4 * 3 * 2);
        assert_eq!(t.demand(AsId::new(0), AsId::new(3)), 2);
        assert_eq!(t.demand(AsId::new(2), AsId::new(2)), 0);
    }

    #[test]
    fn set_and_get() {
        let mut t = TrafficMatrix::zero(3);
        t.set(AsId::new(1), AsId::new(2), 7);
        assert_eq!(t.demand(AsId::new(1), AsId::new(2)), 7);
        assert_eq!(t.demand(AsId::new(2), AsId::new(1)), 0, "asymmetric");
    }

    #[test]
    #[should_panic(expected = "self-traffic")]
    fn set_rejects_self_traffic() {
        let mut t = TrafficMatrix::zero(3);
        t.set(AsId::new(1), AsId::new(1), 1);
    }

    #[test]
    fn set_allows_zero_self_traffic() {
        let mut t = TrafficMatrix::zero(3);
        t.set(AsId::new(1), AsId::new(1), 0);
        assert_eq!(t.demand(AsId::new(1), AsId::new(1)), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn demand_bounds_checked() {
        let t = TrafficMatrix::zero(2);
        let _ = t.demand(AsId::new(5), AsId::new(0));
    }

    #[test]
    fn random_matrix_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = TrafficMatrix::random(5, 2, 9, &mut rng);
        for (i, j, d) in t.flows() {
            assert!(i != j);
            assert!((2..=9).contains(&d));
        }
        // Every off-diagonal pair present because lo >= 1.
        assert_eq!(t.flows().count(), 5 * 4);
    }

    #[test]
    fn gravity_matrix_is_positive_off_diagonal() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = TrafficMatrix::gravity(6, 10, &mut rng);
        assert_eq!(t.flows().count(), 6 * 5);
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let t = TrafficMatrix::hotspot(5, &[AsId::new(4)], 3);
        assert_eq!(t.total_packets(), 4 * 3);
        assert_eq!(t.demand(AsId::new(0), AsId::new(4)), 3);
        assert_eq!(t.demand(AsId::new(0), AsId::new(1)), 0);
        assert_eq!(t.demand(AsId::new(4), AsId::new(4)), 0);
    }

    #[test]
    fn total_cost_weights_by_demand() {
        let mut t = TrafficMatrix::zero(3);
        t.set(AsId::new(0), AsId::new(1), 2);
        t.set(AsId::new(1), AsId::new(2), 5);
        let v = t.total_cost(|i, j| {
            Cost::new((i.raw() + j.raw()) as u64) // fake "LCP costs": 1 and 3
        });
        assert_eq!(v, Cost::new(2 + 5 * 3)); // 2·1 + 5·3
    }

    #[test]
    fn total_cost_propagates_infinity() {
        let mut t = TrafficMatrix::zero(2);
        t.set(AsId::new(0), AsId::new(1), 1);
        let v = t.total_cost(|_, _| Cost::INFINITE);
        assert_eq!(v, Cost::INFINITE);
    }

    #[test]
    fn flows_iterates_in_row_major_order() {
        let t = TrafficMatrix::uniform(3, 1);
        let flows: Vec<(u32, u32)> = t.flows().map(|(i, j, _)| (i.raw(), j.raw())).collect();
        assert_eq!(flows, vec![(0, 1), (0, 2), (1, 0), (1, 2), (2, 0), (2, 1)]);
    }
}
