//! Typed Autonomous System identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An Autonomous System number.
///
/// In the paper's model every node of the AS graph is an AS identified by its
/// AS number; routes are sequences of these identifiers. `AsId` is a newtype
/// over a dense `u32` index so it can double as a direct index into
/// per-node arrays (see [`AsId::index`]).
///
/// # Example
///
/// ```
/// use bgpvcg_netgraph::AsId;
///
/// let k = AsId::new(7);
/// assert_eq!(k.index(), 7);
/// assert_eq!(k.to_string(), "AS7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AsId(u32);

impl AsId {
    /// Creates an AS identifier from a raw number.
    pub const fn new(raw: u32) -> Self {
        AsId(raw)
    }

    /// Returns the raw AS number.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns the AS number as a `usize`, suitable for indexing per-node
    /// arrays (the graph assigns AS numbers densely from zero).
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for AsId {
    fn from(raw: u32) -> Self {
        AsId::new(raw)
    }
}

impl From<AsId> for u32 {
    fn from(id: AsId) -> Self {
        id.raw()
    }
}

impl fmt::Display for AsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn raw_round_trip() {
        let id = AsId::new(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(u32::from(id), 42);
        assert_eq!(AsId::from(42u32), id);
    }

    #[test]
    fn index_matches_raw() {
        assert_eq!(AsId::new(0).index(), 0);
        assert_eq!(AsId::new(65_535).index(), 65_535);
    }

    #[test]
    fn display_is_as_prefixed() {
        assert_eq!(AsId::new(0).to_string(), "AS0");
        assert_eq!(format!("{}", AsId::new(199)), "AS199");
    }

    #[test]
    fn ordering_follows_raw_number() {
        let mut set = BTreeSet::new();
        set.insert(AsId::new(3));
        set.insert(AsId::new(1));
        set.insert(AsId::new(2));
        let sorted: Vec<u32> = set.into_iter().map(AsId::raw).collect();
        assert_eq!(sorted, vec![1, 2, 3]);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", AsId::new(5)).is_empty());
    }
}
