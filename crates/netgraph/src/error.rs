//! Error types for graph construction and validation.

use crate::id::AsId;
use std::error::Error;
use std::fmt;

/// Errors arising while building or validating an AS graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A link endpoint refers to a node that does not exist.
    UnknownNode(AsId),
    /// A self-loop `(k, k)` was requested; the model has no such links.
    SelfLoop(AsId),
    /// The link already exists (the model allows at most one link per AS
    /// pair, following the Griffin–Wilfong abstraction the paper adopts).
    DuplicateLink(AsId, AsId),
    /// The link does not exist, so it cannot be removed or failed.
    MissingLink(AsId, AsId),
    /// The node is offline (already crashed/taken down), so the requested
    /// operation has no subject.
    NodeOffline(AsId),
    /// The node is already online, so it cannot be brought up again.
    NodeOnline(AsId),
    /// The graph is not biconnected, so lowest-cost k-avoiding paths — and
    /// therefore VCG prices — are undefined (paper, Sect. 4).
    NotBiconnected,
    /// The graph has fewer than three nodes; biconnectivity (and hence the
    /// mechanism) needs at least a triangle.
    TooSmall {
        /// Number of nodes present.
        nodes: usize,
    },
    /// The graph is not connected; unreachable destinations have no LCPs.
    Disconnected,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(id) => write!(f, "unknown node {id}"),
            GraphError::SelfLoop(id) => write!(f, "self-loop at {id} is not allowed"),
            GraphError::DuplicateLink(a, b) => {
                write!(f, "link between {a} and {b} already exists")
            }
            GraphError::MissingLink(a, b) => {
                write!(f, "link between {a} and {b} does not exist")
            }
            GraphError::NodeOffline(id) => write!(f, "node {id} is offline"),
            GraphError::NodeOnline(id) => write!(f, "node {id} is already online"),
            GraphError::NotBiconnected => write!(
                f,
                "graph is not biconnected, so k-avoiding paths and VCG prices are undefined"
            ),
            GraphError::TooSmall { nodes } => {
                write!(
                    f,
                    "graph with {nodes} node(s) is too small for the mechanism"
                )
            }
            GraphError::Disconnected => write!(f, "graph is not connected"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(GraphError, &str)> = vec![
            (GraphError::UnknownNode(AsId::new(3)), "AS3"),
            (GraphError::SelfLoop(AsId::new(1)), "self-loop"),
            (
                GraphError::DuplicateLink(AsId::new(0), AsId::new(1)),
                "already exists",
            ),
            (
                GraphError::MissingLink(AsId::new(0), AsId::new(1)),
                "does not exist",
            ),
            (GraphError::NodeOffline(AsId::new(2)), "offline"),
            (GraphError::NodeOnline(AsId::new(2)), "already online"),
            (GraphError::NotBiconnected, "biconnected"),
            (GraphError::TooSmall { nodes: 2 }, "2 node"),
            (GraphError::Disconnected, "not connected"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error>() {}
        assert_error::<GraphError>();
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
