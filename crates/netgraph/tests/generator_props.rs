//! Property tests for the graph substrate: generators always satisfy the
//! mechanism's preconditions, mutation methods are inverses, and traffic
//! matrices behave like matrices.

use bgpvcg_netgraph::generators::{
    barabasi_albert, erdos_renyi, hierarchy, make_biconnected, random_costs, waxman,
    HierarchyConfig, WaxmanConfig,
};
use bgpvcg_netgraph::{AsGraph, AsGraphBuilder, AsId, Cost, TrafficMatrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every random generator yields a biconnected graph of the requested
    /// size (the mechanism's standing precondition).
    #[test]
    fn generators_always_biconnected(
        n in 8usize..40,
        which in 0usize..4,
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let costs = random_costs(n, 0, 10, &mut rng);
        let g = match which {
            0 => erdos_renyi(costs, 0.15, &mut rng),
            1 => barabasi_albert(costs, 2, &mut rng),
            2 => waxman(costs, WaxmanConfig::default(), &mut rng),
            _ => hierarchy(
                HierarchyConfig {
                    core_size: (n / 6).clamp(3, 10),
                    stub_count: n - (n / 6).clamp(3, 10),
                    ..HierarchyConfig::default()
                },
                &mut rng,
            ),
        };
        prop_assert_eq!(g.node_count(), n);
        prop_assert!(g.is_biconnected());
        prop_assert!(g.validate_for_mechanism().is_ok());
    }

    /// make_biconnected on arbitrary sparse graphs delivers biconnectivity
    /// and never removes anything.
    #[test]
    fn make_biconnected_is_additive(
        n in 3usize..30,
        edges in proptest::collection::vec((0u32..30, 0u32..30), 0..40),
        seed in 0u64..u64::MAX,
    ) {
        let mut b = AsGraphBuilder::new();
        b.add_nodes(vec![Cost::ZERO; n]);
        for (x, y) in edges {
            let (x, y) = (x % n as u32, y % n as u32);
            if x != y && !b.has_link(AsId::new(x), AsId::new(y)) {
                b.add_link(AsId::new(x), AsId::new(y)).unwrap();
            }
        }
        let original = b.build();
        let mut rng = StdRng::seed_from_u64(seed);
        let fixed = make_biconnected(original.clone(), &mut rng);
        prop_assert!(fixed.is_biconnected());
        for link in original.links() {
            prop_assert!(fixed.has_link(link.a(), link.b()), "lost {link}");
        }
    }

    /// without_link and with_link are inverses.
    #[test]
    fn link_removal_and_insertion_are_inverses(
        n in 8usize..25,
        pick in 0usize..1000,
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi(random_costs(n, 1, 9, &mut rng), 0.3, &mut rng);
        let link = g.links()[pick % g.link_count()];
        let removed = g.without_link(link.a(), link.b()).unwrap();
        prop_assert!(!removed.has_link(link.a(), link.b()));
        prop_assert_eq!(removed.link_count(), g.link_count() - 1);
        let restored = removed.with_link(link.a(), link.b()).unwrap();
        prop_assert_eq!(restored, g);
    }

    /// with_cost changes exactly one declaration.
    #[test]
    fn with_cost_is_pointwise(
        n in 8usize..25,
        pick in 0u32..1000,
        new_cost in 0u64..100,
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi(random_costs(n, 1, 9, &mut rng), 0.3, &mut rng);
        let k = AsId::new(pick % n as u32);
        let g2 = g.with_cost(k, Cost::new(new_cost));
        for node in g.nodes() {
            if node == k {
                prop_assert_eq!(g2.cost(node), Cost::new(new_cost));
            } else {
                prop_assert_eq!(g2.cost(node), g.cost(node));
            }
        }
        prop_assert_eq!(g2.links(), g.links());
    }

    /// Traffic matrices: flows() reports exactly the non-zero demands and
    /// total_packets sums them.
    #[test]
    fn traffic_matrix_flow_consistency(
        n in 2usize..12,
        demands in proptest::collection::vec((0u32..12, 0u32..12, 0u64..50), 0..30),
    ) {
        let mut t = TrafficMatrix::zero(n);
        for (i, j, d) in demands {
            let (i, j) = (i % n as u32, j % n as u32);
            if i != j {
                t.set(AsId::new(i), AsId::new(j), d);
            }
        }
        let flow_sum: u64 = t.flows().map(|(_, _, d)| d).sum();
        prop_assert_eq!(flow_sum, t.total_packets());
        for (i, j, d) in t.flows() {
            prop_assert!(d > 0);
            prop_assert_eq!(t.demand(i, j), d);
            prop_assert!(i != j);
        }
    }

    /// Cost arithmetic: saturating addition is commutative, associative on
    /// samples, and absorbs infinity.
    #[test]
    fn cost_addition_laws(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4, c in 0u64..u64::MAX / 4) {
        let (ca, cb, cc) = (Cost::new(a), Cost::new(b), Cost::new(c));
        prop_assert_eq!(ca + cb, cb + ca);
        prop_assert_eq!((ca + cb) + cc, ca + (cb + cc));
        prop_assert_eq!(ca + Cost::INFINITE, Cost::INFINITE);
        prop_assert_eq!((ca + cb).checked_sub(cb), Some(ca));
    }

    /// Articulation points are sound: removing a reported cut vertex of a
    /// connected graph disconnects it (checked via a fresh graph without
    /// that node's links).
    #[test]
    fn articulation_points_disconnect(
        n in 4usize..16,
        edges in proptest::collection::vec((0u32..16, 0u32..16), 3..30),
    ) {
        let mut b = AsGraphBuilder::new();
        b.add_nodes(vec![Cost::ZERO; n]);
        for (x, y) in edges {
            let (x, y) = (x % n as u32, y % n as u32);
            if x != y && !b.has_link(AsId::new(x), AsId::new(y)) {
                b.add_link(AsId::new(x), AsId::new(y)).unwrap();
            }
        }
        let g = b.build();
        prop_assume!(g.is_connected());
        for cut in g.articulation_points() {
            // Remove every link of `cut`; the remaining graph (minus the
            // isolated cut vertex itself) must be disconnected.
            let mut punctured = g.clone();
            for &nb in g.neighbors(cut) {
                punctured = punctured.without_link(cut, nb).unwrap();
            }
            // Count connected components among nodes != cut.
            let mut seen = vec![false; n];
            seen[cut.index()] = true;
            let mut components = 0;
            for start in punctured.nodes() {
                if seen[start.index()] {
                    continue;
                }
                components += 1;
                let mut stack = vec![start];
                seen[start.index()] = true;
                while let Some(u) = stack.pop() {
                    for &v in punctured.neighbors(u) {
                        if !seen[v.index()] {
                            seen[v.index()] = true;
                            stack.push(v);
                        }
                    }
                }
            }
            prop_assert!(components >= 2, "removing {} does not disconnect", cut);
        }
    }
}

/// Compile-time-ish checks that core types satisfy the API guidelines'
/// thread-safety expectations.
#[test]
fn substrate_types_are_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<AsGraph>();
    assert_send_sync::<TrafficMatrix>();
    assert_send_sync::<Cost>();
    assert_send_sync::<AsId>();
}
