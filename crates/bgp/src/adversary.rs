//! Seeded Byzantine adversary models and the engine-side audit hooks.
//!
//! The paper's Sect. 7 closes on an unresolved trust gap: the mechanism is
//! strategyproof about *declared costs*, but the very ASes that benefit
//! from higher prices also run the distributed computation — "what is to
//! stop them from running a different algorithm that computes prices more
//! favorable to them?" This module gives that question a concrete shape:
//! an [`Adversary`] wraps an honest node at the *wire* layer. The wrapped
//! node ingests its inbox and evolves its internal state honestly; only
//! its outgoing advertisements are perturbed, per receiving neighbor, as
//! they are queued onto links. Every strategy is a deterministic function
//! of one `u64` seed (plus the destination and receiving neighbor), so
//! adversarial runs replay bit-identically.
//!
//! Detection is the other half: a [`WireAuditor`] attached to an engine
//! observes every link-level delivery and, per stage, accuses nodes whose
//! wire behavior diverges from what the honest protocol — fed the same
//! inbox — would have produced. The reference implementation lives in
//! `bgpvcg-core::audit::OnlineAuditor` (it needs the pricing node type);
//! this module only defines the engine-facing contract so the BGP crate
//! stays free of a dependency cycle.

use crate::dynamics::{LocalEvent, TopologyEvent};
use crate::message::{RouteAdvertisement, RouteInfo, Update};
use bgpvcg_netgraph::{AsId, Cost};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The five Byzantine strategies of the threat model (see
/// `docs/ROBUSTNESS.md` for the taxonomy and what catches each).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Strategy {
    /// Add a seed-derived margin to every finite advertised price — the
    /// paper's own worry: prices "more favorable to them".
    PriceInflate,
    /// Advertise route costs cheaper than true to attract traffic.
    CostUnderstate,
    /// Send different advertisements to different neighbors. Invisible to
    /// any single-neighborhood replay; only cross-neighbor comparison
    /// catches it.
    Equivocate,
    /// Freeze each destination's first advertisement and re-send that
    /// stale route forever — suppressing every later revision and
    /// withdrawal.
    Replay,
    /// Advertise withdrawals for routes the node actually selected.
    PhantomWithdraw,
}

impl Strategy {
    /// Every strategy, in matrix order.
    pub const ALL: [Strategy; 5] = [
        Strategy::PriceInflate,
        Strategy::CostUnderstate,
        Strategy::Equivocate,
        Strategy::Replay,
        Strategy::PhantomWithdraw,
    ];

    /// Stable display name (used by experiment tables and docs).
    pub fn name(self) -> &'static str {
        match self {
            Strategy::PriceInflate => "price-inflate",
            Strategy::CostUnderstate => "cost-understate",
            Strategy::Equivocate => "equivocate",
            Strategy::Replay => "replay",
            Strategy::PhantomWithdraw => "phantom-withdraw",
        }
    }

    /// Stable numeric code for the `AdversaryInjected` trace event.
    pub fn code(self) -> u32 {
        match self {
            Strategy::PriceInflate => 0,
            Strategy::CostUnderstate => 1,
            Strategy::Equivocate => 2,
            Strategy::Replay => 3,
            Strategy::PhantomWithdraw => 4,
        }
    }
}

/// A Byzantine wire-layer wrapper around one honest node.
///
/// Engines consult the adversary on every outgoing delivery (broadcast
/// copies and session full-table unicasts alike): [`Adversary::perturb`]
/// either returns a corrupted copy for that specific neighbor or `None`
/// to let the honest payload through unchanged. Perturbed advertisements
/// stay well-formed (`RouteSelector` drops malformed ones silently), so
/// the corruption actually lands in receivers' tables.
#[derive(Debug, Clone)]
pub struct Adversary {
    strategy: Strategy,
    seed: u64,
    /// Seed-derived margin added/subtracted by the pricing strategies.
    margin: u64,
    /// Replay memory: the first advertisement ever sent per destination,
    /// frozen and re-sent in place of every later revision.
    frozen: BTreeMap<AsId, RouteInfo>,
    /// Perturbed advertisements emitted so far (over all neighbors).
    injected: u64,
}

impl Adversary {
    /// Creates an adversary playing `strategy`, fully determined by `seed`.
    pub fn new(strategy: Strategy, seed: u64) -> Self {
        Adversary {
            strategy,
            seed,
            margin: 1 + (seed % 7),
            frozen: BTreeMap::new(),
            injected: 0,
        }
    }

    /// The strategy being played.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The seed the behavior is derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of perturbed advertisements emitted so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Perturbs `update` as delivered to neighbor `to`, where `rank` is
    /// the neighbor's position in the sender's (sorted) adjacency list.
    /// Returns `None` when this delivery passes through honestly.
    ///
    /// The perturbation is per-(destination, neighbor) deterministic, so
    /// the adversary is *self-consistent*: full-table session resends
    /// corrupt the same entries the same way, and runs replay exactly.
    pub fn perturb(&mut self, _to: AsId, rank: usize, update: &Update) -> Option<Update> {
        let mut advertisements = Vec::with_capacity(update.advertisements.len());
        let mut changed = 0u64;
        for ad in &update.advertisements {
            let info = match self.strategy {
                Strategy::PriceInflate => inflate_prices(&ad.info, self.margin),
                Strategy::CostUnderstate => understate_cost(&ad.info, self.margin),
                Strategy::Equivocate => equivocate(&ad.info, rank, self.margin),
                Strategy::Replay => replay(&mut self.frozen, ad),
                Strategy::PhantomWithdraw => phantom_withdraw(ad, self.seed),
            };
            match info {
                Some(info) => {
                    changed += 1;
                    advertisements.push(RouteAdvertisement {
                        destination: ad.destination,
                        info,
                    });
                }
                None => advertisements.push(ad.clone()),
            }
        }
        if changed == 0 {
            return None;
        }
        self.injected += changed;
        Some(Update {
            from: update.from,
            sender_costs: update.sender_costs.clone(),
            advertisements,
            id: update.id,
            causes: update.causes.clone(),
        })
    }
}

/// Price-inflate: every finite price entry gains `margin`.
fn inflate_prices(info: &RouteInfo, margin: u64) -> Option<RouteInfo> {
    let RouteInfo::Reachable {
        path,
        path_cost,
        prices,
    } = info
    else {
        return None;
    };
    if !prices.iter().any(|p| p.is_finite()) {
        return None;
    }
    let prices = prices
        .iter()
        .map(|&p| match p.finite() {
            Some(v) => Cost::new(v + margin),
            None => p,
        })
        .collect();
    Some(RouteInfo::Reachable {
        path: path.clone(),
        path_cost: *path_cost,
        prices,
    })
}

/// Cost-understate: a positive path cost shrinks by `margin` (floored at
/// zero), making the route look cheaper than it is.
fn understate_cost(info: &RouteInfo, margin: u64) -> Option<RouteInfo> {
    let RouteInfo::Reachable {
        path,
        path_cost,
        prices,
    } = info
    else {
        return None;
    };
    let true_cost = path_cost.finite()?;
    if true_cost == 0 {
        return None;
    }
    Some(RouteInfo::Reachable {
        path: path.clone(),
        path_cost: Cost::new(true_cost.saturating_sub(margin)),
        prices: prices.clone(),
    })
}

/// Equivocate: the first neighbor (rank 0) hears the truth, every other
/// neighbor hears the path cost inflated by `margin` — two neighbors of a
/// biconnected node are thus guaranteed to hear different stories about
/// the same destination.
fn equivocate(info: &RouteInfo, rank: usize, margin: u64) -> Option<RouteInfo> {
    if rank == 0 {
        return None;
    }
    let RouteInfo::Reachable {
        path,
        path_cost,
        prices,
    } = info
    else {
        return None;
    };
    Some(RouteInfo::Reachable {
        path: path.clone(),
        path_cost: path_cost.saturating_add(Cost::new(margin)),
        prices: prices.clone(),
    })
}

/// Replay: the first advertisement per destination is frozen; every later
/// revision or withdrawal is replaced by the frozen original.
fn replay(frozen: &mut BTreeMap<AsId, RouteInfo>, ad: &RouteAdvertisement) -> Option<RouteInfo> {
    match frozen.get(&ad.destination) {
        Some(stale) if *stale != ad.info => Some(stale.clone()),
        Some(_) => None,
        None => {
            frozen.insert(ad.destination, ad.info.clone());
            None
        }
    }
}

/// Phantom-withdraw: routes toward seed-selected destinations (about half
/// of them) are advertised as withdrawn even though the node selected and
/// uses them.
fn phantom_withdraw(ad: &RouteAdvertisement, seed: u64) -> Option<RouteInfo> {
    if !matches!(ad.info, RouteInfo::Reachable { .. }) {
        return None;
    }
    if (u64::from(ad.destination.index() as u32) + seed).is_multiple_of(2) {
        Some(RouteInfo::Withdrawn)
    } else {
        None
    }
}

/// What a [`WireAuditor`] concluded about one diverging destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFinding {
    /// The destination whose advertisement diverged.
    pub destination: AsId,
    /// What the honest replay says the node should be advertising
    /// (`None` = a withdrawal / silence).
    pub expected: Option<RouteInfo>,
    /// What the wire actually carried (`None` = a withdrawal / silence).
    pub advertised: Option<RouteInfo>,
    /// `true` when the divergence is two neighbors hearing different
    /// stories (equivocation) rather than a divergence from the honest
    /// replay.
    pub equivocation: bool,
}

/// One per-stage accusation: a node whose wire behavior diverged from the
/// honest protocol, with the specific destinations and expected-vs-seen
/// values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Accusation {
    /// The accused AS.
    pub node: AsId,
    /// The stage at which the divergence was established.
    pub stage: u64,
    /// Every diverging destination, in ascending order.
    pub findings: Vec<WireFinding>,
}

/// An engine-attached watchdog observing link-level deliveries.
///
/// [`SyncEngine`](crate::engine::SyncEngine) calls [`on_wire`] for every
/// delivery it queues (broadcast copies and unicasts alike, in its
/// deterministic ascending-sender order), [`on_topology`] /
/// [`on_local_event`] when topology events mutate the network mid-run,
/// and [`end_stage`] after the stage-0 reaction broadcasts and after
/// every executed stage. Accusations returned from `end_stage` drive the
/// engine's quarantine machinery.
///
/// [`on_wire`]: WireAuditor::on_wire
/// [`on_topology`]: WireAuditor::on_topology
/// [`on_local_event`]: WireAuditor::on_local_event
/// [`begin_stage`]: WireAuditor::begin_stage
/// [`end_stage`]: WireAuditor::end_stage
pub trait WireAuditor: Send {
    /// A payload was queued from `from` onto the link toward `to`.
    fn on_wire(&mut self, from: AsId, to: AsId, update: &Arc<Update>);

    /// The engine is about to execute `stage`: every delivery narrated via
    /// [`on_wire`](WireAuditor::on_wire) so far will be ingested by its
    /// receiver *in this stage* (the engine's double-buffer swap). Auditors
    /// move their staged deliveries into the active inbox here, so that
    /// reaction broadcasts emitted between stages (quarantine fallout) are
    /// replayed at exactly the stage real nodes handle them.
    fn begin_stage(&mut self, stage: u64);

    /// A topology event is about to mutate the network (quarantines
    /// included). Auditors drop state for downed nodes here.
    fn on_topology(&mut self, event: &TopologyEvent);

    /// Node `node` is about to apply `event` as its local view of a
    /// topology change (the engine's stage-0 reaction path).
    fn on_local_event(&mut self, node: AsId, event: &LocalEvent);

    /// The engine finished delivering stage `stage`; cross-check and
    /// return any accusations (empty when everyone behaved).
    fn end_stage(&mut self, stage: u64) -> Vec<Accusation>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{PathEntry, SharedPath};

    fn reachable(dest: u32, cost: u64, prices: &[u64]) -> RouteAdvertisement {
        let path: SharedPath = vec![
            PathEntry {
                node: AsId::new(9),
                cost: Cost::new(1),
            },
            PathEntry {
                node: AsId::new(7),
                cost: Cost::new(2),
            },
            PathEntry {
                node: AsId::new(dest),
                cost: Cost::new(1),
            },
        ]
        .into();
        RouteAdvertisement {
            destination: AsId::new(dest),
            info: RouteInfo::Reachable {
                path,
                path_cost: Cost::new(cost),
                prices: prices.iter().map(|&p| Cost::new(p)).collect(),
            },
        }
    }

    fn update_with(ads: Vec<RouteAdvertisement>) -> Update {
        Update {
            from: AsId::new(9),
            sender_costs: Vec::new(),
            advertisements: ads,
            id: 1,
            causes: Vec::new(),
        }
    }

    #[test]
    fn strategies_are_deterministic_in_the_seed() {
        for strategy in Strategy::ALL {
            let update = update_with(vec![reachable(3, 5, &[2, 4])]);
            let a = Adversary::new(strategy, 11).perturb(AsId::new(7), 1, &update);
            let b = Adversary::new(strategy, 11).perturb(AsId::new(7), 1, &update);
            assert_eq!(a, b, "{}", strategy.name());
        }
    }

    #[test]
    fn price_inflate_raises_only_finite_prices() {
        let update = update_with(vec![reachable(3, 5, &[2])]);
        let mut adv = Adversary::new(Strategy::PriceInflate, 0);
        let perturbed = adv.perturb(AsId::new(7), 0, &update).expect("perturbs");
        let RouteInfo::Reachable { prices, .. } = &perturbed.advertisements[0].info else {
            panic!("stays reachable");
        };
        assert_eq!(prices[0], Cost::new(2 + 1));
        assert_eq!(adv.injected(), 1);
        // All-infinite price arrays pass through untouched.
        let inf = update_with(vec![RouteAdvertisement {
            destination: AsId::new(3),
            info: RouteInfo::Reachable {
                path: reachable(3, 5, &[]).info.path().unwrap().to_vec().into(),
                path_cost: Cost::new(5),
                prices: vec![Cost::INFINITE],
            },
        }]);
        assert!(adv.perturb(AsId::new(7), 0, &inf).is_none());
    }

    #[test]
    fn cost_understate_floors_at_zero() {
        let update = update_with(vec![reachable(3, 2, &[])]);
        let mut adv = Adversary::new(Strategy::CostUnderstate, 6); // margin 7
        let perturbed = adv.perturb(AsId::new(7), 0, &update).expect("perturbs");
        assert_eq!(
            perturbed.advertisements[0].info.path_cost(),
            Some(Cost::ZERO)
        );
        // Zero-cost routes cannot be understated further.
        let free = update_with(vec![reachable(3, 0, &[])]);
        assert!(adv.perturb(AsId::new(7), 0, &free).is_none());
    }

    #[test]
    fn equivocate_spares_the_first_neighbor() {
        let update = update_with(vec![reachable(3, 5, &[])]);
        let mut adv = Adversary::new(Strategy::Equivocate, 0);
        assert!(adv.perturb(AsId::new(2), 0, &update).is_none());
        let other = adv.perturb(AsId::new(7), 1, &update).expect("perturbs");
        assert_eq!(
            other.advertisements[0].info.path_cost(),
            Some(Cost::new(5 + 1))
        );
    }

    #[test]
    fn replay_freezes_the_first_advertisement() {
        let mut adv = Adversary::new(Strategy::Replay, 0);
        let first = update_with(vec![reachable(3, 5, &[])]);
        assert!(
            adv.perturb(AsId::new(7), 0, &first).is_none(),
            "first passes"
        );
        let revised = update_with(vec![reachable(3, 4, &[])]);
        let replayed = adv.perturb(AsId::new(7), 0, &revised).expect("replays");
        assert_eq!(
            replayed.advertisements[0].info, first.advertisements[0].info,
            "the stale original is re-sent"
        );
        // Withdrawals are suppressed the same way.
        let withdrawn = update_with(vec![RouteAdvertisement {
            destination: AsId::new(3),
            info: RouteInfo::Withdrawn,
        }]);
        let replayed = adv.perturb(AsId::new(7), 0, &withdrawn).expect("replays");
        assert_eq!(
            replayed.advertisements[0].info,
            first.advertisements[0].info
        );
    }

    #[test]
    fn phantom_withdraw_hits_seed_selected_destinations() {
        let mut adv = Adversary::new(Strategy::PhantomWithdraw, 0);
        let even = update_with(vec![reachable(4, 5, &[])]);
        let perturbed = adv.perturb(AsId::new(7), 0, &even).expect("perturbs");
        assert_eq!(perturbed.advertisements[0].info, RouteInfo::Withdrawn);
        let odd = update_with(vec![reachable(5, 5, &[])]);
        assert!(adv.perturb(AsId::new(7), 0, &odd).is_none());
    }
}
