//! Seeded fault injection and lossy-channel recovery.
//!
//! The paper's convergence results (Sect. 5–6) assume reliable message
//! exchange between neighbors. This module drops that assumption and shows
//! the mechanism *self-stabilizes*: a [`ChaosEngine`] perturbs the
//! inter-node frame streams — dropping, duplicating, delaying (and thereby
//! reordering) frames, flapping links, crashing and restarting whole nodes
//! — all replayable from a single `u64` seed, while a sequenced session
//! layer ([`Frame`]/[`FrameKind`], wire format in [`crate::wire`])
//! recovers: per-direction epochs and sequence numbers reject stale or
//! duplicated state, cumulative acks drive retransmission, and a hold
//! timer turns silence into an implicit link failure exactly like an
//! explicit [`LocalEvent::LinkDown`]. Once the fault schedule's horizon
//! passes, every run reconverges to the same `(routes, prices)` fixpoint
//! as a fault-free run — the property `tests/chaos_parity.rs` checks over
//! topology families × fault seeds.
//!
//! # Session protocol
//!
//! Each *direction* of each link carries an independent stream:
//!
//! * **Establishment.** The sender allocates a fresh epoch from a
//!   harness-global counter (monotone across crashes, the role TCP's
//!   randomized ISNs play) and sends [`FrameKind::Open`] (seq 0) followed
//!   by its full table (seq 1) — a restarted node therefore rejoins from
//!   scratch simply by re-establishing.
//! * **Reception.** Frames of an older epoch are stale and dropped; a
//!   newer epoch resets the receive state (traced as
//!   [`TraceEvent::SessionReset`]); within the accepted epoch, sequence
//!   numbers dedupe, a reorder buffer restores order, and delivery is
//!   strictly in-order — so a node's Rib-In can never regress to an
//!   earlier advertisement, preserving the monotone price relaxation.
//! * **Acks and retransmission.** Every frame piggybacks the cumulative
//!   receive state of the reverse stream; unacknowledged frames are
//!   retransmitted after [`RETRANSMIT_AFTER`] stages (traced as
//!   [`TraceEvent::Retransmit`]).
//! * **Crash detection.** A peer whose acks *stop matching* the sender's
//!   epoch after having matched it once has lost its receive state
//!   (crashed and restarted), so the sender re-establishes with a full
//!   table. The "after having matched once" guard is what makes crossed
//!   Opens at startup terminate instead of ping-ponging.
//! * **Hold timer.** [`HOLD_STAGES`] of silence on an active session is
//!   an implicit link failure: the node applies
//!   [`LocalEvent::LinkDown`], tears both directions down, and relearns
//!   via re-establishment if the link ever heals. Keepalives
//!   ([`FrameKind::Keepalive`]) keep healthy-but-quiet sessions alive.
//!
//! See `docs/ROBUSTNESS.md` for the full fault model and the
//! self-stabilization argument.

use crate::adversary::Adversary;
use crate::dynamics::LocalEvent;
use crate::message::{Frame, FrameKind, Update};
use crate::node::ProtocolNode;
use crate::telemetry::UpdateTracer;
use crate::wire;
use bgpvcg_netgraph::{AsGraph, AsId};
use bgpvcg_telemetry::flight::{self, FlightRecorder, StateSnapshot};
use bgpvcg_telemetry::profile::span;
use bgpvcg_telemetry::{
    Clock, HealthConfig, HealthSink, SpanId, SpanProfiler, SystemClock, Telemetry, TraceEvent,
    TraceSink,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// Stages an unacknowledged frame waits before being retransmitted. Two
/// stages cover the round trip on a healthy channel (deliver next stage,
/// ack the stage after); the margin avoids spurious retransmits under
/// mild delay faults.
pub const RETRANSMIT_AFTER: u64 = 4;

/// Stages of send-side silence after which a keepalive is emitted, so a
/// healthy but quiet session never trips the peer's hold timer.
pub const KEEPALIVE_AFTER: u64 = 4;

/// Stages of receive-side silence after which a session is declared dead
/// and the link implicitly down. Must comfortably exceed
/// [`KEEPALIVE_AFTER`] plus delivery latency.
pub const HOLD_STAGES: u64 = 12;

/// Trace encoding of the injected fault kinds (the `fault` field of
/// [`TraceEvent::FaultInjected`]).
pub mod fault {
    /// Frame silently discarded.
    pub const DROP: u32 = 0;
    /// Frame delivered twice.
    pub const DUPLICATE: u32 = 1;
    /// Frame delivery postponed by a bounded number of stages (the
    /// mechanism by which reordering arises: later frames overtake).
    pub const DELAY: u32 = 2;
    /// Link flap or silent cut: the channel eats everything for a window
    /// (flap) or forever (cut), with no notification to either end.
    pub const LINK_FLAP: u32 = 3;
    /// Node crash: protocol state lost, every incident channel emptied.
    pub const CRASH: u32 = 4;
    /// The `peer` field's value for node-level faults, which have no peer.
    pub const NODE_PEER: u32 = u32::MAX;
}

/// A deterministic, seed-replayable fault schedule.
///
/// Stochastic channel faults (drop / duplicate / delay) apply to every
/// frame sent before `horizon`, drawn from a [`StdRng`] seeded with
/// `seed`; structural faults (crashes, restarts, flaps, cuts) fire at the
/// exact stages listed. Identical plans produce bit-identical runs.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// RNG seed for the stochastic channel faults.
    pub seed: u64,
    /// Per-frame probability of a silent drop (before `horizon`).
    pub drop_rate: f64,
    /// Per-frame probability of duplicate delivery (before `horizon`).
    pub duplicate_rate: f64,
    /// Per-frame probability of delayed delivery (before `horizon`).
    pub delay_rate: f64,
    /// Upper bound, in stages, of a delay fault (drawn uniformly from
    /// `1..=max_delay`).
    pub max_delay: u64,
    /// Stage at which stochastic faults cease. Structural faults should
    /// also be scheduled before this for self-stabilization runs.
    pub horizon: u64,
    /// `(stage, node)` crash schedule: at `stage`, the node loses all
    /// protocol state and every incident channel is emptied.
    pub crashes: Vec<(u64, AsId)>,
    /// `(stage, node)` restart schedule: the node rejoins from scratch.
    pub restarts: Vec<(u64, AsId)>,
    /// `(from, until, a, b)` flap windows: during `from..until` the
    /// channel between `a` and `b` silently eats every frame, both
    /// directions, without tearing the link down.
    pub flaps: Vec<(u64, u64, AsId, AsId)>,
    /// `(stage, a, b)` silent permanent link deaths: from `stage` on, the
    /// link is gone but *neither endpoint is told* — only the hold timer
    /// can discover it. This is the scenario the hold-timer ≡ explicit
    /// `LinkDown` parity property exercises.
    pub cuts: Vec<(u64, AsId, AsId)>,
}

impl FaultPlan {
    /// A plan that injects nothing — the chaos harness degenerates to a
    /// (session-layered) reliable network.
    pub fn quiet() -> Self {
        FaultPlan {
            seed: 0,
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            delay_rate: 0.0,
            max_delay: 1,
            horizon: 0,
            crashes: Vec::new(),
            restarts: Vec::new(),
            flaps: Vec::new(),
            cuts: Vec::new(),
        }
    }

    /// A moderately hostile lossy channel: ~15% drops, ~10% duplicates,
    /// ~10% delays of up to 3 stages, ceasing at `horizon`.
    pub fn lossy(seed: u64, horizon: u64) -> Self {
        FaultPlan {
            seed,
            drop_rate: 0.15,
            duplicate_rate: 0.10,
            delay_rate: 0.10,
            max_delay: 3,
            horizon,
            crashes: Vec::new(),
            restarts: Vec::new(),
            flaps: Vec::new(),
            cuts: Vec::new(),
        }
    }

    /// Adds a crash/restart pair (builder style).
    #[must_use]
    pub fn with_crash(mut self, at: u64, node: AsId, restart_at: u64) -> Self {
        self.crashes.push((at, node));
        self.restarts.push((restart_at, node));
        self
    }

    /// Adds a flap window (builder style).
    #[must_use]
    pub fn with_flap(mut self, from: u64, until: u64, a: AsId, b: AsId) -> Self {
        self.flaps.push((from, until, a, b));
        self
    }

    /// Adds a silent permanent cut (builder style).
    #[must_use]
    pub fn with_cut(mut self, at: u64, a: AsId, b: AsId) -> Self {
        self.cuts.push((at, a, b));
        self
    }

    /// `true` while the undirected link `a`–`b` is inside a flap window at
    /// `stage`.
    pub fn is_flapped(&self, stage: u64, a: AsId, b: AsId) -> bool {
        self.flaps.iter().any(|&(from, until, x, y)| {
            stage >= from && stage < until && ((x, y) == (a, b) || (y, x) == (a, b))
        })
    }

    /// The last stage at which this plan can still inject anything —
    /// self-stabilization is only promised beyond it.
    pub fn activity_end(&self) -> u64 {
        let mut end = self.horizon;
        for &(s, _) in &self.crashes {
            end = end.max(s + 1);
        }
        for &(s, _) in &self.restarts {
            end = end.max(s + 1);
        }
        for &(_, until, ..) in &self.flaps {
            end = end.max(until);
        }
        for &(s, ..) in &self.cuts {
            end = end.max(s + 1);
        }
        end
    }
}

/// What a chaos run did, and what recovering from it cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosReport {
    /// Stages executed until the network stabilized (or the budget ran
    /// out).
    pub stages: u64,
    /// Frames delivered (keepalives included).
    pub messages: u64,
    /// Bytes delivered under the [`wire`] v1 frame model (the historical
    /// baseline column).
    pub bytes: u64,
    /// Bytes the same frame stream occupies under the v2 varint/delta
    /// encoding ([`wire::frame_size_v2_with`]).
    pub bytes_v2: u64,
    /// Frames silently dropped by the fault layer (flap/cut losses
    /// included).
    pub frames_dropped: u64,
    /// Frames duplicated by the fault layer.
    pub frames_duplicated: u64,
    /// Frames delayed by the fault layer.
    pub frames_delayed: u64,
    /// Sequenced frames retransmitted by the recovery layer.
    pub retransmits: u64,
    /// Receive-state resets (new epoch accepted or hold-timer teardown).
    pub session_resets: u64,
    /// Hold timers fired (implicit link failures observed).
    pub holds_fired: u64,
    /// Crashes injected.
    pub crashes: u64,
    /// Restarts injected.
    pub restarts: u64,
    /// Scheduled structural faults that were invalid when their stage came
    /// (e.g. crashing an already-crashed node) and were skipped.
    pub rejected_events: u64,
    /// `false` if the stage budget ran out before the network stabilized.
    pub converged: bool,
    /// Stages from the fault schedule's end to stabilization — the
    /// recovery cost the `e19_chaos` benchmark measures.
    pub recovery_stages: u64,
}

impl fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} stages ({} recovery), {} frames ({} v2 bytes), {} dropped, {} retransmits, {} resets, {} holds{}",
            self.stages,
            self.recovery_stages,
            self.messages,
            self.bytes_v2,
            self.frames_dropped,
            self.retransmits,
            self.session_resets,
            self.holds_fired,
            if self.converged {
                ""
            } else {
                " (NOT STABILIZED)"
            }
        )
    }
}

/// Send-direction session state toward one neighbor.
#[derive(Debug, Clone, Default)]
struct SendStream {
    /// `true` once an Open has been sent and not torn down since.
    established: bool,
    /// Epoch of the current stream (from the harness-global counter).
    epoch: u64,
    /// Next unassigned sequence number.
    next_seq: u64,
    /// Highest cumulative ack received for `epoch`.
    acked_high: u64,
    /// `true` once any frame acked this epoch — arms the crash-regression
    /// detector (see module docs).
    peer_acked: bool,
    /// Unacknowledged sequenced frames: `(seq, payload, last_sent_stage)`.
    unacked: Vec<(u64, FrameKind, u64)>,
    /// Stage of the most recent send (any frame kind).
    last_sent: u64,
}

/// Receive-direction session state from one neighbor.
#[derive(Debug, Clone, Default)]
struct RecvStream {
    /// Accepted epoch (0 = none yet).
    epoch: u64,
    /// Next in-order sequence number expected (== cumulative ack).
    next_seq: u64,
    /// Out-of-order frames of the accepted epoch, keyed by seq.
    buffer: BTreeMap<u64, FrameKind>,
    /// Stage a frame last arrived on this channel (any kind, any epoch).
    last_heard: u64,
    /// Stage a *sequenced* frame of the accepted epoch last arrived —
    /// drives the immediate-ack keepalive that keeps the retransmit timer
    /// non-spurious on healthy channels.
    last_seq_heard: u64,
}

/// Both directions of one node's session with one neighbor.
#[derive(Debug, Clone, Default)]
struct Session {
    send: SendStream,
    recv: RecvStream,
}

/// One direction of a link: frames in flight, each with the stage it
/// becomes deliverable.
#[derive(Debug, Clone, Default)]
struct Channel {
    queue: Vec<(u64, Frame)>,
}

/// The chaos harness: drives [`ProtocolNode`]s over seeded-faulty channels
/// through the sequenced session layer, in deterministic stages.
///
/// Unlike [`SyncEngine`](crate::engine::SyncEngine) this engine owns a
/// *transport*: nodes exchange [`Frame`]s, not bare updates, and the
/// harness injects the [`FaultPlan`]'s faults at the channel boundary.
/// Everything is single-threaded and iteration orders are fixed, so a
/// `(plan, topology)` pair replays bit-identically.
#[derive(Debug)]
pub struct ChaosEngine<N> {
    nodes: Vec<N>,
    /// Static physical adjacency from the construction graph.
    adjacency: Vec<Vec<AsId>>,
    /// Liveness of each node (crashed nodes are down).
    up: Vec<bool>,
    /// Undirected links administratively dead (silent cuts), normalized
    /// `(min, max)`.
    cut: Vec<(u32, u32)>,
    /// Per-node, per-neighbor session state.
    sessions: Vec<BTreeMap<u32, Session>>,
    /// Directed channels keyed `(sender, receiver)`.
    channels: BTreeMap<(u32, u32), Channel>,
    plan: FaultPlan,
    rng: StdRng,
    /// Harness-global epoch allocator (monotone across crashes).
    epoch_counter: u64,
    /// Monotone provenance counter for broadcast [`Update`]s (0 = never
    /// broadcast). Session full-table syncs are deliberately unstamped:
    /// they re-state environment-known state, so advertisements they cause
    /// attribute to cause 0 like origin advertisements do.
    update_seq: u64,
    stage: u64,
    report: ChaosReport,
    telemetry: Option<Telemetry>,
    tracer: Option<UpdateTracer>,
    /// Attached divergence flight recorder, dumped when a run exhausts its
    /// stage budget without stabilizing.
    flight: Option<FlightRecorder>,
    /// Scratch: updates delivered in-order this stage, per node index.
    pending: Vec<Vec<Arc<Update>>>,
    /// Scratch: `true` while the current stage has observed recovery-layer
    /// or protocol activity (used by the stabilization detector).
    stage_active: bool,
    /// Reusable scratch buffer for v2 byte accounting — one encoder per
    /// engine, zero per-frame allocations.
    scratch: Vec<u8>,
    /// Per-node Byzantine wire taps (see [`crate::adversary`]); `None` =
    /// honest. Taps perturb outgoing Data payloads — broadcasts *and*
    /// session full-table resends — through the same deterministic
    /// function, so retransmitted and re-established streams stay
    /// self-consistent and runs replay exactly.
    adversaries: Vec<Option<Adversary>>,
    /// Attached hierarchical span profiler (`None` = zero overhead); see
    /// [`attach_profiler`](Self::attach_profiler).
    profiler: Option<SpanProfiler>,
    /// Clock backing the profiler's timestamps.
    prof_clock: Option<Arc<dyn Clock>>,
    /// Attached streaming health monitor, teed into the trace stream; see
    /// [`attach_health`](Self::attach_health).
    health: Option<Arc<HealthSink>>,
    /// Whether the one-shot health-stall post-mortem has been written.
    health_stall_dumped: bool,
}

impl<N: ProtocolNode> ChaosEngine<N> {
    /// Creates a harness over the graph's topology with one prepared node
    /// per AS and the given fault plan.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the graph's node count or ids
    /// are out of order.
    pub fn new(graph: &AsGraph, nodes: Vec<N>, plan: FaultPlan) -> Self {
        assert_eq!(nodes.len(), graph.node_count(), "one node per AS");
        for (idx, node) in nodes.iter().enumerate() {
            assert_eq!(node.id().index(), idx, "nodes must be in AS order");
        }
        let n = nodes.len();
        let mut channels = BTreeMap::new();
        for i in graph.nodes() {
            for &j in graph.neighbors(i) {
                channels.insert((i.index() as u32, j.index() as u32), Channel::default());
            }
        }
        let rng = StdRng::seed_from_u64(plan.seed);
        ChaosEngine {
            nodes,
            adjacency: graph.nodes().map(|k| graph.neighbors(k).to_vec()).collect(),
            up: vec![true; n],
            cut: Vec::new(),
            sessions: vec![BTreeMap::new(); n],
            channels,
            plan,
            rng,
            epoch_counter: 0,
            update_seq: 0,
            stage: 0,
            report: ChaosReport {
                converged: true,
                ..ChaosReport::default()
            },
            telemetry: None,
            tracer: None,
            flight: None,
            pending: vec![Vec::new(); n],
            stage_active: false,
            scratch: Vec::new(),
            adversaries: (0..n).map(|_| None).collect(),
            profiler: None,
            prof_clock: None,
            health: None,
            health_stall_dumped: false,
        }
    }

    /// Arms a Byzantine wire tap on `node` (see [`crate::adversary`]):
    /// every outgoing Data payload — change broadcast or session
    /// full-table resend — passes through the adversary's deterministic
    /// per-neighbor perturbation before framing. The node's own protocol
    /// state stays honest; only what crosses the wire lies. Delta
    /// encoding is disabled on the node so every perturbed advertisement
    /// carries absolute state the receivers can ingest directly.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_adversary(&mut self, node: AsId, adversary: Adversary) {
        self.nodes[node.index()].configure_delta_encoding(false);
        self.adversaries[node.index()] = Some(adversary);
    }

    /// The Byzantine tap armed on `node`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn adversary(&self, node: AsId) -> Option<&Adversary> {
        self.adversaries[node.index()].as_ref()
    }

    /// Runs an outgoing Data payload from `from` toward `to` through
    /// `from`'s Byzantine tap, if armed. Returns the perturbed payload
    /// to frame instead (tracing the injection), or `None` when the
    /// delivery passes through honestly.
    fn adversarial_payload(&mut self, from: u32, to: u32, update: &Update) -> Option<Update> {
        // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
        self.adversaries[from as usize].as_ref()?;
        self.prof_enter(span::ADVERSARY_TAP);
        let out = self.adversarial_payload_tapped(from, to, update);
        self.prof_exit();
        out
    }

    /// The armed-tap body of [`adversarial_payload`]
    /// (Self::adversarial_payload), split out so the profiler span
    /// brackets every early return.
    fn adversarial_payload_tapped(
        &mut self,
        from: u32,
        to: u32,
        update: &Update,
    ) -> Option<Update> {
        // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
        let rank = self.adjacency[from as usize]
            .iter()
            .position(|a| a.index() as u32 == to)?;
        // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
        let adversary = self.adversaries[from as usize].as_mut()?;
        let strategy = adversary.strategy().code();
        let perturbed = adversary.perturb(AsId::new(to), rank, update)?;
        self.record(&TraceEvent::AdversaryInjected {
            stage: self.stage,
            node: from,
            peer: to,
            strategy,
        });
        Some(perturbed)
    }

    /// Attaches observability: fault injections, retransmits, session
    /// resets and restarts are traced, and broadcast updates narrate
    /// through the same [`UpdateTracer`] the synchronous engine uses.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.tracer = Some(UpdateTracer::new(telemetry));
        self.telemetry = Some(telemetry.clone());
    }

    /// Attaches a divergence flight recorder: the most recent `capacity`
    /// trace events are retained, and a run that exhausts its stage budget
    /// without stabilizing dumps the tail plus per-node session snapshots
    /// to `path` (see [`bgpvcg_telemetry::flight`]). Call after
    /// [`attach_telemetry`](Self::attach_telemetry): the recorder tees off
    /// whatever telemetry is attached at that point (and works standalone
    /// on a detached engine).
    pub fn attach_flight_recorder(&mut self, path: &Path, capacity: usize) {
        let recorder = FlightRecorder::new(path.to_path_buf(), capacity);
        let telemetry = match &self.telemetry {
            Some(t) => t.tee(recorder.sink()),
            None => Telemetry::new(recorder.sink()),
        };
        self.tracer = Some(UpdateTracer::new(&telemetry));
        self.telemetry = Some(telemetry);
        self.flight = Some(recorder);
    }

    /// The attached flight recorder, if any.
    pub fn flight_recorder(&self) -> Option<&FlightRecorder> {
        self.flight.as_ref()
    }

    /// Attaches the hierarchical span profiler over the harness phases
    /// (per-stage root, route-select/handle, wire framing, and the
    /// session/retransmit timer pass). Timestamps come from the attached
    /// telemetry's clock, or a fresh [`SystemClock`] when detached. Call
    /// after [`attach_telemetry`](Self::attach_telemetry).
    pub fn attach_profiler(&mut self) {
        self.prof_clock = Some(match &self.telemetry {
            Some(t) => t.clock_handle(),
            None => Arc::new(SystemClock::new()),
        });
        self.profiler = Some(SpanProfiler::engine());
    }

    /// The attached span profiler's current totals, if any.
    pub fn profiler(&self) -> Option<&SpanProfiler> {
        self.profiler.as_ref()
    }

    /// Detaches and returns the span profiler (e.g. to merge shards).
    pub fn take_profiler(&mut self) -> Option<SpanProfiler> {
        self.prof_clock = None;
        self.profiler.take()
    }

    /// Attaches the streaming convergence-health monitor: a [`HealthSink`]
    /// is teed into the trace stream so it folds every event as recorded.
    /// [`run_to_stable`](Self::run_to_stable) polls the stall detector
    /// after every stage and — with a flight recorder attached — writes a
    /// [`flight::REASON_HEALTH_STALL`] post-mortem at first stall, before
    /// the stage budget runs out. Call after `attach_telemetry` /
    /// `attach_flight_recorder`.
    pub fn attach_health(&mut self, config: HealthConfig) {
        let sink = Arc::new(HealthSink::new(config));
        let telemetry = match &self.telemetry {
            Some(t) => t.tee(Arc::clone(&sink) as Arc<dyn TraceSink>),
            None => Telemetry::new(Arc::clone(&sink) as Arc<dyn TraceSink>),
        };
        self.tracer = Some(UpdateTracer::new(&telemetry));
        self.telemetry = Some(telemetry);
        self.health = Some(sink);
    }

    /// The attached health monitor, if any.
    pub fn health_sink(&self) -> Option<&Arc<HealthSink>> {
        self.health.as_ref()
    }

    /// Opens span `id` on the attached profiler (no-op when detached).
    fn prof_enter(&mut self, id: SpanId) {
        if let (Some(profiler), Some(clock)) = (self.profiler.as_mut(), self.prof_clock.as_ref()) {
            profiler.enter(id, clock.now_nanos());
        }
    }

    /// Closes the innermost open span (no-op when detached).
    fn prof_exit(&mut self) {
        if let (Some(profiler), Some(clock)) = (self.profiler.as_mut(), self.prof_clock.as_ref()) {
            profiler.exit(clock.now_nanos());
        }
    }

    /// Writes the one-shot health-stall post-mortem (the fired findings as
    /// snapshots plus the session-layer run counters). Best-effort; a
    /// no-op without a recorder.
    fn dump_health_flight(&mut self) {
        if self.health_stall_dumped {
            return;
        }
        self.health_stall_dumped = true;
        let Some(recorder) = &self.flight else {
            return;
        };
        let findings = self
            .health
            .as_ref()
            .map(|h| h.findings())
            .unwrap_or_default();
        let snapshots: Vec<StateSnapshot> = findings
            .iter()
            .take(64)
            .map(|f| StateSnapshot {
                node: f.node,
                fields: vec![
                    ("detector", u64::from(f.detector)),
                    ("stage", f.stage),
                    ("dest", u64::from(f.dest)),
                    ("count", f.count),
                    ("threshold", f.threshold),
                ],
            })
            .collect();
        let _ = recorder.dump(
            flight::REASON_HEALTH_STALL,
            self.stage,
            &[
                ("findings", findings.len() as u64),
                ("messages", self.report.messages),
                ("retransmits", self.report.retransmits),
                ("session_resets", self.report.session_resets),
                ("updates_stamped", self.update_seq),
                ("nodes", self.nodes.len() as u64),
            ],
            &snapshots,
        );
    }

    /// Emits end-of-run observability: freshly-fired health findings as
    /// `HealthVerdict` events and the profiler's cumulative per-span
    /// totals as `SpanSummary` events, stamped with the current stage.
    fn emit_run_observability(&mut self) {
        let Some(telemetry) = self.telemetry.clone() else {
            return;
        };
        if let Some(health) = self.health.as_ref() {
            for finding in health.drain_new_findings() {
                telemetry.record(&finding.to_event());
            }
        }
        if let Some(profiler) = self.profiler.as_ref() {
            for event in profiler.summary_events(self.stage) {
                telemetry.record(&event);
            }
        }
    }

    /// Writes the divergence dump after a budget exhaustion. Best-effort:
    /// I/O errors are swallowed, the recorder being advisory.
    fn dump_flight(&self) {
        let Some(recorder) = &self.flight else {
            return;
        };
        let mut snapshots: Vec<StateSnapshot> = self
            .sessions
            .iter()
            .zip(&self.up)
            .zip(&self.pending)
            .enumerate()
            .map(|(idx, ((sessions, &up), pending))| StateSnapshot {
                node: idx as u32,
                fields: vec![
                    ("up", u64::from(up)),
                    (
                        "sessions_established",
                        sessions.values().filter(|s| s.send.established).count() as u64,
                    ),
                    (
                        "unacked_frames",
                        sessions.values().map(|s| s.send.unacked.len() as u64).sum(),
                    ),
                    ("pending_updates", pending.len() as u64),
                ],
            })
            .collect();
        snapshots.truncate(64);
        let frames_in_flight: u64 = self.channels.values().map(|c| c.queue.len() as u64).sum();
        let _ = recorder.dump(
            flight::REASON_NOT_STABILIZED,
            self.stage,
            &[
                ("stages", self.report.stages),
                ("messages", self.report.messages),
                ("frames_dropped", self.report.frames_dropped),
                ("retransmits", self.report.retransmits),
                ("session_resets", self.report.session_resets),
                ("holds_fired", self.report.holds_fired),
                ("frames_in_flight", frames_in_flight),
                ("updates_stamped", self.update_seq),
                ("nodes", self.nodes.len() as u64),
            ],
            &snapshots,
        );
    }

    /// Read access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: AsId) -> &N {
        &self.nodes[id.index()]
    }

    /// Iterates over all nodes in AS order.
    pub fn nodes(&self) -> impl Iterator<Item = &N> {
        self.nodes.iter()
    }

    /// Enables or disables price-delta advertisement emission on every
    /// node. Session-resync full-table resends stay full either way.
    pub fn set_delta_encoding(&mut self, on: bool) {
        for node in &mut self.nodes {
            node.configure_delta_encoding(on);
        }
    }

    /// `true` if node `k` is currently crashed.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn is_down(&self, k: AsId) -> bool {
        !self.up[k.index()]
    }

    /// Stages executed so far.
    pub fn stage(&self) -> u64 {
        self.stage
    }

    /// Consumes the engine, returning the nodes (for fixpoint
    /// comparisons).
    pub fn into_nodes(self) -> Vec<N> {
        self.nodes
    }

    fn record(&self, event: &TraceEvent) {
        if let Some(t) = &self.telemetry {
            t.record(event);
        }
    }

    /// `true` if the undirected link `a`–`b` exists, both ends are up, and
    /// it has not been cut.
    fn live_link(&self, a: u32, b: u32) -> bool {
        let (lo, hi) = (a.min(b), a.max(b));
        // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
        self.up[a as usize]
            // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
            && self.up[b as usize]
            && !self.cut.contains(&(lo, hi))
            // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
            && self.adjacency[a as usize].contains(&AsId::new(b))
    }

    /// Sends `kind` from `from` to `to` through the fault layer; sequenced
    /// kinds consume a seq and enter the retransmit buffer.
    fn send_frame(&mut self, from: u32, to: u32, kind: FrameKind) {
        let stage = self.stage;
        // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
        let session = self.sessions[from as usize].entry(to).or_default();
        let sequenced = !matches!(kind, FrameKind::Keepalive);
        let seq = session.send.next_seq;
        if sequenced {
            session.send.next_seq += 1;
            session.send.unacked.push((seq, kind.clone(), stage));
        }
        session.send.last_sent = stage;
        let frame = Frame {
            epoch: session.send.epoch,
            seq,
            ack_epoch: session.recv.epoch,
            ack: session.recv.next_seq,
            kind,
        };
        self.transmit(from, to, frame);
    }

    /// Pushes a fully built frame into the channel, applying the plan's
    /// stochastic faults (and flap/cut/crash losses).
    fn transmit(&mut self, from: u32, to: u32, frame: Frame) {
        if !self.live_link(from, to) {
            // Crashed endpoint or administratively dead link: the frame
            // vanishes without being a counted stochastic fault.
            return;
        }
        let stage = self.stage;
        if self.plan.is_flapped(stage, AsId::new(from), AsId::new(to)) {
            self.report.frames_dropped += 1;
            return;
        }
        let mut deliver_at = stage + 1;
        if stage < self.plan.horizon {
            if self.rng.gen_bool(self.plan.drop_rate) {
                self.report.frames_dropped += 1;
                self.record(&TraceEvent::FaultInjected {
                    stage,
                    node: from,
                    peer: to,
                    fault: fault::DROP,
                });
                return;
            }
            if self.rng.gen_bool(self.plan.delay_rate) {
                deliver_at += self.rng.gen_range(1..=self.plan.max_delay.max(1));
                self.report.frames_delayed += 1;
                self.record(&TraceEvent::FaultInjected {
                    stage,
                    node: from,
                    peer: to,
                    fault: fault::DELAY,
                });
            }
            if self.rng.gen_bool(self.plan.duplicate_rate) {
                self.report.frames_duplicated += 1;
                self.record(&TraceEvent::FaultInjected {
                    stage,
                    node: from,
                    peer: to,
                    fault: fault::DUPLICATE,
                });
                if let Some(channel) = self.channels.get_mut(&(from, to)) {
                    channel.queue.push((deliver_at + 1, frame.clone()));
                }
            }
        }
        if let Some(channel) = self.channels.get_mut(&(from, to)) {
            channel.queue.push((deliver_at, frame));
        }
    }

    /// (Re)establishes the send stream `from → to`: fresh epoch, Open,
    /// full table. The sender also (re)attaches the neighbor locally —
    /// session establishment is what makes a link usable in this model.
    fn establish(&mut self, from: u32, to: u32) {
        self.epoch_counter += 1;
        let epoch = self.epoch_counter;
        let stage = self.stage;
        {
            // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
            let session = self.sessions[from as usize].entry(to).or_default();
            session.send.established = true;
            session.send.epoch = epoch;
            session.send.next_seq = 0;
            session.send.acked_high = 0;
            session.send.peer_acked = false;
            session.send.unacked.clear();
            // Re-arm the hold timer: a fresh session gets a full
            // `HOLD_STAGES` grace period to hear back before silence is
            // read as failure (otherwise a post-expiry re-establishment
            // would trip the still-stale timer immediately).
            session.recv.last_heard = stage;
        }
        // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
        let _ = self.nodes[from as usize].apply_event(LocalEvent::LinkUp(AsId::new(to)));
        self.send_frame(from, to, FrameKind::Open);
        // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
        let table = self.nodes[from as usize].full_table();
        if let Some(table) = table {
            let payload = self.adversarial_payload(from, to, &table).unwrap_or(table);
            self.send_frame(from, to, FrameKind::Data(payload));
        }
        self.stage_active = true;
    }

    /// Tears down both directions of the session with `peer` after a hold
    /// expiry, applying the implicit link-down to the node.
    fn hold_expire(&mut self, me: u32, peer: u32) {
        self.report.holds_fired += 1;
        self.report.session_resets += 1;
        self.stage_active = true;
        self.record(&TraceEvent::SessionReset {
            stage: self.stage,
            node: me,
            peer,
        });
        // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
        if let Some(session) = self.sessions[me as usize].get_mut(&peer) {
            session.send.established = false;
            session.send.peer_acked = false;
            session.send.unacked.clear();
            session.recv.epoch = 0;
            session.recv.next_seq = 0;
            session.recv.buffer.clear();
            session.recv.last_heard = self.stage;
        }
        // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
        let out = self.nodes[me as usize].apply_event(LocalEvent::LinkDown(AsId::new(peer)));
        if let Some(update) = out {
            self.broadcast(me, update);
        }
    }

    /// Broadcasts `update` from node `idx` as sequenced Data frames to
    /// every established session. The update is stamped with the next
    /// provenance id here, *before* tracing and framing, so receivers see
    /// the same id the tracer reported (frames carry the update by clone —
    /// provenance never crosses the wire codec).
    fn broadcast(&mut self, idx: u32, mut update: Update) {
        self.update_seq += 1;
        update.id = self.update_seq;
        self.stage_active = true;
        if let Some(tracer) = self.tracer.as_mut() {
            tracer.observe_update(&update, self.stage);
        }
        // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
        let neighbors = self.adjacency[idx as usize].clone();
        for to in neighbors {
            let to = to.index() as u32;
            // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
            let established = self.sessions[idx as usize]
                .get(&to)
                .is_some_and(|s| s.send.established);
            if established {
                let payload = self
                    .adversarial_payload(idx, to, &update)
                    .unwrap_or_else(|| update.clone());
                self.send_frame(idx, to, FrameKind::Data(payload));
            }
        }
    }

    /// Processes one frame arriving at `me` from `peer`; in-order Data
    /// payloads are queued into `pending[me]` for this stage's handle
    /// pass.
    fn receive(&mut self, me: u32, peer: u32, frame: Frame) {
        self.report.messages += 1;
        self.report.bytes += wire::frame_size(&frame) as u64;
        self.report.bytes_v2 += wire::frame_size_v2_with(&mut self.scratch, &frame) as u64;
        let stage = self.stage;
        let mut reestablish = false;
        let mut resets = 0u64;
        let mut opened = false;
        {
            // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
            let session = self.sessions[me as usize].entry(peer).or_default();
            session.recv.last_heard = stage;
            // Ack processing for our own stream toward `peer`.
            if session.send.established {
                if frame.ack_epoch == session.send.epoch {
                    if frame.ack > session.send.acked_high {
                        session.send.acked_high = frame.ack;
                        session.send.unacked.retain(|&(seq, ..)| seq >= frame.ack);
                    } else if session.send.peer_acked && frame.ack < session.send.acked_high {
                        // Cumulative acks regressed: the peer lost its
                        // receive state but re-adopted this epoch from a
                        // retransmitted frame before we noticed. (A
                        // spurious trigger from a delayed old frame is
                        // possible pre-horizon and merely wasteful.)
                        reestablish = true;
                    }
                    session.send.peer_acked = true;
                } else if session.send.peer_acked {
                    // The peer acked this epoch once and no longer does:
                    // it lost its receive state (crash/restart). Start
                    // over with a fresh epoch and a full table.
                    reestablish = true;
                }
            }
            // Sequencing for the peer's stream toward us.
            if frame.is_sequenced() {
                if frame.epoch < session.recv.epoch {
                    // Stale epoch: a frame from a torn-down incarnation.
                } else {
                    if frame.epoch > session.recv.epoch {
                        session.recv.epoch = frame.epoch;
                        session.recv.next_seq = 0;
                        session.recv.buffer.clear();
                        resets += 1;
                    }
                    session.recv.last_seq_heard = stage;
                    if frame.seq >= session.recv.next_seq {
                        session.recv.buffer.insert(frame.seq, frame.kind);
                        while let Some(kind) = session.recv.buffer.remove(&session.recv.next_seq) {
                            session.recv.next_seq += 1;
                            match kind {
                                FrameKind::Open => opened = true,
                                FrameKind::Data(update) => {
                                    // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
                                    self.pending[me as usize].push(Arc::new(update));
                                }
                                FrameKind::Keepalive => {}
                            }
                        }
                    }
                }
            }
        }
        if resets > 0 {
            self.report.session_resets += resets;
            self.stage_active = true;
            self.record(&TraceEvent::SessionReset {
                stage,
                node: me,
                peer,
            });
        }
        if opened {
            // An accepted Open precedes all Data of its epoch, so the
            // neighbor is attached before any of its routes are ingested.
            // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
            let _ = self.nodes[me as usize].apply_event(LocalEvent::LinkUp(AsId::new(peer)));
            self.stage_active = true;
            // The peer restarting its stream means it (re)initialized its
            // view of us — typically after dropping everything we ever
            // sent (restart, hold expiry, detected regression). Resend our
            // full table on our own stream so its Rib-In refills; an Open
            // triggers only Data, never a counter-Open, so two nodes can
            // never ping-pong establishments.
            // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
            let established = self.sessions[me as usize]
                .get(&peer)
                .is_some_and(|s| s.send.established);
            if established {
                // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
                if let Some(table) = self.nodes[me as usize].full_table() {
                    let payload = self.adversarial_payload(me, peer, &table).unwrap_or(table);
                    self.send_frame(me, peer, FrameKind::Data(payload));
                }
            }
        }
        if reestablish && self.live_link(me, peer) {
            // The peer's state loss also invalidates everything we learned
            // from it over the dead incarnation: bounce the link locally so
            // the stale Rib-In is dropped before the sessions restart.
            self.report.session_resets += 1;
            self.record(&TraceEvent::SessionReset {
                stage,
                node: me,
                peer,
            });
            // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
            let out = self.nodes[me as usize].apply_event(LocalEvent::LinkDown(AsId::new(peer)));
            if let Some(update) = out {
                self.broadcast(me, update);
            }
            self.establish(me, peer);
        }
    }

    /// Applies the structural faults scheduled for the current stage.
    fn apply_scheduled_faults(&mut self) {
        let stage = self.stage;
        let crashes: Vec<AsId> = self
            .plan
            .crashes
            .iter()
            .filter(|&&(s, _)| s == stage)
            .map(|&(_, k)| k)
            .collect();
        for k in crashes {
            if k.index() >= self.nodes.len() || !self.up[k.index()] {
                self.report.rejected_events += 1;
                continue;
            }
            self.crash(k);
        }
        let restarts: Vec<AsId> = self
            .plan
            .restarts
            .iter()
            .filter(|&&(s, _)| s == stage)
            .map(|&(_, k)| k)
            .collect();
        for k in restarts {
            if k.index() >= self.nodes.len() || self.up[k.index()] {
                self.report.rejected_events += 1;
                continue;
            }
            self.restart(k);
        }
        let cuts: Vec<(AsId, AsId)> = self
            .plan
            .cuts
            .iter()
            .filter(|&&(s, ..)| s == stage)
            .map(|&(_, a, b)| (a, b))
            .collect();
        for (a, b) in cuts {
            let (ai, bi) = (a.index() as u32, b.index() as u32);
            let key = (ai.min(bi), ai.max(bi));
            if ai as usize >= self.nodes.len()
                || bi as usize >= self.nodes.len()
                // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
                || !self.adjacency[ai as usize].contains(&b)
                || self.cut.contains(&key)
            {
                self.report.rejected_events += 1;
                continue;
            }
            self.cut.push(key);
            self.stage_active = true;
            self.record(&TraceEvent::FaultInjected {
                stage,
                node: ai,
                peer: bi,
                fault: fault::LINK_FLAP,
            });
            for dir in [(ai, bi), (bi, ai)] {
                if let Some(channel) = self.channels.get_mut(&dir) {
                    self.report.frames_dropped += channel.queue.len() as u64;
                    channel.queue.clear();
                }
            }
        }
        // Flap windows opening this stage: trace once and flush whatever
        // is in flight (the window also eats frames at delivery time).
        for &(from, _, a, b) in &self.plan.flaps {
            if from != stage {
                continue;
            }
            let (ai, bi) = (a.index() as u32, b.index() as u32);
            self.record(&TraceEvent::FaultInjected {
                stage,
                node: ai,
                peer: bi,
                fault: fault::LINK_FLAP,
            });
        }
        self.stage_active |= self
            .plan
            .flaps
            .iter()
            .any(|&(from, until, ..)| stage >= from && stage < until);
    }

    /// Crashes node `k`: state lost, channels emptied, sessions wiped.
    /// Neighbors are *not* told — their hold timers will notice.
    fn crash(&mut self, k: AsId) {
        let ki = k.index();
        // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
        self.up[ki] = false;
        self.report.crashes += 1;
        self.stage_active = true;
        self.record(&TraceEvent::FaultInjected {
            stage: self.stage,
            node: ki as u32,
            peer: fault::NODE_PEER,
            fault: fault::CRASH,
        });
        // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
        self.nodes[ki].reset();
        // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
        let neighbors = self.adjacency[ki].clone();
        for a in neighbors {
            // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
            let _ = self.nodes[ki].apply_event(LocalEvent::LinkDown(a));
            for dir in [(ki as u32, a.index() as u32), (a.index() as u32, ki as u32)] {
                if let Some(channel) = self.channels.get_mut(&dir) {
                    self.report.frames_dropped += channel.queue.len() as u64;
                    channel.queue.clear();
                }
            }
        }
        // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
        self.sessions[ki].clear();
        // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
        self.pending[ki].clear();
    }

    /// Restarts node `k` from scratch; its sessions re-establish in this
    /// stage's establishment pass.
    fn restart(&mut self, k: AsId) {
        let ki = k.index();
        // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
        self.up[ki] = true;
        self.report.restarts += 1;
        self.stage_active = true;
        self.record(&TraceEvent::NodeRestart {
            stage: self.stage,
            node: ki as u32,
        });
        // The crash already detached every link, so reset() restores a
        // link-less fresh node; the establishment pass this same stage
        // re-attaches neighbors and ships the full table. start() here
        // just primes the change-suppression memory with the origin.
        // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
        self.nodes[ki].reset();
        // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
        let _ = self.nodes[ki].start();
    }

    /// Executes one harness stage. Ordering within a stage is fixed —
    /// faults, establishment, delivery, handling, timers — and every loop
    /// iterates in ascending node/peer order, so runs replay exactly.
    pub fn step(&mut self) {
        self.prof_enter(span::STAGE);
        self.stage += 1;
        self.stage_active = false;
        let stage = self.stage;
        self.record(&TraceEvent::StageStart { stage });
        self.apply_scheduled_faults();

        // Establishment pass: every live directed link without an
        // established send stream opens one (initial startup, post-restart
        // rejoin, post-hold repair).
        for from in 0..self.nodes.len() as u32 {
            // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
            if !self.up[from as usize] {
                continue;
            }
            // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
            let peers: Vec<u32> = self.adjacency[from as usize]
                .iter()
                .map(|a| a.index() as u32)
                .collect();
            for to in peers {
                if !self.live_link(from, to) {
                    continue;
                }
                // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
                let established = self.sessions[from as usize]
                    .get(&to)
                    .is_some_and(|s| s.send.established);
                if !established {
                    self.establish(from, to);
                }
            }
        }

        // Delivery pass: pop due frames per directed channel in key order.
        let keys: Vec<(u32, u32)> = self.channels.keys().copied().collect();
        for (from, to) in keys {
            let due: Vec<Frame> = {
                let Some(channel) = self.channels.get_mut(&(from, to)) else {
                    continue;
                };
                let mut due = Vec::new();
                let mut rest = Vec::with_capacity(channel.queue.len());
                for (at, frame) in channel.queue.drain(..) {
                    if at <= stage {
                        due.push(frame);
                    } else {
                        rest.push((at, frame));
                    }
                }
                channel.queue = rest;
                due
            };
            for frame in due {
                // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
                if !self.up[to as usize] {
                    self.report.frames_dropped += 1;
                    continue;
                }
                if self.plan.is_flapped(stage, AsId::new(from), AsId::new(to)) {
                    self.report.frames_dropped += 1;
                    continue;
                }
                let (lo, hi) = (from.min(to), from.max(to));
                if self.cut.contains(&(lo, hi)) {
                    self.report.frames_dropped += 1;
                    continue;
                }
                self.receive(to, from, frame);
            }
        }

        // Handle pass: nodes ingest this stage's in-order Data payloads
        // and broadcast what changed.
        self.prof_enter(span::ROUTE_SELECT);
        for idx in 0..self.nodes.len() as u32 {
            // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
            let updates = std::mem::take(&mut self.pending[idx as usize]);
            // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
            if updates.is_empty() || !self.up[idx as usize] {
                continue;
            }
            self.stage_active = true;
            // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
            let out = self.nodes[idx as usize].handle(&updates);
            if let Some(update) = out {
                self.prof_enter(span::WIRE_ENCODE);
                self.broadcast(idx, update);
                self.prof_exit();
            }
        }
        self.prof_exit();

        // Timer pass: retransmits, hold expiry, keepalives.
        self.prof_enter(span::SESSION_RETRANSMIT);
        for me in 0..self.nodes.len() as u32 {
            // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
            if !self.up[me as usize] {
                continue;
            }
            // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
            let peers: Vec<u32> = self.sessions[me as usize].keys().copied().collect();
            for peer in peers {
                let (resend, expire, keepalive) = {
                    // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
                    let Some(session) = self.sessions[me as usize].get_mut(&peer) else {
                        continue;
                    };
                    let active = session.send.established || session.recv.epoch > 0;
                    let expire =
                        active && stage.saturating_sub(session.recv.last_heard) >= HOLD_STAGES;
                    let mut resend: Vec<(u64, FrameKind)> = Vec::new();
                    if session.send.established && !expire {
                        for (seq, kind, last_sent) in session.send.unacked.iter_mut() {
                            if stage.saturating_sub(*last_sent) >= RETRANSMIT_AFTER {
                                *last_sent = stage;
                                resend.push((*seq, kind.clone()));
                            }
                        }
                    }
                    // A keepalive goes out when the stream has been quiet
                    // long enough to worry the peer's hold timer, or — the
                    // immediate ack — when sequenced frames arrived this
                    // stage and nothing (which would have piggybacked the
                    // ack) was sent back, so the peer's retransmit timer
                    // never fires spuriously on a healthy channel.
                    let keepalive = session.send.established
                        && !expire
                        && resend.is_empty()
                        && (stage.saturating_sub(session.send.last_sent) >= KEEPALIVE_AFTER
                            || (session.recv.last_seq_heard == stage
                                && session.send.last_sent < stage));
                    (resend, expire, keepalive)
                };
                if expire {
                    self.hold_expire(me, peer);
                    continue;
                }
                for (seq, kind) in resend {
                    self.report.retransmits += 1;
                    self.stage_active = true;
                    self.record(&TraceEvent::Retransmit {
                        stage,
                        from: me,
                        to: peer,
                        seq,
                    });
                    let frame = {
                        // lint:allow(bounds: per-node session state is sized n at construction and node ids are below n)
                        let Some(session) = self.sessions[me as usize].get_mut(&peer) else {
                            continue;
                        };
                        session.send.last_sent = stage;
                        Frame {
                            epoch: session.send.epoch,
                            seq,
                            ack_epoch: session.recv.epoch,
                            ack: session.recv.next_seq,
                            kind,
                        }
                    };
                    self.transmit(me, peer, frame);
                }
                if keepalive {
                    self.send_frame(me, peer, FrameKind::Keepalive);
                }
            }
        }
        self.prof_exit();
        self.prof_exit();
    }

    /// `true` when nothing recovery-relevant is pending: no sequenced
    /// frames in flight, no retransmit backlog, and the stage produced no
    /// protocol or session activity.
    fn is_idle(&self) -> bool {
        if self.stage_active {
            return false;
        }
        let backlog = self
            .channels
            .values()
            .flat_map(|c| c.queue.iter())
            .any(|(_, frame)| frame.is_sequenced());
        if backlog {
            return false;
        }
        !self
            .sessions
            .iter()
            .flat_map(|peers| peers.values())
            .any(|s| s.send.established && !s.send.unacked.is_empty())
    }

    /// Runs stages until the network stabilizes (two consecutive idle
    /// stages after the fault schedule's end) or `max_stages` runs out.
    pub fn run_to_stable(&mut self, max_stages: u64) -> ChaosReport {
        let activity_end = self.plan.activity_end();
        let mut idle_streak = 0u64;
        while self.stage < max_stages {
            self.step();
            // Health bookkeeping: the monitor folded this stage's events
            // through the trace tee; at first stall verdict the flight
            // recorder is armed with the health post-mortem, before the
            // stage budget runs out and a generic not-stabilized dump
            // would bury the cause.
            self.prof_enter(span::HEALTH_FOLD);
            if self.health.as_ref().is_some_and(|h| h.stalled()) {
                self.dump_health_flight();
            }
            self.prof_exit();
            if self.stage > activity_end && self.is_idle() {
                idle_streak += 1;
                if idle_streak >= 2 {
                    self.finish(activity_end);
                    return self.report;
                }
            } else {
                idle_streak = 0;
            }
        }
        self.report.converged = false;
        self.finish(activity_end);
        // The health post-mortem, if one fired, is the richer artifact —
        // don't overwrite it with the generic budget-exhaustion dump.
        if !self.health_stall_dumped {
            self.dump_flight();
        }
        self.report
    }

    fn finish(&mut self, activity_end: u64) {
        self.report.stages = self.stage;
        self.report.recovery_stages = self.stage.saturating_sub(activity_end);
        if let Some(t) = &self.telemetry {
            t.record(&TraceEvent::Quiescent {
                stage: self.stage,
                messages: self.report.messages,
            });
        }
        self.emit_run_observability();
        if let Some(t) = &self.telemetry {
            t.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SyncEngine;
    use crate::node::PlainBgpNode;
    use bgpvcg_netgraph::generators::structured::{fig1, hypercube};
    use bgpvcg_netgraph::Cost;

    fn sync_fixpoint(g: &AsGraph) -> SyncEngine<PlainBgpNode> {
        let mut engine = SyncEngine::new(g, PlainBgpNode::from_graph(g));
        let report = engine.run_to_convergence();
        assert!(report.converged);
        engine
    }

    fn assert_route_parity(g: &AsGraph, chaos: &ChaosEngine<PlainBgpNode>) {
        let reference = sync_fixpoint(g);
        for i in g.nodes() {
            for j in g.nodes() {
                assert_eq!(
                    chaos.node(i).selector().route(j),
                    reference.node(i).selector().route(j),
                    "{i} -> {j}"
                );
            }
        }
    }

    #[test]
    fn quiet_plan_reaches_the_sync_fixpoint() {
        let g = fig1();
        let mut chaos = ChaosEngine::new(&g, PlainBgpNode::from_graph(&g), FaultPlan::quiet());
        let report = chaos.run_to_stable(200);
        assert!(report.converged, "{report}");
        assert_eq!(report.frames_dropped, 0);
        assert_eq!(report.retransmits, 0);
        assert_route_parity(&g, &chaos);
    }

    #[test]
    fn lossy_channels_recover_to_the_same_fixpoint() {
        let g = hypercube(3, Cost::new(2));
        for seed in 0..4 {
            let mut chaos =
                ChaosEngine::new(&g, PlainBgpNode::from_graph(&g), FaultPlan::lossy(seed, 20));
            let report = chaos.run_to_stable(400);
            assert!(report.converged, "seed {seed}: {report}");
            assert_route_parity(&g, &chaos);
        }
    }

    #[test]
    fn runs_replay_bit_identically_from_the_seed() {
        let g = hypercube(3, Cost::new(1));
        let run = |_: ()| {
            let mut chaos = ChaosEngine::new(
                &g,
                PlainBgpNode::from_graph(&g),
                FaultPlan::lossy(42, 16).with_crash(5, AsId::new(2), 9),
            );
            let report = chaos.run_to_stable(400);
            (report, chaos)
        };
        let (r1, c1) = run(());
        let (r2, c2) = run(());
        assert_eq!(r1, r2, "reports must replay exactly");
        for i in g.nodes() {
            for j in g.nodes() {
                assert_eq!(
                    c1.node(i).selector().route(j),
                    c2.node(i).selector().route(j)
                );
            }
        }
    }

    #[test]
    fn crash_and_restart_self_stabilize() {
        let g = hypercube(3, Cost::new(2));
        let mut chaos = ChaosEngine::new(
            &g,
            PlainBgpNode::from_graph(&g),
            FaultPlan::lossy(7, 24).with_crash(4, AsId::new(3), 12),
        );
        let report = chaos.run_to_stable(500);
        assert!(report.converged, "{report}");
        assert_eq!(report.crashes, 1);
        assert_eq!(report.restarts, 1);
        assert_route_parity(&g, &chaos);
    }

    #[test]
    fn silent_cut_converges_to_the_explicit_link_down_fixpoint() {
        let g = fig1();
        use bgpvcg_netgraph::generators::structured::Fig1;
        let mut chaos = ChaosEngine::new(
            &g,
            PlainBgpNode::from_graph(&g),
            FaultPlan::quiet().with_cut(6, Fig1::D, Fig1::Z),
        );
        let report = chaos.run_to_stable(400);
        assert!(report.converged, "{report}");
        assert!(report.holds_fired >= 2, "both ends must time out");
        // Reference: a reliable engine told about the failure explicitly.
        let mut reference = sync_fixpoint(&g);
        let _ = reference.apply_event(crate::dynamics::TopologyEvent::LinkDown(Fig1::D, Fig1::Z));
        for i in g.nodes() {
            for j in g.nodes() {
                assert_eq!(
                    chaos.node(i).selector().route(j),
                    reference.node(i).selector().route(j),
                    "{i} -> {j}: hold-timer discovery must match explicit LinkDown"
                );
            }
        }
    }

    #[test]
    fn flap_window_heals_without_topology_change() {
        let g = fig1();
        use bgpvcg_netgraph::generators::structured::Fig1;
        // Flap long enough for hold timers to fire, then heal.
        let mut chaos = ChaosEngine::new(
            &g,
            PlainBgpNode::from_graph(&g),
            FaultPlan::quiet().with_flap(4, 30, Fig1::A, Fig1::Z),
        );
        let report = chaos.run_to_stable(400);
        assert!(report.converged, "{report}");
        assert!(report.holds_fired >= 2);
        assert_route_parity(&g, &chaos);
    }

    #[test]
    fn invalid_schedule_entries_are_skipped_not_fatal() {
        let g = fig1();
        let mut plan = FaultPlan::quiet();
        plan.crashes.push((2, AsId::new(0)));
        plan.crashes.push((3, AsId::new(0))); // already down
        plan.restarts.push((5, AsId::new(0)));
        plan.restarts.push((6, AsId::new(0))); // already up
        plan.cuts.push((2, AsId::new(0), AsId::new(99))); // no such link
        let mut chaos = ChaosEngine::new(&g, PlainBgpNode::from_graph(&g), plan);
        let report = chaos.run_to_stable(400);
        assert!(report.converged, "{report}");
        assert_eq!(report.rejected_events, 3);
        assert_route_parity(&g, &chaos);
    }

    #[test]
    fn fault_events_are_traced() {
        let g = hypercube(3, Cost::new(1));
        let (telemetry, sink) = Telemetry::ring(1 << 16);
        let mut chaos = ChaosEngine::new(
            &g,
            PlainBgpNode::from_graph(&g),
            FaultPlan {
                drop_rate: 0.4,
                duplicate_rate: 0.3,
                delay_rate: 0.3,
                ..FaultPlan::lossy(11, 30)
            }
            .with_crash(6, AsId::new(1), 14),
        );
        chaos.attach_telemetry(&telemetry);
        let report = chaos.run_to_stable(600);
        assert!(report.converged, "{report}");
        let events = sink.events();
        let has = |pred: &dyn Fn(&TraceEvent) -> bool| events.iter().any(pred);
        assert!(has(&|e| matches!(
            e,
            TraceEvent::FaultInjected {
                fault: fault::DROP,
                ..
            }
        )));
        assert!(has(
            &|e| matches!(e, TraceEvent::FaultInjected { fault: f, .. } if *f == fault::CRASH)
        ));
        assert!(has(&|e| matches!(e, TraceEvent::Retransmit { .. })));
        assert!(has(&|e| matches!(e, TraceEvent::SessionReset { .. })));
        assert!(has(&|e| matches!(
            e,
            TraceEvent::NodeRestart { node: 1, .. }
        )));
        assert!(matches!(events.last(), Some(TraceEvent::Quiescent { .. })));
        assert_eq!(
            report.retransmits,
            events
                .iter()
                .filter(|e| matches!(e, TraceEvent::Retransmit { .. }))
                .count() as u64
        );
    }

    #[test]
    fn exhausted_budget_dumps_a_schema_valid_flight_artifact() {
        let g = fig1();
        let dir = std::env::temp_dir().join(format!(
            "bgpvcg-chaos-flight-{}-{:p}",
            std::process::id(),
            &g
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("chaos-flight.json");

        let mut chaos = ChaosEngine::new(&g, PlainBgpNode::from_graph(&g), FaultPlan::quiet());
        chaos.attach_flight_recorder(&path, 64);
        // Three stages is not even enough to finish session establishment,
        // so the run must exhaust its budget and dump.
        let report = chaos.run_to_stable(3);
        assert!(!report.converged);
        let text = std::fs::read_to_string(&path).expect("flight artifact written");
        flight::validate_dump(&text).expect("flight artifact validates");
        assert!(text.contains(flight::REASON_NOT_STABILIZED));
        assert!(text.contains("\"sessions_established\""));
        assert!(text.contains("\"frames_in_flight\""));

        // A converged run must not leave a dump behind.
        std::fs::remove_file(&path).expect("remove stalled dump");
        let mut ok = ChaosEngine::new(&g, PlainBgpNode::from_graph(&g), FaultPlan::quiet());
        ok.attach_flight_recorder(&path, 64);
        let report = ok.run_to_stable(200);
        assert!(report.converged, "{report}");
        assert!(!path.exists(), "converged run must not dump");
        std::fs::remove_dir_all(&dir).ok();
    }
}
