//! Per-node state-size accounting.

use serde::{Deserialize, Serialize};

/// A snapshot of one node's protocol state sizes, used by experiment E5 to
/// reproduce the paper's Theorem-2 claim that the pricing extension keeps
/// routing-table state at `O(nd)` — a constant factor over plain BGP.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateSnapshot {
    /// Selected routing-table entries (≤ one per destination).
    pub table_entries: usize,
    /// Total AS-path nodes stored across the routing table — the `O(nd)`
    /// term of the paper's table-size analysis.
    pub table_path_nodes: usize,
    /// Rib-In entries (routes remembered per neighbor).
    pub rib_entries: usize,
    /// Total AS-path nodes stored across the Rib-In.
    pub rib_path_nodes: usize,
    /// Price entries stored (zero for plain BGP; `O(nd)` for the pricing
    /// extension).
    pub price_entries: usize,
    /// AS-path cells labeling the price entries (zero for plain BGP).
    ///
    /// A deployable encoding stores each price as a `(k, p^k)` pair — the
    /// transit node it prices plus the cost — so the label cells are part
    /// of the extension's footprint exactly as stored path nodes are part
    /// of the routing table's. Counting them keeps E5's `O(nd)` comparison
    /// honest: price-table AS cells are tallied the same way as
    /// routing-table AS cells, instead of riding along implicitly via the
    /// selected route's path.
    pub price_path_nodes: usize,
}

impl StateSnapshot {
    /// Total stored cells under a uniform "one AS number or one cost = one
    /// cell" model, the unit in which the constant-factor comparison is
    /// made.
    pub fn total_cells(&self) -> usize {
        self.table_entries
            + self.table_path_nodes
            + self.rib_entries
            + self.rib_path_nodes
            + self.price_entries
            + self.price_path_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_cells_sums_components() {
        let s = StateSnapshot {
            table_entries: 1,
            table_path_nodes: 2,
            rib_entries: 3,
            rib_path_nodes: 4,
            price_entries: 5,
            price_path_nodes: 6,
        };
        assert_eq!(s.total_cells(), 21);
    }

    #[test]
    fn default_is_empty() {
        assert_eq!(StateSnapshot::default().total_cells(), 0);
    }
}
