//! Route selection: the per-node path-vector decision process.

use crate::message::{PathEntry, RouteInfo, SharedPath, Update};
use bgpvcg_lcp::Route;
use bgpvcg_netgraph::{AsId, Cost};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A selected routing-table entry: the chosen path (cost-annotated) and its
/// transit cost.
///
/// The path is a [`SharedPath`]: the same interned handle flows into every
/// advertisement built from this entry, so re-advertising an unchanged
/// route never copies path bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectedRoute {
    /// The path from this node (first entry) to the destination (last
    /// entry), each node annotated with its declared cost as learned from
    /// advertisements.
    pub path: SharedPath,
    /// Transit cost of the path.
    pub cost: Cost,
}

impl SelectedRoute {
    /// Converts to an [`Route`] for inspection and comparison.
    pub fn as_route(&self) -> Route {
        Route::from_parts(self.path.iter().map(|e| e.node).collect(), self.cost)
    }

    /// The next hop (second node), or `None` for the trivial route.
    pub fn next_hop(&self) -> Option<AsId> {
        self.path.get(1).map(|e| e.node)
    }

    /// Number of hops.
    pub fn hops(&self) -> usize {
        self.path.len() - 1
    }
}

/// Structural validity of an incoming reachable advertisement: the path is
/// non-empty, starts at the advertiser, ends at the destination, repeats no
/// node, and carries at most one price slot per transit node. Everything a
/// receiver later indexes into is covered, so a malformed message can be
/// dropped here once instead of defended against everywhere.
fn well_formed(from: AsId, destination: AsId, info: &RouteInfo) -> bool {
    let RouteInfo::Reachable { path, prices, .. } = info else {
        // Withdrawals carry no structure; price deltas are validated
        // against the retained route at application time (see `ingest`).
        return true;
    };
    let (Some(first), Some(last)) = (path.first(), path.last()) else {
        return false;
    };
    if first.node != from || last.node != destination {
        return false;
    }
    let mut seen = std::collections::BTreeSet::new();
    if !path.iter().all(|e| seen.insert(e.node)) {
        return false;
    }
    prices.len() <= path.len().saturating_sub(2)
}

/// Compares two candidate routes under the deterministic route order
/// `(transit cost, hop count, lexicographic AS path)`. Candidates are
/// compared as plain `(path, cost)` pairs so selection never has to intern
/// a losing path.
fn candidate_cmp(
    a_path: &[PathEntry],
    a_cost: Cost,
    b_path: &[PathEntry],
    b_cost: Cost,
) -> std::cmp::Ordering {
    a_cost
        .cmp(&b_cost)
        .then_with(|| a_path.len().cmp(&b_path.len()))
        .then_with(|| {
            a_path
                .iter()
                .map(|e| e.node)
                .cmp(b_path.iter().map(|e| e.node))
        })
}

/// The path-vector decision process of one AS: Rib-In (the last routes each
/// neighbor advertised), route selection under the deterministic order, and
/// the selected routing table.
///
/// `RouteSelector` is deliberately protocol-logic only — no I/O — so the
/// synchronous and asynchronous engines, and the pricing extension in
/// `bgpvcg-core`, all drive the same code (the paper's mechanism is an
/// extension of BGP, so the BGP decision process must be shared, not
/// duplicated).
#[derive(Debug, Clone)]
pub struct RouteSelector {
    id: AsId,
    /// This node's own declared transit cost (what it stamps into path
    /// entries it originates or extends).
    declared_cost: Cost,
    /// Per-neighbor Rib-In: destination → last advertised route.
    rib_in: BTreeMap<AsId, BTreeMap<AsId, RouteInfo>>,
    /// Receive-cost vectors advertised by neighbors (per-neighbor cost
    /// model only; empty in the paper's base model). `vectors[a][u]` is the
    /// cost `a` incurs receiving a transit packet from `u`.
    neighbor_vectors: BTreeMap<AsId, BTreeMap<AsId, Cost>>,
    /// The selected routing table: destination → chosen route. Own
    /// destination always maps to the trivial route.
    table: BTreeMap<AsId, SelectedRoute>,
}

impl RouteSelector {
    /// Creates a selector for node `id` with the given declared cost and
    /// physical neighbors.
    pub fn new<I: IntoIterator<Item = AsId>>(id: AsId, declared_cost: Cost, neighbors: I) -> Self {
        let rib_in = neighbors
            .into_iter()
            .map(|a| (a, BTreeMap::new()))
            .collect();
        let mut table = BTreeMap::new();
        table.insert(
            id,
            SelectedRoute {
                path: vec![PathEntry {
                    node: id,
                    cost: declared_cost,
                }]
                .into(),
                cost: Cost::ZERO,
            },
        );
        RouteSelector {
            id,
            declared_cost,
            rib_in,
            neighbor_vectors: BTreeMap::new(),
            table,
        }
    }

    /// This node's AS number.
    pub fn id(&self) -> AsId {
        self.id
    }

    /// This node's declared cost.
    pub fn declared_cost(&self) -> Cost {
        self.declared_cost
    }

    /// Changes this node's declared cost (a strategic deviation or dynamic
    /// re-declaration). Every selected route's first path entry carries the
    /// declared cost, so all of them are restamped; the returned set names
    /// exactly the destinations whose table entry changed (empty for a
    /// no-op re-declaration of the same cost), so the caller re-advertises
    /// only those instead of rescanning the table.
    pub fn set_declared_cost(&mut self, cost: Cost) -> BTreeSet<AsId> {
        if cost == self.declared_cost {
            return BTreeSet::new();
        }
        self.declared_cost = cost;
        let mut changed = BTreeSet::new();
        for (dest, route) in &mut self.table {
            // Interned paths are immutable: restamping the declared cost
            // mints a fresh handle (re-declaration is rare; sharing wins on
            // the per-stage re-advertisement path).
            let mut entries = route.path.to_vec();
            entries[0].cost = cost;
            route.path = entries.into();
            changed.insert(*dest);
        }
        changed
    }

    /// Current physical neighbors, ascending.
    pub fn neighbors(&self) -> impl Iterator<Item = AsId> + '_ {
        self.rib_in.keys().copied()
    }

    /// Returns `true` if `a` is currently a neighbor.
    pub fn has_neighbor(&self, a: AsId) -> bool {
        self.rib_in.contains_key(&a)
    }

    /// The route `a` last advertised for `dest`, if any.
    pub fn rib(&self, a: AsId, dest: AsId) -> Option<&RouteInfo> {
        self.rib_in.get(&a)?.get(&dest)
    }

    /// The destinations neighbor `a` currently advertises, ascending. Empty
    /// for non-neighbors. Used to scope recomputation after a link event to
    /// the destinations the vanished Rib-In actually covered.
    pub fn rib_destinations(&self, a: AsId) -> BTreeSet<AsId> {
        self.rib_in
            .get(&a)
            .map(|routes| routes.keys().copied().collect())
            .unwrap_or_default()
    }

    /// The Rib-In entries for `dest` across all current neighbors, ascending
    /// by neighbor. This is the candidate set both route selection and the
    /// pricing relaxation pass iterate; exposing it lets callers hoist the
    /// per-neighbor lookup out of their inner loops.
    pub fn rib_for(&self, dest: AsId) -> impl Iterator<Item = (AsId, &RouteInfo)> + '_ {
        self.rib_in
            .iter()
            .filter_map(move |(&a, routes)| routes.get(&dest).map(|info| (a, info)))
    }

    /// The declared cost of neighbor `a` as learned from its advertisements
    /// (the first path entry of anything it sends is itself), or `None`
    /// before `a` has advertised anything.
    pub fn neighbor_cost(&self, a: AsId) -> Option<Cost> {
        let routes = self.rib_in.get(&a)?;
        routes
            .values()
            .find_map(|info| info.path().and_then(|p| p.first()).map(|e| e.cost))
    }

    /// The receive-cost vector neighbor `a` last advertised (per-neighbor
    /// cost model), if any.
    pub fn neighbor_vector(&self, a: AsId) -> Option<&BTreeMap<AsId, Cost>> {
        self.neighbor_vectors.get(&a)
    }

    /// The cost neighbor `a` incurs receiving a transit packet *from this
    /// node*, per `a`'s advertised vector (per-neighbor model only).
    pub fn recv_cost_from(&self, a: AsId) -> Option<Cost> {
        self.neighbor_vectors.get(&a)?.get(&self.id).copied()
    }

    /// The selected route to `dest` (trivial for `dest == id`).
    pub fn selected(&self, dest: AsId) -> Option<&SelectedRoute> {
        self.table.get(&dest)
    }

    /// The selected route to `dest` as an [`Route`].
    pub fn route(&self, dest: AsId) -> Option<Route> {
        self.table.get(&dest).map(SelectedRoute::as_route)
    }

    /// The selected route's transit cost `c(self, dest)`, or
    /// [`Cost::INFINITE`] if no route is known.
    pub fn route_cost(&self, dest: AsId) -> Cost {
        self.table.get(&dest).map_or(Cost::INFINITE, |r| r.cost)
    }

    /// All destinations with a selected route, ascending.
    pub fn destinations(&self) -> impl Iterator<Item = AsId> + '_ {
        self.table.keys().copied()
    }

    /// Ingests an UPDATE from a neighbor into the Rib-In, returning the set
    /// of destinations whose advertised state changed. Messages from
    /// non-neighbors (possible transiently around link failures in the
    /// asynchronous engine) are ignored.
    pub fn ingest(&mut self, update: &Update) -> BTreeSet<AsId> {
        let mut affected = BTreeSet::new();
        if !self.rib_in.contains_key(&update.from) {
            return affected;
        }
        if !update.sender_costs.is_empty() {
            let vector: BTreeMap<AsId, Cost> = update.sender_costs.iter().copied().collect();
            let previous = self.neighbor_vectors.insert(update.from, vector);
            if previous.as_ref() != self.neighbor_vectors.get(&update.from) {
                // A changed cost vector re-prices every candidate through
                // this neighbor.
                // lint:allow(bounds: rib_in membership for update.from is checked at fn entry)
                affected.extend(self.rib_in[&update.from].keys().copied());
            }
        }
        let from = update.from;
        let Some(routes) = self.rib_in.get_mut(&from) else {
            return affected; // unreachable: membership checked on entry
        };
        for ad in &update.advertisements {
            match &ad.info {
                RouteInfo::Withdrawn => {
                    if routes.remove(&ad.destination).is_some() {
                        affected.insert(ad.destination);
                    }
                }
                RouteInfo::PriceDelta {
                    base_path_hash,
                    entries,
                } => {
                    // Patch the retained full advertisement in place. Any
                    // mismatch — no retained route, a path other than the
                    // one the delta was computed against, or an out-of-range
                    // price index — drops the delta silently: the sender's
                    // next full advertisement (session resynchronization
                    // always sends one) restores the state.
                    let Some(RouteInfo::Reachable { path, prices, .. }) =
                        routes.get_mut(&ad.destination)
                    else {
                        continue;
                    };
                    if path.hash64() != *base_path_hash
                        || entries
                            .iter()
                            .any(|&(idx, _)| usize::from(idx) >= prices.len())
                    {
                        continue;
                    }
                    let mut touched = false;
                    for &(idx, value) in entries {
                        // lint:allow(bounds: every idx range-checked above)
                        let cell = &mut prices[usize::from(idx)];
                        if *cell != value {
                            *cell = value;
                            touched = true;
                        }
                    }
                    if touched {
                        affected.insert(ad.destination);
                    }
                }
                reachable => {
                    // Drop structurally malformed advertisements instead of
                    // trusting them: a misbehaving or buggy neighbor must
                    // not be able to crash this node (the paper's Sect. 7
                    // notes the agents themselves run the algorithm).
                    if !well_formed(from, ad.destination, reachable) {
                        continue;
                    }
                    let prev = routes.insert(ad.destination, reachable.clone());
                    if prev.as_ref() != Some(reachable) {
                        affected.insert(ad.destination);
                    }
                }
            }
        }
        affected
    }

    /// Re-runs route selection for one destination; returns `true` if the
    /// selected route changed (including becoming unreachable).
    ///
    /// Selection: over all neighbors `a` whose Rib-In holds a route for
    /// `dest` not containing this node (loop suppression), extend that route
    /// by this node and keep the minimum under the deterministic order.
    pub fn decide(&mut self, dest: AsId) -> bool {
        if dest == self.id {
            return false; // the trivial route is permanent
        }
        // Candidates stay plain `(path, cost)` pairs; only the winning
        // route — and only when it differs from the table entry — is
        // interned into a SharedPath, so the content hash is computed once
        // per actual route change, never per candidate.
        let mut best: Option<(Vec<PathEntry>, Cost)> = None;
        for (a, routes) in &self.rib_in {
            let Some(info) = routes.get(&dest) else {
                continue;
            };
            let RouteInfo::Reachable {
                path, path_cost, ..
            } = info
            else {
                continue;
            };
            if info.contains(self.id) {
                continue; // loop suppression
            }
            // Extending by ourselves turns the advertiser into a transit
            // node (unless it is the destination, which stays an endpoint).
            // In the base model the advertiser's cost is the first path
            // entry; in the per-neighbor model it is the advertiser's
            // receive cost *from us*, taken from its advertised vector.
            let vector_cost = self
                .neighbor_vectors
                .get(a)
                .and_then(|v| v.get(&self.id))
                .copied();
            let added = if *a == dest {
                Cost::ZERO
            } else {
                vector_cost.unwrap_or(path[0].cost)
            };
            let mut full_path = Vec::with_capacity(path.len() + 1);
            full_path.push(PathEntry {
                node: self.id,
                cost: self.declared_cost,
            });
            full_path.extend_from_slice(path);
            if vector_cost.is_some() {
                // Per-neighbor model: each path entry carries the node's
                // cost *given its predecessor on this path*, so the
                // advertiser's entry is restamped for the new predecessor.
                full_path[1].cost = added;
            }
            let candidate_cost = *path_cost + added;
            let better = match &best {
                None => true,
                Some((best_path, best_cost)) => {
                    candidate_cmp(&full_path, candidate_cost, best_path, *best_cost)
                        == std::cmp::Ordering::Less
                }
            };
            if better {
                best = Some((full_path, candidate_cost));
            }
        }
        let changed = match (&best, self.table.get(&dest)) {
            (Some((path, cost)), Some(old)) => *cost != old.cost || path[..] != old.path[..],
            (None, None) => false,
            _ => true,
        };
        if changed {
            match best {
                Some((path, cost)) => {
                    self.table.insert(
                        dest,
                        SelectedRoute {
                            path: path.into(),
                            cost,
                        },
                    );
                }
                None => {
                    self.table.remove(&dest);
                }
            }
        }
        changed
    }

    /// Re-runs selection for every destination mentioned anywhere in the
    /// Rib-In or currently in the table; returns those whose selection
    /// changed.
    pub fn decide_all(&mut self) -> BTreeSet<AsId> {
        let mut dests: BTreeSet<AsId> = self.table.keys().copied().collect();
        for routes in self.rib_in.values() {
            dests.extend(routes.keys().copied());
        }
        dests
            .into_iter()
            .filter(|&dest| self.decide(dest))
            .collect()
    }

    /// Handles a link to `a` coming up: adds the neighbor with an empty
    /// Rib-In. Idempotent.
    pub fn link_up(&mut self, a: AsId) {
        self.rib_in.entry(a).or_default();
    }

    /// Forgets everything learned from the network — Rib-In contents,
    /// neighbor cost vectors, and every non-trivial table entry — returning
    /// the selector to its just-constructed condition with the same id,
    /// declared cost, and current neighbor set. This models a crash followed
    /// by a restart: the process loses its RIBs but keeps its configuration
    /// (who it is, what it charges, which links are physically attached).
    pub fn reset(&mut self) {
        for routes in self.rib_in.values_mut() {
            routes.clear();
        }
        self.neighbor_vectors.clear();
        self.table.retain(|dest, _| *dest == self.id);
    }

    /// Handles the link to `a` going down: drops its Rib-In and re-decides
    /// the destinations it covered; returns those whose selection changed.
    ///
    /// Removing neighbor `a` only removes candidates, and only for the
    /// destinations `a` had advertised — every other destination's candidate
    /// set (and therefore its selection) is untouched, so re-deciding the
    /// dropped Rib-In's keys is equivalent to a full `decide_all` rescan.
    pub fn link_down(&mut self, a: AsId) -> BTreeSet<AsId> {
        let Some(dropped) = self.rib_in.remove(&a) else {
            return BTreeSet::new();
        };
        self.neighbor_vectors.remove(&a);
        dropped
            .into_keys()
            .filter(|&dest| self.decide(dest))
            .collect()
    }
}

impl fmt::Display for RouteSelector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "RouteSelector for {}:", self.id)?;
        for (dest, route) in &self.table {
            writeln!(f, "  {dest}: {}", route.as_route())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::RouteAdvertisement;

    fn entry(raw: u32, cost: u64) -> PathEntry {
        PathEntry {
            node: AsId::new(raw),
            cost: Cost::new(cost),
        }
    }

    fn ad(dest: u32, path: Vec<PathEntry>, cost: u64) -> RouteAdvertisement {
        RouteAdvertisement {
            destination: AsId::new(dest),
            info: RouteInfo::Reachable {
                path: path.into(),
                path_cost: Cost::new(cost),
                prices: vec![],
            },
        }
    }

    fn update(from: u32, ads: Vec<RouteAdvertisement>) -> Update {
        Update {
            from: AsId::new(from),
            sender_costs: Vec::new(),
            advertisements: ads,
            id: 0,
            causes: Vec::new(),
        }
    }

    /// A selector for node 0 with neighbors 1 and 2.
    fn selector() -> RouteSelector {
        RouteSelector::new(AsId::new(0), Cost::new(5), [AsId::new(1), AsId::new(2)])
    }

    #[test]
    fn starts_with_trivial_route_only() {
        let s = selector();
        assert_eq!(s.route_cost(AsId::new(0)), Cost::ZERO);
        assert_eq!(s.route_cost(AsId::new(9)), Cost::INFINITE);
        assert_eq!(s.destinations().count(), 1);
        assert_eq!(
            s.neighbors().collect::<Vec<_>>(),
            vec![AsId::new(1), AsId::new(2)]
        );
    }

    #[test]
    fn ingest_and_decide_selects_direct_route() {
        let mut s = selector();
        // Neighbor 1 (cost 3) advertises itself.
        let affected = s.ingest(&update(1, vec![ad(1, vec![entry(1, 3)], 0)]));
        assert_eq!(affected, BTreeSet::from([AsId::new(1)]));
        assert!(s.decide(AsId::new(1)));
        let route = s.selected(AsId::new(1)).unwrap();
        assert_eq!(route.cost, Cost::ZERO, "destination is an endpoint");
        assert_eq!(route.hops(), 1);
        assert_eq!(route.next_hop(), Some(AsId::new(1)));
    }

    #[test]
    fn decide_prefers_cheaper_transit() {
        let mut s = selector();
        // Route to 9 via neighbor 1 (1 declares cost 3): transit = 3 + 4.
        s.ingest(&update(
            1,
            vec![ad(9, vec![entry(1, 3), entry(7, 4), entry(9, 2)], 4)],
        ));
        // Route to 9 via neighbor 2 (2 declares cost 1): transit = 1 + 0.
        s.ingest(&update(2, vec![ad(9, vec![entry(2, 1), entry(9, 2)], 0)]));
        s.decide(AsId::new(9));
        let route = s.selected(AsId::new(9)).unwrap();
        assert_eq!(route.cost, Cost::new(1));
        assert_eq!(route.next_hop(), Some(AsId::new(2)));
    }

    #[test]
    fn loop_suppression_skips_paths_containing_self() {
        let mut s = selector();
        s.ingest(&update(
            1,
            vec![ad(9, vec![entry(1, 3), entry(0, 5), entry(9, 2)], 5)],
        ));
        s.decide(AsId::new(9));
        assert!(s.selected(AsId::new(9)).is_none(), "only candidate loops");
    }

    #[test]
    fn withdrawal_removes_route() {
        let mut s = selector();
        s.ingest(&update(1, vec![ad(1, vec![entry(1, 3)], 0)]));
        s.decide(AsId::new(1));
        assert!(s.selected(AsId::new(1)).is_some());
        let affected = s.ingest(&update(
            1,
            vec![RouteAdvertisement {
                destination: AsId::new(1),
                info: RouteInfo::Withdrawn,
            }],
        ));
        assert_eq!(affected, BTreeSet::from([AsId::new(1)]));
        assert!(s.decide(AsId::new(1)));
        assert!(s.selected(AsId::new(1)).is_none());
    }

    #[test]
    fn ingest_from_stranger_is_ignored() {
        let mut s = selector();
        let affected = s.ingest(&update(77, vec![ad(1, vec![entry(77, 1)], 0)]));
        assert!(affected.is_empty());
    }

    #[test]
    fn reingest_of_same_route_reports_no_change() {
        let mut s = selector();
        let u = update(1, vec![ad(1, vec![entry(1, 3)], 0)]);
        assert!(!s.ingest(&u).is_empty());
        assert!(s.ingest(&u).is_empty(), "identical re-advertisement");
    }

    #[test]
    fn neighbor_cost_learned_from_any_advertisement() {
        let mut s = selector();
        assert_eq!(s.neighbor_cost(AsId::new(1)), None);
        s.ingest(&update(1, vec![ad(9, vec![entry(1, 3), entry(9, 2)], 0)]));
        assert_eq!(s.neighbor_cost(AsId::new(1)), Some(Cost::new(3)));
    }

    #[test]
    fn link_down_drops_routes_via_neighbor() {
        let mut s = selector();
        s.ingest(&update(1, vec![ad(1, vec![entry(1, 3)], 0)]));
        s.ingest(&update(2, vec![ad(2, vec![entry(2, 1)], 0)]));
        s.decide_all();
        let changed = s.link_down(AsId::new(1));
        assert!(changed.contains(&AsId::new(1)));
        assert!(s.selected(AsId::new(1)).is_none());
        assert!(s.selected(AsId::new(2)).is_some());
        assert!(!s.has_neighbor(AsId::new(1)));
        // Idempotent on a second call.
        assert!(s.link_down(AsId::new(1)).is_empty());
    }

    #[test]
    fn link_up_registers_neighbor() {
        let mut s = selector();
        s.link_up(AsId::new(7));
        assert!(s.has_neighbor(AsId::new(7)));
        let affected = s.ingest(&update(7, vec![ad(7, vec![entry(7, 2)], 0)]));
        assert!(!affected.is_empty());
    }

    #[test]
    fn set_declared_cost_updates_own_entry() {
        let mut s = selector();
        s.set_declared_cost(Cost::new(11));
        assert_eq!(s.declared_cost(), Cost::new(11));
        let own = s.selected(AsId::new(0)).unwrap();
        assert_eq!(own.path[0].cost, Cost::new(11));
    }

    #[test]
    fn tie_break_on_equal_cost_prefers_fewer_hops_then_lex() {
        let mut s = selector();
        // Two candidates to dest 9, both transit cost 2.
        s.ingest(&update(1, vec![ad(9, vec![entry(1, 2), entry(9, 0)], 0)])); // 0,1,9: cost 2, 2 hops
        s.ingest(&update(
            2,
            vec![ad(9, vec![entry(2, 0), entry(3, 2), entry(9, 0)], 2)],
        )); // 0,2,3,9: cost 2, 3 hops
        s.decide(AsId::new(9));
        assert_eq!(
            s.selected(AsId::new(9)).unwrap().next_hop(),
            Some(AsId::new(1))
        );
    }

    #[test]
    fn sender_vector_overrides_first_entry_cost() {
        // Per-neighbor model: neighbor 1 declares "receiving from node 0
        // costs 7" via its vector; the base path entry says 3. The
        // candidate must be priced (and restamped) with 7.
        let mut s = selector();
        let u = update(1, vec![ad(9, vec![entry(1, 3), entry(9, 2)], 0)]).with_sender_costs(vec![
            (AsId::new(0), Cost::new(7)),
            (AsId::new(9), Cost::new(1)),
        ]);
        s.ingest(&u);
        s.decide(AsId::new(9));
        let route = s.selected(AsId::new(9)).unwrap();
        assert_eq!(route.cost, Cost::new(7));
        assert_eq!(
            route.path[1].cost,
            Cost::new(7),
            "entry restamped for its predecessor"
        );
        assert_eq!(s.recv_cost_from(AsId::new(1)), Some(Cost::new(7)));
        assert!(s.neighbor_vector(AsId::new(1)).is_some());
    }

    #[test]
    fn changed_vector_marks_all_neighbor_dests_affected() {
        let mut s = selector();
        let u1 = update(1, vec![ad(9, vec![entry(1, 3), entry(9, 2)], 0)])
            .with_sender_costs(vec![(AsId::new(0), Cost::new(7))]);
        s.ingest(&u1);
        s.decide(AsId::new(9));
        // Same routes, different vector: destination 9 must be re-decided.
        let u2 = update(1, vec![]).with_sender_costs(vec![(AsId::new(0), Cost::new(2))]);
        // if_nonempty refuses empty ad lists; build directly.
        let u2 = Update {
            from: AsId::new(1),
            sender_costs: u2.sender_costs,
            advertisements: vec![],
            id: 0,
            causes: Vec::new(),
        };
        let affected = s.ingest(&u2);
        assert!(affected.contains(&AsId::new(9)), "{affected:?}");
        s.decide(AsId::new(9));
        assert_eq!(s.selected(AsId::new(9)).unwrap().cost, Cost::new(2));
    }

    #[test]
    fn link_down_drops_neighbor_vector() {
        let mut s = selector();
        let u = update(1, vec![ad(1, vec![entry(1, 3)], 0)])
            .with_sender_costs(vec![(AsId::new(0), Cost::new(7))]);
        s.ingest(&u);
        assert!(s.neighbor_vector(AsId::new(1)).is_some());
        s.link_down(AsId::new(1));
        assert!(s.neighbor_vector(AsId::new(1)).is_none());
        assert_eq!(s.recv_cost_from(AsId::new(1)), None);
    }

    #[test]
    fn malformed_advertisements_are_dropped() {
        let mut s = selector();
        // Wrong first node (claims to be node 7 but sent by 1).
        let bad_first = update(1, vec![ad(9, vec![entry(7, 1), entry(9, 2)], 0)]);
        assert!(s.ingest(&bad_first).is_empty());
        // Path does not end at the destination.
        let bad_last = update(1, vec![ad(9, vec![entry(1, 1), entry(8, 2)], 0)]);
        assert!(s.ingest(&bad_last).is_empty());
        // Repeated node.
        let looped = update(
            1,
            vec![ad(
                9,
                vec![entry(1, 1), entry(4, 2), entry(1, 1), entry(9, 2)],
                0,
            )],
        );
        assert!(s.ingest(&looped).is_empty());
        // Too many prices.
        let overpriced = Update {
            from: AsId::new(1),
            sender_costs: vec![],
            advertisements: vec![crate::message::RouteAdvertisement {
                destination: AsId::new(9),
                info: RouteInfo::Reachable {
                    path: vec![entry(1, 1), entry(9, 2)].into(),
                    path_cost: Cost::ZERO,
                    prices: vec![Cost::new(1)],
                },
            }],
            id: 0,
            causes: Vec::new(),
        };
        assert!(s.ingest(&overpriced).is_empty());
        // Empty path.
        let empty = Update {
            from: AsId::new(1),
            sender_costs: vec![],
            advertisements: vec![crate::message::RouteAdvertisement {
                destination: AsId::new(9),
                info: RouteInfo::Reachable {
                    path: Vec::new().into(),
                    path_cost: Cost::ZERO,
                    prices: vec![],
                },
            }],
            id: 0,
            causes: Vec::new(),
        };
        assert!(s.ingest(&empty).is_empty());
    }

    #[test]
    fn reset_forgets_learned_state_but_keeps_identity() {
        let mut s = selector();
        let u = update(1, vec![ad(9, vec![entry(1, 3), entry(9, 2)], 0)])
            .with_sender_costs(vec![(AsId::new(0), Cost::new(7))]);
        s.ingest(&u);
        s.decide_all();
        assert!(s.selected(AsId::new(9)).is_some());
        s.reset();
        assert_eq!(s.id(), AsId::new(0));
        assert_eq!(s.declared_cost(), Cost::new(5));
        assert_eq!(
            s.neighbors().collect::<Vec<_>>(),
            vec![AsId::new(1), AsId::new(2)],
            "physical links survive a restart"
        );
        assert!(s.selected(AsId::new(9)).is_none());
        assert!(s.rib(AsId::new(1), AsId::new(9)).is_none());
        assert!(s.neighbor_vector(AsId::new(1)).is_none());
        assert_eq!(s.destinations().count(), 1, "only the trivial route");
        assert_eq!(s.route_cost(AsId::new(0)), Cost::ZERO);
    }

    #[test]
    fn decide_all_reports_only_changes() {
        let mut s = selector();
        s.ingest(&update(1, vec![ad(1, vec![entry(1, 3)], 0)]));
        let first = s.decide_all();
        assert_eq!(first, BTreeSet::from([AsId::new(1)]));
        let second = s.decide_all();
        assert!(second.is_empty());
    }

    /// A priced full advertisement from neighbor 1 for destination 9
    /// (transit node 4), retained so deltas have a base to patch.
    fn priced_base(s: &mut RouteSelector) -> crate::message::SharedPath {
        let path: crate::message::SharedPath = vec![entry(1, 1), entry(4, 2), entry(9, 0)].into();
        let full = Update {
            from: AsId::new(1),
            sender_costs: vec![],
            advertisements: vec![RouteAdvertisement {
                destination: AsId::new(9),
                info: RouteInfo::Reachable {
                    path: path.clone(),
                    path_cost: Cost::new(2),
                    prices: vec![Cost::new(7)],
                },
            }],
            id: 0,
            causes: Vec::new(),
        };
        assert!(!s.ingest(&full).is_empty());
        path
    }

    fn delta_update(hash: u64, entries: Vec<(u16, Cost)>) -> Update {
        Update {
            from: AsId::new(1),
            sender_costs: vec![],
            advertisements: vec![RouteAdvertisement {
                destination: AsId::new(9),
                info: RouteInfo::PriceDelta {
                    base_path_hash: hash,
                    entries,
                },
            }],
            id: 0,
            causes: Vec::new(),
        }
    }

    #[test]
    fn price_delta_patches_retained_route() {
        let mut s = selector();
        let path = priced_base(&mut s);
        let affected = s.ingest(&delta_update(path.hash64(), vec![(0, Cost::new(4))]));
        assert_eq!(affected, BTreeSet::from([AsId::new(9)]));
        let patched = s.rib(AsId::new(1), AsId::new(9)).unwrap();
        assert_eq!(patched.price_of(AsId::new(4)), Some(Cost::new(4)));
        assert_eq!(
            patched.path_cost(),
            Some(Cost::new(2)),
            "path and cost survive the patch"
        );
        // A delta repeating the current value changes nothing.
        let again = s.ingest(&delta_update(path.hash64(), vec![(0, Cost::new(4))]));
        assert!(again.is_empty());
    }

    #[test]
    fn price_delta_mismatches_are_dropped() {
        let mut s = selector();
        let path = priced_base(&mut s);
        // Wrong base hash: the retained route must stay untouched.
        assert!(s
            .ingest(&delta_update(path.hash64() ^ 1, vec![(0, Cost::new(4))]))
            .is_empty());
        // Out-of-range price index.
        assert!(s
            .ingest(&delta_update(path.hash64(), vec![(5, Cost::new(4))]))
            .is_empty());
        let retained = s.rib(AsId::new(1), AsId::new(9)).unwrap();
        assert_eq!(retained.price_of(AsId::new(4)), Some(Cost::new(7)));
        // No retained route at all (fresh selector).
        let mut fresh = selector();
        assert!(fresh
            .ingest(&delta_update(path.hash64(), vec![(0, Cost::new(4))]))
            .is_empty());
    }
}
