//! The protocol-node abstraction and the plain (price-free) BGP node.

use crate::dynamics::LocalEvent;
use crate::message::{RouteAdvertisement, RouteInfo, Update};
use crate::selector::RouteSelector;
use crate::stats::StateSnapshot;
use bgpvcg_netgraph::{AsGraph, AsId};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// The behaviour an AS must implement to be driven by either engine.
///
/// A node is a pure state machine: the engine feeds it messages and local
/// events; the node answers with the UPDATE it wants broadcast to its
/// neighbors (or `None` when its advertised state did not change — the
/// paper's "routing-table exchanges only occur when a change is detected").
pub trait ProtocolNode: Send {
    /// This node's AS number.
    fn id(&self) -> AsId;

    /// Called once before the first stage: the node's initial advertisement
    /// (at minimum, its origin route to itself).
    fn start(&mut self) -> Option<Update>;

    /// Ingests a batch of UPDATEs delivered this stage and returns the
    /// resulting broadcast, if anything changed. Updates arrive as shared
    /// [`Arc`]s so the engines can fan one broadcast out to many inboxes
    /// without copying the payload per link.
    fn handle(&mut self, updates: &[Arc<Update>]) -> Option<Update>;

    /// Applies a local topology event and returns the resulting broadcast,
    /// if anything changed. For [`LocalEvent::LinkUp`] the engine delivers
    /// the returned update (the full table) to the *new neighbor only*, not
    /// as a broadcast.
    fn apply_event(&mut self, event: LocalEvent) -> Option<Update>;

    /// The node's full table as an update — what a real BGP speaker sends
    /// when a new session is established.
    fn full_table(&self) -> Option<Update>;

    /// Forgets all learned state, returning the node to its
    /// just-constructed condition — same id, declared cost, and current
    /// link set, but empty RIBs and change-suppression memory. The chaos
    /// harness calls this to model a crash followed by a restart; the node
    /// relearns everything through session re-establishment afterwards.
    fn reset(&mut self);

    /// Sizes of the node's protocol state, for the E5 experiment.
    fn state(&self) -> StateSnapshot;

    /// Enables or disables price-delta advertisement emission (wire v2's
    /// compression hook). Default: no-op, for node types without the
    /// optimization; implementors with an adj-RIB-out forward this to
    /// their `set_delta_encoding` inherent method.
    fn configure_delta_encoding(&mut self, _on: bool) {}
}

/// A plain lowest-cost-path BGP speaker: route selection and advertisement,
/// no prices. This is the baseline protocol the paper extends; experiments
/// E5/E6 compare its state and traffic against the pricing extension.
///
/// # Example
///
/// ```
/// use bgpvcg_netgraph::generators::structured::fig1;
/// use bgpvcg_bgp::PlainBgpNode;
///
/// let g = fig1();
/// let nodes = PlainBgpNode::from_graph(&g);
/// assert_eq!(nodes.len(), g.node_count());
/// ```
#[derive(Debug, Clone)]
pub struct PlainBgpNode {
    selector: RouteSelector,
    /// What we last advertised per destination, so we only send changes.
    /// Always holds the *full* route state — when a compressed
    /// [`RouteInfo::PriceDelta`] goes out on the wire, this map still
    /// records the reassembled `Reachable` it stands for.
    advertised: BTreeMap<AsId, RouteInfo>,
    /// Whether change advertisements may be compressed to
    /// [`RouteInfo::PriceDelta`] when only prices moved. On by default;
    /// plain BGP carries no prices, so the flag is inert here and exists
    /// for API symmetry with the pricing node.
    delta_encoding: bool,
}

impl PlainBgpNode {
    /// Creates a node for AS `id` of the given graph.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the graph.
    pub fn new(graph: &AsGraph, id: AsId) -> Self {
        PlainBgpNode {
            selector: RouteSelector::new(id, graph.cost(id), graph.neighbors(id).iter().copied()),
            advertised: BTreeMap::new(),
            delta_encoding: true,
        }
    }

    /// Enables or disables [`RouteInfo::PriceDelta`] compression of change
    /// advertisements (on by default). The delta-stream equivalence
    /// proptests run both settings and assert identical fixpoints.
    pub fn set_delta_encoding(&mut self, on: bool) {
        self.delta_encoding = on;
    }

    /// Creates one node per AS of the graph, in AS order — ready to hand to
    /// an engine.
    pub fn from_graph(graph: &AsGraph) -> Vec<Self> {
        graph
            .nodes()
            .map(|id| PlainBgpNode::new(graph, id))
            .collect()
    }

    /// Read access to the decision process (selected routes, Rib-In).
    pub fn selector(&self) -> &RouteSelector {
        &self.selector
    }

    /// The advertisement for one destination reflecting current state:
    /// reachable with the selected path, or withdrawn.
    fn advertisement_for(&self, dest: AsId) -> RouteInfo {
        match self.selector.selected(dest) {
            Some(route) => RouteInfo::Reachable {
                path: route.path.clone(),
                path_cost: route.cost,
                prices: Vec::new(),
            },
            None => RouteInfo::Withdrawn,
        }
    }

    /// Builds the outgoing update for the given destinations, comparing
    /// against what was last advertised; records what is sent. Environment
    /// paths (start, local events) pass no cause map, so every entry's
    /// provenance stays cause 0.
    fn emit(&mut self, dests: impl IntoIterator<Item = AsId>) -> Option<Update> {
        self.emit_caused(dests, &BTreeMap::new())
    }

    /// [`emit`](Self::emit) with provenance: `causes` maps each destination
    /// to the [`Update::id`] of the inbound update that made it change, and
    /// the emitted update's `causes` vector is built in lockstep with its
    /// advertisements.
    fn emit_caused(
        &mut self,
        dests: impl IntoIterator<Item = AsId>,
        causes: &BTreeMap<AsId, u64>,
    ) -> Option<Update> {
        let mut ads = Vec::new();
        let mut ad_causes = Vec::new();
        for dest in dests {
            let info = self.advertisement_for(dest);
            let changed = match self.advertised.get(&dest) {
                Some(prev) => *prev != info,
                // Never advertise an initial withdrawal: silence means the
                // same thing and costs nothing.
                None => !matches!(info, RouteInfo::Withdrawn),
            };
            if changed {
                // When only price entries moved on an unchanged path (the
                // monotone-relaxation common case), send a compressed delta
                // against the previously advertised route; the receiver
                // patches its retained copy. `advertised` always records
                // the full state the wire form stands for.
                let wire_info = self
                    .advertised
                    .get(&dest)
                    .filter(|_| self.delta_encoding)
                    .and_then(|prev| RouteInfo::delta_from(prev, &info))
                    .unwrap_or_else(|| info.clone());
                self.advertised.insert(dest, info);
                ads.push(RouteAdvertisement {
                    destination: dest,
                    info: wire_info,
                });
                ad_causes.push(causes.get(&dest).copied().unwrap_or(0));
            }
        }
        let mut update = Update::if_nonempty(self.selector.id(), ads)?;
        update.causes = ad_causes;
        Some(update)
    }
}

impl ProtocolNode for PlainBgpNode {
    fn id(&self) -> AsId {
        self.selector.id()
    }

    fn configure_delta_encoding(&mut self, on: bool) {
        self.set_delta_encoding(on);
    }

    fn start(&mut self) -> Option<Update> {
        self.emit([self.selector.id()])
    }

    fn handle(&mut self, updates: &[Arc<Update>]) -> Option<Update> {
        let mut affected: BTreeSet<AsId> = BTreeSet::new();
        // Provenance: each affected destination is attributed to the last
        // inbound update (in inbox order) whose ingestion touched it.
        let mut causes: BTreeMap<AsId, u64> = BTreeMap::new();
        for update in updates {
            for dest in self.selector.ingest(update) {
                causes.insert(dest, update.id);
                affected.insert(dest);
            }
        }
        let mut changed = BTreeSet::new();
        for dest in affected {
            if self.selector.decide(dest) {
                changed.insert(dest);
            }
        }
        self.emit_caused(changed, &causes)
    }

    fn apply_event(&mut self, event: LocalEvent) -> Option<Update> {
        match event {
            LocalEvent::LinkDown(neighbor) => {
                let changed = self.selector.link_down(neighbor);
                self.emit(changed)
            }
            LocalEvent::LinkUp(neighbor) => {
                self.selector.link_up(neighbor);
                None // the engine sends `full_table` to the new neighbor
            }
            LocalEvent::CostChange(cost) => {
                // Only the destinations whose table entry actually restamped
                // are re-advertised — `set_declared_cost` reports them, and a
                // no-op change (same cost) reports none.
                let changed = self.selector.set_declared_cost(cost);
                self.emit(changed)
            }
        }
    }

    fn full_table(&self) -> Option<Update> {
        let ads: Vec<RouteAdvertisement> = self
            .selector
            .destinations()
            .map(|dest| RouteAdvertisement {
                destination: dest,
                info: self.advertisement_for(dest),
            })
            .collect();
        Update::if_nonempty(self.selector.id(), ads)
    }

    fn reset(&mut self) {
        self.selector.reset();
        self.advertised.clear();
    }

    fn state(&self) -> StateSnapshot {
        let mut snapshot = StateSnapshot::default();
        for dest in self.selector.destinations() {
            if let Some(route) = self.selector.selected(dest) {
                snapshot.table_entries += 1;
                snapshot.table_path_nodes += route.path.len();
            }
        }
        let neighbors: Vec<AsId> = self.selector.neighbors().collect();
        for a in neighbors {
            for dest in self.selector.destinations().collect::<Vec<_>>() {
                if let Some(info) = self.selector.rib(a, dest) {
                    snapshot.rib_entries += 1;
                    snapshot.rib_path_nodes += info.path().map_or(0, <[_]>::len);
                }
            }
        }
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpvcg_netgraph::generators::structured::{fig1, Fig1};
    use bgpvcg_netgraph::Cost;

    #[test]
    fn start_advertises_origin_only() {
        let g = fig1();
        let mut node = PlainBgpNode::new(&g, Fig1::D);
        let update = node.start().expect("origin must be advertised");
        assert_eq!(update.entry_count(), 1);
        assert_eq!(update.advertisements[0].destination, Fig1::D);
        let info = &update.advertisements[0].info;
        assert_eq!(info.path().unwrap().len(), 1);
        assert_eq!(info.path().unwrap()[0].cost, Cost::new(1));
    }

    #[test]
    fn handle_learns_and_forwards() {
        let g = fig1();
        let mut d = PlainBgpNode::new(&g, Fig1::D);
        let mut z = PlainBgpNode::new(&g, Fig1::Z);
        let z_origin = Arc::new(z.start().unwrap());
        let out = d.handle(&[z_origin]).expect("new route must be advertised");
        // D now advertises its route to Z (D, Z with cost 0) besides having
        // learned it.
        assert!(out
            .advertisements
            .iter()
            .any(|ad| ad.destination == Fig1::Z));
        assert_eq!(
            d.selector().route_cost(Fig1::Z),
            Cost::ZERO,
            "one-hop route has no transit"
        );
    }

    #[test]
    fn duplicate_updates_produce_silence() {
        let g = fig1();
        let mut d = PlainBgpNode::new(&g, Fig1::D);
        let mut z = PlainBgpNode::new(&g, Fig1::Z);
        let z_origin = Arc::new(z.start().unwrap());
        assert!(d.handle(std::slice::from_ref(&z_origin)).is_some());
        assert!(
            d.handle(&[z_origin]).is_none(),
            "re-delivery of identical state must not re-advertise"
        );
    }

    #[test]
    fn full_table_covers_all_destinations() {
        let g = fig1();
        let mut d = PlainBgpNode::new(&g, Fig1::D);
        let mut z = PlainBgpNode::new(&g, Fig1::Z);
        d.handle(&[Arc::new(z.start().unwrap())]);
        let table = d.full_table().unwrap();
        assert_eq!(table.entry_count(), 2); // D itself and Z
    }

    #[test]
    fn link_down_withdraws_lost_routes() {
        let g = fig1();
        let mut d = PlainBgpNode::new(&g, Fig1::D);
        let mut z = PlainBgpNode::new(&g, Fig1::Z);
        d.handle(&[Arc::new(z.start().unwrap())]);
        let out = d
            .apply_event(LocalEvent::LinkDown(Fig1::Z))
            .expect("losing the only route must produce a withdrawal");
        let ad = out
            .advertisements
            .iter()
            .find(|ad| ad.destination == Fig1::Z)
            .expect("withdrawal for Z");
        assert_eq!(ad.info, RouteInfo::Withdrawn);
    }

    #[test]
    fn cost_change_readvertises_table() {
        let g = fig1();
        let mut d = PlainBgpNode::new(&g, Fig1::D);
        d.start();
        let out = d
            .apply_event(LocalEvent::CostChange(Cost::new(42)))
            .expect("cost change must re-advertise");
        let info = &out.advertisements[0].info;
        assert_eq!(info.path().unwrap()[0].cost, Cost::new(42));
    }

    #[test]
    fn reset_restores_just_constructed_behaviour() {
        let g = fig1();
        let mut d = PlainBgpNode::new(&g, Fig1::D);
        let mut z = PlainBgpNode::new(&g, Fig1::Z);
        d.start();
        let z_origin = Arc::new(z.start().unwrap());
        d.handle(std::slice::from_ref(&z_origin));
        d.reset();
        // Learned route is gone; the node behaves exactly like a fresh one:
        // start() re-advertises the origin, and re-delivery of Z's origin is
        // a change again (the suppression memory was wiped).
        assert_eq!(d.selector().route_cost(Fig1::Z), Cost::INFINITE);
        assert!(d.start().is_some(), "restart re-advertises the origin");
        assert!(d.handle(&[z_origin]).is_some());
    }

    #[test]
    fn state_snapshot_counts_entries() {
        let g = fig1();
        let mut d = PlainBgpNode::new(&g, Fig1::D);
        let mut z = PlainBgpNode::new(&g, Fig1::Z);
        d.handle(&[Arc::new(z.start().unwrap())]);
        let snap = d.state();
        assert_eq!(snap.table_entries, 2);
        assert_eq!(snap.table_path_nodes, 1 + 2);
        assert_eq!(snap.rib_entries, 1);
        assert_eq!(snap.price_entries, 0);
    }
}
