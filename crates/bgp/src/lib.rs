//! Abstract BGP path-vector substrate (Griffin–Wilfong style).
//!
//! This crate implements the computational model of Sect. 5 of the paper: a
//! network of Autonomous Systems exchanging *routing tables* with their
//! physical neighbors. Each node stores, per destination, the selected
//! lowest-cost AS path and its cost; a node re-advertises exactly when its
//! table changes. Two execution engines drive the same node logic:
//!
//! * [`engine::SyncEngine`] — the paper's synchronous-stage model: each
//!   stage every node ingests the tables its neighbors sent last stage,
//!   recomputes, and re-advertises on change. Deterministic; used by all
//!   experiments; its stage counter is the quantity bounded by `d` (plain
//!   BGP) and `max(d, d′)` (the pricing extension).
//! * [`engine::run_event_driven`] — an asynchronous engine (one OS thread
//!   per AS, crossbeam channels as links) showing that nothing depends on
//!   stage synchrony.
//!
//! The route-selection logic itself lives in [`RouteSelector`] so that both
//! the plain BGP node ([`PlainBgpNode`]) and the pricing extension in
//! `bgpvcg-core` share it — the paper's price computation is deliberately an
//! *extension* of BGP, not a new protocol.
//!
//! Messages ([`Update`]) carry, per destination, the AS path annotated with
//! each on-path node's declared cost, the path cost, and (for the pricing
//! extension) the price array — the "costs and prices included in the
//! routing message exchanges" of Sect. 6. [`wire`] provides the byte-size
//! model used by the communication-overhead experiments.
//!
//! # Example
//!
//! ```
//! use bgpvcg_netgraph::generators::structured::{fig1, Fig1};
//! use bgpvcg_bgp::{engine::SyncEngine, PlainBgpNode};
//! use bgpvcg_netgraph::Cost;
//!
//! let g = fig1();
//! let mut engine = SyncEngine::new(&g, PlainBgpNode::from_graph(&g));
//! let report = engine.run_to_convergence();
//! // Plain BGP converges within d = 3 stages on Fig. 1.
//! assert!(report.stages <= 3);
//! let x = engine.node(Fig1::X);
//! assert_eq!(x.selector().route(Fig1::Z).unwrap().transit_cost(), Cost::new(3));
//! ```

#![forbid(unsafe_code)]

pub mod adversary;
pub mod chaos;
pub mod engine;
pub mod forwarding;
pub mod telemetry;
pub mod wire;

mod dynamics;
mod message;
mod node;
mod selector;
mod stats;

pub use adversary::{Accusation, Adversary, Strategy, WireAuditor, WireFinding};
pub use chaos::{ChaosEngine, ChaosReport, FaultPlan};
pub use dynamics::{LocalEvent, TopologyEvent};
pub use message::{Frame, FrameKind, PathEntry, RouteAdvertisement, RouteInfo, SharedPath, Update};
pub use node::{PlainBgpNode, ProtocolNode};
pub use selector::{RouteSelector, SelectedRoute};
pub use stats::StateSnapshot;
