//! Feature-gated protocol invariant hooks for the engines.
//!
//! With the `invariant-checks` cargo feature enabled, these functions
//! install `debug_assert!`-based audits at the engine's convergence points;
//! without it they compile to nothing. `cargo xtask audit` verifies both
//! that the hooks stay wired in and that the feature-enabled test suite
//! passes.

#[cfg(feature = "invariant-checks")]
use super::sync::RunReport;

/// Audits the bookkeeping of one synchronous convergence run.
///
/// Invariants checked:
/// * the reported convergence stage never exceeds the stages executed
///   (`stages` counts the last stage with a table change; trailing stages
///   are pure message drain);
/// * a converged run stopped strictly before the stage safety limit;
/// * a non-converged run executed exactly up to the limit — "did not
///   converge" must mean "ran out of budget", never an early bail.
#[cfg(feature = "invariant-checks")]
pub(crate) fn convergence(report: &RunReport, executed: usize, stage_limit: usize) {
    debug_assert!(
        report.stages <= executed,
        "convergence stage {} exceeds {executed} executed stages",
        report.stages
    );
    if report.converged {
        debug_assert!(
            executed <= stage_limit,
            "converged run executed {executed} stages past the limit {stage_limit}"
        );
    } else {
        debug_assert!(
            executed >= stage_limit,
            "non-converged run stopped at {executed} stages below the limit {stage_limit}"
        );
    }
}

#[cfg(not(feature = "invariant-checks"))]
#[inline(always)]
pub(crate) fn convergence<R>(_report: &R, _executed: usize, _stage_limit: usize) {}
