//! Asynchronous, channel-driven execution.
//!
//! The paper analyses the protocol in a synchronous-stage model but nothing
//! in the algorithm itself requires synchrony: price entries relax
//! monotonically toward the same fixpoint whatever the message interleaving.
//! This engine demonstrates that by running every AS as its own OS thread
//! connected to its neighbors by crossbeam channels, processing one message
//! at a time with no global coordination.
//!
//! Termination uses in-flight message counting (a simplification of
//! Dijkstra–Scholten): a global counter is incremented *before* every send
//! and decremented only *after* the receiving node has fully processed the
//! message, including any sends that processing triggered. The counter
//! reading zero therefore proves global quiescence.

use crate::chaos::FaultPlan;
use crate::message::Update;
use crate::node::ProtocolNode;
use crate::telemetry::{metric, UpdateTracer};
use crate::wire;
use bgpvcg_netgraph::{AsGraph, AsId};
use bgpvcg_telemetry::{Counter, Telemetry, TraceEvent};
use crossbeam::channel::{unbounded, Sender};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::sync::{Mutex, PoisonError};
use std::thread;
use std::time::Duration;

/// What an asynchronous run did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventReport {
    /// Messages delivered across all links.
    pub messages: usize,
    /// Table entries carried by those messages.
    pub entries: usize,
}

enum Envelope {
    Deliver(Arc<Update>),
    Shutdown,
}

/// Shared instruments for one asynchronous run. The tracer sits behind a
/// mutex because every worker thread reports through it; the lock is taken
/// once per *broadcast*, not per delivered message, which keeps contention
/// proportional to table changes rather than traffic.
struct EventInstruments {
    tracer: Mutex<UpdateTracer>,
    /// Global broadcast sequence — the async stand-in for a stage number
    /// (the async engine has no stages; events are keyed by send order).
    seq: AtomicU64,
    updates_sent: Counter,
    messages: Counter,
    entries: Counter,
    bytes: Counter,
}

impl EventInstruments {
    fn new(telemetry: &Telemetry) -> Self {
        EventInstruments {
            tracer: Mutex::new(UpdateTracer::new(telemetry)),
            seq: AtomicU64::new(0),
            updates_sent: telemetry.counter(metric::UPDATES_SENT),
            messages: telemetry.counter(metric::MESSAGES),
            entries: telemetry.counter(metric::ENTRIES),
            bytes: telemetry.counter(metric::BYTES),
        }
    }

    /// Accounts one broadcast reaching `links` neighbors, stamping the
    /// update's provenance id with the broadcast sequence number (the same
    /// value standing in for the stage, so effect ids in an async trace are
    /// exactly the event's `stage` key).
    fn on_broadcast(&self, update: &mut Update, links: u64) {
        let stage = self.seq.fetch_add(1, Ordering::SeqCst) + 1;
        update.id = stage;
        self.tracer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .observe_update(update, stage);
        self.updates_sent.inc();
        self.messages.add(links);
        self.entries.add(links * update.entry_count() as u64);
        self.bytes.add(links * wire::update_size(update) as u64);
    }
}

/// Pops the front of one uniformly-chosen non-empty per-sender queue, or
/// `None` when every queue is empty. FIFO within each sender is preserved;
/// only the cross-sender interleaving is randomized.
fn drain_random(
    rng: &mut StdRng,
    buffered: &mut BTreeMap<AsId, VecDeque<Arc<Update>>>,
) -> Option<Arc<Update>> {
    let nonempty: Vec<AsId> = buffered
        .iter()
        .filter(|(_, q)| !q.is_empty())
        .map(|(&a, _)| a)
        .collect();
    if nonempty.is_empty() {
        return None;
    }
    let pick = nonempty[rng.gen_range(0..nonempty.len())];
    buffered.get_mut(&pick).and_then(VecDeque::pop_front)
}

/// Runs the protocol asynchronously until quiescence and returns the nodes
/// in AS order plus traffic statistics.
///
/// Each AS runs on its own thread and processes messages one at a time in
/// arrival order; arrival order across senders is whatever the OS scheduler
/// produces, so repeated runs exercise different interleavings. The final
/// routing state must nevertheless be identical to the synchronous engine's
/// (and is asserted to be, in the integration tests) because the protocol's
/// fixpoint is unique.
///
/// # Panics
///
/// Panics if `nodes.len()` differs from the graph's node count or a worker
/// thread panics.
pub fn run_event_driven<N>(graph: &AsGraph, nodes: Vec<N>) -> (Vec<N>, EventReport)
where
    N: ProtocolNode,
{
    run_event_driven_chaotic(graph, nodes, 0.0, 0)
}

/// Like [`run_event_driven`], but each worker services its neighbors'
/// message streams in seeded-random order instead of global arrival order —
/// an adversarial scheduler. Per-sender FIFO is preserved (each message
/// stream is buffered in its own sub-queue and consumed from the front),
/// because that is what BGP's underlying TCP sessions guarantee and what
/// last-writer-wins Rib-In semantics require; only the *interleaving
/// across senders* is randomized, which is exactly the freedom a real
/// asynchronous network has. The protocol must (and does — see the tests)
/// still reach the unique fixpoint.
///
/// `chaos` in `(0, 1)` turns the adversarial scheduler on (the value is
/// only a switch; scheduling randomness comes from `seed`); `0.0` recovers
/// plain arrival order.
///
/// # Panics
///
/// Panics if `chaos` is not in `[0, 1)` or node count mismatches the
/// graph.
pub fn run_event_driven_chaotic<N>(
    graph: &AsGraph,
    nodes: Vec<N>,
    chaos: f64,
    seed: u64,
) -> (Vec<N>, EventReport)
where
    N: ProtocolNode,
{
    run_event_driven_impl(graph, nodes, chaos, seed, 0.0, 0.0, None)
}

/// Like [`run_event_driven`], but message handling is perturbed by the
/// plan's *transport-survivable* faults: deliveries are duplicated with
/// `duplicate_rate`, service of buffered messages is postponed with
/// `delay_rate`, and the adversarial cross-sender scheduler randomizes the
/// interleaving (reordering). All three are faults a reliable transport can
/// exhibit, and the protocol absorbs them without a recovery layer:
/// duplicates are idempotent under last-writer-wins Rib-In semantics, and
/// per-sender FIFO — the one ordering TCP does guarantee and correctness
/// does require — is preserved throughout.
///
/// The plan's loss-class faults (`drop_rate`, crashes, restarts, flaps,
/// cuts) are deliberately **ignored** here: this engine models BGP over
/// TCP, where nothing below the session layer loses messages. Losses are
/// the business of the sequenced session layer in [`crate::chaos`], whose
/// [`ChaosEngine`](crate::chaos::ChaosEngine) retransmits and
/// re-establishes around them.
///
/// # Panics
///
/// Panics if a rate is outside `[0, 1)` or node count mismatches the
/// graph.
pub fn run_event_driven_faulty<N>(
    graph: &AsGraph,
    nodes: Vec<N>,
    plan: &FaultPlan,
) -> (Vec<N>, EventReport)
where
    N: ProtocolNode,
{
    assert!(
        (0.0..1.0).contains(&plan.duplicate_rate) && (0.0..1.0).contains(&plan.delay_rate),
        "fault rates must be in [0, 1)"
    );
    // Any fault needs the buffering scheduler; 0.5 is only a switch (see
    // `run_event_driven_chaotic`), randomness comes from the plan's seed.
    let chaos = if plan.duplicate_rate > 0.0 || plan.delay_rate > 0.0 {
        0.5
    } else {
        0.0
    };
    run_event_driven_impl(
        graph,
        nodes,
        chaos,
        plan.seed,
        plan.duplicate_rate,
        plan.delay_rate,
        None,
    )
}

/// Like [`run_event_driven`], but narrates the run through `telemetry`:
/// every broadcast traces as [`TraceEvent`]s (keyed by a global broadcast
/// sequence number in place of the stage the async engine does not have)
/// and the shared registry's `bgp_*` traffic counters stay current. The
/// final `Quiescent` event carries the run's total delivered messages.
///
/// # Panics
///
/// Panics if node count mismatches the graph or a worker thread panics.
pub fn run_event_driven_telemetry<N>(
    graph: &AsGraph,
    nodes: Vec<N>,
    telemetry: &Telemetry,
) -> (Vec<N>, EventReport)
where
    N: ProtocolNode,
{
    run_event_driven_impl(graph, nodes, 0.0, 0, 0.0, 0.0, Some(telemetry))
}

fn run_event_driven_impl<N>(
    graph: &AsGraph,
    nodes: Vec<N>,
    chaos: f64,
    seed: u64,
    duplicates: f64,
    delays: f64,
    telemetry: Option<&Telemetry>,
) -> (Vec<N>, EventReport)
where
    N: ProtocolNode,
{
    assert!((0.0..1.0).contains(&chaos), "chaos must be in [0, 1)");
    let instruments = telemetry.map(EventInstruments::new);
    let chaotic = chaos > 0.0;
    assert_eq!(nodes.len(), graph.node_count(), "one node per AS");
    let n = nodes.len();
    // Pre-charge one token per node: each is released only after that
    // node's start() has completed, so the counter cannot read zero before
    // every initial advertisement is out. Scoped threads borrow the
    // counters directly — no Arc, and no worker can outlive this call.
    let in_flight = AtomicI64::new(n as i64);
    let messages = AtomicUsize::new(0);
    let entries = AtomicUsize::new(0);

    let mut senders: Vec<Sender<Envelope>> = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }

    let mut out: Vec<N> = thread::scope(|s| {
        let mut handles = Vec::with_capacity(n);
        for (idx, (mut node, rx)) in nodes.into_iter().zip(receivers).enumerate() {
            let neighbor_txs: Vec<Sender<Envelope>> = graph
                .neighbors(AsId::new(idx as u32))
                .iter()
                .map(|a| senders[a.index()].clone())
                .collect();
            let (in_flight, messages, entries) = (&in_flight, &messages, &entries);
            let instruments = instruments.as_ref();
            let mut scheduler = if chaotic {
                Some(StdRng::seed_from_u64(
                    seed ^ (idx as u64).wrapping_mul(0x9e37_79b9),
                ))
            } else {
                None
            };

            handles.push(s.spawn(move || {
                let broadcast = |mut update: Update| {
                    if let Some(ins) = instruments {
                        ins.on_broadcast(&mut update, neighbor_txs.len() as u64);
                    }
                    // One shared payload for all receiving links.
                    let shared = Arc::new(update);
                    for tx in &neighbor_txs {
                        // Increment BEFORE the send so the counter can never
                        // dip to zero while a message is in a channel.
                        in_flight.fetch_add(1, Ordering::SeqCst);
                        messages.fetch_add(1, Ordering::SeqCst);
                        entries.fetch_add(shared.entry_count(), Ordering::SeqCst);
                        if tx.send(Envelope::Deliver(Arc::clone(&shared))).is_err() {
                            // Receiver exited early (a worker panicked and the
                            // run is doomed); compensate the token so the
                            // coordinator cannot hang waiting for quiescence.
                            in_flight.fetch_sub(1, Ordering::SeqCst);
                        }
                    }
                };
                if let Some(update) = node.start() {
                    broadcast(update);
                }
                in_flight.fetch_sub(1, Ordering::SeqCst); // release the start token

                // Per-sender sub-queues for the adversarial scheduler: FIFO
                // within a sender, random service order across senders.
                let mut buffered: BTreeMap<AsId, VecDeque<Arc<Update>>> = BTreeMap::new();
                let handle_once = |node: &mut N, update: &Arc<Update>| {
                    if let Some(out) = node.handle(std::slice::from_ref(update)) {
                        broadcast(out);
                    }
                };
                let process = |node: &mut N, update: &Arc<Update>| {
                    handle_once(node, update);
                    // Decrement only after processing (and its sends) completed.
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                };
                loop {
                    let envelope = if buffered.values().any(|q| !q.is_empty()) {
                        // Don't block while messages are locally buffered.
                        match rx.recv_timeout(Duration::from_micros(200)) {
                            Ok(e) => Some(e),
                            Err(crossbeam::channel::RecvTimeoutError::Timeout) => None,
                            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                        }
                    } else {
                        match rx.recv() {
                            Ok(e) => Some(e),
                            Err(_) => break,
                        }
                    };
                    match envelope {
                        Some(Envelope::Shutdown) => break,
                        Some(Envelope::Deliver(update)) => {
                            if let Some(rng) = scheduler.as_mut() {
                                // Buffer, then service one random sender's
                                // front (never `None`: we just pushed) —
                                // unless a delay fault postpones service to a
                                // later round (the timeout branch below
                                // guarantees eventual progress).
                                buffered.entry(update.from).or_default().push_back(update);
                                if delays > 0.0 && rng.gen_bool(delays) {
                                    continue;
                                }
                                if let Some(next) = drain_random(rng, &mut buffered) {
                                    process(&mut node, &next);
                                    // A duplicate delivery: the same update
                                    // handled again, which last-writer-wins
                                    // Rib-In semantics must absorb silently.
                                    if duplicates > 0.0 && rng.gen_bool(duplicates) {
                                        handle_once(&mut node, &next);
                                    }
                                }
                            } else {
                                process(&mut node, &update);
                            }
                        }
                        None => {
                            // Timeout with a local buffer: only the chaotic
                            // scheduler buffers, so without one this re-enters
                            // recv() above. Delay faults never apply here, so
                            // postponed messages cannot starve.
                            if let Some(rng) = scheduler.as_mut() {
                                if let Some(next) = drain_random(rng, &mut buffered) {
                                    process(&mut node, &next);
                                }
                            }
                        }
                    }
                }
                node
            }));
        }

        // Wait for quiescence: the counter is incremented before each send
        // (and pre-charged for each start()) and decremented only after the
        // corresponding processing, so zero here proves no message is
        // buffered, in processing, or about to be produced.
        while in_flight.load(Ordering::SeqCst) != 0 {
            thread::sleep(Duration::from_micros(200));
        }

        for tx in &senders {
            // A failed send means that worker already exited (it panicked);
            // join() below surfaces the panic.
            let _ = tx.send(Envelope::Shutdown);
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(node) => node,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    out.sort_by_key(|node| node.id());

    let report = EventReport {
        messages: messages.load(Ordering::SeqCst),
        entries: entries.load(Ordering::SeqCst),
    };
    if let (Some(telemetry), Some(ins)) = (telemetry, instruments.as_ref()) {
        telemetry.record(&TraceEvent::Quiescent {
            stage: ins.seq.load(Ordering::SeqCst),
            messages: report.messages as u64,
        });
        telemetry.flush();
    }
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SyncEngine;
    use crate::node::PlainBgpNode;
    use bgpvcg_lcp::AllPairsLcp;
    use bgpvcg_netgraph::generators::structured::{fig1, ring};
    use bgpvcg_netgraph::generators::{erdos_renyi, random_costs};
    use bgpvcg_netgraph::Cost;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn async_routes_match_centralized_on_fig1() {
        let g = fig1();
        let (nodes, report) = run_event_driven(&g, PlainBgpNode::from_graph(&g));
        assert!(report.messages > 0);
        let lcp = AllPairsLcp::compute(&g);
        for node in &nodes {
            for j in g.nodes() {
                assert_eq!(
                    node.selector().route(j).as_ref(),
                    lcp.route(node.id(), j),
                    "{} -> {j}",
                    node.id()
                );
            }
        }
    }

    #[test]
    fn async_matches_sync_final_state() {
        let g = ring(8, Cost::new(3));
        let (async_nodes, _) = run_event_driven(&g, PlainBgpNode::from_graph(&g));
        let mut engine = SyncEngine::new(&g, PlainBgpNode::from_graph(&g));
        engine.run_to_convergence();
        for node in &async_nodes {
            let sync_node = engine.node(node.id());
            for j in g.nodes() {
                assert_eq!(
                    node.selector().route(j),
                    sync_node.selector().route(j),
                    "{} -> {j}",
                    node.id()
                );
            }
        }
    }

    #[test]
    fn async_is_deterministic_in_outcome_across_runs() {
        let mut rng = StdRng::seed_from_u64(17);
        let costs = random_costs(15, 0, 9, &mut rng);
        let g = erdos_renyi(costs, 0.3, &mut rng);
        let (first, _) = run_event_driven(&g, PlainBgpNode::from_graph(&g));
        for _ in 0..3 {
            let (again, _) = run_event_driven(&g, PlainBgpNode::from_graph(&g));
            for (a, b) in first.iter().zip(&again) {
                for j in g.nodes() {
                    assert_eq!(a.selector().route(j), b.selector().route(j));
                }
            }
        }
    }

    #[test]
    fn chaotic_delivery_reaches_the_same_fixpoint() {
        // Adversarial reordering (40% requeue) must not change the result.
        let mut rng = StdRng::seed_from_u64(23);
        let costs = random_costs(14, 0, 9, &mut rng);
        let g = erdos_renyi(costs, 0.3, &mut rng);
        let (reference, _) = run_event_driven(&g, PlainBgpNode::from_graph(&g));
        for seed in 0..3 {
            let (chaotic, _) =
                run_event_driven_chaotic(&g, PlainBgpNode::from_graph(&g), 0.4, seed);
            for (a, b) in reference.iter().zip(&chaotic) {
                for j in g.nodes() {
                    assert_eq!(a.selector().route(j), b.selector().route(j), "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn faulty_delivery_reaches_the_same_fixpoint() {
        // Duplicates, delays, and adversarial reordering must all be
        // absorbed without a recovery layer.
        let mut rng = StdRng::seed_from_u64(29);
        let costs = random_costs(12, 0, 9, &mut rng);
        let g = erdos_renyi(costs, 0.35, &mut rng);
        let (reference, _) = run_event_driven(&g, PlainBgpNode::from_graph(&g));
        for seed in 0..3 {
            let plan = crate::chaos::FaultPlan {
                duplicate_rate: 0.25,
                delay_rate: 0.25,
                ..crate::chaos::FaultPlan::lossy(seed, 0)
            };
            let (faulty, _) = run_event_driven_faulty(&g, PlainBgpNode::from_graph(&g), &plan);
            for (a, b) in reference.iter().zip(&faulty) {
                for j in g.nodes() {
                    assert_eq!(a.selector().route(j), b.selector().route(j), "seed {seed}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "fault rates must be")]
    fn faulty_rejects_out_of_range_rates() {
        let g = fig1();
        let plan = crate::chaos::FaultPlan {
            duplicate_rate: 1.0,
            ..crate::chaos::FaultPlan::quiet()
        };
        let _ = run_event_driven_faulty(&g, PlainBgpNode::from_graph(&g), &plan);
    }

    #[test]
    #[should_panic(expected = "chaos must be")]
    fn chaos_rejects_out_of_range_parameter() {
        let g = fig1();
        let _ = run_event_driven_chaotic(&g, PlainBgpNode::from_graph(&g), 1.0, 0);
    }

    #[test]
    fn nodes_return_in_as_order() {
        let g = fig1();
        let (nodes, _) = run_event_driven(&g, PlainBgpNode::from_graph(&g));
        for (idx, node) in nodes.iter().enumerate() {
            assert_eq!(node.id().index(), idx);
        }
    }

    #[test]
    fn telemetry_run_counts_match_the_report() {
        let g = ring(8, Cost::new(3));
        let (telemetry, sink) = Telemetry::ring(65536);
        let (nodes, report) =
            run_event_driven_telemetry(&g, PlainBgpNode::from_graph(&g), &telemetry);
        assert_eq!(nodes.len(), g.node_count());
        let snap = telemetry.snapshot();
        assert_eq!(snap.counters[metric::MESSAGES], report.messages as u64);
        assert_eq!(snap.counters[metric::ENTRIES], report.entries as u64);
        // One RouteSelected/Withdrawn event per broadcast advertisement;
        // plain BGP never withdraws in a static run.
        let events = sink.events();
        assert!(matches!(
            events.last(),
            Some(TraceEvent::Quiescent { messages, .. })
                if *messages == report.messages as u64
        ));
        let selected = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::RouteSelected { .. }))
            .count();
        assert_eq!(snap.counters[metric::ROUTES_SELECTED], selected as u64);
        assert_eq!(snap.counters[metric::ROUTES_WITHDRAWN], 0);
        // Broadcast sequence numbers are unique and dense: the Quiescent
        // stage equals the number of broadcasts.
        assert_eq!(
            events.last().map(super::TraceEvent::stage),
            Some(snap.counters[metric::UPDATES_SENT])
        );
    }

    #[test]
    fn telemetry_run_reaches_the_same_fixpoint() {
        let g = fig1();
        let (reference, _) = run_event_driven(&g, PlainBgpNode::from_graph(&g));
        let (observed, _) = run_event_driven_telemetry(
            &g,
            PlainBgpNode::from_graph(&g),
            &bgpvcg_telemetry::Telemetry::null(),
        );
        for (a, b) in reference.iter().zip(&observed) {
            for j in g.nodes() {
                assert_eq!(a.selector().route(j), b.selector().route(j));
            }
        }
    }
}
