//! The synchronous-stage engine of the paper's Sect. 5.
//!
//! The hot path is incremental and allocation-free per stage: per-node
//! inboxes are double-buffered `Vec<Arc<Update>>` queues whose capacity
//! survives across stages, a dirty list names exactly the nodes with
//! pending input, and one broadcast shares a single [`Arc`]'d payload
//! across all receiving links. Stages can optionally run on a scoped
//! worker pool ([`SyncEngine::with_parallelism`]) that is bit-for-bit
//! identical to the serial reference path — see `docs/PERFORMANCE.md`
//! for the architecture and the determinism argument.

use super::invariants;
use crate::adversary::{Accusation, Adversary, WireAuditor};
use crate::dynamics::{LocalEvent, TopologyEvent};
use crate::message::{RouteInfo, Update};
use crate::node::ProtocolNode;
use crate::stats::StateSnapshot;
use crate::telemetry::{metric, RunInstruments};
use crate::wire;
use bgpvcg_netgraph::{AsGraph, AsId, Cost, GraphError};
use bgpvcg_telemetry::flight::{self, FlightRecorder, StateSnapshot as FlightSnapshot};
use bgpvcg_telemetry::profile::span;
use bgpvcg_telemetry::{
    Clock, HealthConfig, HealthSink, SpanId, SpanProfiler, SystemClock, Telemetry, TraceEvent,
    TraceSink,
};
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// What one call to [`SyncEngine::run_to_convergence`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Stages executed until quiescence. A stage is one synchronous round of
    /// "deliver all queued updates, let every receiving node recompute and
    /// re-advertise". This is the quantity the paper bounds by `d` for plain
    /// BGP and `max(d, d′)` for the pricing extension.
    pub stages: usize,
    /// Messages delivered (one update crossing one link = one message).
    pub messages: usize,
    /// Routing-table entries carried by all delivered messages.
    pub entries: usize,
    /// Total bytes under the [`wire`] model (v1 fixed-width encoding —
    /// the historical baseline column).
    pub bytes: usize,
    /// Total bytes under the v2 varint/delta encoding
    /// ([`wire::encode_update_v2_into`]) of the same message stream.
    pub bytes_v2: usize,
    /// Peak messages delivered on any single link in any single stage.
    pub max_link_messages_per_stage: usize,
    /// `false` if the engine hit its stage limit before quiescing (a
    /// protocol bug, never expected with LCP policies).
    pub converged: bool,
}

impl RunReport {
    fn absorb(&mut self, other: RunReport) {
        self.stages += other.stages;
        self.messages += other.messages;
        self.entries += other.entries;
        self.bytes += other.bytes;
        self.bytes_v2 += other.bytes_v2;
        self.max_link_messages_per_stage = self
            .max_link_messages_per_stage
            .max(other.max_link_messages_per_stage);
        self.converged = other.converged;
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} stages, {} messages, {} entries, {} bytes ({} v2){}",
            self.stages,
            self.messages,
            self.entries,
            self.bytes,
            self.bytes_v2,
            if self.converged {
                ""
            } else {
                " (NOT CONVERGED)"
            }
        )
    }
}

/// One synchronous stage as seen by a trace observer (see
/// [`SyncEngine::run_to_convergence_traced`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageTrace {
    /// 1-based stage number within this run.
    pub stage: usize,
    /// Nodes that received at least one update this stage.
    pub receiving_nodes: usize,
    /// Nodes whose advertised state changed (they re-advertised).
    pub changed_nodes: usize,
    /// Messages sent this stage (update × receiving link).
    pub messages: usize,
    /// Encoded bytes sent this stage.
    pub bytes: usize,
}

impl fmt::Display for StageTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stage {:>3}: {:>3} nodes received, {:>3} changed, {:>5} msgs, {:>8} bytes",
            self.stage, self.receiving_nodes, self.changed_nodes, self.messages, self.bytes
        )
    }
}

/// Everything one executed stage produced beyond its public [`StageTrace`]:
/// the table-entry count for the run report and the stage's peak per-link
/// message count.
struct StageOutcome {
    trace: StageTrace,
    entries: usize,
    /// v2-encoded bytes this stage (the public [`StageTrace`] keeps the v1
    /// `bytes` column for display stability).
    bytes_v2: usize,
    link_max: usize,
}

/// The synchronous-stage engine: all nodes exchange routing tables in
/// lock-step rounds, exactly the computational model of the paper's Sect. 5.
///
/// Each stage consists of (1) delivering every update queued in the previous
/// stage, (2) letting each node that received something recompute, and (3)
/// queueing whatever those nodes want to re-advertise. The run ends at the
/// first stage with nothing queued.
///
/// The engine is generic over the node type so the plain BGP speaker and the
/// pricing extension run on identical machinery and their traffic statistics
/// are directly comparable.
///
/// Node recomputation within a stage is independent by construction (each
/// `handle` reads only the node's own inbox, filled last stage), so stages
/// can run on a worker pool — [`with_parallelism`](Self::with_parallelism) —
/// while broadcasts are merged in ascending node order, keeping parallel
/// runs bit-for-bit identical to serial ones.
#[derive(Debug)]
pub struct SyncEngine<N> {
    nodes: Vec<N>,
    /// Physical adjacency (kept here, mutable by topology events).
    adjacency: Vec<Vec<AsId>>,
    /// Per-node inbox for the next stage. One broadcast pushes one shared
    /// `Arc` per receiving link, never a payload copy.
    inboxes: Vec<Vec<Arc<Update>>>,
    /// Double buffer for `inboxes`: holds the *current* stage's deliveries
    /// while `inboxes` collects the next stage's. All slots are empty
    /// between stages but keep their capacity, so steady-state stages
    /// allocate nothing.
    delivered: Vec<Vec<Arc<Update>>>,
    /// Dirty list: indices of nodes with a non-empty inbox, i.e. exactly
    /// the nodes the next stage must run. Maintained by `broadcast` /
    /// `unicast` (a slot is pushed when it transitions empty → non-empty).
    dirty: Vec<u32>,
    /// `down[k]` marks node `k` as crashed: no incident links, no inbox,
    /// protocol state already wiped (see [`TopologyEvent::NodeDown`]).
    down: Vec<bool>,
    /// The neighbor list each crashed node had when it went down, so
    /// [`TopologyEvent::NodeUp`] can restore exactly those links. A link
    /// whose far end is *also* down is handed over to that node's parked
    /// list when this one restarts, so both-down links resurface when the
    /// second endpoint comes back.
    parked: Vec<Vec<AsId>>,
    /// Double buffer for `dirty`, empty between stages.
    stage_dirty: Vec<u32>,
    /// Reusable scratch buffer for v2 byte accounting: every broadcast's
    /// v2 size is measured by encoding into this one buffer, so the hot
    /// path performs zero per-message encoder allocations.
    scratch: Vec<u8>,
    /// Worker threads per stage; 1 = the serial reference path.
    workers: usize,
    /// Safety valve: abort after this many stages (default `8n + 64`).
    stage_limit: usize,
    started: bool,
    /// Stage counter for the step-wise API.
    steps_executed: usize,
    /// Monotone provenance counter: every broadcast [`Update`] is stamped
    /// with the next id (in ascending node order, which is also the merge
    /// order of the parallel path — so serial and parallel runs assign
    /// identical ids). 0 is reserved for the environment; see
    /// [`Update::id`].
    update_seq: u64,
    /// Attached observability instruments (None = zero overhead). Taken out
    /// of the engine for the duration of each run loop so broadcasts can
    /// borrow `self` mutably while the instruments record.
    instruments: Option<RunInstruments>,
    /// Attached divergence flight recorder: a bounded tail of the event
    /// stream, dumped as one JSON artifact when a run exceeds the stage
    /// limit.
    flight: Option<FlightRecorder>,
    /// Per-node Byzantine wire wrappers (`None` = honest). Consulted on
    /// every outgoing delivery; see [`set_adversary`](Self::set_adversary).
    adversaries: Vec<Option<Adversary>>,
    /// Attached online auditor (watchdog), if any. Kept in a slot so the
    /// engine's derived `Debug` survives the `dyn` trait object.
    auditor: Option<AuditorSlot>,
    /// Whether an auditor accusation triggers automatic NodeDown
    /// quarantine (on by default when an auditor is attached).
    auto_quarantine: bool,
    /// Nodes the auditor quarantined over this engine's lifetime, in
    /// accusation order.
    quarantined: Vec<AsId>,
    /// Every accusation the attached auditor returned, in order.
    accusations: Vec<Accusation>,
    /// Scratch: trace events produced inside `broadcast`/`unicast` (which
    /// run while the caller holds the instruments), drained into the
    /// instruments after each delivery batch. Empty on the honest path.
    pending_events: Vec<TraceEvent>,
    /// Attached hierarchical span profiler (`None` = zero overhead): the
    /// engine phases of [`span`] timed with zero per-enter/exit
    /// allocations. See [`attach_profiler`](Self::attach_profiler).
    profiler: Option<SpanProfiler>,
    /// Clock the profiler stamps with, captured at attach time so the hot
    /// loop never goes through the (taken-out) instruments.
    prof_clock: Option<Arc<dyn Clock>>,
    /// Attached streaming health monitor, teed into the trace stream so it
    /// folds every event as it is recorded. See
    /// [`attach_health`](Self::attach_health).
    health: Option<Arc<HealthSink>>,
    /// Whether the one-shot health-stall post-mortem has been written.
    health_stall_dumped: bool,
    /// Per-stage observer over the settled node array (economic gauges
    /// etc.), invoked after every executed stage of a traced run.
    stage_observer: Option<ObserverSlot<N>>,
}

/// A per-stage observer closure: invoked with `(stage, nodes)` after
/// every executed stage of a traced run.
pub type StageObserver<N> = Box<dyn FnMut(u64, &[N]) + Send>;

/// Holder giving the stage-observer closure a `Debug` representation so
/// [`SyncEngine`] keeps its derived `Debug` (same pattern as
/// [`AuditorSlot`]).
struct ObserverSlot<N>(StageObserver<N>);

impl<N> fmt::Debug for ObserverSlot<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("StageObserver")
    }
}

/// Holder giving the attached `dyn` auditor a `Debug` representation so
/// [`SyncEngine`] keeps its derived `Debug`.
struct AuditorSlot(Box<dyn WireAuditor>);

impl fmt::Debug for AuditorSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("WireAuditor")
    }
}

impl<N: ProtocolNode> SyncEngine<N> {
    /// Creates an engine over the graph's topology with one prepared node
    /// per AS (in AS order — see e.g.
    /// [`PlainBgpNode::from_graph`](crate::PlainBgpNode::from_graph)).
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the graph's node count or ids
    /// are out of order.
    pub fn new(graph: &AsGraph, nodes: Vec<N>) -> Self {
        assert_eq!(nodes.len(), graph.node_count(), "one node per AS");
        for (idx, node) in nodes.iter().enumerate() {
            assert_eq!(node.id().index(), idx, "nodes must be in AS order");
        }
        let n = nodes.len();
        SyncEngine {
            nodes,
            adjacency: graph.nodes().map(|k| graph.neighbors(k).to_vec()).collect(),
            inboxes: vec![Vec::new(); n],
            delivered: vec![Vec::new(); n],
            dirty: Vec::new(),
            down: vec![false; n],
            parked: vec![Vec::new(); n],
            stage_dirty: Vec::new(),
            scratch: Vec::new(),
            workers: 1,
            stage_limit: 8 * n + 64,
            started: false,
            steps_executed: 0,
            update_seq: 0,
            instruments: None,
            flight: None,
            adversaries: vec![None; n],
            auditor: None,
            auto_quarantine: true,
            quarantined: Vec::new(),
            accusations: Vec::new(),
            pending_events: Vec::new(),
            profiler: None,
            prof_clock: None,
            health: None,
            health_stall_dumped: false,
            stage_observer: None,
        }
    }

    /// Stamps `update` with the next provenance id. The counter is
    /// engine-local, so co-resident engines replaying the same run emit
    /// identical id streams (the parallel-parity suite relies on this).
    fn stamp(&mut self, update: &mut Update) {
        self.update_seq += 1;
        update.id = self.update_seq;
    }

    /// Sets the number of worker threads a stage's node recomputation is
    /// partitioned across (clamped to at least 1; 1 = the serial reference
    /// path). Any value produces bit-identical runs — reports, fixpoints,
    /// message streams, and telemetry all match the serial engine exactly,
    /// because emitted updates are merged in ascending node order. See
    /// `docs/PERFORMANCE.md` for the determinism argument.
    #[must_use]
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// The configured number of stage workers (1 = serial).
    pub fn parallelism(&self) -> usize {
        self.workers
    }

    /// Attaches observability: from now on every run narrates itself as
    /// [`TraceEvent`]s through `telemetry`'s sink and keeps the shared
    /// registry's `bgp_*` metrics (see [`metric`]) current. Detached
    /// engines pay nothing.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.instruments = Some(RunInstruments::new(telemetry));
    }

    /// Attaches a divergence flight recorder: the most recent `capacity`
    /// trace events are retained in memory, and if a run exceeds the stage
    /// limit the tail plus per-node state snapshots are dumped to `path`
    /// as one schema-valid JSON artifact (see
    /// [`bgpvcg_telemetry::flight`]). Call after
    /// [`attach_telemetry`](Self::attach_telemetry): the recorder tees off
    /// whatever telemetry is attached at that point (and works standalone
    /// on a detached engine).
    pub fn attach_flight_recorder(&mut self, path: &Path, capacity: usize) {
        let recorder = FlightRecorder::new(path.to_path_buf(), capacity);
        let telemetry = match self.instruments.take() {
            Some(ins) => ins.telemetry().tee(recorder.sink()),
            None => Telemetry::new(recorder.sink()),
        };
        self.instruments = Some(RunInstruments::new(&telemetry));
        self.flight = Some(recorder);
    }

    /// The attached flight recorder, if any.
    pub fn flight_recorder(&self) -> Option<&FlightRecorder> {
        self.flight.as_ref()
    }

    /// Attaches the hierarchical span profiler over the engine phases of
    /// [`span`] (route-select, wire-encode, price-relax, audit
    /// shadow-execute, adversary tap, health fold — all nested under the
    /// per-stage root). Enter/exit on the hot path is allocation-free;
    /// detached engines pay nothing. Timestamps come from the attached
    /// telemetry's clock (so tests can script them), or a fresh
    /// [`SystemClock`] on a detached engine. Attach telemetry first.
    pub fn attach_profiler(&mut self) {
        self.prof_clock = Some(match self.instruments.as_ref() {
            Some(ins) => ins.telemetry().clock_handle(),
            None => Arc::new(SystemClock::new()),
        });
        self.profiler = Some(SpanProfiler::engine());
    }

    /// The attached span profiler's current totals, if any.
    pub fn profiler(&self) -> Option<&SpanProfiler> {
        self.profiler.as_ref()
    }

    /// Detaches and returns the span profiler (e.g. to merge shards).
    pub fn take_profiler(&mut self) -> Option<SpanProfiler> {
        self.prof_clock = None;
        self.profiler.take()
    }

    /// Attaches the streaming convergence-health monitor: a
    /// [`HealthSink`] is teed into the trace stream (exactly like
    /// [`attach_flight_recorder`](Self::attach_flight_recorder), and works
    /// standalone on a detached engine) so every event is folded as it is
    /// recorded. The engine polls the stall detector between stages and —
    /// when a flight recorder is also attached — dumps a
    /// [`flight::REASON_HEALTH_STALL`] post-mortem at first stall, before
    /// any stage-limit overrun destroys the evidence. Freshly-fired
    /// findings are emitted as `HealthVerdict` trace events at each run
    /// end. Call after `attach_telemetry` / `attach_flight_recorder`.
    pub fn attach_health(&mut self, config: HealthConfig) {
        let sink = Arc::new(HealthSink::new(config));
        let telemetry = match self.instruments.take() {
            Some(ins) => ins.telemetry().tee(Arc::clone(&sink) as Arc<dyn TraceSink>),
            None => Telemetry::new(Arc::clone(&sink) as Arc<dyn TraceSink>),
        };
        self.instruments = Some(RunInstruments::new(&telemetry));
        self.health = Some(sink);
    }

    /// The attached health monitor, if any.
    pub fn health_sink(&self) -> Option<&Arc<HealthSink>> {
        self.health.as_ref()
    }

    /// Installs a per-stage observer invoked with `(stage, nodes)` after
    /// every executed stage of a traced run — the hook economic
    /// instrumentation (premium/welfare gauges) samples through without
    /// the engine knowing about pricing.
    pub fn set_stage_observer(&mut self, observer: StageObserver<N>) {
        self.stage_observer = Some(ObserverSlot(observer));
    }

    /// Opens span `id` on the attached profiler (no-op when detached).
    fn prof_enter(&mut self, id: SpanId) {
        if let (Some(profiler), Some(clock)) = (self.profiler.as_mut(), self.prof_clock.as_ref()) {
            profiler.enter(id, clock.now_nanos());
        }
    }

    /// Closes the innermost open span (no-op when detached).
    fn prof_exit(&mut self) {
        if let (Some(profiler), Some(clock)) = (self.profiler.as_mut(), self.prof_clock.as_ref()) {
            profiler.exit(clock.now_nanos());
        }
    }

    /// Writes the one-shot health-stall post-mortem: run counters plus the
    /// fired findings as snapshots. Best-effort like
    /// [`dump_flight`](Self::dump_flight); a no-op without a recorder.
    fn dump_health_flight(&mut self, stage: u64, report: &RunReport) {
        if self.health_stall_dumped {
            return;
        }
        self.health_stall_dumped = true;
        let Some(recorder) = &self.flight else {
            return;
        };
        let findings = self
            .health
            .as_ref()
            .map(|h| h.findings())
            .unwrap_or_default();
        let snapshots: Vec<FlightSnapshot> = findings
            .iter()
            .take(64)
            .map(|f| FlightSnapshot {
                node: f.node,
                fields: vec![
                    ("detector", u64::from(f.detector)),
                    ("stage", f.stage),
                    ("dest", u64::from(f.dest)),
                    ("count", f.count),
                    ("threshold", f.threshold),
                ],
            })
            .collect();
        let _ = recorder.dump(
            flight::REASON_HEALTH_STALL,
            stage,
            &[
                ("findings", findings.len() as u64),
                ("stage_limit", self.stage_limit as u64),
                ("messages", report.messages as u64),
                ("dirty_nodes", self.dirty.len() as u64),
                ("updates_stamped", self.update_seq),
                ("nodes", self.nodes.len() as u64),
            ],
            &snapshots,
        );
    }

    /// Emits end-of-run observability: freshly-fired health findings as
    /// `HealthVerdict` events and the profiler's cumulative per-span
    /// totals as `SpanSummary` events. Stamped with the run's final stage.
    fn emit_run_observability(&mut self, instruments: &Option<RunInstruments>, stage: u64) {
        let Some(ins) = instruments.as_ref() else {
            return;
        };
        if let Some(health) = self.health.as_ref() {
            for finding in health.drain_new_findings() {
                ins.telemetry().record(&finding.to_event());
            }
        }
        if let Some(profiler) = self.profiler.as_ref() {
            for event in profiler.summary_events(stage) {
                ins.telemetry().record(&event);
            }
        }
    }

    /// Writes the divergence dump after a stage-limit abort. Best-effort:
    /// the recorder is advisory and must not take a failing run further
    /// down, so I/O errors are swallowed.
    fn dump_flight(&self, executed: usize, report: &RunReport) {
        let Some(recorder) = &self.flight else {
            return;
        };
        let mut snapshots: Vec<FlightSnapshot> = self
            .inboxes
            .iter()
            .zip(&self.adjacency)
            .zip(&self.down)
            .enumerate()
            .map(|(idx, ((inbox, neighbors), &down))| FlightSnapshot {
                node: idx as u32,
                fields: vec![
                    ("inbox_depth", inbox.len() as u64),
                    ("neighbors", neighbors.len() as u64),
                    ("down", u64::from(down)),
                ],
            })
            .collect();
        // Bound the artifact on huge topologies; the run summary still
        // carries the totals.
        snapshots.truncate(64);
        let _ = recorder.dump(
            flight::REASON_STAGE_LIMIT,
            executed as u64,
            &[
                ("stage_limit", self.stage_limit as u64),
                ("stages_with_changes", report.stages as u64),
                ("messages", report.messages as u64),
                ("entries", report.entries as u64),
                ("dirty_nodes", self.dirty.len() as u64),
                ("updates_stamped", self.update_seq),
                ("nodes", self.nodes.len() as u64),
            ],
            &snapshots,
        );
    }

    /// Collects the attached auditor's end-of-stage accusations, narrates
    /// them (`AuditViolation` trace events plus a flight post-mortem), and
    /// — with auto-quarantine on — cuts each accused node from the
    /// topology via the [`TopologyEvent::NodeDown`] machinery. Quarantine
    /// reaction broadcasts land at the head of the continuing run, so the
    /// honest subgraph reconverges within the same
    /// `run_to_convergence` call. An accusation whose removal would break
    /// the live graph's biconnectivity is recorded but not quarantined.
    fn audit_stage(
        &mut self,
        stage: u64,
        report: &mut RunReport,
        instruments: &mut Option<RunInstruments>,
    ) {
        if self.auditor.is_none() {
            return;
        }
        self.prof_enter(span::AUDIT_SHADOW);
        let accusations = match self.auditor.as_mut() {
            Some(auditor) => auditor.0.end_stage(stage),
            None => Vec::new(),
        };
        for accusation in accusations {
            if let Some(ins) = instruments.as_mut() {
                for finding in &accusation.findings {
                    ins.telemetry().record(&TraceEvent::AuditViolation {
                        stage,
                        node: accusation.node.index() as u32,
                        dest: finding.destination.index() as u32,
                        expected: advertised_cost_raw(finding.expected.as_ref()),
                        advertised: advertised_cost_raw(finding.advertised.as_ref()),
                        violation: u32::from(finding.equivocation),
                    });
                }
            }
            self.dump_audit_flight(stage, &accusation);
            let culprit = accusation.node;
            self.accusations.push(accusation);
            if !self.auto_quarantine || self.down[culprit.index()] {
                continue;
            }
            if self
                .validate_event(TopologyEvent::NodeDown(culprit))
                .is_ok()
            {
                if let Some(ins) = instruments.as_mut() {
                    ins.telemetry().record(&TraceEvent::NodeQuarantined {
                        stage,
                        node: culprit.index() as u32,
                    });
                }
                // The wire tap goes with the node: a quarantined adversary
                // sends nothing more to perturb.
                self.adversaries[culprit.index()] = None;
                self.inject_event(TopologyEvent::NodeDown(culprit), report, instruments);
                self.quarantined.push(culprit);
            }
        }
        self.prof_exit();
    }

    /// Writes the audit post-mortem after an accusation: the accused node,
    /// every diverging destination with its expected-vs-advertised costs,
    /// and the recorded event tail. Best-effort like
    /// [`dump_flight`](Self::dump_flight).
    fn dump_audit_flight(&self, stage: u64, accusation: &Accusation) {
        let Some(recorder) = &self.flight else {
            return;
        };
        let summary: Vec<(&str, u64)> = vec![
            ("accused", u64::from(accusation.node.index() as u32)),
            ("stage", stage),
            ("diverging_destinations", accusation.findings.len() as u64),
            (
                "equivocations",
                accusation
                    .findings
                    .iter()
                    .filter(|f| f.equivocation)
                    .count() as u64,
            ),
        ];
        let snapshots: Vec<FlightSnapshot> = accusation
            .findings
            .iter()
            .take(64)
            .map(|finding| FlightSnapshot {
                node: finding.destination.index() as u32,
                fields: vec![
                    (
                        "expected_cost",
                        advertised_cost_raw(finding.expected.as_ref()),
                    ),
                    (
                        "advertised_cost",
                        advertised_cost_raw(finding.advertised.as_ref()),
                    ),
                    ("equivocation", u64::from(finding.equivocation)),
                ],
            })
            .collect();
        let _ = recorder.dump(flight::REASON_AUDIT_VIOLATION, stage, &summary, &snapshots);
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Read access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: AsId) -> &N {
        &self.nodes[id.index()]
    }

    /// Iterates over all nodes in AS order.
    pub fn nodes(&self) -> impl Iterator<Item = &N> {
        self.nodes.iter()
    }

    /// Overrides the stage safety limit.
    pub fn set_stage_limit(&mut self, limit: usize) {
        self.stage_limit = limit;
    }

    /// Enables or disables price-delta advertisement emission on every
    /// node (see [`ProtocolNode::configure_delta_encoding`]). Deltas are
    /// on by default; the equivalence suite turns them off to prove the
    /// compressed stream reaches the identical fixpoint.
    pub fn set_delta_encoding(&mut self, on: bool) {
        for node in &mut self.nodes {
            node.configure_delta_encoding(on);
        }
    }

    /// Wraps `node` in a Byzantine wire-layer adversary: from now on every
    /// outgoing delivery (broadcast copies and session full-table unicasts
    /// alike) is offered to [`Adversary::perturb`] for per-neighbor
    /// corruption. The wrapped node itself keeps running the honest
    /// protocol on its real inbox — only its wire output lies. Delta
    /// encoding is disabled on the node so perturbations operate on full
    /// advertisements.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_adversary(&mut self, node: AsId, adversary: Adversary) {
        self.nodes[node.index()].configure_delta_encoding(false);
        self.adversaries[node.index()] = Some(adversary);
    }

    /// The adversary currently wrapping `node`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn adversary(&self, node: AsId) -> Option<&Adversary> {
        self.adversaries[node.index()].as_ref()
    }

    /// Attaches an online auditor: every queued delivery is narrated to it
    /// via [`WireAuditor::on_wire`], and after the stage-0 reaction
    /// broadcasts plus every executed stage the engine collects its
    /// accusations. Unless [`set_auto_quarantine`](Self::set_auto_quarantine)
    /// is turned off, each accused node is immediately cut from the
    /// topology via the [`TopologyEvent::NodeDown`] machinery (when the
    /// residual graph stays biconnected) so the honest subgraph
    /// reconverges. Supported on the `run_to_convergence` /
    /// `apply_event` APIs; the step-wise API does not drive audit hooks.
    pub fn attach_auditor(&mut self, auditor: Box<dyn WireAuditor>) {
        self.auditor = Some(AuditorSlot(auditor));
    }

    /// Enables or disables automatic quarantine of accused nodes (on by
    /// default). With it off, accusations are still recorded and traced.
    pub fn set_auto_quarantine(&mut self, on: bool) {
        self.auto_quarantine = on;
    }

    /// Nodes the auditor quarantined over this engine's lifetime.
    pub fn quarantined(&self) -> &[AsId] {
        &self.quarantined
    }

    /// Every accusation the attached auditor has returned, in order.
    pub fn accusations(&self) -> &[Accusation] {
        &self.accusations
    }

    /// Queues `update` from `from` to every current neighbor of `from`,
    /// returning (messages, entries, bytes, bytes_v2) accounted. The
    /// payload is shared: each receiving inbox gets an `Arc` clone, not a
    /// copy. `stage` labels the delivery for the adversary/auditor hooks;
    /// with neither attached the watched path is skipped entirely.
    fn broadcast(
        &mut self,
        from: AsId,
        update: &Arc<Update>,
        stage: u64,
    ) -> (usize, usize, usize, usize) {
        if self.auditor.is_some() || self.adversaries[from.index()].is_some() {
            return self.broadcast_watched(from, update, stage);
        }
        let size = wire::update_size(update);
        let size_v2 = wire::update_size_v2_with(&mut self.scratch, update);
        let neighbors = &self.adjacency[from.index()];
        let mut messages = 0;
        for &to in neighbors {
            let inbox = &mut self.inboxes[to.index()];
            if inbox.is_empty() {
                self.dirty.push(to.index() as u32);
            }
            inbox.push(Arc::clone(update));
            messages += 1;
        }
        (
            messages,
            messages * update.entry_count(),
            messages * size,
            messages * size_v2,
        )
    }

    /// The watched twin of [`broadcast`](Self::broadcast): offers each
    /// per-neighbor copy to the sender's adversary for perturbation and
    /// narrates every queued delivery to the attached auditor. Only taken
    /// when an adversary or auditor is attached, so the honest hot path
    /// stays allocation-free.
    fn broadcast_watched(
        &mut self,
        from: AsId,
        update: &Arc<Update>,
        stage: u64,
    ) -> (usize, usize, usize, usize) {
        let mut messages = 0usize;
        let mut entries = 0usize;
        let mut bytes = 0usize;
        let mut bytes_v2 = 0usize;
        let tapped = self.adversaries[from.index()].is_some();
        if tapped {
            self.prof_enter(span::ADVERSARY_TAP);
        }
        let neighbors = &self.adjacency[from.index()];
        for (rank, &to) in neighbors.iter().enumerate() {
            let perturbed = match self.adversaries[from.index()].as_mut() {
                Some(adversary) => adversary
                    .perturb(to, rank, update)
                    .map(|p| (p, adversary.strategy().code())),
                None => None,
            };
            let delivered = match perturbed {
                Some((corrupted, strategy)) => {
                    self.pending_events.push(TraceEvent::AdversaryInjected {
                        stage,
                        node: from.index() as u32,
                        peer: to.index() as u32,
                        strategy,
                    });
                    Arc::new(corrupted)
                }
                None => Arc::clone(update),
            };
            bytes += wire::update_size(&delivered);
            bytes_v2 += wire::update_size_v2_with(&mut self.scratch, &delivered);
            entries += delivered.entry_count();
            let inbox = &mut self.inboxes[to.index()];
            if inbox.is_empty() {
                self.dirty.push(to.index() as u32);
            }
            inbox.push(Arc::clone(&delivered));
            if let Some(auditor) = self.auditor.as_mut() {
                auditor.0.on_wire(from, to, &delivered);
            }
            messages += 1;
        }
        if tapped {
            self.prof_exit();
        }
        (messages, entries, bytes, bytes_v2)
    }

    /// Delivers `update` from `from` to `to` only (used for session
    /// establishment on link-up). Runs the same adversary/auditor hooks as
    /// [`broadcast`](Self::broadcast).
    fn unicast(
        &mut self,
        from: AsId,
        to: AsId,
        mut update: Update,
        stage: u64,
    ) -> (usize, usize, usize, usize) {
        if let Some(adversary) = self.adversaries[from.index()].as_mut() {
            let rank = self.adjacency[from.index()]
                .iter()
                .position(|&x| x == to)
                .unwrap_or(0);
            if let Some(corrupted) = adversary.perturb(to, rank, &update) {
                self.pending_events.push(TraceEvent::AdversaryInjected {
                    stage,
                    node: from.index() as u32,
                    peer: to.index() as u32,
                    strategy: adversary.strategy().code(),
                });
                update = corrupted;
            }
        }
        let size = wire::update_size(&update);
        let size_v2 = wire::update_size_v2_with(&mut self.scratch, &update);
        let entries = update.entry_count();
        let delivered = Arc::new(update);
        let inbox = &mut self.inboxes[to.index()];
        if inbox.is_empty() {
            self.dirty.push(to.index() as u32);
        }
        inbox.push(Arc::clone(&delivered));
        if let Some(auditor) = self.auditor.as_mut() {
            auditor.0.on_wire(from, to, &delivered);
        }
        (1, entries, size, size_v2)
    }

    /// Drains trace events produced inside `broadcast`/`unicast` (adversary
    /// injections) into the caller-held instruments. A no-op on honest
    /// runs.
    fn drain_pending_events(&mut self, instruments: &mut Option<RunInstruments>) {
        if self.pending_events.is_empty() {
            return;
        }
        if let Some(ins) = instruments.as_mut() {
            for event in &self.pending_events {
                ins.telemetry().record(event);
            }
        }
        self.pending_events.clear();
    }

    /// Runs every node's `start()` hook, broadcasting the origin
    /// advertisements (traced as stage 0, preceding stage 1). Returns the
    /// (messages, entries, bytes, bytes_v2) totals.
    fn start_protocol(
        &mut self,
        instruments: &mut Option<RunInstruments>,
    ) -> (usize, usize, usize, usize) {
        let mut totals = (0usize, 0usize, 0usize, 0usize);
        for idx in 0..self.nodes.len() {
            // lint:allow(bounds: per-node engine buffers are sized n at construction and indices stay below n)
            if let Some(mut update) = self.nodes[idx].start() {
                self.stamp(&mut update);
                let update = Arc::new(update);
                let from = AsId::new(idx as u32);
                let (m, e, b, b2) = self.broadcast(from, &update, 0);
                if let Some(ins) = instruments.as_mut() {
                    ins.on_broadcast(&update, 0, m, e, b);
                }
                totals.0 += m;
                totals.1 += e;
                totals.2 += b;
                totals.3 += b2;
            }
        }
        self.drain_pending_events(instruments);
        totals
    }

    /// Executes one synchronous stage: swap the double-buffered queues,
    /// run `handle` for every dirty node (serially or on the worker pool),
    /// and broadcast the emitted updates in ascending node order.
    ///
    /// This is the engine's hot loop: it must not allocate per stage
    /// beyond inbox growth toward the run's high-water mark (enforced by
    /// the `stage-alloc` xtask lint rule on this function body).
    fn run_stage(
        &mut self,
        stage: usize,
        instruments: &mut Option<RunInstruments>,
    ) -> StageOutcome {
        self.prof_enter(span::STAGE);
        let wall_start = instruments.as_ref().map(|ins| {
            ins.telemetry().record(&TraceEvent::StageStart {
                stage: stage as u64,
            });
            ins.telemetry().now_nanos()
        });
        // Swap the double buffers: `delivered`/`receiving` now hold this
        // stage's input, while `inboxes`/`dirty` (emptied last stage,
        // capacity retained) collect the next stage's.
        std::mem::swap(&mut self.inboxes, &mut self.delivered);
        std::mem::swap(&mut self.dirty, &mut self.stage_dirty);
        if let Some(auditor) = self.auditor.as_mut() {
            auditor.0.begin_stage(stage as u64);
        }
        let mut receiving = std::mem::take(&mut self.stage_dirty);
        // Ascending node order: the broadcast order below is the engine's
        // determinism contract (serial and parallel runs match exactly).
        receiving.sort_unstable();
        let mut trace = StageTrace {
            stage,
            receiving_nodes: receiving.len(),
            changed_nodes: 0,
            messages: 0,
            bytes: 0,
        };
        let mut entries = 0usize;
        let mut bytes_v2 = 0usize;
        let mut link_max = 0usize;
        for &idx in &receiving {
            // lint:allow(bounds: per-node engine buffers are sized n at construction and indices stay below n)
            link_max = link_max.max(self.delivered[idx as usize].len());
        }
        self.prof_enter(span::ROUTE_SELECT);
        if self.workers > 1 && receiving.len() > 1 {
            // Parallel path: handles run partitioned across the pool, the
            // merged emissions come back sorted by node index, and the
            // broadcasts below replay them in exactly the serial order.
            let merged =
                parallel_handle(&mut self.nodes, &self.delivered, &receiving, self.workers);
            for (idx, emitted) in merged {
                if let Some(mut update) = emitted {
                    self.stamp(&mut update);
                    let update = Arc::new(update);
                    trace.changed_nodes += 1;
                    self.prof_enter(span::WIRE_ENCODE);
                    let (m, e, b, b2) = self.broadcast(AsId::new(idx), &update, stage as u64);
                    self.prof_exit();
                    self.prof_enter(span::PRICE_RELAX);
                    if let Some(ins) = instruments.as_mut() {
                        ins.on_broadcast(&update, stage as u64, m, e, b);
                    }
                    self.prof_exit();
                    trace.messages += m;
                    entries += e;
                    trace.bytes += b;
                    bytes_v2 += b2;
                }
            }
        } else {
            for &idx in &receiving {
                // lint:allow(bounds: per-node engine buffers are sized n at construction and indices stay below n)
                let emitted = self.nodes[idx as usize].handle(&self.delivered[idx as usize]);
                if let Some(mut update) = emitted {
                    self.stamp(&mut update);
                    let update = Arc::new(update);
                    trace.changed_nodes += 1;
                    self.prof_enter(span::WIRE_ENCODE);
                    let (m, e, b, b2) = self.broadcast(AsId::new(idx), &update, stage as u64);
                    self.prof_exit();
                    self.prof_enter(span::PRICE_RELAX);
                    if let Some(ins) = instruments.as_mut() {
                        ins.on_broadcast(&update, stage as u64, m, e, b);
                    }
                    self.prof_exit();
                    trace.messages += m;
                    entries += e;
                    trace.bytes += b;
                    bytes_v2 += b2;
                }
            }
        }
        self.prof_exit();
        // Restore the reusable buffers: only the slots this stage actually
        // used need clearing (everything else is already empty).
        for &idx in &receiving {
            // lint:allow(bounds: per-node engine buffers are sized n at construction and indices stay below n)
            self.delivered[idx as usize].clear();
        }
        receiving.clear();
        self.stage_dirty = receiving;
        self.drain_pending_events(instruments);
        if let (Some(ins), Some(start)) = (instruments.as_ref(), wall_start) {
            let elapsed = ins.telemetry().now_nanos().saturating_sub(start);
            ins.telemetry()
                .histogram(metric::STAGE_WALL_NANOS)
                .observe(elapsed);
        }
        self.prof_exit();
        StageOutcome {
            trace,
            entries,
            bytes_v2,
            link_max,
        }
    }

    /// Runs stages until no node has pending input, starting the protocol
    /// (initial origin advertisements) on the first call.
    pub fn run_to_convergence(&mut self) -> RunReport {
        self.run_to_convergence_traced(|_| {})
    }

    /// Executes the protocol one stage at a time: `start()` (first call
    /// only) plus a single delivery round, returning its [`StageTrace`] —
    /// or `None` when the network is quiescent. Lets callers inspect node
    /// state between stages (e.g. the per-node convergence experiment
    /// behind Lemma 2's `d_i` bound).
    ///
    /// # Example
    ///
    /// ```
    /// use bgpvcg_bgp::{engine::SyncEngine, PlainBgpNode};
    /// use bgpvcg_netgraph::generators::structured::fig1;
    ///
    /// let g = fig1();
    /// let mut engine = SyncEngine::new(&g, PlainBgpNode::from_graph(&g));
    /// let mut stages = 0;
    /// while engine.step().is_some() {
    ///     stages += 1; // inspect engine.node(..) state here
    /// }
    /// assert!(stages >= 3, "Fig. 1 routing needs d = 3 stages plus drain");
    /// ```
    pub fn step(&mut self) -> Option<StageTrace> {
        let mut instruments = self.instruments.take();
        if !self.started {
            self.started = true;
            let _ = self.start_protocol(&mut instruments);
            self.steps_executed = 0;
        }
        if self.dirty.is_empty() {
            self.instruments = instruments;
            return None;
        }
        self.steps_executed += 1;
        let stage = self.steps_executed;
        let outcome = self.run_stage(stage, &mut instruments);
        self.instruments = instruments;
        Some(outcome.trace)
    }

    /// Like [`run_to_convergence`](Self::run_to_convergence), but invokes
    /// `observer` with a [`StageTrace`] after every executed stage — the
    /// hook behind the CLI's `--trace` flag and any custom progress
    /// reporting.
    pub fn run_to_convergence_traced<F: FnMut(StageTrace)>(
        &mut self,
        mut observer: F,
    ) -> RunReport {
        let mut report = RunReport {
            converged: true,
            ..RunReport::default()
        };
        let mut instruments = self.instruments.take();
        if !self.started {
            self.started = true;
            let (m, e, b, b2) = self.start_protocol(&mut instruments);
            report.messages += m;
            report.entries += e;
            report.bytes += b;
            report.bytes_v2 += b2;
        }
        // Cross-check the stage-0 emissions (origin broadcasts, or the
        // topology-event reactions a caller queued before entering) before
        // stage 1 delivers them.
        self.audit_stage(0, &mut report, &mut instruments);

        // `stages` reports the last stage in which some node's advertised
        // state changed — the moment the tables are final. One further
        // stage is executed to drain the resulting (no-op) deliveries, but
        // it is pure message drain, not computation, and the paper's
        // "converges within d stages" counts table changes.
        let mut executed = 0usize;
        while !self.dirty.is_empty() {
            if executed >= self.stage_limit {
                report.converged = false;
                invariants::convergence(&report, executed, self.stage_limit);
                self.emit_run_observability(&instruments, executed as u64);
                self.instruments = instruments;
                // The health post-mortem, if one fired, is the richer
                // artifact — don't overwrite it with the generic
                // stage-limit dump.
                if !self.health_stall_dumped {
                    self.dump_flight(executed, &report);
                }
                return report;
            }
            executed += 1;
            let outcome = self.run_stage(executed, &mut instruments);
            if outcome.trace.changed_nodes > 0 {
                report.stages = executed;
            }
            report.messages += outcome.trace.messages;
            report.entries += outcome.entries;
            report.bytes += outcome.trace.bytes;
            report.bytes_v2 += outcome.bytes_v2;
            report.max_link_messages_per_stage =
                report.max_link_messages_per_stage.max(outcome.link_max);
            self.audit_stage(executed as u64, &mut report, &mut instruments);
            // Health bookkeeping: the monitor folded this stage's events as
            // they were recorded (it sits in the trace tee); here the
            // engine polls its stall verdict and arms the flight recorder
            // the moment divergence is detected — long before the hard
            // stage-limit abort would destroy the evidence.
            self.prof_enter(span::HEALTH_FOLD);
            if self.health.as_ref().is_some_and(|h| h.stalled()) {
                self.dump_health_flight(executed as u64, &report);
            }
            self.prof_exit();
            if let Some(mut slot) = self.stage_observer.take() {
                (slot.0)(executed as u64, &self.nodes);
                self.stage_observer = Some(slot);
            }
            observer(outcome.trace);
        }
        invariants::convergence(&report, executed, self.stage_limit);
        if let Some(ins) = instruments.as_ref() {
            let telemetry = ins.telemetry();
            telemetry
                .gauge(metric::STAGES_TO_QUIESCENCE)
                .set(report.stages as u64);
            telemetry.record(&TraceEvent::Quiescent {
                stage: report.stages as u64,
                messages: report.messages as u64,
            });
        }
        self.emit_run_observability(&instruments, report.stages as u64);
        if let Some(ins) = instruments.as_ref() {
            ins.telemetry().flush();
        }
        self.instruments = instruments;
        report
    }

    /// Applies a topology event and reconverges, returning the report for
    /// the reconvergence (the "convergence process begins again" of
    /// Sect. 6).
    ///
    /// # Panics
    ///
    /// Panics if the event is invalid in the current topology — see
    /// [`try_apply_event`](Self::try_apply_event), the fallible variant
    /// chaos harnesses use, for the exact conditions.
    pub fn apply_event(&mut self, event: TopologyEvent) -> RunReport {
        match self.try_apply_event(event) {
            Ok(report) => report,
            // lint:allow(documented # Panics contract: the infallible API surfaces invalid events as programming errors)
            Err(error) => panic!("cannot apply {event:?}: {error}"),
        }
    }

    /// Returns `true` if node `k` is currently crashed
    /// ([`TopologyEvent::NodeDown`] without a matching
    /// [`TopologyEvent::NodeUp`] yet).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn is_down(&self, k: AsId) -> bool {
        self.down[k.index()]
    }

    /// Checks that `event` can be applied to the current topology without
    /// touching anything.
    fn validate_event(&self, event: TopologyEvent) -> Result<(), GraphError> {
        let in_range = |id: AsId| {
            if id.index() < self.nodes.len() {
                Ok(())
            } else {
                Err(GraphError::UnknownNode(id))
            }
        };
        match event {
            TopologyEvent::LinkDown(a, b) => {
                in_range(a)?;
                in_range(b)?;
                if !self.adjacency[a.index()].contains(&b) {
                    return Err(GraphError::MissingLink(a, b));
                }
                Ok(())
            }
            TopologyEvent::LinkUp(a, b) => {
                in_range(a)?;
                in_range(b)?;
                if a == b {
                    return Err(GraphError::SelfLoop(a));
                }
                for id in [a, b] {
                    if self.down[id.index()] {
                        return Err(GraphError::NodeOffline(id));
                    }
                }
                if self.adjacency[a.index()].contains(&b) {
                    return Err(GraphError::DuplicateLink(a, b));
                }
                Ok(())
            }
            TopologyEvent::CostChange(k, _) => {
                in_range(k)?;
                if self.down[k.index()] {
                    return Err(GraphError::NodeOffline(k));
                }
                Ok(())
            }
            TopologyEvent::NodeDown(k) => {
                in_range(k)?;
                if self.down[k.index()] {
                    return Err(GraphError::NodeOffline(k));
                }
                self.residual_biconnected(k, false)
            }
            TopologyEvent::NodeUp(k) => {
                in_range(k)?;
                if !self.down[k.index()] {
                    return Err(GraphError::NodeOnline(k));
                }
                self.residual_biconnected(k, true)
            }
        }
    }

    /// Checks that the set of *live* nodes — with `toggle` additionally
    /// removed (`bring_up == false`) or restored with its parked links
    /// (`bring_up == true`) — still forms a biconnected graph, the
    /// precondition for k-avoiding paths and hence VCG prices (paper,
    /// Sect. 4). Costs are irrelevant to the check, so the scratch graph
    /// uses zeros; surviving ids are renumbered densely.
    fn residual_biconnected(&self, toggle: AsId, bring_up: bool) -> Result<(), GraphError> {
        let n = self.nodes.len();
        let included = |idx: usize| {
            // lint:allow(bounds: per-node engine buffers are sized n at construction and indices stay below n)
            (!self.down[idx] && (bring_up || idx != toggle.index()))
                || (bring_up && idx == toggle.index())
        };
        let mut remap = vec![u32::MAX; n];
        let mut builder = AsGraph::builder();
        let mut survivors = 0usize;
        for (idx, slot) in remap.iter_mut().enumerate() {
            if included(idx) {
                *slot = builder.add_node(Cost::ZERO).index() as u32;
                survivors += 1;
            }
        }
        if survivors < 3 {
            return Err(GraphError::TooSmall { nodes: survivors });
        }
        for idx in 0..n {
            // lint:allow(bounds: per-node engine buffers are sized n at construction and indices stay below n)
            if remap[idx] == u32::MAX {
                continue;
            }
            // lint:allow(bounds: per-node engine buffers are sized n at construction and indices stay below n)
            for &b in &self.adjacency[idx] {
                if b.index() > idx && remap[b.index()] != u32::MAX {
                    // lint:allow(bounds: per-node engine buffers are sized n at construction and indices stay below n)
                    builder.add_link(AsId::new(remap[idx]), AsId::new(remap[b.index()]))?;
                }
            }
        }
        if bring_up {
            // The restart restores exactly the parked links whose far end
            // is live; a crashed node's adjacency above was empty.
            for &a in &self.parked[toggle.index()] {
                if remap[a.index()] != u32::MAX {
                    builder.add_link(
                        AsId::new(remap[toggle.index()]),
                        AsId::new(remap[a.index()]),
                    )?;
                }
            }
        }
        if builder.build().is_biconnected() {
            Ok(())
        } else {
            Err(GraphError::NotBiconnected)
        }
    }

    /// Applies a topology event and reconverges — the fallible twin of
    /// [`apply_event`](Self::apply_event), used wherever invalid events
    /// are *data* rather than programming errors (the chaos harness feeds
    /// randomly generated schedules through this path).
    ///
    /// # Errors
    ///
    /// Returns — without mutating anything — [`GraphError::UnknownNode`]
    /// for out-of-range ids, [`GraphError::MissingLink`] /
    /// [`GraphError::DuplicateLink`] / [`GraphError::SelfLoop`] for
    /// invalid link events, [`GraphError::NodeOffline`] /
    /// [`GraphError::NodeOnline`] for events touching a node in the wrong
    /// liveness state, and [`GraphError::NotBiconnected`] /
    /// [`GraphError::TooSmall`] when a node removal (or a restart whose
    /// surviving link set is too thin) would leave the live topology
    /// without the biconnectivity VCG pricing requires — instead of
    /// letting prices silently become undefined.
    pub fn try_apply_event(&mut self, event: TopologyEvent) -> Result<RunReport, GraphError> {
        self.validate_event(event)?;
        let mut report = RunReport {
            converged: true,
            ..RunReport::default()
        };
        let mut instruments = self.instruments.take();
        self.inject_event(event, &mut report, &mut instruments);
        self.instruments = instruments;
        let reconverge = self.run_to_convergence();
        report.absorb(reconverge);
        Ok(report)
    }

    /// Applies an already-validated topology event *without* reconverging:
    /// mutates the topology, delivers the affected nodes' local views
    /// (their reaction broadcasts trace at stage 0), and queues the
    /// session-establishment full-table exchanges. Callers run (or are
    /// already inside) the convergence loop that absorbs the queued
    /// traffic — the auditor's quarantine path injects events mid-run
    /// through exactly this hook.
    fn inject_event(
        &mut self,
        event: TopologyEvent,
        report: &mut RunReport,
        instruments: &mut Option<RunInstruments>,
    ) {
        if let Some(auditor) = self.auditor.as_mut() {
            auditor.0.on_topology(&event);
        }
        // Update the engine's own topology state first (validated by the
        // caller).
        // `restored` collects the links a NodeUp brings back; empty
        // otherwise.
        let mut restored: Vec<AsId> = Vec::new();
        match event {
            TopologyEvent::LinkDown(a, b) => {
                self.adjacency[a.index()].retain(|&x| x != b);
                self.adjacency[b.index()].retain(|&x| x != a);
            }
            TopologyEvent::LinkUp(a, b) => {
                self.adjacency[a.index()].push(b);
                self.adjacency[a.index()].sort_unstable();
                self.adjacency[b.index()].push(a);
                self.adjacency[b.index()].sort_unstable();
            }
            TopologyEvent::CostChange(..) => {}
            TopologyEvent::NodeDown(k) => {
                let ki = k.index();
                // Detach every incident link (both directions) and park
                // the neighbor list for the eventual restart.
                // lint:allow(bounds: per-node engine buffers are sized n at construction and indices stay below n)
                let neighbors = std::mem::take(&mut self.adjacency[ki]);
                for &a in &neighbors {
                    self.adjacency[a.index()].retain(|&x| x != k);
                }
                // Crash semantics: the node loses all protocol state now
                // (its links too — it restarts with none until they are
                // restored), and anything queued for it is gone with it.
                // lint:allow(bounds: per-node engine buffers are sized n at construction and indices stay below n)
                self.nodes[ki].reset();
                for &a in &neighbors {
                    // lint:allow(bounds: per-node engine buffers are sized n at construction and indices stay below n)
                    let _ = self.nodes[ki].apply_event(LocalEvent::LinkDown(a));
                }
                // lint:allow(bounds: per-node engine buffers are sized n at construction and indices stay below n)
                self.inboxes[ki].clear();
                self.dirty.retain(|&idx| idx as usize != ki);
                // lint:allow(bounds: per-node engine buffers are sized n at construction and indices stay below n)
                self.parked[ki] = neighbors;
                // lint:allow(bounds: per-node engine buffers are sized n at construction and indices stay below n)
                self.down[ki] = true;
            }
            TopologyEvent::NodeUp(k) => {
                let ki = k.index();
                // lint:allow(bounds: per-node engine buffers are sized n at construction and indices stay below n)
                self.down[ki] = false;
                // lint:allow(bounds: per-node engine buffers are sized n at construction and indices stay below n)
                let parked = std::mem::take(&mut self.parked[ki]);
                for &a in &parked {
                    if self.down[a.index()] {
                        // The far end is still down: hand the link over to
                        // its parked set so it returns when *that* node
                        // restarts.
                        if !self.parked[a.index()].contains(&k) {
                            self.parked[a.index()].push(k);
                        }
                    } else {
                        // lint:allow(bounds: per-node engine buffers are sized n at construction and indices stay below n)
                        self.adjacency[ki].push(a);
                        self.adjacency[a.index()].push(k);
                        self.adjacency[a.index()].sort_unstable();
                        restored.push(a);
                    }
                }
                // lint:allow(bounds: per-node engine buffers are sized n at construction and indices stay below n)
                self.adjacency[ki].sort_unstable();
            }
        }
        // Let the affected nodes react. Reaction broadcasts precede the
        // reconvergence run's stage 1, so they trace at stage 0. Node-level
        // events expand into per-neighbor link views here, because only the
        // engine knows the adjacency in force when the node went down/up.
        let views: Vec<(AsId, LocalEvent)> = match event {
            TopologyEvent::NodeDown(k) => self.parked[k.index()]
                .iter()
                .map(|&a| (a, LocalEvent::LinkDown(k)))
                .collect(),
            TopologyEvent::NodeUp(k) => restored
                .iter()
                .flat_map(|&a| [(k, LocalEvent::LinkUp(a)), (a, LocalEvent::LinkUp(k))])
                .collect(),
            _ => event.local_views(),
        };
        if let (TopologyEvent::NodeUp(k), Some(ins)) = (event, instruments.as_ref()) {
            ins.telemetry().record(&TraceEvent::NodeRestart {
                stage: 0,
                node: k.index() as u32,
            });
        }
        for (id, local) in views {
            if let Some(auditor) = self.auditor.as_mut() {
                auditor.0.on_local_event(id, &local);
            }
            if let Some(mut update) = self.nodes[id.index()].apply_event(local) {
                self.stamp(&mut update);
                let update = Arc::new(update);
                let (m, e, b, b2) = self.broadcast(id, &update, 0);
                if let Some(ins) = instruments.as_mut() {
                    ins.on_broadcast(&update, 0, m, e, b);
                }
                report.messages += m;
                report.entries += e;
                report.bytes += b;
                report.bytes_v2 += b2;
            }
        }
        // Session establishment: every (re)activated link exchanges full
        // tables in both directions — on restart the rejoining node's
        // "table" is just its origin route, exactly a from-scratch join.
        let established: Vec<(AsId, AsId)> = match event {
            TopologyEvent::LinkUp(a, b) => vec![(a, b), (b, a)],
            TopologyEvent::NodeUp(k) => restored.iter().flat_map(|&a| [(k, a), (a, k)]).collect(),
            _ => Vec::new(),
        };
        for (me, other) in established {
            if let Some(table) = self.nodes[me.index()].full_table() {
                let (m, e, bytes, bytes_v2) = self.unicast(me, other, table, 0);
                if let Some(ins) = instruments.as_mut() {
                    ins.on_unicast(m, e, bytes);
                }
                report.messages += m;
                report.entries += e;
                report.bytes += bytes;
                report.bytes_v2 += bytes_v2;
            }
        }
        self.drain_pending_events(instruments);
    }

    /// State snapshots of every node (for the E5 experiment), in AS order.
    pub fn state_snapshots(&self) -> Vec<StateSnapshot> {
        self.nodes.iter().map(ProtocolNode::state).collect()
    }

    /// Consumes the engine, returning the nodes.
    pub fn into_nodes(self) -> Vec<N> {
        self.nodes
    }
}

/// Runs `handle` for every receiving node, partitioned across a scoped
/// worker pool, and returns the emissions sorted by node index so the
/// caller's broadcast sequence replays the serial order exactly.
///
/// Each worker gets a *contiguous* run of the (ascending) receiving list,
/// so the matching node shards can be carved with `split_at_mut` — safe
/// disjoint `&mut` access, no locking and no `unsafe`. Handles only read
/// the current stage's `delivered` buffers (filled last stage) and mutate
/// their own node, so execution order across workers is immaterial; all
/// observable ordering (broadcast and telemetry) happens on the caller's
/// thread afterwards.
/// Flattens an audited advertisement into the telemetry cost encoding:
/// the route's path cost when one is advertised, `u64::MAX` for
/// withdrawals, silence, and price-delta frames (which carry no cost).
fn advertised_cost_raw(info: Option<&RouteInfo>) -> u64 {
    info.and_then(RouteInfo::path_cost)
        .and_then(Cost::finite)
        .unwrap_or(u64::MAX)
}

fn parallel_handle<N: ProtocolNode>(
    nodes: &mut [N],
    delivered: &[Vec<Arc<Update>>],
    receiving: &[u32],
    workers: usize,
) -> Vec<(u32, Option<Update>)> {
    let chunk = receiving.len().div_ceil(workers).max(1);
    let mut merged = Vec::with_capacity(receiving.len());
    let (sender, collector) = crossbeam::channel::unbounded();
    std::thread::scope(|scope| {
        let mut rest = nodes;
        let mut offset = 0usize; // index of `rest[0]` in the full node array
        for run in receiving.chunks(chunk) {
            let (Some(&first), Some(&last)) = (run.first(), run.last()) else {
                continue; // unreachable: chunks() never yields an empty slice
            };
            let lo = first as usize;
            let hi = last as usize;
            let (_, tail) = rest.split_at_mut(lo - offset);
            let (shard, tail) = tail.split_at_mut(hi - lo + 1);
            rest = tail;
            offset = hi + 1;
            let tx = sender.clone();
            scope.spawn(move || {
                for &idx in run {
                    // lint:allow(bounds: the split_at_mut partition puts every emitter index in lo..hi for its shard)
                    let emitted = shard[idx as usize - lo].handle(&delivered[idx as usize]);
                    // The collector outlives the scope, so this send
                    // cannot fail while the pool runs.
                    let _ = tx.send((idx, emitted));
                }
            });
        }
    });
    drop(sender);
    while let Ok(pair) = collector.try_recv() {
        merged.push(pair);
    }
    merged.sort_unstable_by_key(|&(idx, _)| idx);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::PlainBgpNode;
    use bgpvcg_lcp::{bellman, AllPairsLcp};
    use bgpvcg_netgraph::generators::structured::{fig1, ring, Fig1};
    use bgpvcg_netgraph::generators::{barabasi_albert, erdos_renyi, random_costs};
    use bgpvcg_netgraph::Cost;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn converged_engine(g: &AsGraph) -> (SyncEngine<PlainBgpNode>, RunReport) {
        let mut engine = SyncEngine::new(g, PlainBgpNode::from_graph(g));
        let report = engine.run_to_convergence();
        (engine, report)
    }

    use bgpvcg_netgraph::AsGraph;

    #[test]
    fn fig1_converges_to_centralized_routes() {
        let g = fig1();
        let (engine, report) = converged_engine(&g);
        assert!(report.converged);
        let lcp = AllPairsLcp::compute(&g);
        for i in g.nodes() {
            for j in g.nodes() {
                let expected = lcp.route(i, j).unwrap().clone();
                let actual = engine.node(i).selector().route(j).unwrap();
                assert_eq!(actual, expected, "{i} -> {j}");
            }
        }
    }

    #[test]
    fn convergence_stages_bounded_by_d() {
        for seed in 0..6 {
            let mut rng = StdRng::seed_from_u64(seed);
            let costs = random_costs(25, 0, 9, &mut rng);
            let g = if seed % 2 == 0 {
                erdos_renyi(costs, 0.2, &mut rng)
            } else {
                barabasi_albert(costs, 2, &mut rng)
            };
            let lcp = AllPairsLcp::compute(&g);
            let d = bgpvcg_lcp::diameter::lcp_hop_diameter(&lcp);
            let (_, report) = converged_engine(&g);
            assert!(report.converged);
            assert!(
                report.stages <= d,
                "seed {seed}: {} stages > d = {d}",
                report.stages
            );
        }
    }

    #[test]
    fn profiler_health_and_observer_cover_an_honest_run() {
        let g = fig1();
        let mut engine = SyncEngine::new(&g, PlainBgpNode::from_graph(&g));
        let (telemetry, ring_sink) = Telemetry::ring(4096);
        engine.attach_telemetry(&telemetry);
        engine.attach_health(HealthConfig::default());
        engine.attach_profiler();
        let mut observed_stages = Vec::new();
        {
            // Channel the observer's samples out through a shared cell.
            let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
            let sink = Arc::clone(&seen);
            engine.set_stage_observer(Box::new(move |stage, nodes: &[PlainBgpNode]| {
                sink.lock().unwrap().push((stage, nodes.len()));
            }));
            let report = engine.run_to_convergence();
            assert!(report.converged);
            observed_stages.extend(seen.lock().unwrap().iter().copied());
        }
        // Observer fired once per executed stage over the full node array.
        assert!(!observed_stages.is_empty());
        assert!(observed_stages.iter().all(|&(_, n)| n == g.node_count()));
        // Honest convergence: zero findings, no stall.
        let health = engine.health_sink().expect("health attached");
        assert!(health.findings().is_empty());
        assert!(!health.stalled());
        // The monitor saw every stage and folded quiescence latency.
        assert!(health.snapshot().stages_seen() > 0);
        assert!(!health.snapshot().latency().is_empty());
        // Profiler covered the hot-path phases with consistent nesting.
        let profiler = engine.profiler().expect("profiler attached");
        for id in [span::STAGE, span::ROUTE_SELECT, span::WIRE_ENCODE] {
            let (count, total, self_nanos) = profiler.stat(id);
            assert!(count > 0, "span {id} never entered");
            assert!(total >= self_nanos);
        }
        assert_eq!(profiler.truncated(), 0);
        // The trace stream carries the new summary emissions, all
        // schema-valid.
        let events = ring_sink.events();
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::SpanSummary { .. })));
        assert!(!events
            .iter()
            .any(|e| matches!(e, TraceEvent::HealthVerdict { .. })));
        let schema = bgpvcg_telemetry::Schema::golden();
        for event in &events {
            schema.validate_line(&event.to_json()).unwrap();
        }
    }

    #[test]
    fn health_stall_dump_fires_before_stage_limit_abort() {
        // A two-node graph whose nodes never quiesce is hard to fabricate
        // honestly, so drive the monitor directly through the tee: attach
        // health with a tiny stall threshold, then force stages with no
        // progress by running a converged engine's step loop again after
        // convergence (no dirty nodes -> no stages), instead assert the
        // one-shot dump guard via the public surface.
        let g = fig1();
        let mut engine = SyncEngine::new(&g, PlainBgpNode::from_graph(&g));
        engine.attach_health(HealthConfig {
            stall_stages: 1,
            ..HealthConfig::default()
        });
        let report = engine.run_to_convergence();
        assert!(report.converged);
        // Fig. 1 converges with progress every stage, so even a threshold
        // of one stage never fires.
        assert!(engine.health_sink().unwrap().findings().is_empty());
    }

    #[test]
    fn sync_engine_matches_bellman_stage_semantics() {
        // The engine's stage count equals the per-destination Bellman
        // fixpoint's worst stage count: both implement Sect. 5 verbatim.
        let g = ring(9, Cost::new(2));
        let (_, report) = converged_engine(&g);
        assert_eq!(report.stages, bellman::max_stages(&g));
    }

    #[test]
    fn routes_match_centralized_on_random_graphs() {
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(30 + seed);
            let costs = random_costs(20, 0, 8, &mut rng);
            let g = erdos_renyi(costs, 0.25, &mut rng);
            let (engine, _) = converged_engine(&g);
            let lcp = AllPairsLcp::compute(&g);
            for i in g.nodes() {
                for j in g.nodes() {
                    assert_eq!(
                        engine.node(i).selector().route(j).as_ref(),
                        lcp.route(i, j),
                        "seed {seed}: {i} -> {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn second_run_is_a_no_op() {
        let g = fig1();
        let (mut engine, _) = converged_engine(&g);
        let again = engine.run_to_convergence();
        assert_eq!(again.stages, 0);
        assert_eq!(again.messages, 0);
    }

    #[test]
    fn link_down_reconverges_to_new_topology() {
        let g = fig1();
        let (mut engine, _) = converged_engine(&g);
        // Fail the D–Z link: X's LCP to Z must become X A Z (cost 5).
        let report = engine.apply_event(TopologyEvent::LinkDown(Fig1::D, Fig1::Z));
        assert!(report.converged);
        let g2 = g.without_link(Fig1::D, Fig1::Z).unwrap();
        let lcp2 = AllPairsLcp::compute(&g2);
        for i in g.nodes() {
            for j in g.nodes() {
                assert_eq!(
                    engine.node(i).selector().route(j).as_ref(),
                    lcp2.route(i, j),
                    "{i} -> {j} after link failure"
                );
            }
        }
    }

    #[test]
    fn link_up_reconverges_to_new_topology() {
        let g = fig1().without_link(Fig1::D, Fig1::Z).unwrap();
        let (mut engine, _) = converged_engine(&g);
        let report = engine.apply_event(TopologyEvent::LinkUp(Fig1::D, Fig1::Z));
        assert!(report.converged);
        let lcp = AllPairsLcp::compute(&fig1());
        for i in fig1().nodes() {
            for j in fig1().nodes() {
                assert_eq!(
                    engine.node(i).selector().route(j).as_ref(),
                    lcp.route(i, j),
                    "{i} -> {j} after link up"
                );
            }
        }
    }

    #[test]
    fn cost_change_reconverges() {
        let g = fig1();
        let (mut engine, _) = converged_engine(&g);
        // D becomes expensive: X's best route to Z flips to X A Z.
        let report = engine.apply_event(TopologyEvent::CostChange(Fig1::D, Cost::new(50)));
        assert!(report.converged);
        let g2 = g.with_cost(Fig1::D, Cost::new(50));
        let lcp2 = AllPairsLcp::compute(&g2);
        for i in g.nodes() {
            for j in g.nodes() {
                assert_eq!(
                    engine.node(i).selector().route(j).as_ref(),
                    lcp2.route(i, j),
                    "{i} -> {j} after cost change"
                );
            }
        }
    }

    #[test]
    fn report_accumulates_traffic() {
        let g = ring(6, Cost::new(1));
        let (_, report) = converged_engine(&g);
        assert!(report.messages > 0);
        assert!(
            report.entries >= report.messages,
            "every message carries ≥1 entry"
        );
        assert!(report.bytes > report.messages * wire::MESSAGE_HEADER_BYTES);
    }

    #[test]
    fn state_snapshots_have_full_tables() {
        let g = fig1();
        let (engine, _) = converged_engine(&g);
        for snap in engine.state_snapshots() {
            assert_eq!(snap.table_entries, g.node_count());
            assert_eq!(snap.price_entries, 0);
        }
    }

    #[test]
    fn stage_limit_reports_non_convergence() {
        let g = ring(9, Cost::new(1));
        let mut engine = SyncEngine::new(&g, PlainBgpNode::from_graph(&g));
        engine.set_stage_limit(1); // far below the 4 stages the ring needs
        let report = engine.run_to_convergence();
        assert!(!report.converged);
        assert!(report.to_string().contains("NOT CONVERGED"));
        // Lifting the limit lets the same engine finish the job.
        engine.set_stage_limit(1000);
        let report = engine.run_to_convergence();
        assert!(report.converged);
        assert!(
            engine.flight_recorder().is_none(),
            "no recorder was attached"
        );
        let lcp = AllPairsLcp::compute(&g);
        for i in g.nodes() {
            assert_eq!(
                engine.node(i).selector().route(AsId::new(0)).as_ref(),
                lcp.route(i, AsId::new(0))
            );
        }
    }

    #[test]
    fn stalled_run_dumps_a_schema_valid_flight_artifact() {
        let g = ring(9, Cost::new(1));
        let dir = std::env::temp_dir().join(format!(
            "bgpvcg-sync-flight-{}-{:p}",
            std::process::id(),
            &g
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("flight.json");
        let mut engine = SyncEngine::new(&g, PlainBgpNode::from_graph(&g));
        engine.attach_telemetry(&Telemetry::null());
        engine.attach_flight_recorder(&path, 64);
        engine.set_stage_limit(1);
        let report = engine.run_to_convergence();
        assert!(!report.converged);
        let text = std::fs::read_to_string(&path).expect("stall must leave a dump");
        flight::validate_dump(&text).expect("dump validates against the golden schema");
        assert!(text.contains(flight::REASON_STAGE_LIMIT));
        assert!(
            text.contains("\"inbox_depth\""),
            "snapshots carry engine state"
        );
        // A converged follow-up run leaves no fresh dump behind.
        std::fs::remove_file(&path).expect("remove dump");
        engine.set_stage_limit(1000);
        assert!(engine.run_to_convergence().converged);
        assert!(!path.exists(), "converged runs do not dump");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stepping_reaches_the_same_fixpoint() {
        let g = fig1();
        let mut stepped = SyncEngine::new(&g, PlainBgpNode::from_graph(&g));
        let mut stages = 0;
        while stepped.step().is_some() {
            stages += 1;
        }
        let mut whole = SyncEngine::new(&g, PlainBgpNode::from_graph(&g));
        let report = whole.run_to_convergence();
        // step() executes the drain stage too; the report counts changes.
        assert!(stages >= report.stages);
        for i in g.nodes() {
            for j in g.nodes() {
                assert_eq!(
                    stepped.node(i).selector().route(j),
                    whole.node(i).selector().route(j),
                    "{i} -> {j}"
                );
            }
        }
        assert!(stepped.step().is_none(), "quiescent engine stays quiescent");
    }

    #[test]
    fn stage_traces_sum_to_the_report() {
        let g = ring(7, Cost::new(1));
        let mut engine = SyncEngine::new(&g, PlainBgpNode::from_graph(&g));
        let mut traces = Vec::new();
        let report = engine.run_to_convergence_traced(|t| traces.push(t));
        assert!(report.converged);
        // Stage numbers are consecutive from 1.
        for (idx, t) in traces.iter().enumerate() {
            assert_eq!(t.stage, idx + 1);
        }
        // The last stage with changes is the reported convergence stage.
        let last_changed = traces
            .iter()
            .filter(|t| t.changed_nodes > 0)
            .map(|t| t.stage)
            .max()
            .unwrap();
        assert_eq!(report.stages, last_changed);
        // Per-stage message and byte counts sum to the totals, minus the
        // pre-stage origin broadcasts.
        let staged_messages: usize = traces.iter().map(|t| t.messages).sum();
        let origin_messages = 2 * g.node_count(); // each node broadcasts to 2 neighbors
        assert_eq!(staged_messages + origin_messages, report.messages);
        let display = traces[0].to_string();
        assert!(display.contains("stage"), "{display}");
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn link_down_of_missing_link_panics() {
        let g = fig1();
        let (mut engine, _) = converged_engine(&g);
        engine.apply_event(TopologyEvent::LinkDown(Fig1::X, Fig1::Z));
    }

    #[test]
    fn node_down_withdraws_it_and_node_up_restores_the_fixpoint() {
        use bgpvcg_netgraph::generators::structured::hypercube;
        let g = hypercube(3, Cost::new(2));
        let (mut engine, _) = converged_engine(&g);
        let k = AsId::new(3);
        let report = engine.apply_event(TopologyEvent::NodeDown(k));
        assert!(report.converged);
        assert!(engine.is_down(k));
        for i in g.nodes().filter(|&i| i != k) {
            assert_eq!(
                engine.node(i).selector().route(k),
                None,
                "{i} must lose its route to the crashed node"
            );
            assert!(!engine.node(i).selector().has_neighbor(k));
        }
        // The crashed node itself is back to a blank slate.
        assert_eq!(engine.node(k).selector().destinations().count(), 1);
        let report = engine.apply_event(TopologyEvent::NodeUp(k));
        assert!(report.converged);
        assert!(!engine.is_down(k));
        // Self-stabilization: the rejoined network reaches the same
        // fixpoint as one that never crashed.
        let (fresh, _) = converged_engine(&g);
        for i in g.nodes() {
            for j in g.nodes() {
                assert_eq!(
                    engine.node(i).selector().route(j),
                    fresh.node(i).selector().route(j),
                    "{i} -> {j} after crash + restart"
                );
            }
        }
    }

    #[test]
    fn biconnectivity_breaking_node_down_is_rejected_without_damage() {
        let g = ring(6, Cost::new(1));
        let (mut engine, _) = converged_engine(&g);
        let err = engine
            .try_apply_event(TopologyEvent::NodeDown(AsId::new(2)))
            .unwrap_err();
        assert_eq!(err, GraphError::NotBiconnected);
        // Nothing was mutated: the engine is still quiescent on the old
        // fixpoint and the "removed" node still routes.
        assert!(!engine.is_down(AsId::new(2)));
        let again = engine.run_to_convergence();
        assert_eq!(again.messages, 0);
        assert!(engine
            .node(AsId::new(0))
            .selector()
            .route(AsId::new(2))
            .is_some());
    }

    #[test]
    fn liveness_mismatches_surface_typed_errors() {
        use bgpvcg_netgraph::generators::structured::hypercube;
        let g = hypercube(3, Cost::new(1));
        let (mut engine, _) = converged_engine(&g);
        let k = AsId::new(5);
        assert_eq!(
            engine.try_apply_event(TopologyEvent::NodeUp(k)),
            Err(GraphError::NodeOnline(k)),
            "bringing up a live node"
        );
        engine.try_apply_event(TopologyEvent::NodeDown(k)).unwrap();
        assert_eq!(
            engine.try_apply_event(TopologyEvent::NodeDown(k)),
            Err(GraphError::NodeOffline(k)),
            "crashing a crashed node"
        );
        assert_eq!(
            engine.try_apply_event(TopologyEvent::CostChange(k, Cost::new(9))),
            Err(GraphError::NodeOffline(k)),
            "a crashed node cannot re-declare"
        );
        assert_eq!(
            engine.try_apply_event(TopologyEvent::LinkUp(AsId::new(0), k)),
            Err(GraphError::NodeOffline(k)),
            "no new links to a crashed node"
        );
        assert_eq!(
            engine.try_apply_event(TopologyEvent::NodeDown(AsId::new(99))),
            Err(GraphError::UnknownNode(AsId::new(99)))
        );
    }

    #[test]
    fn both_down_links_resurface_when_the_second_endpoint_restarts() {
        use bgpvcg_netgraph::generators::structured::hypercube;
        let g = hypercube(3, Cost::new(3));
        let (mut engine, _) = converged_engine(&g);
        // 0 and 1 are adjacent in the hypercube; crash both, then restart
        // in the same order — the 0–1 link is parked twice over and must
        // come back with the second restart.
        engine.apply_event(TopologyEvent::NodeDown(AsId::new(0)));
        engine.apply_event(TopologyEvent::NodeDown(AsId::new(1)));
        engine.apply_event(TopologyEvent::NodeUp(AsId::new(0)));
        assert!(
            !engine
                .node(AsId::new(0))
                .selector()
                .has_neighbor(AsId::new(1)),
            "far end still down: the link stays parked"
        );
        engine.apply_event(TopologyEvent::NodeUp(AsId::new(1)));
        let (fresh, _) = converged_engine(&g);
        for i in g.nodes() {
            for j in g.nodes() {
                assert_eq!(
                    engine.node(i).selector().route(j),
                    fresh.node(i).selector().route(j),
                    "{i} -> {j} after double crash + restart"
                );
            }
        }
    }

    #[test]
    fn node_restart_is_traced() {
        use bgpvcg_netgraph::generators::structured::hypercube;
        let g = hypercube(3, Cost::new(2));
        let (mut engine, _) = converged_engine(&g);
        let (telemetry, sink) = Telemetry::ring(8192);
        engine.attach_telemetry(&telemetry);
        engine.apply_event(TopologyEvent::NodeDown(AsId::new(6)));
        engine.apply_event(TopologyEvent::NodeUp(AsId::new(6)));
        assert!(
            sink.events()
                .iter()
                .any(|e| matches!(e, TraceEvent::NodeRestart { node: 6, .. })),
            "restart must be narrated"
        );
    }

    #[test]
    fn attached_telemetry_narrates_a_run() {
        let g = ring(6, Cost::new(1));
        let (telemetry, sink) = Telemetry::ring(4096);
        let mut engine = SyncEngine::new(&g, PlainBgpNode::from_graph(&g));
        engine.attach_telemetry(&telemetry);
        let report = engine.run_to_convergence();
        assert!(report.converged);
        let snap = telemetry.snapshot();
        // Registry counters agree with the engine's own report.
        assert_eq!(snap.counters[metric::MESSAGES], report.messages as u64);
        assert_eq!(snap.counters[metric::ENTRIES], report.entries as u64);
        assert_eq!(snap.counters[metric::BYTES], report.bytes as u64);
        assert_eq!(
            snap.gauges[metric::STAGES_TO_QUIESCENCE],
            report.stages as u64
        );
        // Plain BGP never relaxes a price.
        assert_eq!(snap.counters[metric::PRICE_RELAXATIONS], 0);
        // Per-stage wall time was observed once per executed stage (the
        // drain stage included).
        assert!(snap.histograms[metric::STAGE_WALL_NANOS].count >= report.stages as u64);
        let events = sink.events();
        let stage_starts: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::StageStart { stage } => Some(*stage),
                _ => None,
            })
            .collect();
        assert_eq!(stage_starts[0], 1, "stages are 1-based");
        assert!(
            stage_starts.windows(2).all(|w| w[1] == w[0] + 1),
            "stage starts are consecutive"
        );
        assert!(
            matches!(
                events.last(),
                Some(TraceEvent::Quiescent { stage, messages })
                    if *stage == report.stages as u64
                        && *messages == report.messages as u64
            ),
            "the trace ends with the run's Quiescent event"
        );
        let selected = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::RouteSelected { .. }))
            .count();
        assert_eq!(snap.counters[metric::ROUTES_SELECTED], selected as u64);
    }

    #[test]
    fn telemetry_traces_withdrawals_on_link_failure() {
        let g = fig1();
        let (mut engine, _) = converged_engine(&g);
        let (telemetry, sink) = Telemetry::ring(4096);
        engine.attach_telemetry(&telemetry);
        engine.apply_event(TopologyEvent::LinkDown(Fig1::D, Fig1::Z));
        let withdrawals = sink
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Withdrawn { .. }))
            .count();
        assert!(
            withdrawals > 0,
            "losing D–Z must withdraw at least one route"
        );
        assert_eq!(
            telemetry.snapshot().counters[metric::ROUTES_WITHDRAWN],
            withdrawals as u64
        );
    }

    #[test]
    fn detached_engine_matches_attached_engine_report() {
        let g = ring(7, Cost::new(2));
        let mut plain = SyncEngine::new(&g, PlainBgpNode::from_graph(&g));
        let plain_report = plain.run_to_convergence();
        let mut observed = SyncEngine::new(&g, PlainBgpNode::from_graph(&g));
        observed.attach_telemetry(&Telemetry::null());
        let observed_report = observed.run_to_convergence();
        assert_eq!(
            plain_report, observed_report,
            "observation must not perturb"
        );
    }
}
