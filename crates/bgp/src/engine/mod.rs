//! Execution engines driving [`ProtocolNode`](crate::ProtocolNode) state
//! machines: the paper's synchronous-stage model ([`SyncEngine`]) and an
//! asynchronous, channel-driven alternative ([`run_event_driven`]).

mod event;
mod invariants;
mod sync;

pub use event::{
    run_event_driven, run_event_driven_chaotic, run_event_driven_faulty,
    run_event_driven_telemetry, EventReport,
};
pub use sync::{RunReport, StageTrace, SyncEngine};
