//! The forwarding plane: hop-by-hop packet delivery over converged tables.
//!
//! Routing tables are control-plane state; packets are actually delivered
//! by each AS looking up the destination and handing the packet to its
//! *next hop*. This module simulates that data plane over a set of
//! converged selectors, which checks a property the control-plane tests
//! cannot: that per-hop forwarding decisions *compose* into the selected
//! end-to-end routes (the loop-free tree property of Sect. 6 made
//! operational — if the trees were inconsistent, packets would loop or
//! diverge from the advertised paths).

use crate::selector::RouteSelector;
use bgpvcg_netgraph::AsId;
use std::error::Error;
use std::fmt;

/// Why a packet could not be delivered.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ForwardingError {
    /// Some AS on the way had no route to the destination.
    NoRoute {
        /// The AS holding the packet.
        at: AsId,
        /// The unreachable destination.
        destination: AsId,
    },
    /// The packet revisited an AS — a forwarding loop (impossible with
    /// consistent trees; reported rather than spun on).
    Loop {
        /// The AS where the loop closed.
        at: AsId,
    },
    /// A next hop named an AS that is not in the network.
    UnknownNextHop {
        /// The bogus AS number.
        next_hop: AsId,
    },
}

impl fmt::Display for ForwardingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForwardingError::NoRoute { at, destination } => {
                write!(f, "{at} has no route to {destination}")
            }
            ForwardingError::Loop { at } => write!(f, "forwarding loop detected at {at}"),
            ForwardingError::UnknownNextHop { next_hop } => {
                write!(f, "next hop {next_hop} does not exist")
            }
        }
    }
}

impl Error for ForwardingError {}

/// Forwards one packet from `source` to `destination` by per-hop next-hop
/// lookups across `selectors` (indexed by `AsId::index`), returning the
/// sequence of ASs traversed (source first, destination last).
///
/// # Example
///
/// ```
/// use bgpvcg_bgp::{engine::SyncEngine, forwarding, PlainBgpNode, RouteSelector};
/// use bgpvcg_netgraph::generators::structured::{fig1, Fig1};
///
/// let g = fig1();
/// let mut engine = SyncEngine::new(&g, PlainBgpNode::from_graph(&g));
/// engine.run_to_convergence();
/// let nodes = engine.into_nodes();
/// let selectors: Vec<&RouteSelector> = nodes.iter().map(|n| n.selector()).collect();
/// let path = forwarding::forward_packet(&selectors, Fig1::X, Fig1::Z).unwrap();
/// assert_eq!(path, vec![Fig1::X, Fig1::B, Fig1::D, Fig1::Z]);
/// ```
///
/// # Errors
///
/// Returns a [`ForwardingError`] if some hop has no route, a loop forms, or
/// a table names a non-existent AS — all impossible once the protocol has
/// converged on a connected topology, and exactly what this simulator
/// exists to prove.
pub fn forward_packet(
    selectors: &[&RouteSelector],
    source: AsId,
    destination: AsId,
) -> Result<Vec<AsId>, ForwardingError> {
    let mut at = source;
    let mut path = vec![source];
    // A packet on a loop-free tree takes at most n-1 hops.
    while at != destination {
        let selector = selectors
            .get(at.index())
            .ok_or(ForwardingError::UnknownNextHop { next_hop: at })?;
        let route = selector
            .selected(destination)
            .ok_or(ForwardingError::NoRoute { at, destination })?;
        let next = route
            .next_hop()
            .ok_or(ForwardingError::NoRoute { at, destination })?;
        if next.index() >= selectors.len() {
            return Err(ForwardingError::UnknownNextHop { next_hop: next });
        }
        if path.contains(&next) {
            return Err(ForwardingError::Loop { at: next });
        }
        path.push(next);
        at = next;
    }
    Ok(path)
}

/// Checks data-plane/control-plane consistency for every pair: the path a
/// packet actually takes equals the route its source advertises. Returns
/// the first inconsistency found.
///
/// # Errors
///
/// Propagates forwarding errors; additionally reports (as
/// [`ForwardingError::NoRoute`]) a source that has a selected route whose
/// forwarding path diverges — which would mean the trees `T(j)` are not
/// consistent across nodes.
pub fn verify_consistency(selectors: &[&RouteSelector]) -> Result<(), ForwardingError> {
    for (idx, selector) in selectors.iter().enumerate() {
        let source = AsId::new(idx as u32);
        for destination in selector.destinations().collect::<Vec<_>>() {
            if destination == source {
                continue;
            }
            let Some(route) = selector.route(destination) else {
                continue;
            };
            let forwarded = forward_packet(selectors, source, destination)?;
            if forwarded != route.nodes() {
                return Err(ForwardingError::NoRoute {
                    at: source,
                    destination,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SyncEngine;
    use crate::node::PlainBgpNode;
    use bgpvcg_netgraph::generators::structured::{fig1, Fig1};
    use bgpvcg_netgraph::generators::{erdos_renyi, random_costs};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn converged_selectors(g: &bgpvcg_netgraph::AsGraph) -> Vec<PlainBgpNode> {
        let mut engine = SyncEngine::new(g, PlainBgpNode::from_graph(g));
        let report = engine.run_to_convergence();
        assert!(report.converged);
        engine.into_nodes()
    }

    #[test]
    fn packet_follows_the_advertised_route() {
        let g = fig1();
        let nodes = converged_selectors(&g);
        let selectors: Vec<&RouteSelector> = nodes.iter().map(|n| n.selector()).collect();
        let path = forward_packet(&selectors, Fig1::X, Fig1::Z).unwrap();
        assert_eq!(path, vec![Fig1::X, Fig1::B, Fig1::D, Fig1::Z]);
    }

    #[test]
    fn delivery_to_self_is_trivial() {
        let g = fig1();
        let nodes = converged_selectors(&g);
        let selectors: Vec<&RouteSelector> = nodes.iter().map(|n| n.selector()).collect();
        assert_eq!(
            forward_packet(&selectors, Fig1::D, Fig1::D).unwrap(),
            vec![Fig1::D]
        );
    }

    #[test]
    fn full_consistency_on_fig1() {
        let g = fig1();
        let nodes = converged_selectors(&g);
        let selectors: Vec<&RouteSelector> = nodes.iter().map(|n| n.selector()).collect();
        verify_consistency(&selectors).unwrap();
    }

    #[test]
    fn full_consistency_on_random_graphs() {
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let costs = random_costs(20, 0, 9, &mut rng);
            let g = erdos_renyi(costs, 0.25, &mut rng);
            let nodes = converged_selectors(&g);
            let selectors: Vec<&RouteSelector> = nodes.iter().map(|n| n.selector()).collect();
            verify_consistency(&selectors).unwrap();
        }
    }

    #[test]
    fn no_route_is_reported() {
        // A fresh, never-run selector set: nobody knows anything.
        let g = fig1();
        let nodes = PlainBgpNode::from_graph(&g);
        let selectors: Vec<&RouteSelector> = nodes.iter().map(|n| n.selector()).collect();
        let err = forward_packet(&selectors, Fig1::X, Fig1::Z).unwrap_err();
        assert_eq!(
            err,
            ForwardingError::NoRoute {
                at: Fig1::X,
                destination: Fig1::Z
            }
        );
        assert!(err.to_string().contains("no route"));
    }

    #[test]
    fn error_display_variants() {
        let loop_err = ForwardingError::Loop { at: Fig1::B };
        assert!(loop_err.to_string().contains("loop"));
        let bogus = ForwardingError::UnknownNextHop {
            next_hop: AsId::new(99),
        };
        assert!(bogus.to_string().contains("AS99"));
    }
}
