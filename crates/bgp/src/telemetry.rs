//! Telemetry glue: turning protocol [`Update`]s into typed trace events
//! and shared-registry metrics.
//!
//! Both engines drive the same [`UpdateTracer`]: it watches every broadcast
//! UPDATE and narrates it as [`TraceEvent`]s — `RouteSelected` / `Withdrawn`
//! per advertisement, and `PriceRelaxed` per price-entry change, diffed
//! against a shadow copy of the last value traced per
//! `(node, destination, transit)` cell (absent cells read as `∞`, matching
//! the paper's "prices start at ∞ and relax downward").

use crate::message::{RouteInfo, Update};
use bgpvcg_netgraph::Cost;
use bgpvcg_telemetry::{Counter, Telemetry, TraceEvent, INFINITE};
use std::collections::BTreeMap;

/// Canonical metric names shared by the engines and every experiment
/// binary, so `--metrics-out` expositions are comparable across runs.
pub mod metric {
    /// UPDATE broadcasts (one per advertising node per change, not per
    /// link).
    pub const UPDATES_SENT: &str = "bgp_updates_sent_total";
    /// Messages delivered (one update crossing one link).
    pub const MESSAGES: &str = "bgp_messages_total";
    /// Routing-table entries carried by all delivered messages.
    pub const ENTRIES: &str = "bgp_entries_total";
    /// Bytes under the [`wire`](crate::wire) model.
    pub const BYTES: &str = "bgp_bytes_total";
    /// Reachable-route advertisements (route newly selected or changed).
    pub const ROUTES_SELECTED: &str = "bgp_routes_selected_total";
    /// Withdrawal advertisements (routes flapped away).
    pub const ROUTES_WITHDRAWN: &str = "bgp_routes_withdrawn_total";
    /// Price-entry relaxations applied (one per changed `p^k` cell).
    pub const PRICE_RELAXATIONS: &str = "bgp_price_relaxations_total";
    /// Gauge: last stage with advertised-state changes in the most recent
    /// synchronous run (the quantity the paper bounds by `max(d, d′)`).
    pub const STAGES_TO_QUIESCENCE: &str = "bgp_stages_to_quiescence";
    /// Histogram: wall nanoseconds per executed synchronous stage.
    pub const STAGE_WALL_NANOS: &str = "bgp_stage_wall_nanos";
}

/// Raw trace encoding of a cost: the finite value, or `u64::MAX` for `∞`.
pub fn cost_raw(cost: Cost) -> u64 {
    cost.finite().unwrap_or(INFINITE)
}

/// Diffs a stream of broadcast [`Update`]s into trace events and event
/// counters. One tracer observes one run; engines create it internally when
/// telemetry is attached.
#[derive(Debug)]
pub struct UpdateTracer {
    telemetry: Telemetry,
    /// Last price value traced per `(node, dest, transit)` — absent = `∞`.
    prices: BTreeMap<(u32, u32, u32), u64>,
    /// Last path traced per `(node, dest)`, as `(hop, cumulative cost)`
    /// pairs — absent = no route advertised (or last ad was a withdrawal).
    routes: BTreeMap<(u32, u32), Vec<(u32, u64)>>,
    routes_selected: Counter,
    routes_withdrawn: Counter,
    price_relaxations: Counter,
}

impl UpdateTracer {
    /// Creates a tracer recording through `telemetry`'s sink and registry.
    pub fn new(telemetry: &Telemetry) -> Self {
        UpdateTracer {
            routes_selected: telemetry.counter(metric::ROUTES_SELECTED),
            routes_withdrawn: telemetry.counter(metric::ROUTES_WITHDRAWN),
            price_relaxations: telemetry.counter(metric::PRICE_RELAXATIONS),
            prices: BTreeMap::new(),
            routes: BTreeMap::new(),
            telemetry: telemetry.clone(),
        }
    }

    /// Narrates one broadcast UPDATE at the given stage (or async delivery
    /// sequence). Callers must only feed *change* advertisements (broadcast
    /// updates), not full-table session syncs. A pricing node re-advertises
    /// a destination's entry whenever its route **or any price** for it
    /// changed, so both event streams are diffed against shadow copies of
    /// the last traced value: `RouteSelected` fires only when the advertised
    /// path (hops or costs) changed, `PriceRelaxed` only when the `p^k` cell
    /// changed. `Withdrawn` is unconditional — the protocol only withdraws
    /// previously-advertised routes.
    pub fn observe_update(&mut self, update: &Update, stage: u64) {
        let node = update.from.raw();
        let effect = update.id;
        for (i, ad) in update.advertisements.iter().enumerate() {
            let dest = ad.destination.raw();
            let cause = update.cause_of(i);
            match &ad.info {
                RouteInfo::Reachable {
                    path,
                    path_cost,
                    prices,
                } => {
                    let shadow: Vec<(u32, u64)> = path
                        .iter()
                        .map(|e| (e.node.raw(), cost_raw(e.cost)))
                        .collect();
                    if self.routes.get(&(node, dest)) != Some(&shadow) {
                        self.routes.insert((node, dest), shadow);
                        self.routes_selected.inc();
                        self.telemetry.record(&TraceEvent::RouteSelected {
                            node,
                            dest,
                            stage,
                            hops: path.len() as u32,
                            path_cost: cost_raw(*path_cost),
                            cause,
                            effect,
                        });
                    }
                    // Transit nodes are path[1..len-1], in path order —
                    // the same order the price array uses.
                    if path.len() >= 3 {
                        for (entry, price) in path[1..path.len() - 1].iter().zip(prices) {
                            let key = (node, dest, entry.node.raw());
                            let new = cost_raw(*price);
                            let old = self.prices.get(&key).copied().unwrap_or(INFINITE);
                            if new != old {
                                self.prices.insert(key, new);
                                self.price_relaxations.inc();
                                self.telemetry.record(&TraceEvent::PriceRelaxed {
                                    node,
                                    dest,
                                    k: entry.node.raw(),
                                    stage,
                                    old,
                                    new,
                                    cause,
                                    effect,
                                });
                            }
                        }
                    }
                }
                RouteInfo::PriceDelta { entries, .. } => {
                    // A delta re-states the retained path and patches price
                    // cells. The shadow route maps each price index `i` to
                    // transit node `path[i + 1]`; a delta only ever follows
                    // a full advertisement over the same session, so the
                    // shadow is present — if it is not (defensive), the
                    // cells cannot be attributed and the ad is skipped.
                    let Some(shadow) = self.routes.get(&(node, dest)) else {
                        continue;
                    };
                    for &(index, price) in entries {
                        let Some(&(transit, _)) = shadow.get(usize::from(index) + 1) else {
                            continue;
                        };
                        let key = (node, dest, transit);
                        let new = cost_raw(price);
                        let old = self.prices.get(&key).copied().unwrap_or(INFINITE);
                        if new != old {
                            self.prices.insert(key, new);
                            self.price_relaxations.inc();
                            self.telemetry.record(&TraceEvent::PriceRelaxed {
                                node,
                                dest,
                                k: transit,
                                stage,
                                old,
                                new,
                                cause,
                                effect,
                            });
                        }
                    }
                }
                RouteInfo::Withdrawn => {
                    self.routes.remove(&(node, dest));
                    self.routes_withdrawn.inc();
                    self.telemetry.record(&TraceEvent::Withdrawn {
                        node,
                        dest,
                        stage,
                        cause,
                        effect,
                    });
                }
            }
        }
    }

    /// The telemetry handle this tracer records through.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }
}

/// The synchronous engine's bundled instruments: the tracer plus cached
/// traffic counter handles, held as `Option` inside the engine and taken
/// out for the duration of each run loop.
#[derive(Debug)]
pub(crate) struct RunInstruments {
    pub(crate) tracer: UpdateTracer,
    pub(crate) updates_sent: Counter,
    pub(crate) messages: Counter,
    pub(crate) entries: Counter,
    pub(crate) bytes: Counter,
}

impl RunInstruments {
    pub(crate) fn new(telemetry: &Telemetry) -> Self {
        RunInstruments {
            tracer: UpdateTracer::new(telemetry),
            updates_sent: telemetry.counter(metric::UPDATES_SENT),
            messages: telemetry.counter(metric::MESSAGES),
            entries: telemetry.counter(metric::ENTRIES),
            bytes: telemetry.counter(metric::BYTES),
        }
    }

    /// Accounts one broadcast: the update's events plus its per-link
    /// traffic.
    pub(crate) fn on_broadcast(
        &mut self,
        update: &Update,
        stage: u64,
        messages: usize,
        entries: usize,
        bytes: usize,
    ) {
        self.updates_sent.inc();
        self.messages.add(messages as u64);
        self.entries.add(entries as u64);
        self.bytes.add(bytes as u64);
        self.tracer.observe_update(update, stage);
    }

    /// Accounts a session-establishment unicast (full table): traffic only,
    /// no events — a full table re-states unchanged routes, which the
    /// tracer's change semantics must not misreport as reselections.
    pub(crate) fn on_unicast(&mut self, messages: usize, entries: usize, bytes: usize) {
        self.messages.add(messages as u64);
        self.entries.add(entries as u64);
        self.bytes.add(bytes as u64);
    }

    pub(crate) fn telemetry(&self) -> &Telemetry {
        self.tracer.telemetry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{PathEntry, RouteAdvertisement};
    use bgpvcg_netgraph::AsId;

    fn entry(raw: u32, cost: u64) -> PathEntry {
        PathEntry {
            node: AsId::new(raw),
            cost: Cost::new(cost),
        }
    }

    fn priced_update(prices: Vec<Cost>, id: u64, cause: u64) -> Update {
        Update {
            from: AsId::new(0),
            sender_costs: Vec::new(),
            advertisements: vec![RouteAdvertisement {
                destination: AsId::new(3),
                info: RouteInfo::Reachable {
                    path: vec![entry(0, 1), entry(1, 2), entry(2, 1), entry(3, 4)].into(),
                    path_cost: Cost::new(3),
                    prices,
                },
            }],
            id,
            causes: vec![cause],
        }
    }

    #[test]
    fn price_changes_diff_against_infinity_then_previous_value() {
        let (telemetry, ring) = Telemetry::ring(64);
        let mut tracer = UpdateTracer::new(&telemetry);
        tracer.observe_update(&priced_update(vec![Cost::new(5), Cost::INFINITE], 1, 0), 1);
        // Second advertisement relaxes the ∞ entry and lowers the first.
        tracer.observe_update(&priced_update(vec![Cost::new(4), Cost::new(7)], 2, 1), 2);
        // Re-advertising identical prices is silent on the price stream.
        tracer.observe_update(&priced_update(vec![Cost::new(4), Cost::new(7)], 3, 2), 3);
        let relaxations: Vec<_> = ring
            .events()
            .into_iter()
            .filter(|e| matches!(e, TraceEvent::PriceRelaxed { .. }))
            .collect();
        assert_eq!(
            relaxations,
            vec![
                TraceEvent::PriceRelaxed {
                    node: 0,
                    dest: 3,
                    k: 1,
                    stage: 1,
                    old: INFINITE,
                    new: 5,
                    cause: 0,
                    effect: 1
                },
                TraceEvent::PriceRelaxed {
                    node: 0,
                    dest: 3,
                    k: 1,
                    stage: 2,
                    old: 5,
                    new: 4,
                    cause: 1,
                    effect: 2
                },
                TraceEvent::PriceRelaxed {
                    node: 0,
                    dest: 3,
                    k: 2,
                    stage: 2,
                    old: INFINITE,
                    new: 7,
                    cause: 1,
                    effect: 2
                },
            ],
            "∞ entries never trace; finite changes trace once each"
        );
        assert_eq!(telemetry.snapshot().counters[metric::PRICE_RELAXATIONS], 3);
        // The path never changed, so only the first ad selects a route —
        // the later two were price-only re-advertisements.
        assert_eq!(telemetry.snapshot().counters[metric::ROUTES_SELECTED], 1);
    }

    #[test]
    fn withdrawals_trace_and_count() {
        let (telemetry, ring) = Telemetry::ring(8);
        let mut tracer = UpdateTracer::new(&telemetry);
        let update = Update {
            from: AsId::new(4),
            sender_costs: Vec::new(),
            advertisements: vec![RouteAdvertisement {
                destination: AsId::new(2),
                info: RouteInfo::Withdrawn,
            }],
            id: 6,
            causes: vec![5],
        };
        tracer.observe_update(&update, 9);
        assert_eq!(
            ring.events(),
            vec![TraceEvent::Withdrawn {
                node: 4,
                dest: 2,
                stage: 9,
                cause: 5,
                effect: 6
            }]
        );
        assert_eq!(telemetry.snapshot().counters[metric::ROUTES_WITHDRAWN], 1);
    }

    #[test]
    fn cost_raw_maps_infinity_to_the_trace_sentinel() {
        assert_eq!(cost_raw(Cost::INFINITE), INFINITE);
        assert_eq!(cost_raw(Cost::new(17)), 17);
    }
}
