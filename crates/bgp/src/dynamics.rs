//! Topology dynamics: link failures, link activations, cost changes.
//!
//! The paper (Sect. 6) notes that "the process of converging begins again
//! each time a route is changed"; experiment E10 measures those
//! reconvergences. Events come in two granularities: a network-level
//! [`TopologyEvent`] applied through an engine, and the [`LocalEvent`] each
//! affected node actually observes.

use bgpvcg_netgraph::{AsId, Cost};
use serde::{Deserialize, Serialize};

/// A network-level topology change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopologyEvent {
    /// The link between two ASs fails.
    LinkDown(AsId, AsId),
    /// A (previously absent) link between two ASs comes up.
    LinkUp(AsId, AsId),
    /// An AS re-declares its per-packet transit cost.
    CostChange(AsId, Cost),
    /// An entire AS fails: every incident link drops and the node's
    /// protocol state is lost (it will rejoin from scratch on
    /// [`TopologyEvent::NodeUp`]). If the surviving topology is no longer
    /// biconnected, the mechanism's prices become undefined — engines
    /// surface that as [`GraphError::NotBiconnected`] through their
    /// fallible event path instead of computing garbage.
    ///
    /// [`GraphError::NotBiconnected`]: bgpvcg_netgraph::GraphError
    NodeDown(AsId),
    /// A previously failed AS restarts with empty state: its parked links
    /// come back and it relearns routes via session re-establishment.
    NodeUp(AsId),
}

impl TopologyEvent {
    /// The nodes that directly observe this event, paired with what each
    /// observes.
    ///
    /// Node-level events return no views here: which neighbors observe a
    /// crash depends on the *current* adjacency, which only the engine
    /// knows — it expands `NodeDown`/`NodeUp` into per-neighbor
    /// `LinkDown`/`LinkUp` views itself.
    pub fn local_views(&self) -> Vec<(AsId, LocalEvent)> {
        match *self {
            TopologyEvent::LinkDown(a, b) => {
                vec![(a, LocalEvent::LinkDown(b)), (b, LocalEvent::LinkDown(a))]
            }
            TopologyEvent::LinkUp(a, b) => {
                vec![(a, LocalEvent::LinkUp(b)), (b, LocalEvent::LinkUp(a))]
            }
            TopologyEvent::CostChange(k, cost) => vec![(k, LocalEvent::CostChange(cost))],
            TopologyEvent::NodeDown(_) | TopologyEvent::NodeUp(_) => Vec::new(),
        }
    }
}

/// What a single node observes when a [`TopologyEvent`] touches it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LocalEvent {
    /// The link to the given neighbor went down.
    LinkDown(AsId),
    /// A link to the given neighbor came up.
    LinkUp(AsId),
    /// This node's own declared cost changed.
    CostChange(Cost),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_events_touch_both_endpoints() {
        let e = TopologyEvent::LinkDown(AsId::new(1), AsId::new(2));
        let views = e.local_views();
        assert_eq!(views.len(), 2);
        assert_eq!(views[0], (AsId::new(1), LocalEvent::LinkDown(AsId::new(2))));
        assert_eq!(views[1], (AsId::new(2), LocalEvent::LinkDown(AsId::new(1))));
    }

    #[test]
    fn cost_change_touches_one_node() {
        let e = TopologyEvent::CostChange(AsId::new(5), Cost::new(9));
        assert_eq!(
            e.local_views(),
            vec![(AsId::new(5), LocalEvent::CostChange(Cost::new(9)))]
        );
    }

    #[test]
    fn node_events_defer_views_to_the_engine() {
        assert!(TopologyEvent::NodeDown(AsId::new(4))
            .local_views()
            .is_empty());
        assert!(TopologyEvent::NodeUp(AsId::new(4)).local_views().is_empty());
    }

    #[test]
    fn link_up_views() {
        let e = TopologyEvent::LinkUp(AsId::new(0), AsId::new(3));
        assert_eq!(
            e.local_views(),
            vec![
                (AsId::new(0), LocalEvent::LinkUp(AsId::new(3))),
                (AsId::new(3), LocalEvent::LinkUp(AsId::new(0))),
            ]
        );
    }
}
