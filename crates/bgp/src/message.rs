//! Protocol messages.

use bgpvcg_netgraph::{AsId, Cost};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// One node of an advertised AS path, annotated with the cost that node
/// declared.
///
/// Carrying declared costs inside path attributes is the "declared cost …
/// included in the routing message exchanges" of the paper's Sect. 5/6: a
/// receiver learns the cost of every node on every path it hears about,
/// which the case-(iv) price relaxation needs (`p^k_ij ≤ c_k + …`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PathEntry {
    /// The AS.
    pub node: AsId,
    /// That AS's declared per-packet transit cost.
    pub cost: Cost,
}

/// An immutable, reference-counted AS path with a cached content hash.
///
/// Paths are built once per route *selection* and then shared by handle:
/// the selector's table, every retained adj-RIB-in copy, and every outgoing
/// advertisement hold the same `Arc<[PathEntry]>`, so re-advertising a
/// route clones a pointer instead of a `Vec`. The cached FNV-1a-64 hash
/// identifies the path on the wire (see
/// [`RouteInfo::PriceDelta::base_path_hash`]) and makes repeated equality
/// checks cheap: pointer equality first, then hash, then contents.
#[derive(Debug, Clone)]
pub struct SharedPath {
    entries: Arc<[PathEntry]>,
    hash: u64,
}

impl SharedPath {
    /// The cached FNV-1a-64 hash of the path contents (node ids and
    /// declared costs). Two equal paths always hash equal; collisions
    /// between different paths are possible in principle, which is why the
    /// delta-advertisement protocol treats a hash match as *necessary*,
    /// never as proof (the session layer already guarantees the receiver's
    /// retained path is byte-identical to the sender's).
    pub fn hash64(&self) -> u64 {
        self.hash
    }
}

/// FNV-1a-64 over the path's wire-relevant content: each entry's AS number
/// as 4 little-endian bytes followed by its raw cost as 8 little-endian
/// bytes (`∞` as `u64::MAX`, matching the v1 wire sentinel).
fn fnv1a_path(entries: &[PathEntry]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut eat = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(PRIME);
    };
    for entry in entries {
        for byte in (entry.node.index() as u32).to_le_bytes() {
            eat(byte);
        }
        for byte in entry.cost.finite().unwrap_or(u64::MAX).to_le_bytes() {
            eat(byte);
        }
    }
    hash
}

impl From<Vec<PathEntry>> for SharedPath {
    fn from(entries: Vec<PathEntry>) -> SharedPath {
        let hash = fnv1a_path(&entries);
        SharedPath {
            entries: entries.into(),
            hash,
        }
    }
}

impl Deref for SharedPath {
    type Target = [PathEntry];

    fn deref(&self) -> &[PathEntry] {
        &self.entries
    }
}

impl PartialEq for SharedPath {
    fn eq(&self, other: &SharedPath) -> bool {
        // Shared handles are the common case; the cached hash rejects most
        // genuine differences before the content walk.
        Arc::ptr_eq(&self.entries, &other.entries)
            || (self.hash == other.hash && self.entries == other.entries)
    }
}

impl Eq for SharedPath {}

/// The routing payload for one destination: a usable path, a compressed
/// price-only delta against the previously advertised path, or an explicit
/// withdrawal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteInfo {
    /// The advertiser has a route; fields describe it.
    Reachable {
        /// AS path from the advertiser (first entry) to the destination
        /// (last entry), each annotated with its declared cost. The
        /// advertiser's own entry carries its own declared cost.
        path: SharedPath,
        /// Transit cost `c(advertiser, destination)` of the path (sum of
        /// intermediate nodes' declared costs).
        path_cost: Cost,
        /// The advertiser's current price entries `p^k` for each transit
        /// node `k` of `path`, in path order (`path[1..len-1]`). Empty for
        /// plain BGP and for routes without transit nodes. `∞` entries are
        /// prices not yet relaxed to a finite bound.
        prices: Vec<Cost>,
    },
    /// A compressed re-advertisement: the selected path (and its cost) are
    /// unchanged since this advertiser's previous advertisement for the
    /// destination — only the listed price entries relaxed. The receiver
    /// patches its retained adj-RIB-in copy in place; on any mismatch
    /// (no retained route, or a retained path whose [`SharedPath::hash64`]
    /// differs from `base_path_hash`) the delta is dropped and the next
    /// full advertisement — which session resynchronization always sends —
    /// restores the state. This is the paper's Sect. 6 monotone-relaxation
    /// common case: after routes settle, every subsequent update changes
    /// only price cells.
    PriceDelta {
        /// [`SharedPath::hash64`] of the unchanged base path the entries
        /// apply to.
        base_path_hash: u64,
        /// `(index, new_value)` patches into the retained `prices` array,
        /// in ascending index order.
        entries: Vec<(u16, Cost)>,
    },
    /// The advertiser no longer has any route to the destination.
    Withdrawn,
}

impl RouteInfo {
    /// The advertised path, if reachable.
    pub fn path(&self) -> Option<&[PathEntry]> {
        match self {
            RouteInfo::Reachable { path, .. } => Some(path),
            RouteInfo::PriceDelta { .. } | RouteInfo::Withdrawn => None,
        }
    }

    /// The advertised path cost, if reachable.
    pub fn path_cost(&self) -> Option<Cost> {
        match self {
            RouteInfo::Reachable { path_cost, .. } => Some(*path_cost),
            RouteInfo::PriceDelta { .. } | RouteInfo::Withdrawn => None,
        }
    }

    /// Returns `true` if `node` appears anywhere on the advertised path.
    pub fn contains(&self, node: AsId) -> bool {
        self.path()
            .is_some_and(|p| p.iter().any(|e| e.node == node))
    }

    /// The advertised price for transit node `k`, if the route is reachable
    /// and `k` is one of its transit nodes.
    pub fn price_of(&self, k: AsId) -> Option<Cost> {
        let RouteInfo::Reachable { path, prices, .. } = self else {
            return None;
        };
        if path.len() < 3 {
            return None;
        }
        let transit = &path[1..path.len() - 1];
        let pos = transit.iter().position(|e| e.node == k)?;
        prices.get(pos).copied()
    }

    /// Compresses `next` into a [`RouteInfo::PriceDelta`] against `prev`
    /// when only price entries changed: both must be reachable over the
    /// *same* path (shared-handle or content equality) with the same path
    /// cost and price-array length, and at least one price cell must
    /// differ. Returns `None` whenever a full advertisement is required —
    /// the caller falls back to sending `next` as-is.
    pub fn delta_from(prev: &RouteInfo, next: &RouteInfo) -> Option<RouteInfo> {
        let (
            RouteInfo::Reachable {
                path: prev_path,
                path_cost: prev_cost,
                prices: prev_prices,
            },
            RouteInfo::Reachable {
                path: next_path,
                path_cost: next_cost,
                prices: next_prices,
            },
        ) = (prev, next)
        else {
            return None;
        };
        if prev_path != next_path
            || prev_cost != next_cost
            || prev_prices.len() != next_prices.len()
            || next_prices.len() > usize::from(u16::MAX)
        {
            return None;
        }
        let entries: Vec<(u16, Cost)> = prev_prices
            .iter()
            .zip(next_prices)
            .enumerate()
            .filter(|(_, (old, new))| old != new)
            .map(|(idx, (_, new))| (idx as u16, *new))
            .collect();
        if entries.is_empty() {
            return None;
        }
        Some(RouteInfo::PriceDelta {
            base_path_hash: next_path.hash64(),
            entries,
        })
    }
}

/// One routing-table entry being advertised: a destination plus its
/// [`RouteInfo`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteAdvertisement {
    /// The destination AS this entry routes toward.
    pub destination: AsId,
    /// The route (or withdrawal).
    pub info: RouteInfo,
}

/// An UPDATE message: the changed portion of one node's routing table,
/// broadcast to all of its neighbors.
///
/// The paper's model sends the full table on change and measures worst-case
/// complexity that way; like real BGP, this implementation sends only the
/// entries that changed (the engines' byte accounting records actual sizes,
/// and experiment E5 reports full-table sizes separately).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Update {
    /// The advertising AS.
    pub from: AsId,
    /// The advertiser's *per-neighbor* receive-cost vector — empty in the
    /// paper's base (node-uniform) cost model, populated under the Sect. 3
    /// per-neighbor extension, where a receiver `u` needs the advertiser's
    /// cost of receiving from `u` specifically to evaluate candidates.
    /// `O(degree)` extra data, still broadcast to all neighbors.
    pub sender_costs: Vec<(AsId, Cost)>,
    /// Changed table entries.
    pub advertisements: Vec<RouteAdvertisement>,
    /// Engine-assigned provenance id, monotone per engine run (0 = not yet
    /// stamped). Observability metadata only: never wire-encoded, so byte
    /// accounting and the wire golden corpus are unaffected.
    pub id: u64,
    /// Per-advertisement cause ids, parallel to `advertisements`: entry `i`
    /// names the [`Update::id`] of the inbound update whose ingestion
    /// triggered advertisement `i`. Cause 0 is the environment (origin
    /// advertisement, topology event, session full-table sync). An empty
    /// vector means every entry is environment-caused. Never wire-encoded.
    pub causes: Vec<u64>,
}

impl Update {
    /// Creates an update; returns `None` when there is nothing to send
    /// (protocol rule: only advertise on change).
    pub fn if_nonempty(from: AsId, advertisements: Vec<RouteAdvertisement>) -> Option<Update> {
        if advertisements.is_empty() {
            None
        } else {
            Some(Update {
                from,
                sender_costs: Vec::new(),
                advertisements,
                id: 0,
                causes: Vec::new(),
            })
        }
    }

    /// Attaches the advertiser's receive-cost vector (per-neighbor cost
    /// model only).
    #[must_use]
    pub fn with_sender_costs(mut self, sender_costs: Vec<(AsId, Cost)>) -> Update {
        self.sender_costs = sender_costs;
        self
    }

    /// Number of table entries carried.
    pub fn entry_count(&self) -> usize {
        self.advertisements.len()
    }

    /// Provenance cause of advertisement `i` (0 = environment; see
    /// [`Update::causes`]).
    pub fn cause_of(&self, i: usize) -> u64 {
        self.causes.get(i).copied().unwrap_or(0)
    }
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Update from {} ({} entries)",
            self.from,
            self.advertisements.len()
        )
    }
}

/// A sequenced session frame: the unit the lossy-channel recovery layer
/// (see the `chaos` module and `docs/ROBUSTNESS.md`) exchanges between
/// neighbors instead of bare [`Update`]s.
///
/// Each direction of each link carries an independent stream identified by
/// an `epoch` (bumped on every session (re)establishment, so state lost to
/// a crash or hold-timer teardown can never be confused with the live
/// stream) and a per-epoch `seq`. Every frame also piggybacks the sender's
/// cumulative receive state for the reverse stream (`ack_epoch`/`ack`),
/// which drives retransmission and regression detection.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame {
    /// Epoch of the sender's stream toward the receiver.
    pub epoch: u64,
    /// Sequence number within `epoch`. [`FrameKind::Open`] always carries
    /// seq 0; keepalives repeat the next unassigned seq without consuming
    /// it.
    pub seq: u64,
    /// The epoch the sender currently accepts on the *reverse* stream
    /// (0 = none accepted yet).
    pub ack_epoch: u64,
    /// Cumulative ack for the reverse stream: all seqs `< ack` of
    /// `ack_epoch` were received in order.
    pub ack: u64,
    /// The payload.
    pub kind: FrameKind,
}

/// Payload of a session [`Frame`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FrameKind {
    /// Establishes (or re-establishes) the sender's stream: the receiver
    /// resets its per-neighbor receive state to this frame's epoch.
    Open,
    /// A sequenced routing UPDATE.
    Data(Update),
    /// Liveness probe carrying only ack state; sent when the stream has
    /// been idle long enough that the peer's hold timer could fire.
    Keepalive,
}

impl Frame {
    /// `true` for frames that consume a sequence number (and therefore are
    /// retransmitted until acknowledged).
    pub fn is_sequenced(&self) -> bool {
        !matches!(self.kind, FrameKind::Keepalive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(raw: u32, cost: u64) -> PathEntry {
        PathEntry {
            node: AsId::new(raw),
            cost: Cost::new(cost),
        }
    }

    fn reachable() -> RouteInfo {
        // Path 0 -> 4 -> 3 -> 2 with transit nodes 4 (cost 2) and 3 (cost 1).
        RouteInfo::Reachable {
            path: vec![entry(0, 2), entry(4, 2), entry(3, 1), entry(2, 4)].into(),
            path_cost: Cost::new(3),
            prices: vec![Cost::new(4), Cost::new(3)],
        }
    }

    #[test]
    fn path_accessors() {
        let info = reachable();
        assert_eq!(info.path().unwrap().len(), 4);
        assert_eq!(info.path_cost(), Some(Cost::new(3)));
        assert!(info.contains(AsId::new(3)));
        assert!(!info.contains(AsId::new(9)));
    }

    #[test]
    fn withdrawn_has_nothing() {
        let info = RouteInfo::Withdrawn;
        assert_eq!(info.path(), None);
        assert_eq!(info.path_cost(), None);
        assert!(!info.contains(AsId::new(0)));
        assert_eq!(info.price_of(AsId::new(0)), None);
    }

    #[test]
    fn price_delta_has_no_path() {
        let info = RouteInfo::PriceDelta {
            base_path_hash: 7,
            entries: vec![(0, Cost::new(5))],
        };
        assert_eq!(info.path(), None);
        assert_eq!(info.path_cost(), None);
        assert!(!info.contains(AsId::new(0)));
        assert_eq!(info.price_of(AsId::new(0)), None);
    }

    #[test]
    fn price_of_transit_nodes() {
        let info = reachable();
        assert_eq!(info.price_of(AsId::new(4)), Some(Cost::new(4)));
        assert_eq!(info.price_of(AsId::new(3)), Some(Cost::new(3)));
        assert_eq!(info.price_of(AsId::new(0)), None, "source is not transit");
        assert_eq!(
            info.price_of(AsId::new(2)),
            None,
            "destination is not transit"
        );
    }

    #[test]
    fn price_of_on_short_paths() {
        let info = RouteInfo::Reachable {
            path: vec![entry(1, 5), entry(2, 4)].into(),
            path_cost: Cost::ZERO,
            prices: vec![],
        };
        assert_eq!(info.price_of(AsId::new(1)), None);
        assert_eq!(info.price_of(AsId::new(2)), None);
    }

    #[test]
    fn shared_paths_compare_by_content() {
        let a: SharedPath = vec![entry(0, 2), entry(4, 2)].into();
        let b: SharedPath = vec![entry(0, 2), entry(4, 2)].into();
        let c: SharedPath = vec![entry(0, 2), entry(4, 3)].into();
        assert_eq!(a, a.clone(), "shared handles are equal");
        assert_eq!(a, b, "separate builds of the same path are equal");
        assert_eq!(a.hash64(), b.hash64());
        assert_ne!(a, c);
        assert_ne!(a.hash64(), c.hash64(), "FNV separates these contents");
    }

    #[test]
    fn delta_from_compresses_price_only_changes() {
        let prev = reachable();
        let RouteInfo::Reachable {
            path, path_cost, ..
        } = prev.clone()
        else {
            unreachable!()
        };
        let next = RouteInfo::Reachable {
            path: path.clone(),
            path_cost,
            prices: vec![Cost::new(4), Cost::new(2)],
        };
        let delta = RouteInfo::delta_from(&prev, &next).expect("one price cell relaxed");
        assert_eq!(
            delta,
            RouteInfo::PriceDelta {
                base_path_hash: path.hash64(),
                entries: vec![(1, Cost::new(2))],
            }
        );
    }

    #[test]
    fn delta_from_requires_identical_route_shape() {
        let prev = reachable();
        // Unchanged info: nothing to send as a delta.
        assert_eq!(RouteInfo::delta_from(&prev, &prev.clone()), None);
        // Path changed: full advertisement required.
        let rerouted = RouteInfo::Reachable {
            path: vec![entry(0, 2), entry(5, 1), entry(2, 4)].into(),
            path_cost: Cost::new(1),
            prices: vec![Cost::new(3)],
        };
        assert_eq!(RouteInfo::delta_from(&prev, &rerouted), None);
        // Withdrawals never compress.
        assert_eq!(RouteInfo::delta_from(&prev, &RouteInfo::Withdrawn), None);
        assert_eq!(RouteInfo::delta_from(&RouteInfo::Withdrawn, &prev), None);
    }

    #[test]
    fn update_if_nonempty() {
        assert!(Update::if_nonempty(AsId::new(1), vec![]).is_none());
        let ad = RouteAdvertisement {
            destination: AsId::new(2),
            info: RouteInfo::Withdrawn,
        };
        let u = Update::if_nonempty(AsId::new(1), vec![ad]).unwrap();
        assert_eq!(u.entry_count(), 1);
        assert_eq!(u.from, AsId::new(1));
    }

    #[test]
    fn only_keepalives_are_unsequenced() {
        let base = Frame {
            epoch: 1,
            seq: 0,
            ack_epoch: 0,
            ack: 0,
            kind: FrameKind::Open,
        };
        assert!(base.is_sequenced());
        let data = Frame {
            kind: FrameKind::Data(Update {
                from: AsId::new(0),
                sender_costs: Vec::new(),
                advertisements: vec![],
                id: 0,
                causes: Vec::new(),
            }),
            ..base.clone()
        };
        assert!(data.is_sequenced());
        let keepalive = Frame {
            kind: FrameKind::Keepalive,
            ..base
        };
        assert!(!keepalive.is_sequenced());
    }

    #[test]
    fn display_is_compact() {
        let u = Update {
            from: AsId::new(7),
            sender_costs: Vec::new(),
            advertisements: vec![],
            id: 0,
            causes: Vec::new(),
        };
        assert!(u.to_string().contains("AS7"));
    }
}
