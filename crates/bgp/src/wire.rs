//! Wire format: a real binary codec for UPDATE messages.
//!
//! The paper measures communication in "number of routing tables exchanged
//! and the size of those tables". Rather than estimating sizes from a
//! model, this module actually serializes messages to a compact
//! length-prefixed binary format (4-byte AS numbers as in BGP-4, 8-byte
//! costs, explicit `∞` sentinel) and the engines account the encoded
//! length. Encoding and decoding round-trip exactly — tested here and by
//! property tests — so the byte counts in experiments E5/E6/E11 are real.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! message   := magic "BV" | version u8 | from u32
//!            | sender_cost_len u16 | (node u32, cost u64)*
//!            | count u16 | advert*
//! advert    := dest u32 | kind u8            (0 = withdrawn, 1 = reachable)
//! reachable += path_len u16 | (node u32, cost u64)* | path_cost u64
//!            | prices_len u16 | price u64*
//! ```
//!
//! Topology-dynamics events (experiment E10 replays recorded traces of
//! them) have their own control frame, distinguished from UPDATEs by the
//! magic:
//!
//! ```text
//! event     := magic "BE" | version u8 | tag u8 | payload
//! tag 0/1   := a u32 | b u32             (TopologyEvent::LinkDown/LinkUp)
//! tag 2     := node u32 | cost u64       (TopologyEvent::CostChange)
//! tag 3/4   := neighbor u32              (LocalEvent::LinkDown/LinkUp)
//! tag 5     := cost u64                  (LocalEvent::CostChange)
//! tag 6/7   := node u32                  (TopologyEvent::NodeDown/NodeUp)
//! ```
//!
//! The lossy-channel recovery layer (see `chaos` and `docs/ROBUSTNESS.md`)
//! wraps UPDATEs in sequenced session frames with their own magic:
//!
//! ```text
//! frame     := magic "BF" | version u8 | kind u8
//!            | epoch u64 | seq u64 | ack_epoch u64 | ack u64 | payload
//! kind 0    := (no payload)              (FrameKind::Open)
//! kind 1    := message                   (FrameKind::Data, embedded UPDATE)
//! kind 2    := (no payload)              (FrameKind::Keepalive)
//! ```

use crate::dynamics::{LocalEvent, TopologyEvent};
use crate::message::{Frame, FrameKind, PathEntry, RouteAdvertisement, RouteInfo, Update};
use bgpvcg_netgraph::{AsId, Cost};
use std::error::Error;
use std::fmt;

/// Bytes per AS number on the wire (BGP-4 uses 4-byte AS numbers).
pub const AS_NUMBER_BYTES: usize = 4;
/// Bytes per declared cost or price.
pub const COST_BYTES: usize = 8;
/// Fixed per-message header: magic (2) + version (1) + sender (4) +
/// sender-cost count (2) + entry count (2).
pub const MESSAGE_HEADER_BYTES: usize = 11;
/// Fixed per-session-frame header: magic (2) + version (1) + kind (1) +
/// epoch (8) + seq (8) + ack_epoch (8) + ack (8).
pub const FRAME_HEADER_BYTES: usize = 36;

const MAGIC: [u8; 2] = *b"BV";
const EVENT_MAGIC: [u8; 2] = *b"BE";
const FRAME_MAGIC: [u8; 2] = *b"BF";
const VERSION: u8 = 1;
const KIND_WITHDRAWN: u8 = 0;
const KIND_REACHABLE: u8 = 1;
const TAG_TOPO_LINK_DOWN: u8 = 0;
const TAG_TOPO_LINK_UP: u8 = 1;
const TAG_TOPO_COST_CHANGE: u8 = 2;
const TAG_LOCAL_LINK_DOWN: u8 = 3;
const TAG_LOCAL_LINK_UP: u8 = 4;
const TAG_LOCAL_COST_CHANGE: u8 = 5;
const TAG_TOPO_NODE_DOWN: u8 = 6;
const TAG_TOPO_NODE_UP: u8 = 7;
const FRAME_KIND_OPEN: u8 = 0;
const FRAME_KIND_DATA: u8 = 1;
const FRAME_KIND_KEEPALIVE: u8 = 2;
/// On-wire sentinel for [`Cost::INFINITE`].
const INFINITE_WIRE: u64 = u64::MAX;

/// Errors decoding a wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The buffer ended before the structure was complete.
    Truncated,
    /// The magic bytes or version byte did not match.
    BadHeader,
    /// An advertisement kind byte was neither withdrawn nor reachable.
    BadKind(u8),
    /// An event tag byte named no known event variant.
    BadEventTag(u8),
    /// A session-frame kind byte named no known frame kind.
    BadFrameKind(u8),
    /// Trailing bytes followed a structurally complete message.
    TrailingBytes(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "message truncated"),
            DecodeError::BadHeader => write!(f, "bad magic or version"),
            DecodeError::BadKind(k) => write!(f, "unknown advertisement kind {k}"),
            DecodeError::BadEventTag(t) => write!(f, "unknown event tag {t}"),
            DecodeError::BadFrameKind(k) => write!(f, "unknown frame kind {k}"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing byte(s)"),
        }
    }
}

impl Error for DecodeError {}

fn put_cost(out: &mut Vec<u8>, cost: Cost) {
    out.extend_from_slice(&cost.finite().unwrap_or(INFINITE_WIRE).to_le_bytes());
}

fn encode_advertisement(out: &mut Vec<u8>, ad: &RouteAdvertisement) {
    out.extend_from_slice(&ad.destination.raw().to_le_bytes());
    match &ad.info {
        RouteInfo::Withdrawn => out.push(KIND_WITHDRAWN),
        RouteInfo::Reachable {
            path,
            path_cost,
            prices,
        } => {
            out.push(KIND_REACHABLE);
            out.extend_from_slice(&(path.len() as u16).to_le_bytes());
            for entry in path {
                out.extend_from_slice(&entry.node.raw().to_le_bytes());
                put_cost(out, entry.cost);
            }
            put_cost(out, *path_cost);
            out.extend_from_slice(&(prices.len() as u16).to_le_bytes());
            for &p in prices {
                put_cost(out, p);
            }
        }
    }
}

/// Serializes an UPDATE to its wire form.
///
/// # Panics
///
/// Panics if the update carries more than `u16::MAX` advertisements or a
/// path/price list longer than `u16::MAX` (far beyond any real table).
pub fn encode_update(update: &Update) -> Vec<u8> {
    assert!(update.advertisements.len() <= usize::from(u16::MAX));
    let mut out = Vec::with_capacity(MESSAGE_HEADER_BYTES + update.advertisements.len() * 32);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&update.from.raw().to_le_bytes());
    assert!(update.sender_costs.len() <= usize::from(u16::MAX));
    out.extend_from_slice(&(update.sender_costs.len() as u16).to_le_bytes());
    for &(node, cost) in &update.sender_costs {
        out.extend_from_slice(&node.raw().to_le_bytes());
        put_cost(&mut out, cost);
    }
    out.extend_from_slice(&(update.advertisements.len() as u16).to_le_bytes());
    for ad in &update.advertisements {
        encode_advertisement(&mut out, ad);
    }
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        let bytes = self
            .take(2)?
            .try_into()
            .map_err(|_| DecodeError::Truncated)?;
        Ok(u16::from_le_bytes(bytes))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let bytes = self
            .take(4)?
            .try_into()
            .map_err(|_| DecodeError::Truncated)?;
        Ok(u32::from_le_bytes(bytes))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let bytes = self
            .take(8)?
            .try_into()
            .map_err(|_| DecodeError::Truncated)?;
        Ok(u64::from_le_bytes(bytes))
    }

    fn cost(&mut self) -> Result<Cost, DecodeError> {
        let bytes = self
            .take(8)?
            .try_into()
            .map_err(|_| DecodeError::Truncated)?;
        let raw = u64::from_le_bytes(bytes);
        Ok(if raw == INFINITE_WIRE {
            Cost::INFINITE
        } else {
            Cost::new(raw)
        })
    }
}

/// Parses a wire message back into an [`Update`].
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncation, bad header, unknown
/// advertisement kinds, or trailing bytes.
pub fn decode_update(buf: &[u8]) -> Result<Update, DecodeError> {
    let mut r = Reader { buf, pos: 0 };
    if r.take(2)? != MAGIC || r.u8()? != VERSION {
        return Err(DecodeError::BadHeader);
    }
    let from = AsId::new(r.u32()?);
    let sender_cost_len = r.u16()?;
    let mut sender_costs = Vec::with_capacity(usize::from(sender_cost_len));
    for _ in 0..sender_cost_len {
        let node = AsId::new(r.u32()?);
        let cost = r.cost()?;
        sender_costs.push((node, cost));
    }
    let count = r.u16()?;
    let mut advertisements = Vec::with_capacity(usize::from(count));
    for _ in 0..count {
        let destination = AsId::new(r.u32()?);
        let info = match r.u8()? {
            KIND_WITHDRAWN => RouteInfo::Withdrawn,
            KIND_REACHABLE => {
                let path_len = r.u16()?;
                let mut path = Vec::with_capacity(usize::from(path_len));
                for _ in 0..path_len {
                    let node = AsId::new(r.u32()?);
                    let cost = r.cost()?;
                    path.push(PathEntry { node, cost });
                }
                let path_cost = r.cost()?;
                let prices_len = r.u16()?;
                let mut prices = Vec::with_capacity(usize::from(prices_len));
                for _ in 0..prices_len {
                    prices.push(r.cost()?);
                }
                RouteInfo::Reachable {
                    path,
                    path_cost,
                    prices,
                }
            }
            other => return Err(DecodeError::BadKind(other)),
        };
        advertisements.push(RouteAdvertisement { destination, info });
    }
    if r.pos != buf.len() {
        return Err(DecodeError::TrailingBytes(buf.len() - r.pos));
    }
    Ok(Update {
        from,
        sender_costs,
        advertisements,
        // Provenance metadata is observability-only: it never crosses the
        // wire, so decoded updates come back unstamped.
        id: 0,
        causes: Vec::new(),
    })
}

fn event_frame(tag: u8) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&EVENT_MAGIC);
    out.push(VERSION);
    out.push(tag);
    out
}

/// Serializes a network-level topology event to its control-frame form.
pub fn encode_topology_event(event: &TopologyEvent) -> Vec<u8> {
    match *event {
        TopologyEvent::LinkDown(a, b) => {
            let mut out = event_frame(TAG_TOPO_LINK_DOWN);
            out.extend_from_slice(&a.raw().to_le_bytes());
            out.extend_from_slice(&b.raw().to_le_bytes());
            out
        }
        TopologyEvent::LinkUp(a, b) => {
            let mut out = event_frame(TAG_TOPO_LINK_UP);
            out.extend_from_slice(&a.raw().to_le_bytes());
            out.extend_from_slice(&b.raw().to_le_bytes());
            out
        }
        TopologyEvent::CostChange(node, cost) => {
            let mut out = event_frame(TAG_TOPO_COST_CHANGE);
            out.extend_from_slice(&node.raw().to_le_bytes());
            put_cost(&mut out, cost);
            out
        }
        TopologyEvent::NodeDown(node) => {
            let mut out = event_frame(TAG_TOPO_NODE_DOWN);
            out.extend_from_slice(&node.raw().to_le_bytes());
            out
        }
        TopologyEvent::NodeUp(node) => {
            let mut out = event_frame(TAG_TOPO_NODE_UP);
            out.extend_from_slice(&node.raw().to_le_bytes());
            out
        }
    }
}

/// Serializes a node-local event observation to its control-frame form.
pub fn encode_local_event(event: &LocalEvent) -> Vec<u8> {
    match *event {
        LocalEvent::LinkDown(neighbor) => {
            let mut out = event_frame(TAG_LOCAL_LINK_DOWN);
            out.extend_from_slice(&neighbor.raw().to_le_bytes());
            out
        }
        LocalEvent::LinkUp(neighbor) => {
            let mut out = event_frame(TAG_LOCAL_LINK_UP);
            out.extend_from_slice(&neighbor.raw().to_le_bytes());
            out
        }
        LocalEvent::CostChange(cost) => {
            let mut out = event_frame(TAG_LOCAL_COST_CHANGE);
            put_cost(&mut out, cost);
            out
        }
    }
}

fn event_reader(buf: &[u8]) -> Result<(Reader<'_>, u8), DecodeError> {
    let mut r = Reader { buf, pos: 0 };
    if r.take(2)? != EVENT_MAGIC || r.u8()? != VERSION {
        return Err(DecodeError::BadHeader);
    }
    let tag = r.u8()?;
    Ok((r, tag))
}

fn finish_frame(r: &Reader<'_>) -> Result<(), DecodeError> {
    if r.pos != r.buf.len() {
        return Err(DecodeError::TrailingBytes(r.buf.len() - r.pos));
    }
    Ok(())
}

/// Parses a control frame back into a [`TopologyEvent`].
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncation, bad header, a tag that does not
/// name a topology event, or trailing bytes.
pub fn decode_topology_event(buf: &[u8]) -> Result<TopologyEvent, DecodeError> {
    let (mut r, tag) = event_reader(buf)?;
    let event = match tag {
        TAG_TOPO_LINK_DOWN => TopologyEvent::LinkDown(AsId::new(r.u32()?), AsId::new(r.u32()?)),
        TAG_TOPO_LINK_UP => TopologyEvent::LinkUp(AsId::new(r.u32()?), AsId::new(r.u32()?)),
        TAG_TOPO_COST_CHANGE => TopologyEvent::CostChange(AsId::new(r.u32()?), r.cost()?),
        TAG_TOPO_NODE_DOWN => TopologyEvent::NodeDown(AsId::new(r.u32()?)),
        TAG_TOPO_NODE_UP => TopologyEvent::NodeUp(AsId::new(r.u32()?)),
        other => return Err(DecodeError::BadEventTag(other)),
    };
    finish_frame(&r)?;
    Ok(event)
}

/// Parses a control frame back into a [`LocalEvent`].
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncation, bad header, a tag that does not
/// name a local event, or trailing bytes.
pub fn decode_local_event(buf: &[u8]) -> Result<LocalEvent, DecodeError> {
    let (mut r, tag) = event_reader(buf)?;
    let event = match tag {
        TAG_LOCAL_LINK_DOWN => LocalEvent::LinkDown(AsId::new(r.u32()?)),
        TAG_LOCAL_LINK_UP => LocalEvent::LinkUp(AsId::new(r.u32()?)),
        TAG_LOCAL_COST_CHANGE => LocalEvent::CostChange(r.cost()?),
        other => return Err(DecodeError::BadEventTag(other)),
    };
    finish_frame(&r)?;
    Ok(event)
}

/// Serializes a sequenced session frame (recovery layer) to its wire form.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES);
    out.extend_from_slice(&FRAME_MAGIC);
    out.push(VERSION);
    out.push(match frame.kind {
        FrameKind::Open => FRAME_KIND_OPEN,
        FrameKind::Data(_) => FRAME_KIND_DATA,
        FrameKind::Keepalive => FRAME_KIND_KEEPALIVE,
    });
    out.extend_from_slice(&frame.epoch.to_le_bytes());
    out.extend_from_slice(&frame.seq.to_le_bytes());
    out.extend_from_slice(&frame.ack_epoch.to_le_bytes());
    out.extend_from_slice(&frame.ack.to_le_bytes());
    if let FrameKind::Data(update) = &frame.kind {
        out.extend_from_slice(&encode_update(update));
    }
    out
}

/// Parses a wire session frame back into a [`Frame`].
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncation, bad header, an unknown frame
/// kind, a malformed embedded UPDATE, or trailing bytes.
pub fn decode_frame(buf: &[u8]) -> Result<Frame, DecodeError> {
    let mut r = Reader { buf, pos: 0 };
    if r.take(2)? != FRAME_MAGIC || r.u8()? != VERSION {
        return Err(DecodeError::BadHeader);
    }
    let kind_tag = r.u8()?;
    let epoch = r.u64()?;
    let seq = r.u64()?;
    let ack_epoch = r.u64()?;
    let ack = r.u64()?;
    let kind = match kind_tag {
        FRAME_KIND_OPEN => {
            finish_frame(&r)?;
            FrameKind::Open
        }
        FRAME_KIND_DATA => {
            let payload = r.take(buf.len() - r.pos)?;
            FrameKind::Data(decode_update(payload)?)
        }
        FRAME_KIND_KEEPALIVE => {
            finish_frame(&r)?;
            FrameKind::Keepalive
        }
        other => return Err(DecodeError::BadFrameKind(other)),
    };
    Ok(Frame {
        epoch,
        seq,
        ack_epoch,
        ack,
        kind,
    })
}

/// Wire size of a session frame (its encoded length).
pub fn frame_size(frame: &Frame) -> usize {
    FRAME_HEADER_BYTES
        + match &frame.kind {
            FrameKind::Data(update) => update_size(update),
            FrameKind::Open | FrameKind::Keepalive => 0,
        }
}

/// Wire size of one table entry (its encoded length).
pub fn advertisement_size(ad: &RouteAdvertisement) -> usize {
    let mut buf = Vec::new();
    encode_advertisement(&mut buf, ad);
    buf.len()
}

/// Wire size of a whole UPDATE message (its encoded length).
pub fn update_size(update: &Update) -> usize {
    MESSAGE_HEADER_BYTES
        + update.sender_costs.len() * (AS_NUMBER_BYTES + COST_BYTES)
        + update
            .advertisements
            .iter()
            .map(advertisement_size)
            .sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(raw: u32, cost: u64) -> PathEntry {
        PathEntry {
            node: AsId::new(raw),
            cost: Cost::new(cost),
        }
    }

    fn reachable_ad(path_len: usize, price_len: usize) -> RouteAdvertisement {
        let path = (0..path_len)
            .map(|i| entry(i as u32, i as u64 + 1))
            .collect();
        RouteAdvertisement {
            destination: AsId::new(99),
            info: RouteInfo::Reachable {
                path,
                path_cost: Cost::new(17),
                prices: vec![Cost::new(5); price_len],
            },
        }
    }

    fn sample_update() -> Update {
        Update {
            from: AsId::new(7),
            sender_costs: Vec::new(),
            advertisements: vec![
                reachable_ad(4, 2),
                RouteAdvertisement {
                    destination: AsId::new(3),
                    info: RouteInfo::Withdrawn,
                },
                RouteAdvertisement {
                    destination: AsId::new(11),
                    info: RouteInfo::Reachable {
                        path: vec![entry(11, 0)],
                        path_cost: Cost::ZERO,
                        prices: vec![Cost::INFINITE],
                    },
                },
            ],
            id: 0,
            causes: Vec::new(),
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let update = sample_update();
        let bytes = encode_update(&update);
        assert_eq!(decode_update(&bytes).unwrap(), update);
    }

    #[test]
    fn infinite_prices_survive_the_wire() {
        let update = sample_update();
        let decoded = decode_update(&encode_update(&update)).unwrap();
        let RouteInfo::Reachable { prices, .. } = &decoded.advertisements[2].info else {
            panic!("third entry is reachable");
        };
        assert_eq!(prices, &[Cost::INFINITE]);
    }

    #[test]
    fn update_size_equals_encoded_length() {
        let update = sample_update();
        assert_eq!(update_size(&update), encode_update(&update).len());
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let bytes = encode_update(&sample_update());
        for cut in 0..bytes.len() {
            let err = decode_update(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, DecodeError::Truncated | DecodeError::BadHeader),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_update(&sample_update());
        bytes.push(0xAB);
        assert_eq!(
            decode_update(&bytes).unwrap_err(),
            DecodeError::TrailingBytes(1)
        );
    }

    #[test]
    fn bad_magic_and_kind_are_rejected() {
        let mut bytes = encode_update(&sample_update());
        bytes[0] = b'X';
        assert_eq!(decode_update(&bytes).unwrap_err(), DecodeError::BadHeader);

        let mut bytes = encode_update(&sample_update());
        // The kind byte of the first advertisement sits right after the
        // header and the 4-byte destination.
        let kind_pos = MESSAGE_HEADER_BYTES + 4;
        bytes[kind_pos] = 9;
        assert_eq!(decode_update(&bytes).unwrap_err(), DecodeError::BadKind(9));
    }

    #[test]
    fn withdrawal_is_small() {
        let ad = RouteAdvertisement {
            destination: AsId::new(1),
            info: RouteInfo::Withdrawn,
        };
        assert_eq!(advertisement_size(&ad), AS_NUMBER_BYTES + 1);
    }

    #[test]
    fn size_grows_linearly_with_path() {
        let short = advertisement_size(&reachable_ad(2, 0));
        let long = advertisement_size(&reachable_ad(4, 0));
        assert_eq!(long - short, 2 * (AS_NUMBER_BYTES + COST_BYTES));
    }

    #[test]
    fn prices_add_constant_factor_not_blowup() {
        // A priced entry for a path with t transit nodes adds t prices:
        // bounded by the path length itself times COST_BYTES.
        let plain = advertisement_size(&reachable_ad(5, 0));
        let priced = advertisement_size(&reachable_ad(5, 3));
        assert_eq!(priced - plain, 3 * COST_BYTES);
        assert!(priced < 2 * plain, "pricing must stay a constant factor");
    }

    #[test]
    fn empty_update_is_just_a_header() {
        let update = Update {
            from: AsId::new(0),
            sender_costs: Vec::new(),
            advertisements: vec![],
            id: 0,
            causes: Vec::new(),
        };
        assert_eq!(encode_update(&update).len(), MESSAGE_HEADER_BYTES);
        assert_eq!(decode_update(&encode_update(&update)).unwrap(), update);
    }

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame {
                epoch: 3,
                seq: 0,
                ack_epoch: 2,
                ack: 7,
                kind: FrameKind::Open,
            },
            Frame {
                epoch: 3,
                seq: 1,
                ack_epoch: 2,
                ack: 7,
                kind: FrameKind::Data(sample_update()),
            },
            Frame {
                epoch: 3,
                seq: 0,
                ack_epoch: 2,
                ack: 9,
                kind: FrameKind::Keepalive,
            },
        ]
    }

    #[test]
    fn frames_round_trip_and_report_their_size() {
        for frame in sample_frames() {
            let bytes = encode_frame(&frame);
            assert_eq!(frame_size(&frame), bytes.len());
            assert_eq!(decode_frame(&bytes).unwrap(), frame);
        }
    }

    #[test]
    fn frame_truncation_is_detected_at_every_length() {
        for frame in sample_frames() {
            let bytes = encode_frame(&frame);
            for cut in 0..bytes.len() {
                let err = decode_frame(&bytes[..cut]).unwrap_err();
                assert!(
                    matches!(err, DecodeError::Truncated | DecodeError::BadHeader),
                    "cut at {cut}: {err:?}"
                );
            }
        }
    }

    #[test]
    fn frame_corruption_is_rejected_with_typed_errors() {
        let mut bytes = encode_frame(&sample_frames()[0]);
        bytes[0] = b'X';
        assert_eq!(decode_frame(&bytes).unwrap_err(), DecodeError::BadHeader);

        let mut bytes = encode_frame(&sample_frames()[0]);
        bytes[3] = 9; // kind byte
        assert_eq!(
            decode_frame(&bytes).unwrap_err(),
            DecodeError::BadFrameKind(9)
        );

        let mut bytes = encode_frame(&sample_frames()[2]);
        bytes.push(0xAB);
        assert_eq!(
            decode_frame(&bytes).unwrap_err(),
            DecodeError::TrailingBytes(1)
        );

        // A Data frame whose embedded UPDATE is corrupted surfaces the
        // inner decoder's typed error.
        let mut bytes = encode_frame(&sample_frames()[1]);
        bytes[FRAME_HEADER_BYTES] = b'X'; // embedded UPDATE magic
        assert_eq!(decode_frame(&bytes).unwrap_err(), DecodeError::BadHeader);
    }

    #[test]
    fn node_events_round_trip() {
        for event in [
            TopologyEvent::NodeDown(AsId::new(6)),
            TopologyEvent::NodeUp(AsId::new(6)),
        ] {
            let bytes = encode_topology_event(&event);
            assert_eq!(decode_topology_event(&bytes).unwrap(), event);
        }
    }
}
