//! Wire format: a real binary codec for UPDATE messages.
//!
//! The paper measures communication in "number of routing tables exchanged
//! and the size of those tables". Rather than estimating sizes from a
//! model, this module actually serializes messages to a compact
//! length-prefixed binary format and the engines account the encoded
//! length. Encoding and decoding round-trip exactly — tested here and by
//! property tests — so the byte counts in experiments E5/E6/E11 are real.
//!
//! Two message versions share one decoder, dispatched on the version byte:
//!
//! **v1** (fixed-width, all integers little-endian; 4-byte AS numbers as in
//! BGP-4, 8-byte costs, explicit `∞` sentinel):
//!
//! ```text
//! message   := magic "BV" | version 1 | from u32
//!            | sender_cost_len u16 | (node u32, cost u64)*
//!            | count u16 | advert*
//! advert    := dest u32 | kind u8    (0 = withdrawn, 1 = reachable, 2 = delta)
//! reachable += path_len u16 | (node u32, cost u64)* | path_cost u64
//!            | prices_len u16 | price u64*
//! delta     += base_path_hash u64 | entries_len u16 | (index u16, price u64)*
//! ```
//!
//! **v2** (variable-width): unsigned LEB128 varints (`uvarint`, at most 10
//! bytes, canonical — overlong encodings are rejected), AS ids inside a
//! path delta-coded against their predecessor as zigzag varints, and costs
//! as `vcost` — `uvarint(0)` is the explicit `∞` sentinel, a finite cost
//! `c` encodes as `uvarint(c + 1)`:
//!
//! ```text
//! message   := magic "BV" | version 2 | from uvarint
//!            | sender_cost_len uvarint | (node uvarint, vcost)*
//!            | count uvarint | advert*
//! advert    := dest uvarint | kind u8  (0 = withdrawn, 1 = reachable, 2 = delta)
//! reachable += path_len uvarint
//!            | node₀ uvarint, vcost    (first entry: absolute AS id)
//!            | (zigzag(nodeᵢ − nodeᵢ₋₁) uvarint, vcost)*
//!            | path_cost vcost | prices_len uvarint | vcost*
//! delta     += base_path_hash u64 (fixed 8 LE) | entries_len uvarint
//!            | (index uvarint, vcost)*
//! ```
//!
//! Topology-dynamics events (experiment E10 replays recorded traces of
//! them) have their own control frame, distinguished from UPDATEs by the
//! magic (v1-only — they never ride the hot path):
//!
//! ```text
//! event     := magic "BE" | version 1 | tag u8 | payload
//! tag 0/1   := a u32 | b u32             (TopologyEvent::LinkDown/LinkUp)
//! tag 2     := node u32 | cost u64       (TopologyEvent::CostChange)
//! tag 3/4   := neighbor u32              (LocalEvent::LinkDown/LinkUp)
//! tag 5     := cost u64                  (LocalEvent::CostChange)
//! tag 6/7   := node u32                  (TopologyEvent::NodeDown/NodeUp)
//! ```
//!
//! The lossy-channel recovery layer (see `chaos` and `docs/ROBUSTNESS.md`)
//! wraps UPDATEs in sequenced session frames with their own magic. Like
//! messages, frames come in v1 (fixed u64 counters) and v2 (uvarint
//! counters, v2 payload):
//!
//! ```text
//! frame     := magic "BF" | version u8 | kind u8
//!            | epoch | seq | ack_epoch | ack | payload
//!              (v1: four u64 LE; v2: four uvarint)
//! kind 0    := (no payload)              (FrameKind::Open)
//! kind 1    := message                   (FrameKind::Data, embedded UPDATE)
//! kind 2    := (no payload)              (FrameKind::Keepalive)
//! ```

use crate::dynamics::{LocalEvent, TopologyEvent};
use crate::message::{Frame, FrameKind, PathEntry, RouteAdvertisement, RouteInfo, Update};
use bgpvcg_netgraph::{AsId, Cost};
use std::error::Error;
use std::fmt;

/// Bytes per AS number on the v1 wire (BGP-4 uses 4-byte AS numbers).
pub const AS_NUMBER_BYTES: usize = 4;
/// Bytes per declared cost or price on the v1 wire.
pub const COST_BYTES: usize = 8;
/// Fixed v1 per-message header: magic (2) + version (1) + sender (4) +
/// sender-cost count (2) + entry count (2).
pub const MESSAGE_HEADER_BYTES: usize = 11;
/// Fixed v1 per-session-frame header: magic (2) + version (1) + kind (1) +
/// epoch (8) + seq (8) + ack_epoch (8) + ack (8).
pub const FRAME_HEADER_BYTES: usize = 36;

const MAGIC: [u8; 2] = *b"BV";
const EVENT_MAGIC: [u8; 2] = *b"BE";
const FRAME_MAGIC: [u8; 2] = *b"BF";
const VERSION: u8 = 1;
const VERSION_V2: u8 = 2;
const KIND_WITHDRAWN: u8 = 0;
const KIND_REACHABLE: u8 = 1;
const KIND_PRICE_DELTA: u8 = 2;
const TAG_TOPO_LINK_DOWN: u8 = 0;
const TAG_TOPO_LINK_UP: u8 = 1;
const TAG_TOPO_COST_CHANGE: u8 = 2;
const TAG_LOCAL_LINK_DOWN: u8 = 3;
const TAG_LOCAL_LINK_UP: u8 = 4;
const TAG_LOCAL_COST_CHANGE: u8 = 5;
const TAG_TOPO_NODE_DOWN: u8 = 6;
const TAG_TOPO_NODE_UP: u8 = 7;
const FRAME_KIND_OPEN: u8 = 0;
const FRAME_KIND_DATA: u8 = 1;
const FRAME_KIND_KEEPALIVE: u8 = 2;
/// On-wire sentinel for [`Cost::INFINITE`] (v1 fixed-width costs).
const INFINITE_WIRE: u64 = u64::MAX;

/// Errors decoding a wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The buffer ended before the structure was complete.
    Truncated,
    /// The magic bytes or version byte did not match.
    BadHeader,
    /// An advertisement kind byte named no known kind.
    BadKind(u8),
    /// An event tag byte named no known event variant.
    BadEventTag(u8),
    /// A session-frame kind byte named no known frame kind.
    BadFrameKind(u8),
    /// A v2 varint was overlong, overflowed 64 bits, or reconstructed a
    /// value outside its field's range (e.g. a delta-coded AS id beyond
    /// `u32`).
    BadVarint,
    /// Trailing bytes followed a structurally complete message.
    TrailingBytes(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "message truncated"),
            DecodeError::BadHeader => write!(f, "bad magic or version"),
            DecodeError::BadKind(k) => write!(f, "unknown advertisement kind {k}"),
            DecodeError::BadEventTag(t) => write!(f, "unknown event tag {t}"),
            DecodeError::BadFrameKind(k) => write!(f, "unknown frame kind {k}"),
            DecodeError::BadVarint => write!(f, "malformed varint"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing byte(s)"),
        }
    }
}

impl Error for DecodeError {}

fn put_cost(out: &mut Vec<u8>, cost: Cost) {
    out.extend_from_slice(&cost.finite().unwrap_or(INFINITE_WIRE).to_le_bytes());
}

/// Appends an unsigned LEB128 varint (canonical: no trailing zero groups).
fn put_uvarint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends a v2 cost: `0` is the `∞` sentinel, a finite cost `c` encodes
/// as `c + 1` (finite raw costs top out at `u64::MAX − 1`, so the shift
/// never overflows and the two ranges never collide).
fn put_vcost(out: &mut Vec<u8>, cost: Cost) {
    put_uvarint(out, cost.finite().map_or(0, |c| c + 1));
}

/// Zigzag-maps a signed delta into the unsigned varint domain.
fn zigzag64(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag64`].
fn unzigzag64(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

fn encode_advertisement(out: &mut Vec<u8>, ad: &RouteAdvertisement) {
    out.extend_from_slice(&ad.destination.raw().to_le_bytes());
    match &ad.info {
        RouteInfo::Withdrawn => out.push(KIND_WITHDRAWN),
        RouteInfo::Reachable {
            path,
            path_cost,
            prices,
        } => {
            out.push(KIND_REACHABLE);
            out.extend_from_slice(&(path.len() as u16).to_le_bytes());
            for entry in path.iter() {
                out.extend_from_slice(&entry.node.raw().to_le_bytes());
                put_cost(out, entry.cost);
            }
            put_cost(out, *path_cost);
            out.extend_from_slice(&(prices.len() as u16).to_le_bytes());
            for &p in prices {
                put_cost(out, p);
            }
        }
        RouteInfo::PriceDelta {
            base_path_hash,
            entries,
        } => {
            out.push(KIND_PRICE_DELTA);
            out.extend_from_slice(&base_path_hash.to_le_bytes());
            out.extend_from_slice(&(entries.len() as u16).to_le_bytes());
            for &(index, price) in entries {
                out.extend_from_slice(&index.to_le_bytes());
                put_cost(out, price);
            }
        }
    }
}

/// Serializes an UPDATE to its v1 wire form.
///
/// # Panics
///
/// Panics if the update carries more than `u16::MAX` advertisements or a
/// path/price list longer than `u16::MAX` (far beyond any real table).
pub fn encode_update(update: &Update) -> Vec<u8> {
    assert!(update.advertisements.len() <= usize::from(u16::MAX));
    let mut out = Vec::with_capacity(MESSAGE_HEADER_BYTES + update.advertisements.len() * 32);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&update.from.raw().to_le_bytes());
    assert!(update.sender_costs.len() <= usize::from(u16::MAX));
    out.extend_from_slice(&(update.sender_costs.len() as u16).to_le_bytes());
    for &(node, cost) in &update.sender_costs {
        out.extend_from_slice(&node.raw().to_le_bytes());
        put_cost(&mut out, cost);
    }
    out.extend_from_slice(&(update.advertisements.len() as u16).to_le_bytes());
    for ad in &update.advertisements {
        encode_advertisement(&mut out, ad);
    }
    out
}

/// Appends one v2 table entry to `out` without allocating.
fn encode_advertisement_v2(out: &mut Vec<u8>, ad: &RouteAdvertisement) {
    put_uvarint(out, u64::from(ad.destination.raw()));
    match &ad.info {
        RouteInfo::Withdrawn => out.push(KIND_WITHDRAWN),
        RouteInfo::Reachable {
            path,
            path_cost,
            prices,
        } => {
            out.push(KIND_REACHABLE);
            put_uvarint(out, path.len() as u64);
            let mut prev: Option<u32> = None;
            for entry in path.iter() {
                let raw = entry.node.raw();
                match prev {
                    // The first node travels absolute; neighbors in a path
                    // tend to be numerically close, so subsequent ids
                    // zigzag-delta down to one or two bytes.
                    None => put_uvarint(out, u64::from(raw)),
                    Some(p) => put_uvarint(out, zigzag64(i64::from(raw) - i64::from(p))),
                }
                prev = Some(raw);
                put_vcost(out, entry.cost);
            }
            put_vcost(out, *path_cost);
            put_uvarint(out, prices.len() as u64);
            for &p in prices {
                put_vcost(out, p);
            }
        }
        RouteInfo::PriceDelta {
            base_path_hash,
            entries,
        } => {
            out.push(KIND_PRICE_DELTA);
            // The hash is uniformly distributed: varint-coding it would
            // cost 10 bytes, fixed-width costs 8.
            out.extend_from_slice(&base_path_hash.to_le_bytes());
            put_uvarint(out, entries.len() as u64);
            for &(index, price) in entries {
                put_uvarint(out, u64::from(index));
                put_vcost(out, price);
            }
        }
    }
}

/// Appends an UPDATE's v2 wire form to `out` — the zero-allocation encode
/// entry point the engines' byte accounting drives with a reused scratch
/// buffer.
pub fn encode_update_v2_into(out: &mut Vec<u8>, update: &Update) {
    out.extend_from_slice(&MAGIC);
    out.push(VERSION_V2);
    put_uvarint(out, u64::from(update.from.raw()));
    put_uvarint(out, update.sender_costs.len() as u64);
    for &(node, cost) in &update.sender_costs {
        put_uvarint(out, u64::from(node.raw()));
        put_vcost(out, cost);
    }
    put_uvarint(out, update.advertisements.len() as u64);
    for ad in &update.advertisements {
        encode_advertisement_v2(out, ad);
    }
}

/// Serializes an UPDATE to its v2 wire form (allocating convenience
/// wrapper over [`encode_update_v2_into`]).
pub fn encode_update_v2(update: &Update) -> Vec<u8> {
    let mut out = Vec::with_capacity(MESSAGE_HEADER_BYTES + update.advertisements.len() * 8);
    encode_update_v2_into(&mut out, update);
    out
}

/// v2 wire size of an UPDATE, measured by encoding into the caller's
/// scratch buffer (cleared first, capacity retained across calls).
pub fn update_size_v2_with(scratch: &mut Vec<u8>, update: &Update) -> usize {
    scratch.clear();
    encode_update_v2_into(scratch, update);
    scratch.len()
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        let bytes = self
            .take(2)?
            .try_into()
            .map_err(|_| DecodeError::Truncated)?;
        Ok(u16::from_le_bytes(bytes))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let bytes = self
            .take(4)?
            .try_into()
            .map_err(|_| DecodeError::Truncated)?;
        Ok(u32::from_le_bytes(bytes))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let bytes = self
            .take(8)?
            .try_into()
            .map_err(|_| DecodeError::Truncated)?;
        Ok(u64::from_le_bytes(bytes))
    }

    fn cost(&mut self) -> Result<Cost, DecodeError> {
        let raw = self.u64()?;
        Ok(if raw == INFINITE_WIRE {
            Cost::INFINITE
        } else {
            Cost::new(raw)
        })
    }

    /// Reads a canonical unsigned LEB128 varint: at most 10 bytes, no
    /// trailing zero continuation groups, final group within 64 bits.
    fn uvarint(&mut self) -> Result<u64, DecodeError> {
        let mut value = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            if shift > 0 && byte == 0 {
                // A zero group means a shorter canonical encoding existed.
                return Err(DecodeError::BadVarint);
            }
            if shift == 63 && byte > 1 {
                // The 10th group holds only the top bit of a u64.
                return Err(DecodeError::BadVarint);
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(DecodeError::BadVarint)
    }

    /// A varint constrained to `u32` (AS numbers).
    fn uvarint_u32(&mut self) -> Result<u32, DecodeError> {
        u32::try_from(self.uvarint()?).map_err(|_| DecodeError::BadVarint)
    }

    /// A varint used as an element count; conversion to `usize` cannot
    /// fail on supported targets, but the bound is checked anyway.
    fn uvarint_len(&mut self) -> Result<usize, DecodeError> {
        usize::try_from(self.uvarint()?).map_err(|_| DecodeError::BadVarint)
    }

    /// A v2 cost: `0` is `∞`, otherwise the finite cost shifted by one.
    fn vcost(&mut self) -> Result<Cost, DecodeError> {
        let raw = self.uvarint()?;
        Ok(if raw == 0 {
            Cost::INFINITE
        } else {
            Cost::new(raw - 1)
        })
    }
}

fn decode_update_v1(r: &mut Reader<'_>) -> Result<Update, DecodeError> {
    let from = AsId::new(r.u32()?);
    let sender_cost_len = r.u16()?;
    let mut sender_costs = Vec::with_capacity(usize::from(sender_cost_len));
    for _ in 0..sender_cost_len {
        let node = AsId::new(r.u32()?);
        let cost = r.cost()?;
        sender_costs.push((node, cost));
    }
    let count = r.u16()?;
    let mut advertisements = Vec::with_capacity(usize::from(count));
    for _ in 0..count {
        let destination = AsId::new(r.u32()?);
        let info = match r.u8()? {
            KIND_WITHDRAWN => RouteInfo::Withdrawn,
            KIND_REACHABLE => {
                let path_len = r.u16()?;
                let mut path = Vec::with_capacity(usize::from(path_len));
                for _ in 0..path_len {
                    let node = AsId::new(r.u32()?);
                    let cost = r.cost()?;
                    path.push(PathEntry { node, cost });
                }
                let path_cost = r.cost()?;
                let prices_len = r.u16()?;
                let mut prices = Vec::with_capacity(usize::from(prices_len));
                for _ in 0..prices_len {
                    prices.push(r.cost()?);
                }
                RouteInfo::Reachable {
                    path: path.into(),
                    path_cost,
                    prices,
                }
            }
            KIND_PRICE_DELTA => {
                let base_path_hash = r.u64()?;
                let entries_len = r.u16()?;
                let mut entries = Vec::with_capacity(usize::from(entries_len));
                for _ in 0..entries_len {
                    let index = r.u16()?;
                    let price = r.cost()?;
                    entries.push((index, price));
                }
                RouteInfo::PriceDelta {
                    base_path_hash,
                    entries,
                }
            }
            other => return Err(DecodeError::BadKind(other)),
        };
        advertisements.push(RouteAdvertisement { destination, info });
    }
    Ok(Update {
        from,
        sender_costs,
        advertisements,
        // Provenance metadata is observability-only: it never crosses the
        // wire, so decoded updates come back unstamped.
        id: 0,
        causes: Vec::new(),
    })
}

fn decode_update_v2(r: &mut Reader<'_>) -> Result<Update, DecodeError> {
    let from = AsId::new(r.uvarint_u32()?);
    let sender_cost_len = r.uvarint_len()?;
    // Length claims come off the wire: cap pre-allocation by the bytes
    // actually present so a corrupt count cannot balloon memory.
    let mut sender_costs = Vec::with_capacity(sender_cost_len.min(r.remaining()));
    for _ in 0..sender_cost_len {
        let node = AsId::new(r.uvarint_u32()?);
        let cost = r.vcost()?;
        sender_costs.push((node, cost));
    }
    let count = r.uvarint_len()?;
    let mut advertisements = Vec::with_capacity(count.min(r.remaining()));
    for _ in 0..count {
        let destination = AsId::new(r.uvarint_u32()?);
        let info = match r.u8()? {
            KIND_WITHDRAWN => RouteInfo::Withdrawn,
            KIND_REACHABLE => {
                let path_len = r.uvarint_len()?;
                let mut path = Vec::with_capacity(path_len.min(r.remaining()));
                let mut prev: Option<u32> = None;
                for _ in 0..path_len {
                    let raw = match prev {
                        None => r.uvarint_u32()?,
                        Some(p) => {
                            let delta = unzigzag64(r.uvarint()?);
                            i64::from(p)
                                .checked_add(delta)
                                .and_then(|v| u32::try_from(v).ok())
                                .ok_or(DecodeError::BadVarint)?
                        }
                    };
                    prev = Some(raw);
                    let cost = r.vcost()?;
                    path.push(PathEntry {
                        node: AsId::new(raw),
                        cost,
                    });
                }
                let path_cost = r.vcost()?;
                let prices_len = r.uvarint_len()?;
                let mut prices = Vec::with_capacity(prices_len.min(r.remaining()));
                for _ in 0..prices_len {
                    prices.push(r.vcost()?);
                }
                RouteInfo::Reachable {
                    path: path.into(),
                    path_cost,
                    prices,
                }
            }
            KIND_PRICE_DELTA => {
                let base_path_hash = r.u64()?;
                let entries_len = r.uvarint_len()?;
                let mut entries = Vec::with_capacity(entries_len.min(r.remaining()));
                for _ in 0..entries_len {
                    let index = u16::try_from(r.uvarint()?).map_err(|_| DecodeError::BadVarint)?;
                    let price = r.vcost()?;
                    entries.push((index, price));
                }
                RouteInfo::PriceDelta {
                    base_path_hash,
                    entries,
                }
            }
            other => return Err(DecodeError::BadKind(other)),
        };
        advertisements.push(RouteAdvertisement { destination, info });
    }
    Ok(Update {
        from,
        sender_costs,
        advertisements,
        id: 0,
        causes: Vec::new(),
    })
}

/// Parses a wire message (either version) back into an [`Update`].
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncation, bad header, unknown
/// advertisement kinds, malformed varints, or trailing bytes.
pub fn decode_update(buf: &[u8]) -> Result<Update, DecodeError> {
    let mut r = Reader { buf, pos: 0 };
    if r.take(2)? != MAGIC {
        return Err(DecodeError::BadHeader);
    }
    let update = match r.u8()? {
        VERSION => decode_update_v1(&mut r)?,
        VERSION_V2 => decode_update_v2(&mut r)?,
        _ => return Err(DecodeError::BadHeader),
    };
    if r.pos != buf.len() {
        return Err(DecodeError::TrailingBytes(buf.len() - r.pos));
    }
    Ok(update)
}

fn event_frame(tag: u8) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&EVENT_MAGIC);
    out.push(VERSION);
    out.push(tag);
    out
}

/// Serializes a network-level topology event to its control-frame form.
pub fn encode_topology_event(event: &TopologyEvent) -> Vec<u8> {
    match *event {
        TopologyEvent::LinkDown(a, b) => {
            let mut out = event_frame(TAG_TOPO_LINK_DOWN);
            out.extend_from_slice(&a.raw().to_le_bytes());
            out.extend_from_slice(&b.raw().to_le_bytes());
            out
        }
        TopologyEvent::LinkUp(a, b) => {
            let mut out = event_frame(TAG_TOPO_LINK_UP);
            out.extend_from_slice(&a.raw().to_le_bytes());
            out.extend_from_slice(&b.raw().to_le_bytes());
            out
        }
        TopologyEvent::CostChange(node, cost) => {
            let mut out = event_frame(TAG_TOPO_COST_CHANGE);
            out.extend_from_slice(&node.raw().to_le_bytes());
            put_cost(&mut out, cost);
            out
        }
        TopologyEvent::NodeDown(node) => {
            let mut out = event_frame(TAG_TOPO_NODE_DOWN);
            out.extend_from_slice(&node.raw().to_le_bytes());
            out
        }
        TopologyEvent::NodeUp(node) => {
            let mut out = event_frame(TAG_TOPO_NODE_UP);
            out.extend_from_slice(&node.raw().to_le_bytes());
            out
        }
    }
}

/// Serializes a node-local event observation to its control-frame form.
pub fn encode_local_event(event: &LocalEvent) -> Vec<u8> {
    match *event {
        LocalEvent::LinkDown(neighbor) => {
            let mut out = event_frame(TAG_LOCAL_LINK_DOWN);
            out.extend_from_slice(&neighbor.raw().to_le_bytes());
            out
        }
        LocalEvent::LinkUp(neighbor) => {
            let mut out = event_frame(TAG_LOCAL_LINK_UP);
            out.extend_from_slice(&neighbor.raw().to_le_bytes());
            out
        }
        LocalEvent::CostChange(cost) => {
            let mut out = event_frame(TAG_LOCAL_COST_CHANGE);
            put_cost(&mut out, cost);
            out
        }
    }
}

fn event_reader(buf: &[u8]) -> Result<(Reader<'_>, u8), DecodeError> {
    let mut r = Reader { buf, pos: 0 };
    if r.take(2)? != EVENT_MAGIC || r.u8()? != VERSION {
        return Err(DecodeError::BadHeader);
    }
    let tag = r.u8()?;
    Ok((r, tag))
}

fn finish_frame(r: &Reader<'_>) -> Result<(), DecodeError> {
    if r.pos != r.buf.len() {
        return Err(DecodeError::TrailingBytes(r.buf.len() - r.pos));
    }
    Ok(())
}

/// Parses a control frame back into a [`TopologyEvent`].
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncation, bad header, a tag that does not
/// name a topology event, or trailing bytes.
pub fn decode_topology_event(buf: &[u8]) -> Result<TopologyEvent, DecodeError> {
    let (mut r, tag) = event_reader(buf)?;
    let event = match tag {
        TAG_TOPO_LINK_DOWN => TopologyEvent::LinkDown(AsId::new(r.u32()?), AsId::new(r.u32()?)),
        TAG_TOPO_LINK_UP => TopologyEvent::LinkUp(AsId::new(r.u32()?), AsId::new(r.u32()?)),
        TAG_TOPO_COST_CHANGE => TopologyEvent::CostChange(AsId::new(r.u32()?), r.cost()?),
        TAG_TOPO_NODE_DOWN => TopologyEvent::NodeDown(AsId::new(r.u32()?)),
        TAG_TOPO_NODE_UP => TopologyEvent::NodeUp(AsId::new(r.u32()?)),
        other => return Err(DecodeError::BadEventTag(other)),
    };
    finish_frame(&r)?;
    Ok(event)
}

/// Parses a control frame back into a [`LocalEvent`].
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncation, bad header, a tag that does not
/// name a local event, or trailing bytes.
pub fn decode_local_event(buf: &[u8]) -> Result<LocalEvent, DecodeError> {
    let (mut r, tag) = event_reader(buf)?;
    let event = match tag {
        TAG_LOCAL_LINK_DOWN => LocalEvent::LinkDown(AsId::new(r.u32()?)),
        TAG_LOCAL_LINK_UP => LocalEvent::LinkUp(AsId::new(r.u32()?)),
        TAG_LOCAL_COST_CHANGE => LocalEvent::CostChange(r.cost()?),
        other => return Err(DecodeError::BadEventTag(other)),
    };
    finish_frame(&r)?;
    Ok(event)
}

fn frame_kind_byte(kind: &FrameKind) -> u8 {
    match kind {
        FrameKind::Open => FRAME_KIND_OPEN,
        FrameKind::Data(_) => FRAME_KIND_DATA,
        FrameKind::Keepalive => FRAME_KIND_KEEPALIVE,
    }
}

/// Serializes a sequenced session frame (recovery layer) to its v1 wire
/// form.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES);
    out.extend_from_slice(&FRAME_MAGIC);
    out.push(VERSION);
    out.push(frame_kind_byte(&frame.kind));
    out.extend_from_slice(&frame.epoch.to_le_bytes());
    out.extend_from_slice(&frame.seq.to_le_bytes());
    out.extend_from_slice(&frame.ack_epoch.to_le_bytes());
    out.extend_from_slice(&frame.ack.to_le_bytes());
    if let FrameKind::Data(update) = &frame.kind {
        out.extend_from_slice(&encode_update(update));
    }
    out
}

/// Appends a session frame's v2 wire form (varint counters, v2 payload)
/// to `out` without allocating.
pub fn encode_frame_v2_into(out: &mut Vec<u8>, frame: &Frame) {
    out.extend_from_slice(&FRAME_MAGIC);
    out.push(VERSION_V2);
    out.push(frame_kind_byte(&frame.kind));
    put_uvarint(out, frame.epoch);
    put_uvarint(out, frame.seq);
    put_uvarint(out, frame.ack_epoch);
    put_uvarint(out, frame.ack);
    if let FrameKind::Data(update) = &frame.kind {
        encode_update_v2_into(out, update);
    }
}

/// Serializes a session frame to its v2 wire form (allocating convenience
/// wrapper over [`encode_frame_v2_into`]).
pub fn encode_frame_v2(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    encode_frame_v2_into(&mut out, frame);
    out
}

/// v2 wire size of a session frame, measured by encoding into the
/// caller's scratch buffer (cleared first, capacity retained).
pub fn frame_size_v2_with(scratch: &mut Vec<u8>, frame: &Frame) -> usize {
    scratch.clear();
    encode_frame_v2_into(scratch, frame);
    scratch.len()
}

/// Parses a wire session frame (either version) back into a [`Frame`].
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncation, bad header, an unknown frame
/// kind, a malformed embedded UPDATE, or trailing bytes.
pub fn decode_frame(buf: &[u8]) -> Result<Frame, DecodeError> {
    let mut r = Reader { buf, pos: 0 };
    if r.take(2)? != FRAME_MAGIC {
        return Err(DecodeError::BadHeader);
    }
    let version = r.u8()?;
    if version != VERSION && version != VERSION_V2 {
        return Err(DecodeError::BadHeader);
    }
    let kind_tag = r.u8()?;
    let (epoch, seq, ack_epoch, ack) = if version == VERSION {
        (r.u64()?, r.u64()?, r.u64()?, r.u64()?)
    } else {
        (r.uvarint()?, r.uvarint()?, r.uvarint()?, r.uvarint()?)
    };
    let kind = match kind_tag {
        FRAME_KIND_OPEN => {
            finish_frame(&r)?;
            FrameKind::Open
        }
        FRAME_KIND_DATA => {
            // The embedded UPDATE carries its own version byte; a v2 frame
            // can legally carry a v1 payload (and vice versa) during a
            // version transition.
            let payload = r.take(buf.len() - r.pos)?;
            FrameKind::Data(decode_update(payload)?)
        }
        FRAME_KIND_KEEPALIVE => {
            finish_frame(&r)?;
            FrameKind::Keepalive
        }
        other => return Err(DecodeError::BadFrameKind(other)),
    };
    Ok(Frame {
        epoch,
        seq,
        ack_epoch,
        ack,
        kind,
    })
}

/// v1 wire size of a session frame (its encoded length), computed
/// arithmetically without encoding.
pub fn frame_size(frame: &Frame) -> usize {
    FRAME_HEADER_BYTES
        + match &frame.kind {
            FrameKind::Data(update) => update_size(update),
            FrameKind::Open | FrameKind::Keepalive => 0,
        }
}

/// v1 wire size of one table entry (its encoded length), computed
/// arithmetically without encoding — every v1 field is fixed-width.
pub fn advertisement_size(ad: &RouteAdvertisement) -> usize {
    AS_NUMBER_BYTES
        + 1
        + match &ad.info {
            RouteInfo::Withdrawn => 0,
            RouteInfo::Reachable { path, prices, .. } => {
                2 + path.len() * (AS_NUMBER_BYTES + COST_BYTES)
                    + COST_BYTES
                    + 2
                    + prices.len() * COST_BYTES
            }
            RouteInfo::PriceDelta { entries, .. } => 8 + 2 + entries.len() * (2 + COST_BYTES),
        }
}

/// v1 wire size of a whole UPDATE message (its encoded length), computed
/// arithmetically without encoding.
pub fn update_size(update: &Update) -> usize {
    MESSAGE_HEADER_BYTES
        + update.sender_costs.len() * (AS_NUMBER_BYTES + COST_BYTES)
        + update
            .advertisements
            .iter()
            .map(advertisement_size)
            .sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(raw: u32, cost: u64) -> PathEntry {
        PathEntry {
            node: AsId::new(raw),
            cost: Cost::new(cost),
        }
    }

    fn reachable_ad(path_len: usize, price_len: usize) -> RouteAdvertisement {
        let path: Vec<PathEntry> = (0..path_len)
            .map(|i| entry(i as u32, i as u64 + 1))
            .collect();
        RouteAdvertisement {
            destination: AsId::new(99),
            info: RouteInfo::Reachable {
                path: path.into(),
                path_cost: Cost::new(17),
                prices: vec![Cost::new(5); price_len],
            },
        }
    }

    fn delta_ad() -> RouteAdvertisement {
        RouteAdvertisement {
            destination: AsId::new(42),
            info: RouteInfo::PriceDelta {
                base_path_hash: 0xDEAD_BEEF_0BAD_F00D,
                entries: vec![(0, Cost::new(3)), (2, Cost::INFINITE)],
            },
        }
    }

    fn sample_update() -> Update {
        Update {
            from: AsId::new(7),
            sender_costs: Vec::new(),
            advertisements: vec![
                reachable_ad(4, 2),
                RouteAdvertisement {
                    destination: AsId::new(3),
                    info: RouteInfo::Withdrawn,
                },
                RouteAdvertisement {
                    destination: AsId::new(11),
                    info: RouteInfo::Reachable {
                        path: vec![entry(11, 0)].into(),
                        path_cost: Cost::ZERO,
                        prices: vec![Cost::INFINITE],
                    },
                },
            ],
            id: 0,
            causes: Vec::new(),
        }
    }

    /// The sample plus a price-delta entry and a descending path (negative
    /// zigzag deltas) — every v2 construct in one message.
    fn sample_update_v2() -> Update {
        let mut update = sample_update();
        update.advertisements.push(delta_ad());
        update.advertisements.push(RouteAdvertisement {
            destination: AsId::new(1),
            info: RouteInfo::Reachable {
                path: vec![entry(9, 2), entry(4, 1), entry(1, 0)].into(),
                path_cost: Cost::new(1),
                prices: vec![Cost::new(2)],
            },
        });
        update.sender_costs = vec![(AsId::new(2), Cost::new(5)), (AsId::new(8), Cost::INFINITE)];
        update
    }

    #[test]
    fn round_trip_is_exact() {
        let update = sample_update();
        let bytes = encode_update(&update);
        assert_eq!(decode_update(&bytes).unwrap(), update);
    }

    #[test]
    fn v1_round_trip_carries_price_deltas() {
        let mut update = sample_update();
        update.advertisements.push(delta_ad());
        let bytes = encode_update(&update);
        assert_eq!(decode_update(&bytes).unwrap(), update);
        assert_eq!(update_size(&update), bytes.len());
    }

    #[test]
    fn v2_round_trip_is_exact() {
        let update = sample_update_v2();
        let bytes = encode_update_v2(&update);
        assert_eq!(decode_update(&bytes).unwrap(), update);
    }

    #[test]
    fn v2_is_smaller_than_v1() {
        let update = sample_update_v2();
        assert!(
            encode_update_v2(&update).len() < encode_update(&update).len(),
            "varint + delta coding must shrink the sample"
        );
    }

    #[test]
    fn v2_size_equals_encoded_length_and_scratch_is_reused() {
        let mut scratch = Vec::new();
        let update = sample_update_v2();
        assert_eq!(
            update_size_v2_with(&mut scratch, &update),
            encode_update_v2(&update).len()
        );
        let capacity = scratch.capacity();
        // A second measurement reuses the grown buffer.
        assert_eq!(
            update_size_v2_with(&mut scratch, &update),
            encode_update_v2(&update).len()
        );
        assert_eq!(scratch.capacity(), capacity);
    }

    #[test]
    fn infinite_prices_survive_the_wire() {
        let update = sample_update();
        for bytes in [encode_update(&update), encode_update_v2(&update)] {
            let decoded = decode_update(&bytes).unwrap();
            let RouteInfo::Reachable { prices, .. } = &decoded.advertisements[2].info else {
                panic!("third entry is reachable");
            };
            assert_eq!(prices, &[Cost::INFINITE]);
        }
    }

    #[test]
    fn update_size_equals_encoded_length() {
        let update = sample_update();
        assert_eq!(update_size(&update), encode_update(&update).len());
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        for bytes in [
            encode_update(&sample_update()),
            encode_update_v2(&sample_update_v2()),
        ] {
            for cut in 0..bytes.len() {
                let err = decode_update(&bytes[..cut]).unwrap_err();
                assert!(
                    matches!(err, DecodeError::Truncated | DecodeError::BadHeader),
                    "cut at {cut}: {err:?}"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        for mut bytes in [
            encode_update(&sample_update()),
            encode_update_v2(&sample_update_v2()),
        ] {
            bytes.push(0xAB);
            assert_eq!(
                decode_update(&bytes).unwrap_err(),
                DecodeError::TrailingBytes(1)
            );
        }
    }

    #[test]
    fn bad_magic_and_kind_are_rejected() {
        let mut bytes = encode_update(&sample_update());
        bytes[0] = b'X';
        assert_eq!(decode_update(&bytes).unwrap_err(), DecodeError::BadHeader);

        let mut bytes = encode_update(&sample_update());
        // The kind byte of the first advertisement sits right after the
        // header and the 4-byte destination.
        let kind_pos = MESSAGE_HEADER_BYTES + 4;
        bytes[kind_pos] = 9;
        assert_eq!(decode_update(&bytes).unwrap_err(), DecodeError::BadKind(9));
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut bytes = encode_update(&sample_update());
        bytes[2] = 3;
        assert_eq!(decode_update(&bytes).unwrap_err(), DecodeError::BadHeader);
    }

    #[test]
    fn varint_edge_values_round_trip() {
        for value in [
            0u64,
            1,
            127,
            128,
            16383,
            16384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, value);
            assert!(buf.len() <= 10);
            let mut r = Reader { buf: &buf, pos: 0 };
            assert_eq!(r.uvarint().unwrap(), value, "value {value}");
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn overlong_and_overflowing_varints_are_rejected() {
        // 0x80 0x00 is a two-byte encoding of 0: overlong.
        let mut r = Reader {
            buf: &[0x80, 0x00],
            pos: 0,
        };
        assert_eq!(r.uvarint().unwrap_err(), DecodeError::BadVarint);
        // Ten continuation groups followed by anything: more than 64 bits.
        let mut r = Reader {
            buf: &[0xFF; 11],
            pos: 0,
        };
        assert_eq!(r.uvarint().unwrap_err(), DecodeError::BadVarint);
        // 10th group with a payload beyond the top bit of a u64.
        let mut buf = vec![0xFF; 9];
        buf.push(0x02);
        let mut r = Reader { buf: &buf, pos: 0 };
        assert_eq!(r.uvarint().unwrap_err(), DecodeError::BadVarint);
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag64(zigzag64(v)), v);
        }
    }

    #[test]
    fn out_of_range_path_delta_is_rejected() {
        // Path of two nodes where the second's delta walks below zero.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION_V2);
        put_uvarint(&mut bytes, 7); // from
        put_uvarint(&mut bytes, 0); // sender costs
        put_uvarint(&mut bytes, 1); // one advertisement
        put_uvarint(&mut bytes, 9); // dest
        bytes.push(KIND_REACHABLE);
        put_uvarint(&mut bytes, 2); // path_len
        put_uvarint(&mut bytes, 5); // first node = 5
        put_vcost(&mut bytes, Cost::new(1));
        put_uvarint(&mut bytes, zigzag64(-6)); // 5 - 6 = -1: out of range
        put_vcost(&mut bytes, Cost::new(1));
        put_vcost(&mut bytes, Cost::ZERO); // path_cost
        put_uvarint(&mut bytes, 0); // prices
        assert_eq!(decode_update(&bytes).unwrap_err(), DecodeError::BadVarint);
    }

    #[test]
    fn withdrawal_is_small() {
        let ad = RouteAdvertisement {
            destination: AsId::new(1),
            info: RouteInfo::Withdrawn,
        };
        assert_eq!(advertisement_size(&ad), AS_NUMBER_BYTES + 1);
    }

    #[test]
    fn size_grows_linearly_with_path() {
        let short = advertisement_size(&reachable_ad(2, 0));
        let long = advertisement_size(&reachable_ad(4, 0));
        assert_eq!(long - short, 2 * (AS_NUMBER_BYTES + COST_BYTES));
    }

    #[test]
    fn prices_add_constant_factor_not_blowup() {
        // A priced entry for a path with t transit nodes adds t prices:
        // bounded by the path length itself times COST_BYTES.
        let plain = advertisement_size(&reachable_ad(5, 0));
        let priced = advertisement_size(&reachable_ad(5, 3));
        assert_eq!(priced - plain, 3 * COST_BYTES);
        assert!(priced < 2 * plain, "pricing must stay a constant factor");
    }

    #[test]
    fn empty_update_is_just_a_header() {
        let update = Update {
            from: AsId::new(0),
            sender_costs: Vec::new(),
            advertisements: vec![],
            id: 0,
            causes: Vec::new(),
        };
        assert_eq!(encode_update(&update).len(), MESSAGE_HEADER_BYTES);
        assert_eq!(decode_update(&encode_update(&update)).unwrap(), update);
    }

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame {
                epoch: 3,
                seq: 0,
                ack_epoch: 2,
                ack: 7,
                kind: FrameKind::Open,
            },
            Frame {
                epoch: 3,
                seq: 1,
                ack_epoch: 2,
                ack: 7,
                kind: FrameKind::Data(sample_update()),
            },
            Frame {
                epoch: 3,
                seq: 0,
                ack_epoch: 2,
                ack: 9,
                kind: FrameKind::Keepalive,
            },
        ]
    }

    #[test]
    fn frames_round_trip_and_report_their_size() {
        for frame in sample_frames() {
            let bytes = encode_frame(&frame);
            assert_eq!(frame_size(&frame), bytes.len());
            assert_eq!(decode_frame(&bytes).unwrap(), frame);
        }
    }

    #[test]
    fn v2_frames_round_trip_and_report_their_size() {
        let mut scratch = Vec::new();
        for frame in sample_frames() {
            let bytes = encode_frame_v2(&frame);
            assert_eq!(frame_size_v2_with(&mut scratch, &frame), bytes.len());
            assert_eq!(decode_frame(&bytes).unwrap(), frame);
            assert!(
                bytes.len() <= encode_frame(&frame).len(),
                "v2 never exceeds v1 for protocol-generated frames"
            );
        }
    }

    #[test]
    fn frame_truncation_is_detected_at_every_length() {
        for frame in sample_frames() {
            for bytes in [encode_frame(&frame), encode_frame_v2(&frame)] {
                for cut in 0..bytes.len() {
                    let err = decode_frame(&bytes[..cut]).unwrap_err();
                    assert!(
                        matches!(err, DecodeError::Truncated | DecodeError::BadHeader),
                        "cut at {cut}: {err:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn frame_corruption_is_rejected_with_typed_errors() {
        let mut bytes = encode_frame(&sample_frames()[0]);
        bytes[0] = b'X';
        assert_eq!(decode_frame(&bytes).unwrap_err(), DecodeError::BadHeader);

        for mut bytes in [
            encode_frame(&sample_frames()[0]),
            encode_frame_v2(&sample_frames()[0]),
        ] {
            bytes[3] = 9; // kind byte
            assert_eq!(
                decode_frame(&bytes).unwrap_err(),
                DecodeError::BadFrameKind(9)
            );
        }

        for mut bytes in [
            encode_frame(&sample_frames()[2]),
            encode_frame_v2(&sample_frames()[2]),
        ] {
            bytes.push(0xAB);
            assert_eq!(
                decode_frame(&bytes).unwrap_err(),
                DecodeError::TrailingBytes(1)
            );
        }

        // A Data frame whose embedded UPDATE is corrupted surfaces the
        // inner decoder's typed error.
        let mut bytes = encode_frame(&sample_frames()[1]);
        bytes[FRAME_HEADER_BYTES] = b'X'; // embedded UPDATE magic
        assert_eq!(decode_frame(&bytes).unwrap_err(), DecodeError::BadHeader);

        let mut bytes = encode_frame(&sample_frames()[1]);
        bytes[2] = 3; // unknown frame version
        assert_eq!(decode_frame(&bytes).unwrap_err(), DecodeError::BadHeader);
    }

    #[test]
    fn node_events_round_trip() {
        for event in [
            TopologyEvent::NodeDown(AsId::new(6)),
            TopologyEvent::NodeUp(AsId::new(6)),
        ] {
            let bytes = encode_topology_event(&event);
            assert_eq!(decode_topology_event(&bytes).unwrap(), event);
        }
    }
}
