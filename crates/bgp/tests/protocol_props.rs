//! Property tests for the BGP substrate: the synchronous engine always
//! converges to the centralized routes within the `d` bound, the forwarding
//! plane composes, topology events reconverge correctly, and the
//! asynchronous engine reaches the same fixpoint.

use bgpvcg_bgp::engine::{run_event_driven, SyncEngine};
use bgpvcg_bgp::{
    forwarding, wire, Frame, FrameKind, PathEntry, PlainBgpNode, ProtocolNode, RouteAdvertisement,
    RouteInfo, RouteSelector, TopologyEvent, Update,
};
use bgpvcg_lcp::{diameter, AllPairsLcp};
use bgpvcg_netgraph::generators::{erdos_renyi, random_costs};
use bgpvcg_netgraph::{AsGraph, AsId, Cost};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn graph_from(n: usize, density: f64, seed: u64) -> AsGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let costs = random_costs(n, 0, 9, &mut rng);
    erdos_renyi(costs, density, &mut rng)
}

fn assert_routes_match(
    engine: &SyncEngine<PlainBgpNode>,
    g: &AsGraph,
) -> Result<(), TestCaseError> {
    let lcp = AllPairsLcp::compute(g);
    for i in g.nodes() {
        for j in g.nodes() {
            let actual = engine.node(i).selector().route(j);
            prop_assert_eq!(actual.as_ref(), lcp.route(i, j), "{} -> {}", i, j);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Convergence to centralized routes within d stages, every time.
    #[test]
    fn sync_converges_to_centralized_within_d(
        n in 5usize..18,
        density in 0.15f64..0.7,
        seed in 0u64..u64::MAX,
    ) {
        let g = graph_from(n, density, seed);
        let mut engine = SyncEngine::new(&g, PlainBgpNode::from_graph(&g));
        let report = engine.run_to_convergence();
        prop_assert!(report.converged);
        let lcp = AllPairsLcp::compute(&g);
        prop_assert!(report.stages <= diameter::lcp_hop_diameter(&lcp));
        assert_routes_match(&engine, &g)?;
    }

    /// Data plane consistency after convergence: hop-by-hop forwarding
    /// reconstructs every advertised route.
    #[test]
    fn forwarding_composes(
        n in 5usize..18,
        density in 0.15f64..0.7,
        seed in 0u64..u64::MAX,
    ) {
        let g = graph_from(n, density, seed);
        let mut engine = SyncEngine::new(&g, PlainBgpNode::from_graph(&g));
        engine.run_to_convergence();
        let nodes = engine.into_nodes();
        let selectors: Vec<&RouteSelector> = nodes.iter().map(|x| x.selector()).collect();
        prop_assert!(forwarding::verify_consistency(&selectors).is_ok());
    }

    /// A random link failure (that keeps the graph connected) reconverges
    /// to the centralized routes of the new topology.
    #[test]
    fn link_failure_reconverges(
        n in 6usize..16,
        density in 0.2f64..0.7,
        pick in 0usize..1000,
        seed in 0u64..u64::MAX,
    ) {
        let g = graph_from(n, density, seed);
        let link = g.links()[pick % g.link_count()];
        let g2 = g.without_link(link.a(), link.b()).unwrap();
        prop_assume!(g2.is_connected());
        let mut engine = SyncEngine::new(&g, PlainBgpNode::from_graph(&g));
        engine.run_to_convergence();
        let report = engine.apply_event(TopologyEvent::LinkDown(link.a(), link.b()));
        prop_assert!(report.converged);
        assert_routes_match(&engine, &g2)?;
    }

    /// A random cost re-declaration reconverges to the centralized routes
    /// of the re-priced graph.
    #[test]
    fn cost_change_reconverges(
        n in 6usize..16,
        density in 0.2f64..0.7,
        pick in 0u32..1000,
        new_cost in 0u64..30,
        seed in 0u64..u64::MAX,
    ) {
        let g = graph_from(n, density, seed);
        let k = AsId::new(pick % n as u32);
        let g2 = g.with_cost(k, Cost::new(new_cost));
        let mut engine = SyncEngine::new(&g, PlainBgpNode::from_graph(&g));
        engine.run_to_convergence();
        let report = engine.apply_event(TopologyEvent::CostChange(k, Cost::new(new_cost)));
        prop_assert!(report.converged);
        assert_routes_match(&engine, &g2)?;
    }

    /// A random link addition reconverges likewise.
    #[test]
    fn link_addition_reconverges(
        n in 6usize..16,
        density in 0.2f64..0.5,
        a in 0u32..1000,
        b in 0u32..1000,
        seed in 0u64..u64::MAX,
    ) {
        let g = graph_from(n, density, seed);
        let a = AsId::new(a % n as u32);
        let b = AsId::new(b % n as u32);
        prop_assume!(a != b && !g.has_link(a, b));
        let g2 = g.with_link(a, b).unwrap();
        let mut engine = SyncEngine::new(&g, PlainBgpNode::from_graph(&g));
        engine.run_to_convergence();
        let report = engine.apply_event(TopologyEvent::LinkUp(a, b));
        prop_assert!(report.converged);
        assert_routes_match(&engine, &g2)?;
    }
}

/// A strategy over arbitrary (possibly nonsensical) updates — the codec
/// must round-trip anything the types can express.
fn update_strategy() -> impl Strategy<Value = Update> {
    let cost = prop_oneof![
        4 => (0u64..u64::MAX - 1).prop_map(Cost::new),
        1 => Just(Cost::INFINITE),
    ];
    let path_entry = (0u32..10_000, cost.clone()).prop_map(|(raw, cost)| PathEntry {
        node: AsId::new(raw),
        cost,
    });
    let info = prop_oneof![
        1 => Just(RouteInfo::Withdrawn),
        4 => (
            proptest::collection::vec(path_entry, 1..8),
            cost.clone(),
            proptest::collection::vec(cost.clone(), 0..6),
        )
            .prop_map(|(path, path_cost, prices)| RouteInfo::Reachable {
                path: path.into(),
                path_cost,
                prices,
            }),
        1 => (
            any::<u64>(),
            proptest::collection::vec((any::<u16>(), cost.clone()), 0..6),
        )
            .prop_map(|(base_path_hash, entries)| RouteInfo::PriceDelta {
                base_path_hash,
                entries,
            }),
    ];
    let advertisement = (0u32..10_000, info).prop_map(|(dest, info)| RouteAdvertisement {
        destination: AsId::new(dest),
        info,
    });
    let sender_cost = (0u32..10_000, cost.clone()).prop_map(|(raw, c)| (AsId::new(raw), c));
    (
        0u32..10_000,
        proptest::collection::vec(sender_cost, 0..6),
        proptest::collection::vec(advertisement, 0..10),
    )
        .prop_map(|(from, sender_costs, advertisements)| Update {
            from: AsId::new(from),
            sender_costs,
            advertisements,
            id: 0,
            causes: Vec::new(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The wire codec round-trips every representable update, and the
    /// reported size is the encoded length.
    #[test]
    fn wire_codec_round_trips(update in update_strategy()) {
        let bytes = wire::encode_update(&update);
        prop_assert_eq!(wire::update_size(&update), bytes.len());
        prop_assert_eq!(wire::decode_update(&bytes).unwrap(), update);
    }

    /// The v2 varint/delta codec round-trips every representable update,
    /// and the scratch-buffer size measurement is the encoded length.
    #[test]
    fn wire_codec_v2_round_trips(update in update_strategy()) {
        let mut scratch = Vec::new();
        let bytes = wire::encode_update_v2(&update);
        prop_assert_eq!(wire::update_size_v2_with(&mut scratch, &update), bytes.len());
        prop_assert_eq!(wire::decode_update(&bytes).unwrap(), update);
    }

    /// Decoding never panics on arbitrary bytes (it may error). The one
    /// decoder dispatches on the version byte, so this fuzzes v1 headers,
    /// v2 headers, and garbage alike.
    #[test]
    fn wire_decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = wire::decode_update(&bytes);
    }

    /// Bit-flipped v2 messages decode to a typed error or a self-consistent
    /// update — never a panic (varint overlong/overflow paths included).
    #[test]
    fn wire_v2_survives_bit_flips(
        update in update_strategy(),
        flips in proptest::collection::vec((0usize..4096, 0u32..8), 1..8),
    ) {
        let mut bytes = wire::encode_update_v2(&update);
        for (pos, bit) in flips {
            let idx = pos % bytes.len();
            bytes[idx] ^= 1 << bit;
        }
        if let Ok(decoded) = wire::decode_update(&bytes) {
            prop_assert_eq!(
                wire::decode_update(&wire::encode_update_v2(&decoded)).unwrap(),
                decoded
            );
        }
    }
}

/// A strategy over arbitrary session frames (recovery layer).
fn frame_strategy() -> impl Strategy<Value = Frame> {
    let kind = prop_oneof![
        1 => Just(FrameKind::Open),
        1 => Just(FrameKind::Keepalive),
        3 => update_strategy().prop_map(FrameKind::Data),
    ];
    (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), kind).prop_map(
        |(epoch, seq, ack_epoch, ack, kind)| Frame {
            epoch,
            seq,
            ack_epoch,
            ack,
            kind,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The frame codec round-trips every representable session frame, and
    /// the reported size is the encoded length.
    #[test]
    fn frame_codec_round_trips(frame in frame_strategy()) {
        let bytes = wire::encode_frame(&frame);
        prop_assert_eq!(wire::frame_size(&frame), bytes.len());
        prop_assert_eq!(wire::decode_frame(&bytes).unwrap(), frame);
    }

    /// The v2 frame codec (varint counters, v2 payload) round-trips every
    /// representable session frame through the shared decoder.
    #[test]
    fn frame_codec_v2_round_trips(frame in frame_strategy()) {
        let mut scratch = Vec::new();
        let bytes = wire::encode_frame_v2(&frame);
        prop_assert_eq!(wire::frame_size_v2_with(&mut scratch, &frame), bytes.len());
        prop_assert_eq!(wire::decode_frame(&bytes).unwrap(), frame);
    }

    /// Frame decoding never panics on arbitrary bytes — a chaos-corrupted
    /// channel yields typed errors, not crashes.
    #[test]
    fn frame_decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = wire::decode_frame(&bytes);
    }

    /// Bit-flipped valid frames (both wire versions) decode to a typed
    /// error or to some valid frame — never a panic, never a misparse that
    /// round-trip-fails.
    #[test]
    fn frame_decoder_survives_bit_flips(
        frame in frame_strategy(),
        v2 in any::<bool>(),
        flips in proptest::collection::vec((0usize..4096, 0u32..8), 1..8),
    ) {
        let mut bytes = if v2 {
            wire::encode_frame_v2(&frame)
        } else {
            wire::encode_frame(&frame)
        };
        for (pos, bit) in flips {
            let idx = pos % bytes.len();
            bytes[idx] ^= 1 << bit;
        }
        if let Ok(decoded) = wire::decode_frame(&bytes) {
            // Whatever decoded must itself be a self-consistent frame.
            prop_assert_eq!(
                wire::decode_frame(&wire::encode_frame(&decoded)).unwrap(),
                decoded
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Byzantine robustness: a node fed arbitrary (possibly malformed)
    /// updates from its neighbors never panics — garbage advertisements are
    /// dropped by `ingest`'s structural validation. (The paper's Sect. 7
    /// notes the strategic agents themselves run the algorithm; at minimum
    /// a malformed message must not crash a correct node.)
    #[test]
    fn malformed_updates_never_panic(
        updates in proptest::collection::vec(update_strategy(), 1..6),
        seed in 0u64..u64::MAX,
    ) {
        let g = graph_from(8, 0.4, seed);
        let mut node = PlainBgpNode::new(&g, AsId::new(0));
        let _ = node.start();
        // Stamp each fuzzed update with a legitimate neighbor as sender so
        // it passes the neighbor check and exercises the validation paths.
        let neighbors: Vec<AsId> = g.neighbors(AsId::new(0)).to_vec();
        for (idx, mut update) in updates.into_iter().enumerate() {
            update.from = neighbors[idx % neighbors.len()];
            let _ = node.handle(&[std::sync::Arc::new(update)]);
        }
        // The node remains functional afterwards: a legitimate origin
        // advertisement still works.
        let origin = neighbors[0];
        let legit = Update {
            from: origin,
            sender_costs: Vec::new(),
            advertisements: vec![RouteAdvertisement {
                destination: origin,
                info: RouteInfo::Reachable {
                    path: vec![PathEntry { node: origin, cost: Cost::new(1) }].into(),
                    path_cost: Cost::ZERO,
                    prices: vec![],
                },
            }],
            id: 0,
            causes: Vec::new(),
        };
        let _ = node.handle(&[std::sync::Arc::new(legit)]);
        prop_assert!(node.selector().selected(origin).is_some());
    }
}

/// The asynchronous engine reaches the synchronous fixpoint (fewer cases —
/// each spawns one thread per AS).
#[test]
fn async_reaches_sync_fixpoint() {
    for seed in 0..8 {
        let g = graph_from(12, 0.3, seed * 1_234_567);
        let mut sync_engine = SyncEngine::new(&g, PlainBgpNode::from_graph(&g));
        sync_engine.run_to_convergence();
        let (async_nodes, _) = run_event_driven(&g, PlainBgpNode::from_graph(&g));
        for node in &async_nodes {
            let id = node.selector().id();
            for j in g.nodes() {
                assert_eq!(
                    node.selector().route(j),
                    sync_engine.node(id).selector().route(j),
                    "seed {seed}: {id} -> {j}"
                );
            }
        }
    }
}
