//! Golden-bytes tests for the wire format.
//!
//! The round-trip property tests prove encode/decode are inverses of each
//! other; these tests additionally pin the *byte layout itself*, so an
//! accidental format change (which would silently break interoperability
//! between differently-built nodes) fails a test instead of passing two
//! mutually-consistent-but-new codecs.

use bgpvcg_bgp::{
    wire, Frame, FrameKind, LocalEvent, PathEntry, RouteAdvertisement, RouteInfo, TopologyEvent,
    Update,
};
use bgpvcg_netgraph::{AsId, Cost};

fn sample() -> Update {
    Update {
        from: AsId::new(7),
        sender_costs: vec![(AsId::new(3), Cost::new(5))],
        advertisements: vec![
            RouteAdvertisement {
                destination: AsId::new(2),
                info: RouteInfo::Reachable {
                    path: vec![
                        PathEntry {
                            node: AsId::new(7),
                            cost: Cost::new(1),
                        },
                        PathEntry {
                            node: AsId::new(2),
                            cost: Cost::new(4),
                        },
                    ]
                    .into(),
                    path_cost: Cost::ZERO,
                    prices: vec![Cost::INFINITE],
                },
            },
            RouteAdvertisement {
                destination: AsId::new(9),
                info: RouteInfo::Withdrawn,
            },
        ],
        id: 0,
        causes: Vec::new(),
    }
}

#[test]
fn golden_byte_layout() {
    let bytes = wire::encode_update(&sample());
    let expected: Vec<u8> = vec![
        // magic "BV", version 1
        0x42, 0x56, 0x01, //
        // from = 7 (u32 LE)
        0x07, 0x00, 0x00, 0x00, //
        // sender_costs: len = 1, (node 3, cost 5)
        0x01, 0x00, //
        0x03, 0x00, 0x00, 0x00, //
        0x05, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
        // advertisement count = 2
        0x02, 0x00, //
        // ad 1: dest = 2, kind = reachable(1)
        0x02, 0x00, 0x00, 0x00, 0x01, //
        // path len = 2
        0x02, 0x00, //
        // entry (7, 1)
        0x07, 0x00, 0x00, 0x00, //
        0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
        // entry (2, 4)
        0x02, 0x00, 0x00, 0x00, //
        0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
        // path_cost = 0
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
        // prices len = 1, price = INFINITE (u64::MAX)
        0x01, 0x00, //
        0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, //
        // ad 2: dest = 9, kind = withdrawn(0)
        0x09, 0x00, 0x00, 0x00, 0x00,
    ];
    assert_eq!(
        bytes, expected,
        "wire layout changed — version-bump the format"
    );
}

#[test]
fn golden_bytes_decode_back() {
    let update = sample();
    let bytes = wire::encode_update(&update);
    assert_eq!(wire::decode_update(&bytes).unwrap(), update);
    assert_eq!(wire::update_size(&update), bytes.len());
}

/// The v1 byte vector above is frozen interoperability surface: a decoder
/// from any later release must keep accepting it verbatim, independent of
/// what the current encoder produces.
#[test]
fn v1_compat_corpus_still_decodes() {
    let corpus: Vec<u8> = vec![
        0x42, 0x56, 0x01, //
        0x07, 0x00, 0x00, 0x00, //
        0x01, 0x00, //
        0x03, 0x00, 0x00, 0x00, //
        0x05, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
        0x02, 0x00, //
        0x02, 0x00, 0x00, 0x00, 0x01, //
        0x02, 0x00, //
        0x07, 0x00, 0x00, 0x00, //
        0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
        0x02, 0x00, 0x00, 0x00, //
        0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
        0x01, 0x00, //
        0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, //
        0x09, 0x00, 0x00, 0x00, 0x00,
    ];
    assert_eq!(wire::decode_update(&corpus).unwrap(), sample());
}

/// A v2 sample exercising every advertisement kind: a full (reachable)
/// route, a withdrawal, and a price delta.
fn sample_v2() -> Update {
    let mut update = sample();
    update.advertisements.push(RouteAdvertisement {
        destination: AsId::new(4),
        info: RouteInfo::PriceDelta {
            base_path_hash: 0x0102_0304_0506_0708,
            entries: vec![(1, Cost::new(6)), (3, Cost::INFINITE)],
        },
    });
    update
}

/// Pins the v2 byte layout: varint header fields, delta-coded path AS ids,
/// `vcost` (∞ → 0, finite c → c+1), and the fixed 8-byte delta base hash.
#[test]
fn golden_byte_layout_v2() {
    let bytes = wire::encode_update_v2(&sample_v2());
    let expected: Vec<u8> = vec![
        // magic "BV", version 2
        0x42, 0x56, 0x02, //
        // from = 7 (uvarint)
        0x07, //
        // sender_costs: len = 1, (node 3, vcost(5) = 6)
        0x01, 0x03, 0x06, //
        // advertisement count = 3
        0x03, //
        // ad 1: dest = 2, kind = reachable(1), path len = 2
        0x02, 0x01, 0x02, //
        // entry (7, 1): absolute node 7, vcost(1) = 2
        0x07, 0x02, //
        // entry (2, 4): zigzag(2 - 7) = 9, vcost(4) = 5
        0x09, 0x05, //
        // path_cost: vcost(0) = 1
        0x01, //
        // prices: len = 1, vcost(∞) = 0
        0x01, 0x00, //
        // ad 2: dest = 9, kind = withdrawn(0)
        0x09, 0x00, //
        // ad 3: dest = 4, kind = delta(2)
        0x04, 0x02, //
        // base_path_hash = 0x0102030405060708 (fixed u64 LE)
        0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01, //
        // entries: len = 2, (index 1, vcost(6) = 7), (index 3, vcost(∞) = 0)
        0x02, 0x01, 0x07, 0x03, 0x00,
    ];
    assert_eq!(
        bytes, expected,
        "v2 wire layout changed — version-bump the format"
    );
}

#[test]
fn golden_v2_bytes_decode_back() {
    let update = sample_v2();
    let bytes = wire::encode_update_v2(&update);
    assert_eq!(wire::decode_update(&bytes).unwrap(), update);
    let mut scratch = Vec::new();
    assert_eq!(
        wire::update_size_v2_with(&mut scratch, &update),
        bytes.len()
    );
}

/// The v1 encoding of a price-delta advertisement is itself golden-pinned:
/// v1 peers gained the delta kind in the same release that introduced v2.
#[test]
fn golden_v1_price_delta_layout() {
    let update = Update {
        from: AsId::new(7),
        sender_costs: vec![],
        advertisements: vec![RouteAdvertisement {
            destination: AsId::new(4),
            info: RouteInfo::PriceDelta {
                base_path_hash: 0x0102_0304_0506_0708,
                entries: vec![(1, Cost::new(6)), (3, Cost::INFINITE)],
            },
        }],
        id: 0,
        causes: Vec::new(),
    };
    let expected: Vec<u8> = vec![
        // magic "BV", version 1, from = 7, no sender costs, count = 1
        0x42, 0x56, 0x01, //
        0x07, 0x00, 0x00, 0x00, //
        0x00, 0x00, //
        0x01, 0x00, //
        // dest = 4, kind = delta(2)
        0x04, 0x00, 0x00, 0x00, 0x02, //
        // base_path_hash (u64 LE)
        0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01, //
        // entries: len = 2 (u16)
        0x02, 0x00, //
        // (index 1, cost 6)
        0x01, 0x00, 0x06, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
        // (index 3, INFINITE)
        0x03, 0x00, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
    ];
    let bytes = wire::encode_update(&update);
    assert_eq!(bytes, expected, "v1 delta layout changed — version-bump");
    assert_eq!(wire::decode_update(&bytes).unwrap(), update);
    assert_eq!(wire::update_size(&update), bytes.len());
}

/// Corrupted v2 messages decode to typed errors, never panics or
/// misparses — including varint-specific failure modes v1 cannot have.
#[test]
fn v2_messages_reject_corruption() {
    let bytes = wire::encode_update_v2(&sample_v2());

    for cut in 0..bytes.len() {
        assert!(wire::decode_update(&bytes[..cut]).is_err(), "cut {cut}");
    }

    let mut trailing = bytes.clone();
    trailing.push(0);
    assert!(wire::decode_update(&trailing).is_err());

    // Rewrite the second path entry's zigzag delta (index 13, currently
    // zigzag(-5) = 9) to zigzag(-8) = 15: node₀ = 7, so the reconstructed
    // AS id would be -1 — out of range, a typed varint error.
    let mut bad_delta = bytes.clone();
    assert_eq!(bad_delta[13], 0x09);
    bad_delta[13] = 0x0F;
    assert_eq!(
        wire::decode_update(&bad_delta),
        Err(wire::DecodeError::BadVarint)
    );

    // An unknown future version is a header error, not a misparse.
    let mut bad_version = bytes;
    bad_version[2] = 3;
    assert_eq!(
        wire::decode_update(&bad_version),
        Err(wire::DecodeError::BadHeader)
    );
}

/// One golden vector per topology-event variant: the exact control-frame
/// bytes, plus the round trip back through `decode_topology_event`.
#[test]
fn golden_topology_event_frames() {
    let cases: Vec<(TopologyEvent, Vec<u8>)> = vec![
        (
            TopologyEvent::LinkDown(AsId::new(1), AsId::new(2)),
            vec![
                // magic "BE", version 1, tag 0
                0x42, 0x45, 0x01, 0x00, //
                // a = 1, b = 2 (u32 LE each)
                0x01, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00,
            ],
        ),
        (
            TopologyEvent::LinkUp(AsId::new(3), AsId::new(4)),
            vec![
                0x42, 0x45, 0x01, 0x01, //
                0x03, 0x00, 0x00, 0x00, 0x04, 0x00, 0x00, 0x00,
            ],
        ),
        (
            TopologyEvent::CostChange(AsId::new(5), Cost::new(9)),
            vec![
                0x42, 0x45, 0x01, 0x02, //
                0x05, 0x00, 0x00, 0x00, //
                0x09, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
            ],
        ),
    ];
    for (event, expected) in cases {
        let bytes = wire::encode_topology_event(&event);
        assert_eq!(bytes, expected, "layout changed for {event:?}");
        assert_eq!(wire::decode_topology_event(&bytes).unwrap(), event);
    }
}

/// One golden vector per local-event variant, with round trips.
#[test]
fn golden_local_event_frames() {
    let cases: Vec<(LocalEvent, Vec<u8>)> = vec![
        (
            LocalEvent::LinkDown(AsId::new(6)),
            vec![0x42, 0x45, 0x01, 0x03, 0x06, 0x00, 0x00, 0x00],
        ),
        (
            LocalEvent::LinkUp(AsId::new(7)),
            vec![0x42, 0x45, 0x01, 0x04, 0x07, 0x00, 0x00, 0x00],
        ),
        (
            LocalEvent::CostChange(Cost::INFINITE),
            vec![
                0x42, 0x45, 0x01, 0x05, //
                0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
            ],
        ),
    ];
    for (event, expected) in cases {
        let bytes = wire::encode_local_event(&event);
        assert_eq!(bytes, expected, "layout changed for {event:?}");
        assert_eq!(wire::decode_local_event(&bytes).unwrap(), event);
    }
}

/// Malformed control frames are rejected, never misparsed.
#[test]
fn event_frames_reject_corruption() {
    let bytes = wire::encode_topology_event(&TopologyEvent::LinkDown(AsId::new(1), AsId::new(2)));

    let mut bad_magic = bytes.clone();
    bad_magic[0] = b'X';
    assert!(wire::decode_topology_event(&bad_magic).is_err());

    let mut bad_tag = bytes.clone();
    bad_tag[3] = 9;
    assert!(wire::decode_topology_event(&bad_tag).is_err());

    for cut in 0..bytes.len() {
        assert!(
            wire::decode_topology_event(&bytes[..cut]).is_err(),
            "cut {cut}"
        );
    }

    let mut trailing = bytes.clone();
    trailing.push(0);
    assert!(wire::decode_topology_event(&trailing).is_err());

    // A local-event tag inside a topology decode (and vice versa) is a tag
    // error, not a misparse.
    let local = wire::encode_local_event(&LocalEvent::LinkUp(AsId::new(1)));
    assert!(wire::decode_topology_event(&local).is_err());
    assert!(wire::decode_local_event(&bytes).is_err());
}

/// One golden vector per node-liveness topology-event variant.
#[test]
fn golden_node_event_frames() {
    let cases: Vec<(TopologyEvent, Vec<u8>)> = vec![
        (
            TopologyEvent::NodeDown(AsId::new(8)),
            vec![
                // magic "BE", version 1, tag 6
                0x42, 0x45, 0x01, 0x06, //
                // node = 8 (u32 LE)
                0x08, 0x00, 0x00, 0x00,
            ],
        ),
        (
            TopologyEvent::NodeUp(AsId::new(9)),
            vec![0x42, 0x45, 0x01, 0x07, 0x09, 0x00, 0x00, 0x00],
        ),
    ];
    for (event, expected) in cases {
        let bytes = wire::encode_topology_event(&event);
        assert_eq!(bytes, expected, "layout changed for {event:?}");
        assert_eq!(wire::decode_topology_event(&bytes).unwrap(), event);
    }
}

/// Golden vectors for the session-frame header across all frame kinds: the
/// recovery layer's wire format is interoperability surface exactly like
/// the UPDATE layout.
#[test]
fn golden_session_frame_layout() {
    let open = Frame {
        epoch: 3,
        seq: 0,
        ack_epoch: 2,
        ack: 5,
        kind: FrameKind::Open,
    };
    let expected: Vec<u8> = vec![
        // magic "BF", version 1, kind 0 (Open)
        0x42, 0x46, 0x01, 0x00, //
        // epoch = 3 (u64 LE)
        0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
        // seq = 0
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
        // ack_epoch = 2
        0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
        // ack = 5
        0x05, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    ];
    let bytes = wire::encode_frame(&open);
    assert_eq!(bytes, expected, "frame layout changed — version-bump");
    assert_eq!(bytes.len(), wire::FRAME_HEADER_BYTES);
    assert_eq!(wire::decode_frame(&bytes).unwrap(), open);

    // Keepalive: same header, kind byte 2, no payload.
    let keepalive = Frame {
        kind: FrameKind::Keepalive,
        ..open.clone()
    };
    let ka_bytes = wire::encode_frame(&keepalive);
    assert_eq!(ka_bytes[3], 0x02);
    assert_eq!(&ka_bytes[4..], &bytes[4..]);
    assert_eq!(wire::decode_frame(&ka_bytes).unwrap(), keepalive);

    // Data: kind byte 1, the embedded UPDATE in its own (golden-pinned)
    // layout directly after the header.
    let data = Frame {
        kind: FrameKind::Data(sample()),
        ..open
    };
    let data_bytes = wire::encode_frame(&data);
    assert_eq!(data_bytes[3], 0x01);
    assert_eq!(
        &data_bytes[wire::FRAME_HEADER_BYTES..],
        wire::encode_update(&sample())
    );
    assert_eq!(wire::decode_frame(&data_bytes).unwrap(), data);
    assert_eq!(wire::frame_size(&data), data_bytes.len());
}

/// Corrupted session frames decode to typed errors, never panics or
/// misparses — the property the chaos harness's loss model relies on.
#[test]
fn session_frames_reject_corruption() {
    let frame = Frame {
        epoch: 1,
        seq: 1,
        ack_epoch: 1,
        ack: 1,
        kind: FrameKind::Data(sample()),
    };
    let bytes = wire::encode_frame(&frame);

    let mut bad_magic = bytes.clone();
    bad_magic[0] = b'X';
    assert!(wire::decode_frame(&bad_magic).is_err());

    let mut bad_version = bytes.clone();
    bad_version[2] = 0xFF;
    assert!(wire::decode_frame(&bad_version).is_err());

    let mut bad_kind = bytes.clone();
    bad_kind[3] = 9;
    assert!(matches!(
        wire::decode_frame(&bad_kind),
        Err(wire::DecodeError::BadFrameKind(9))
    ));

    for cut in 0..bytes.len() {
        assert!(wire::decode_frame(&bytes[..cut]).is_err(), "cut {cut}");
    }

    let mut trailing = wire::encode_frame(&Frame {
        epoch: 1,
        seq: 0,
        ack_epoch: 0,
        ack: 0,
        kind: FrameKind::Open,
    });
    trailing.push(0);
    assert!(wire::decode_frame(&trailing).is_err());

    // A corrupted embedded UPDATE surfaces the inner decode error.
    let mut bad_payload = bytes;
    bad_payload[wire::FRAME_HEADER_BYTES] = b'X'; // breaks the "BV" magic
    assert!(wire::decode_frame(&bad_payload).is_err());
}

/// Golden vectors for the v2 session-frame header: varint counters and a
/// v2-encoded payload after the kind byte.
#[test]
fn golden_v2_session_frame_layout() {
    let open = Frame {
        epoch: 3,
        seq: 0,
        ack_epoch: 300,
        ack: 5,
        kind: FrameKind::Open,
    };
    let expected: Vec<u8> = vec![
        // magic "BF", version 2, kind 0 (Open)
        0x42, 0x46, 0x02, 0x00, //
        // epoch = 3, seq = 0 (uvarint)
        0x03, 0x00, //
        // ack_epoch = 300 (uvarint: 0xAC 0x02)
        0xAC, 0x02, //
        // ack = 5
        0x05,
    ];
    let bytes = wire::encode_frame_v2(&open);
    assert_eq!(bytes, expected, "v2 frame layout changed — version-bump");
    assert_eq!(wire::decode_frame(&bytes).unwrap(), open);
    let mut scratch = Vec::new();
    assert_eq!(wire::frame_size_v2_with(&mut scratch, &open), bytes.len());

    // Data: the v2-encoded UPDATE rides directly after the header.
    let data = Frame {
        kind: FrameKind::Data(sample_v2()),
        ..open
    };
    let data_bytes = wire::encode_frame_v2(&data);
    assert_eq!(data_bytes[3], 0x01);
    assert_eq!(&data_bytes[9..], wire::encode_update_v2(&sample_v2()));
    assert_eq!(wire::decode_frame(&data_bytes).unwrap(), data);
}

/// Corrupted v2 session frames decode to typed errors — the chaos
/// harness's loss model depends on this exactly as for v1.
#[test]
fn v2_session_frames_reject_corruption() {
    let frame = Frame {
        epoch: 1,
        seq: 1,
        ack_epoch: 1,
        ack: 1,
        kind: FrameKind::Data(sample_v2()),
    };
    let bytes = wire::encode_frame_v2(&frame);

    let mut bad_magic = bytes.clone();
    bad_magic[0] = b'X';
    assert!(wire::decode_frame(&bad_magic).is_err());

    let mut bad_version = bytes.clone();
    bad_version[2] = 3;
    assert_eq!(
        wire::decode_frame(&bad_version),
        Err(wire::DecodeError::BadHeader)
    );

    let mut bad_kind = bytes.clone();
    bad_kind[3] = 9;
    assert!(matches!(
        wire::decode_frame(&bad_kind),
        Err(wire::DecodeError::BadFrameKind(9))
    ));

    for cut in 0..bytes.len() {
        assert!(wire::decode_frame(&bytes[..cut]).is_err(), "cut {cut}");
    }

    // An overlong (non-canonical) varint counter is a typed varint error.
    let overlong: Vec<u8> = vec![
        0x42, 0x46, 0x02, 0x00, // header, Open
        0x80, 0x00, // epoch = 0 encoded in two bytes: overlong
        0x00, 0x00, 0x00, // seq, ack_epoch, ack
    ];
    assert_eq!(
        wire::decode_frame(&overlong),
        Err(wire::DecodeError::BadVarint)
    );

    // A corrupted embedded v2 UPDATE surfaces the inner decode error.
    let mut bad_payload = bytes;
    bad_payload[9] = b'X'; // breaks the embedded "BV" magic
    assert!(wire::decode_frame(&bad_payload).is_err());
}

#[test]
fn header_constant_matches_layout() {
    // magic(2) + version(1) + from(4) + sender_cost_len(2) + count(2).
    let empty = Update {
        from: AsId::new(0),
        sender_costs: vec![],
        advertisements: vec![],
        id: 0,
        causes: Vec::new(),
    };
    assert_eq!(
        wire::encode_update(&empty).len(),
        wire::MESSAGE_HEADER_BYTES
    );
}
