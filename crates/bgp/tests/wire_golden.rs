//! Golden-bytes tests for the wire format.
//!
//! The round-trip property tests prove encode/decode are inverses of each
//! other; these tests additionally pin the *byte layout itself*, so an
//! accidental format change (which would silently break interoperability
//! between differently-built nodes) fails a test instead of passing two
//! mutually-consistent-but-new codecs.

use bgpvcg_bgp::{wire, PathEntry, RouteAdvertisement, RouteInfo, Update};
use bgpvcg_netgraph::{AsId, Cost};

fn sample() -> Update {
    Update {
        from: AsId::new(7),
        sender_costs: vec![(AsId::new(3), Cost::new(5))],
        advertisements: vec![
            RouteAdvertisement {
                destination: AsId::new(2),
                info: RouteInfo::Reachable {
                    path: vec![
                        PathEntry {
                            node: AsId::new(7),
                            cost: Cost::new(1),
                        },
                        PathEntry {
                            node: AsId::new(2),
                            cost: Cost::new(4),
                        },
                    ],
                    path_cost: Cost::ZERO,
                    prices: vec![Cost::INFINITE],
                },
            },
            RouteAdvertisement {
                destination: AsId::new(9),
                info: RouteInfo::Withdrawn,
            },
        ],
    }
}

#[test]
fn golden_byte_layout() {
    let bytes = wire::encode_update(&sample());
    let expected: Vec<u8> = vec![
        // magic "BV", version 1
        0x42, 0x56, 0x01, //
        // from = 7 (u32 LE)
        0x07, 0x00, 0x00, 0x00, //
        // sender_costs: len = 1, (node 3, cost 5)
        0x01, 0x00, //
        0x03, 0x00, 0x00, 0x00, //
        0x05, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
        // advertisement count = 2
        0x02, 0x00, //
        // ad 1: dest = 2, kind = reachable(1)
        0x02, 0x00, 0x00, 0x00, 0x01, //
        // path len = 2
        0x02, 0x00, //
        // entry (7, 1)
        0x07, 0x00, 0x00, 0x00, //
        0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
        // entry (2, 4)
        0x02, 0x00, 0x00, 0x00, //
        0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
        // path_cost = 0
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
        // prices len = 1, price = INFINITE (u64::MAX)
        0x01, 0x00, //
        0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, //
        // ad 2: dest = 9, kind = withdrawn(0)
        0x09, 0x00, 0x00, 0x00, 0x00,
    ];
    assert_eq!(bytes, expected, "wire layout changed — version-bump the format");
}

#[test]
fn golden_bytes_decode_back() {
    let update = sample();
    let bytes = wire::encode_update(&update);
    assert_eq!(wire::decode_update(&bytes).unwrap(), update);
    assert_eq!(wire::update_size(&update), bytes.len());
}

#[test]
fn header_constant_matches_layout() {
    // magic(2) + version(1) + from(4) + sender_cost_len(2) + count(2).
    let empty = Update {
        from: AsId::new(0),
        sender_costs: vec![],
        advertisements: vec![],
    };
    assert_eq!(
        wire::encode_update(&empty).len(),
        wire::MESSAGE_HEADER_BYTES
    );
}
