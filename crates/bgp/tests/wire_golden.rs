//! Golden-bytes tests for the wire format.
//!
//! The round-trip property tests prove encode/decode are inverses of each
//! other; these tests additionally pin the *byte layout itself*, so an
//! accidental format change (which would silently break interoperability
//! between differently-built nodes) fails a test instead of passing two
//! mutually-consistent-but-new codecs.

use bgpvcg_bgp::{
    wire, LocalEvent, PathEntry, RouteAdvertisement, RouteInfo, TopologyEvent, Update,
};
use bgpvcg_netgraph::{AsId, Cost};

fn sample() -> Update {
    Update {
        from: AsId::new(7),
        sender_costs: vec![(AsId::new(3), Cost::new(5))],
        advertisements: vec![
            RouteAdvertisement {
                destination: AsId::new(2),
                info: RouteInfo::Reachable {
                    path: vec![
                        PathEntry {
                            node: AsId::new(7),
                            cost: Cost::new(1),
                        },
                        PathEntry {
                            node: AsId::new(2),
                            cost: Cost::new(4),
                        },
                    ],
                    path_cost: Cost::ZERO,
                    prices: vec![Cost::INFINITE],
                },
            },
            RouteAdvertisement {
                destination: AsId::new(9),
                info: RouteInfo::Withdrawn,
            },
        ],
    }
}

#[test]
fn golden_byte_layout() {
    let bytes = wire::encode_update(&sample());
    let expected: Vec<u8> = vec![
        // magic "BV", version 1
        0x42, 0x56, 0x01, //
        // from = 7 (u32 LE)
        0x07, 0x00, 0x00, 0x00, //
        // sender_costs: len = 1, (node 3, cost 5)
        0x01, 0x00, //
        0x03, 0x00, 0x00, 0x00, //
        0x05, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
        // advertisement count = 2
        0x02, 0x00, //
        // ad 1: dest = 2, kind = reachable(1)
        0x02, 0x00, 0x00, 0x00, 0x01, //
        // path len = 2
        0x02, 0x00, //
        // entry (7, 1)
        0x07, 0x00, 0x00, 0x00, //
        0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
        // entry (2, 4)
        0x02, 0x00, 0x00, 0x00, //
        0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
        // path_cost = 0
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, //
        // prices len = 1, price = INFINITE (u64::MAX)
        0x01, 0x00, //
        0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, //
        // ad 2: dest = 9, kind = withdrawn(0)
        0x09, 0x00, 0x00, 0x00, 0x00,
    ];
    assert_eq!(
        bytes, expected,
        "wire layout changed — version-bump the format"
    );
}

#[test]
fn golden_bytes_decode_back() {
    let update = sample();
    let bytes = wire::encode_update(&update);
    assert_eq!(wire::decode_update(&bytes).unwrap(), update);
    assert_eq!(wire::update_size(&update), bytes.len());
}

/// One golden vector per topology-event variant: the exact control-frame
/// bytes, plus the round trip back through `decode_topology_event`.
#[test]
fn golden_topology_event_frames() {
    let cases: Vec<(TopologyEvent, Vec<u8>)> = vec![
        (
            TopologyEvent::LinkDown(AsId::new(1), AsId::new(2)),
            vec![
                // magic "BE", version 1, tag 0
                0x42, 0x45, 0x01, 0x00, //
                // a = 1, b = 2 (u32 LE each)
                0x01, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00,
            ],
        ),
        (
            TopologyEvent::LinkUp(AsId::new(3), AsId::new(4)),
            vec![
                0x42, 0x45, 0x01, 0x01, //
                0x03, 0x00, 0x00, 0x00, 0x04, 0x00, 0x00, 0x00,
            ],
        ),
        (
            TopologyEvent::CostChange(AsId::new(5), Cost::new(9)),
            vec![
                0x42, 0x45, 0x01, 0x02, //
                0x05, 0x00, 0x00, 0x00, //
                0x09, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
            ],
        ),
    ];
    for (event, expected) in cases {
        let bytes = wire::encode_topology_event(&event);
        assert_eq!(bytes, expected, "layout changed for {event:?}");
        assert_eq!(wire::decode_topology_event(&bytes).unwrap(), event);
    }
}

/// One golden vector per local-event variant, with round trips.
#[test]
fn golden_local_event_frames() {
    let cases: Vec<(LocalEvent, Vec<u8>)> = vec![
        (
            LocalEvent::LinkDown(AsId::new(6)),
            vec![0x42, 0x45, 0x01, 0x03, 0x06, 0x00, 0x00, 0x00],
        ),
        (
            LocalEvent::LinkUp(AsId::new(7)),
            vec![0x42, 0x45, 0x01, 0x04, 0x07, 0x00, 0x00, 0x00],
        ),
        (
            LocalEvent::CostChange(Cost::INFINITE),
            vec![
                0x42, 0x45, 0x01, 0x05, //
                0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
            ],
        ),
    ];
    for (event, expected) in cases {
        let bytes = wire::encode_local_event(&event);
        assert_eq!(bytes, expected, "layout changed for {event:?}");
        assert_eq!(wire::decode_local_event(&bytes).unwrap(), event);
    }
}

/// Malformed control frames are rejected, never misparsed.
#[test]
fn event_frames_reject_corruption() {
    let bytes = wire::encode_topology_event(&TopologyEvent::LinkDown(AsId::new(1), AsId::new(2)));

    let mut bad_magic = bytes.clone();
    bad_magic[0] = b'X';
    assert!(wire::decode_topology_event(&bad_magic).is_err());

    let mut bad_tag = bytes.clone();
    bad_tag[3] = 9;
    assert!(wire::decode_topology_event(&bad_tag).is_err());

    for cut in 0..bytes.len() {
        assert!(
            wire::decode_topology_event(&bytes[..cut]).is_err(),
            "cut {cut}"
        );
    }

    let mut trailing = bytes.clone();
    trailing.push(0);
    assert!(wire::decode_topology_event(&trailing).is_err());

    // A local-event tag inside a topology decode (and vice versa) is a tag
    // error, not a misparse.
    let local = wire::encode_local_event(&LocalEvent::LinkUp(AsId::new(1)));
    assert!(wire::decode_topology_event(&local).is_err());
    assert!(wire::decode_local_event(&bytes).is_err());
}

#[test]
fn header_constant_matches_layout() {
    // magic(2) + version(1) + from(4) + sender_cost_len(2) + count(2).
    let empty = Update {
        from: AsId::new(0),
        sender_costs: vec![],
        advertisements: vec![],
    };
    assert_eq!(
        wire::encode_update(&empty).len(),
        wire::MESSAGE_HEADER_BYTES
    );
}
