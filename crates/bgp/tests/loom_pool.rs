//! Loom model-check of the worker-pool shard/merge protocol.
//!
//! `parallel_handle` (see `engine/sync.rs`) partitions a stage's receiving
//! nodes into contiguous shards, has each worker send `(index, emission)`
//! pairs over one shared crossbeam channel, and — after the scope joins
//! every worker — drains the collector and sorts by node index so the
//! caller's broadcast sequence replays the serial order exactly. The
//! serial/parallel parity suite checks that end-to-end on real engines;
//! these tests check the *protocol itself* under the vendored loom model
//! checker, which executes every legal interleaving of the workers'
//! channel operations:
//!
//! 1. the sorted merge is byte-identical to the serial order under every
//!    schedule (the determinism claim),
//! 2. exploration is genuinely exhaustive — the observed arrival orders
//!    are exactly the `C(a + b, a)` binomial interleavings of the two
//!    shards' FIFO send sequences, and
//! 3. without the sort the drain order is schedule-dependent, i.e. the
//!    index sort is the load-bearing step (a negative control).
//!
//! The model channel in `vendor/loom` mirrors the `vendor/crossbeam`
//! subset the engine uses (`unbounded()`, cloned senders, `try_recv`
//! drain), so the code shape below matches `parallel_handle` line for
//! line, minus the `split_at_mut` node sharding that loom cannot model
//! (worker inputs here are the already-carved shard runs).

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

/// A merge sequence: `(node index, emission)` pairs in arrival order.
type Pairs = Vec<(u32, u32)>;

/// Stand-in for `ProtocolNode::handle`: a pure function of the node index,
/// so any cross-schedule divergence can only come from the pool protocol.
fn emission(idx: u32) -> u32 {
    idx * 10 + 1
}

/// One model execution of the pool protocol over `shards`: every worker
/// sends its shard's `(index, emission)` pairs in shard order; the caller
/// joins all workers, drains the collector, and sorts by index. Returns
/// `(raw_arrival_order, sorted_merge)`.
fn pooled_merge(shards: &[Vec<u32>]) -> (Pairs, Pairs) {
    let (sender, collector) = loom::channel::unbounded();
    let handles: Vec<_> = shards
        .iter()
        .cloned()
        .map(|run| {
            let tx = sender.clone();
            loom::thread::spawn(move || {
                for idx in run {
                    tx.send((idx, emission(idx))).expect("collector alive");
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("worker completes");
    }
    drop(sender);
    let mut raw = Vec::new();
    while let Ok(pair) = collector.try_recv() {
        raw.push(pair);
    }
    let mut merged = raw.clone();
    merged.sort_unstable_by_key(|&(idx, _)| idx);
    (raw, merged)
}

/// The serial reference: shard runs concatenated in node-index order.
fn serial_order(shards: &[Vec<u32>]) -> Pairs {
    shards
        .iter()
        .flatten()
        .map(|&idx| (idx, emission(idx)))
        .collect()
}

/// All merges of `a` and `b` that preserve each side's internal order —
/// the `C(|a| + |b|, |a|)` binomial interleavings.
fn interleavings(a: &[(u32, u32)], b: &[(u32, u32)]) -> BTreeSet<Pairs> {
    let mut out = BTreeSet::new();
    if a.is_empty() || b.is_empty() {
        let mut whole = a.to_vec();
        whole.extend_from_slice(b);
        out.insert(whole);
        return out;
    }
    for rest in interleavings(&a[1..], b) {
        let mut v = vec![a[0]];
        v.extend(rest);
        out.insert(v);
    }
    for rest in interleavings(a, &b[1..]) {
        let mut v = vec![b[0]];
        v.extend(rest);
        out.insert(v);
    }
    out
}

#[test]
fn merged_emissions_match_serial_order_under_every_schedule() {
    let shards = vec![vec![0u32, 1], vec![2, 3]];
    let expected = serial_order(&shards);
    loom::model(move || {
        let (_, merged) = pooled_merge(&shards);
        assert_eq!(merged, expected, "shard/merge protocol lost determinism");
    });
}

#[test]
fn uneven_three_worker_shards_still_merge_deterministically() {
    // Mirrors `div_ceil` chunking of 4 receivers over 3 workers: shard
    // sizes 2/1/1, exactly what `receiving.chunks(chunk)` carves.
    let shards = vec![vec![0u32, 1], vec![2], vec![3]];
    let expected = serial_order(&shards);
    loom::model(move || {
        let (_, merged) = pooled_merge(&shards);
        assert_eq!(merged, expected, "shard/merge protocol lost determinism");
    });
}

#[test]
fn arrival_orders_cover_the_full_binomial_interleaving_space() {
    let shards = vec![vec![0u32, 1], vec![2, 3]];
    let expected = interleavings(&serial_order(&shards[..1]), &serial_order(&shards[1..]));
    // Two FIFO sequences of 2 sends interleave in C(4, 2) = 6 ways.
    assert_eq!(expected.len(), 6);

    let seen: Arc<Mutex<BTreeSet<Pairs>>> = Arc::new(Mutex::new(BTreeSet::new()));
    let observed = Arc::clone(&seen);
    let schedules = loom::explore(move || {
        let (raw, _) = pooled_merge(&shards);
        observed.lock().expect("arrival-order set").insert(raw);
    });
    assert!(
        schedules >= expected.len(),
        "fewer schedules than behaviors"
    );

    let seen = seen.lock().expect("arrival-order set");
    assert_eq!(
        *seen, expected,
        "model exploration missed an interleaving (or the channel broke \
         per-sender FIFO order)"
    );
}

#[test]
fn unsorted_merge_is_schedule_dependent_which_the_sort_erases() {
    let shards = vec![vec![0u32, 1], vec![2, 3]];
    let expected = serial_order(&shards);
    let raw_matches: Arc<Mutex<BTreeSet<bool>>> = Arc::new(Mutex::new(BTreeSet::new()));
    let observed = Arc::clone(&raw_matches);
    loom::model(move || {
        let (raw, merged) = pooled_merge(&shards);
        assert_eq!(merged, expected);
        observed
            .lock()
            .expect("raw-match set")
            .insert(raw == expected);
    });
    // The raw drain order agrees with the serial order on some schedules
    // and disagrees on others — so the index sort, not scheduling luck, is
    // what makes the merge deterministic.
    assert_eq!(
        *raw_matches.lock().expect("raw-match set"),
        BTreeSet::from([false, true])
    );
}
