//! Serial/parallel parity: the worker-pool engine must be bit-for-bit
//! identical to the serial reference path.
//!
//! The parallel stage executor (see `engine/sync.rs` and
//! `docs/PERFORMANCE.md`) partitions a stage's receiving nodes across
//! scoped threads and merges emitted updates back in node-index order, so
//! for ANY worker count the engine must produce the same `RunReport`, the
//! same routing fixpoint, the same ordered telemetry event stream, and the
//! same counter values as a single-threaded run. These properties exercise
//! that claim across random biconnected topologies and workers 1–8, both
//! for plain convergence and for reconvergence after a topology event.

use bgpvcg_bgp::engine::SyncEngine;
use bgpvcg_bgp::{PlainBgpNode, TopologyEvent};
use bgpvcg_netgraph::generators::{erdos_renyi, make_biconnected, random_costs};
use bgpvcg_netgraph::AsGraph;
use bgpvcg_telemetry::{CausalDag, RingBufferSink, Telemetry};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A random biconnected graph: Erdős–Rényi base, patched by
/// [`make_biconnected`] so every node survives any single failure — the
/// same precondition the pricing mechanism needs.
fn biconnected_graph(n: usize, density: f64, seed: u64) -> AsGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let costs = random_costs(n, 0, 9, &mut rng);
    let g = erdos_renyi(costs, density, &mut rng);
    make_biconnected(g, &mut rng)
}

/// Runs the graph to convergence with the given worker count, capturing
/// the full telemetry stream.
fn traced_run(
    g: &AsGraph,
    workers: usize,
    event: Option<TopologyEvent>,
) -> (
    SyncEngine<PlainBgpNode>,
    bgpvcg_bgp::engine::RunReport,
    Arc<RingBufferSink>,
    Telemetry,
) {
    let (telemetry, ring) = Telemetry::ring(1 << 16);
    let mut engine = SyncEngine::new(g, PlainBgpNode::from_graph(g)).with_parallelism(workers);
    engine.attach_telemetry(&telemetry);
    let mut report = engine.run_to_convergence();
    if let Some(event) = event {
        report = engine.apply_event(event);
    }
    (engine, report, ring, telemetry)
}

/// Asserts a parallel run is indistinguishable from the serial reference:
/// same report, same per-node fixpoint, same ordered event stream, same
/// counters and gauges. Histograms are deliberately excluded — the
/// per-stage wall-clock histogram measures real time and legitimately
/// differs between runs.
fn assert_parity(
    g: &AsGraph,
    workers: usize,
    event: Option<TopologyEvent>,
) -> Result<(), TestCaseError> {
    let (serial_engine, serial_report, serial_ring, serial_tel) = traced_run(g, 1, event);
    let (par_engine, par_report, par_ring, par_tel) = traced_run(g, workers, event);
    prop_assert_eq!(&serial_report, &par_report, "report, workers={}", workers);
    for i in g.nodes() {
        for j in g.nodes() {
            prop_assert_eq!(
                serial_engine.node(i).selector().route(j),
                par_engine.node(i).selector().route(j),
                "route {} -> {}, workers={}",
                i,
                j,
                workers
            );
        }
    }
    prop_assert_eq!(
        serial_ring.events(),
        par_ring.events(),
        "ordered telemetry event stream, workers={}",
        workers
    );
    // The causal provenance DAGs rebuilt from the two streams must be
    // bit-identical too — parallel merge preserves the serial update-id
    // assignment, so cause/effect edges cannot drift between executions.
    let serial_dags = CausalDag::from_events(&serial_ring.events());
    let par_dags = CausalDag::from_events(&par_ring.events());
    prop_assert_eq!(&serial_dags, &par_dags, "causal DAGs, workers={}", workers);
    if event.is_none() {
        // A fresh convergence run must also be a *valid* DAG: acyclic,
        // origin-rooted, depth bounded by the reported stages. (After a
        // topology event the reconvergence segment legitimately cites
        // causes from the previous segment, so validity is only asserted
        // for the fresh run.)
        for dag in &serial_dags {
            if let Err(err) = dag.validate() {
                return Err(TestCaseError::fail(format!("workers={workers}: {err}")));
            }
            if let Err(err) = dag.validate_origin_roots() {
                return Err(TestCaseError::fail(format!("workers={workers}: {err}")));
            }
        }
    }
    let serial_snap = serial_tel.snapshot();
    let par_snap = par_tel.snapshot();
    prop_assert_eq!(
        &serial_snap.counters,
        &par_snap.counters,
        "counters, workers={}",
        workers
    );
    prop_assert_eq!(
        &serial_snap.gauges,
        &par_snap.gauges,
        "gauges, workers={}",
        workers
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Convergence parity: identical reports, fixpoints, and telemetry for
    /// every worker count 1–8.
    #[test]
    fn parallel_convergence_is_bit_identical(
        n in 6usize..32,
        density in 0.15f64..0.6,
        seed in 0u64..u64::MAX,
        workers in 1usize..9,
    ) {
        let g = biconnected_graph(n, density, seed);
        assert_parity(&g, workers, None)?;
    }

    /// Event parity: a link failure applied after convergence reconverges
    /// identically under serial and parallel execution.
    #[test]
    fn parallel_link_down_is_bit_identical(
        n in 6usize..24,
        density in 0.2f64..0.6,
        seed in 0u64..u64::MAX,
        workers in 2usize..9,
        link_pick in 0usize..1 << 16,
    ) {
        let g = biconnected_graph(n, density, seed);
        let links = g.links();
        let link = links[link_pick % links.len()];
        let event = TopologyEvent::LinkDown(link.a(), link.b());
        assert_parity(&g, workers, Some(event))?;
    }
}
