//! The parser-backed analyses behind `cargo xtask analyze`:
//! panic-reachability over the workspace call graph, and the determinism
//! lints guarding the bit-identical-fixpoint contract.
//!
//! See `docs/STATIC_ANALYSIS.md` for the full catalogue and the policy on
//! `// lint:allow(reason)` annotations.

use crate::callgraph::CallGraph;
use crate::parser::ParsedFile;
use crate::rules::{SourceFile, Violation};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// The engine hot-path entry points the panic-reachability walk starts
/// from, with the file each is expected to live in. A missing entry point
/// (renamed, deleted) is itself a violation: the analysis must never
/// silently go vacuous.
pub const ENTRY_POINTS: &[(&str, &str)] = &[
    // The synchronous stage loop and its worker-pool shard/merge path.
    ("SyncEngine::run_stage", "crates/bgp/src/engine/sync.rs"),
    ("parallel_handle", "crates/bgp/src/engine/sync.rs"),
    // The chaos engine's session layer (frames, acks, hold timers).
    ("ChaosEngine::step", "crates/bgp/src/chaos.rs"),
    ("ChaosEngine::run_to_stable", "crates/bgp/src/chaos.rs"),
    // The public parallel protocol runner.
    ("run_sync_parallel", "crates/core/src/protocol.rs"),
    // Node recomputation: route selection and the pricing relaxation.
    ("PlainBgpNode::handle", "crates/bgp/src/node.rs"),
    ("PricingBgpNode::handle", "crates/core/src/pricing_node.rs"),
    (
        "PricingBgpNode::refresh_prices",
        "crates/core/src/pricing_node.rs",
    ),
];

/// Panic-family tokens that make a function a panic source, with the hint
/// shown on report. Two deliberate absences: `debug_assert*` compiles out
/// of release builds and forms the `invariant-checks` seam, and the
/// `assert!` family encodes *intentional* precondition contracts
/// (documented under `# Panics`) — this analysis hunts the unintentional
/// panic paths.
const PANIC_SITE_TOKENS: &[(&str, &str)] = &[
    (".unwrap()", "use a typed error instead of unwrap()"),
    (".expect(", "use a typed error instead of expect()"),
    ("panic!(", "hot paths must return errors, not panic"),
    (
        "unreachable!(",
        "encode the impossibility in the type system",
    ),
    ("todo!(", "no unfinished code on hot paths"),
    ("unimplemented!(", "no unfinished code on hot paths"),
];

/// One potential panic site inside a function body.
#[derive(Debug)]
struct PanicSite {
    /// 0-based line index.
    line: usize,
    /// What was matched (token or indexing expression).
    what: String,
    /// The hint shown in the report.
    hint: &'static str,
}

/// Marks a token occurrence that is NOT preceded by an identifier char —
/// so `assert!(` does not match inside `debug_assert!(`. Tokens that start
/// with a non-identifier char (`.unwrap()`) are their own boundary: the
/// receiver before the `.` is expected.
fn token_at_boundary(line: &str, token: &str) -> bool {
    let ident_start = token
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
    if !ident_start {
        return line.contains(token);
    }
    let mut from = 0usize;
    while let Some(pos) = line[from..].find(token) {
        let at = from + pos;
        let boundary = at == 0
            || !line.as_bytes()[at - 1].is_ascii_alphanumeric() && line.as_bytes()[at - 1] != b'_';
        if boundary {
            return true;
        }
        from = at + token.len();
    }
    false
}

/// Collects the potential panic sites on one code-only line.
fn line_panic_sites(line: &str, idx: usize, out: &mut Vec<PanicSite>) {
    for (token, hint) in PANIC_SITE_TOKENS {
        if token_at_boundary(line, token) {
            out.push(PanicSite {
                line: idx,
                what: format!("`{}`", token.trim_end_matches('(')),
                hint,
            });
        }
    }
    for expr in unguarded_indexing(line) {
        out.push(PanicSite {
            line: idx,
            what: format!("indexing `{expr}`"),
            hint: "out-of-range indexing panics — guard with get()/len() or annotate the bounds argument",
        });
    }
}

/// Extracts unguarded indexing expressions `recv[index]` from one code-only
/// line: a `[` directly preceded by an identifier char, `]`, or `)` opens
/// an index whose content is not recognized as guarded. Type positions
/// (`[u8; 4]`), array literals (`= [`), and macros (`vec![`) never match
/// because their `[` follows a non-identifier character.
///
/// Guarded contents:
/// - a bare integer literal (`buf[0]`);
/// - anything containing `..` — slice ranges are derived from `len()` in
///   this codebase (`path[1..path.len() - 1]`), as are `gen_range(0..len)`
///   draws;
/// - anything ending in `.index()` — the typed `AsId → usize` projection,
///   whose bound is the graph-size construction invariant (checked by
///   `debug_assert` under `--features invariant-checks`).
fn unguarded_indexing(line: &str) -> Vec<String> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] != b'[' || i == 0 {
            i += 1;
            continue;
        }
        let prev = bytes[i - 1];
        let indexes = prev.is_ascii_alphanumeric() || prev == b'_' || prev == b']' || prev == b')';
        if !indexes {
            i += 1;
            continue;
        }
        // Find the matching `]` (same line; a multi-line index is treated
        // as unguarded because its content cannot be inspected here).
        let mut depth = 0i32;
        let mut close = None;
        for (j, &b) in bytes.iter().enumerate().skip(i) {
            match b {
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(j);
                        break;
                    }
                }
                _ => {}
            }
        }
        let (content, next) = match close {
            Some(j) => (&line[i + 1..j], j + 1),
            None => (&line[i + 1..], bytes.len()),
        };
        let t = content.trim();
        let literal = !t.is_empty() && t.chars().all(|c| c.is_ascii_digit() || c == '_');
        let ranged = t.contains("..");
        let typed_projection = t.ends_with(".index()");
        if !literal && !ranged && !typed_projection {
            // Reconstruct a short receiver hint for the report.
            let recv_start = line[..i]
                .rfind(|c: char| !(c.is_alphanumeric() || c == '_' || c == '.'))
                .map(|p| p + 1)
                .unwrap_or(0);
            let recv = &line[recv_start..i];
            out.push(format!("{recv}[{t}]"));
        }
        i = next;
    }
    out
}

/// The panic-reachability analysis: walk the call graph from
/// [`ENTRY_POINTS`] and report every unallowlisted potential panic site in
/// any reached function, with the call chain that reaches it.
pub fn check_panic_reachability(files: &[SourceFile], graph: &CallGraph, out: &mut Vec<Violation>) {
    let mut entries = Vec::new();
    for (spec, expected_file) in ENTRY_POINTS {
        let nodes = graph.entry_nodes(spec);
        if nodes.is_empty() {
            out.push(Violation {
                rule: "panic-reachability",
                file: PathBuf::from(expected_file),
                line: 1,
                message: format!(
                    "entry point `{spec}` not found — the analysis would go vacuous; update \
                     analysis::ENTRY_POINTS if the hot path moved"
                ),
            });
        }
        entries.extend(nodes);
    }
    let reached = graph.reach(&entries);
    for &node_idx in reached.keys() {
        let node = &graph.nodes[node_idx];
        let file = &files[node.file];
        let mut sites = Vec::new();
        for line_idx in node.item.body_start..=node.item.body_end {
            let Some(line) = file.lexed.code_lines.get(line_idx) else {
                continue;
            };
            if file
                .lexed
                .test_lines
                .get(line_idx)
                .copied()
                .unwrap_or(false)
            {
                continue;
            }
            line_panic_sites(line, line_idx, &mut sites);
        }
        for site in sites {
            if crate::rules::allowed(&file.lexed.allows, site.line) {
                continue;
            }
            out.push(Violation {
                rule: "panic-reachability",
                file: node.rel_path.clone(),
                line: site.line + 1,
                message: format!(
                    "{} reachable from engine hot path via {}: {}",
                    site.what,
                    graph.chain(&reached, node_idx),
                    site.hint
                ),
            });
        }
    }
}

/// The one file allowed to read wall clocks: the injectable-clock seam.
pub const CLOCK_SEAM: &str = "crates/telemetry/src/clock.rs";

/// Tokens that smuggle nondeterministic input into a run, with hints.
const NONDET_TOKENS: &[(&str, &str)] = &[
    (
        "Instant::now",
        "wall-clock reads are nondeterministic — route them through the telemetry Clock seam",
    ),
    (
        "SystemTime",
        "wall-clock reads are nondeterministic — route them through the telemetry Clock seam",
    ),
    (
        "thread_rng",
        "ambient RNG breaks replay — thread a seeded StdRng through instead",
    ),
];

/// Hash-order tokens: iteration order of std's hashed collections is
/// randomized per process, so any use risks leaking nondeterministic order
/// into emissions, prices, traces, or merge order.
const HASH_TOKENS: &[(&str, &str)] = &[
    (
        "HashMap",
        "iteration order is nondeterministic — use BTreeMap or sort before iterating",
    ),
    (
        "HashSet",
        "iteration order is nondeterministic — use BTreeSet or sort before iterating",
    ),
];

/// True for files the determinism lints scan: first-party library/binary
/// sources (not integration tests, benches, or examples, which may
/// measure wall time or exercise nondeterminism on purpose).
fn determinism_scanned(file: &SourceFile) -> bool {
    let under_src = file.rel_path.starts_with("crates") || file.rel_path.starts_with("src");
    let excluded = file.rel_path.components().any(|c| {
        c.as_os_str() == "tests" || c.as_os_str() == "benches" || c.as_os_str() == "examples"
    });
    under_src && !excluded
}

/// The determinism lints: ban hashed-collection order leaks and ambient
/// wall-clock / RNG reads outside the clock seam.
pub fn check_determinism(files: &[SourceFile], out: &mut Vec<Violation>) {
    for file in files {
        if !determinism_scanned(file) {
            continue;
        }
        let is_clock_seam = file.rel_path == Path::new(CLOCK_SEAM);
        for (idx, line) in file.lexed.code_lines.iter().enumerate() {
            if file.lexed.test_lines[idx] {
                continue;
            }
            for (token, hint) in HASH_TOKENS {
                if token_at_boundary(line, token) && !crate::rules::allowed(&file.lexed.allows, idx)
                {
                    out.push(Violation {
                        rule: "determinism",
                        file: file.rel_path.clone(),
                        line: idx + 1,
                        message: format!("`{token}`: {hint}"),
                    });
                }
            }
            if is_clock_seam {
                continue;
            }
            for (token, hint) in NONDET_TOKENS {
                if line.contains(token) && !crate::rules::allowed(&file.lexed.allows, idx) {
                    out.push(Violation {
                        rule: "determinism",
                        file: file.rel_path.clone(),
                        line: idx + 1,
                        message: format!("`{token}`: {hint}"),
                    });
                }
            }
        }
    }
}

/// Runs both analyses. `trees[i]` is the parse of `files[i]`; the call
/// graph is built and resolved here.
pub fn run_all(files: &[SourceFile], trees: &[ParsedFile]) -> Vec<Violation> {
    let graph = build_graph(files, trees);
    let mut out = Vec::new();
    check_panic_reachability(files, &graph, &mut out);
    check_determinism(files, &mut out);
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

/// Crates excluded from the call graph: they depend *on* the engine
/// crates, so the engine can never execute their code — but the
/// over-approximating method resolution would fabricate reverse edges
/// through common method names (`build`, `record`, …).
const DOWNSTREAM_CRATES: &[&str] = &["crates/bench", "crates/xtask"];

/// Builds and resolves the workspace call graph from lexed + parsed files.
/// Test/bench/example files and [`DOWNSTREAM_CRATES`] contribute no nodes.
pub fn build_graph(files: &[SourceFile], trees: &[ParsedFile]) -> CallGraph {
    let paths: Vec<PathBuf> = files.iter().map(|f| f.rel_path.clone()).collect();
    let is_test_file: Vec<bool> = files
        .iter()
        .map(|f| {
            f.rel_path.components().any(|c| {
                c.as_os_str() == "tests"
                    || c.as_os_str() == "benches"
                    || c.as_os_str() == "examples"
            }) || DOWNSTREAM_CRATES
                .iter()
                .any(|d| f.rel_path.starts_with(Path::new(d)))
        })
        .collect();
    let mut graph = CallGraph::build(&paths, trees, &is_test_file);
    let code: Vec<&[String]> = files
        .iter()
        .map(|f| f.lexed.code_lines.as_slice())
        .collect();
    graph.resolve(&code);
    graph
}

/// Per-entry-point reachability statistics for the `analyze` report.
pub fn reachability_stats(graph: &CallGraph) -> Vec<(String, usize)> {
    let mut stats = Vec::new();
    for (spec, _) in ENTRY_POINTS {
        let entries = graph.entry_nodes(spec);
        let reached = graph.reach(&entries);
        stats.push((spec.to_string(), reached.len()));
    }
    let all: Vec<usize> = ENTRY_POINTS
        .iter()
        .flat_map(|(spec, _)| graph.entry_nodes(spec))
        .collect();
    stats.push(("(union)".to_string(), graph.reach(&all).len()));
    stats
}

/// A map `qualified name → (file, sig line)` of every graph node — used by
/// the self-test fixtures to assert the parser sees what it should.
pub fn fn_index(graph: &CallGraph) -> BTreeMap<String, (PathBuf, usize)> {
    graph
        .nodes
        .iter()
        .map(|n| {
            (
                n.item.qualified(),
                (n.rel_path.clone(), n.item.sig_line + 1),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn source(path: &str, src: &str) -> SourceFile {
        SourceFile {
            rel_path: PathBuf::from(path),
            lexed: lex(src),
        }
    }

    fn analyze(srcs: &[(&str, &str)]) -> Vec<Violation> {
        let files: Vec<SourceFile> = srcs.iter().map(|(p, s)| source(p, s)).collect();
        let trees: Vec<ParsedFile> = files.iter().map(|f| parse(&f.lexed)).collect();
        run_all(&files, &trees)
    }

    /// A minimal workspace where every entry point exists and is clean, so
    /// tests can add one dirty file without entry-point noise.
    fn entry_stubs() -> Vec<(&'static str, String)> {
        ENTRY_POINTS
            .iter()
            .map(|(spec, file)| {
                let src = match spec.rsplit_once("::") {
                    Some((owner, name)) => {
                        format!("impl {owner} {{\n    fn {name}(&mut self) {{ let _ = 1; }}\n}}")
                    }
                    None => format!("fn {spec}() {{ let _ = 1; }}"),
                };
                (*file, src)
            })
            .collect()
    }

    fn with_stubs(extra: &[(&str, &str)]) -> Vec<Violation> {
        let stubs = entry_stubs();
        let mut merged: BTreeMap<&str, String> = BTreeMap::new();
        for (path, src) in &stubs {
            merged
                .entry(path)
                .and_modify(|s| {
                    s.push('\n');
                    s.push_str(src);
                })
                .or_insert_with(|| src.clone());
        }
        for (path, src) in extra {
            merged
                .entry(path)
                .and_modify(|s| {
                    s.push('\n');
                    s.push_str(src);
                })
                .or_insert_with(|| (*src).to_string());
        }
        let srcs: Vec<(&str, &str)> = merged.iter().map(|(p, s)| (*p, s.as_str())).collect();
        analyze(&srcs)
    }

    #[test]
    fn clean_stub_workspace_has_no_findings() {
        let out = with_stubs(&[]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn missing_entry_point_is_a_violation() {
        let out = analyze(&[("crates/bgp/src/engine/sync.rs", "fn nothing() {}")]);
        assert!(
            out.iter()
                .any(|v| v.rule == "panic-reachability" && v.message.contains("entry point")),
            "{out:?}"
        );
    }

    #[test]
    fn unwrap_reachable_through_a_helper_chain_is_reported_with_path() {
        let out = with_stubs(&[(
            "crates/bgp/src/engine/sync.rs",
            "impl SyncEngine {\n    fn run_stage(&mut self) { helper(); }\n}\nfn helper() { deep(); }\nfn deep() { x.unwrap(); }",
        )]);
        let hit = out
            .iter()
            .find(|v| v.message.contains("`.unwrap()`"))
            .expect("unwrap must be reported");
        assert!(
            hit.message
                .contains("SyncEngine::run_stage → helper → deep"),
            "{}",
            hit.message
        );
    }

    #[test]
    fn unreachable_panics_are_not_reported() {
        let out = with_stubs(&[(
            "crates/bgp/src/engine/sync.rs",
            "fn never_called() { x.unwrap(); }",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn allowlisted_sites_are_suppressed() {
        let out = with_stubs(&[(
            "crates/bgp/src/engine/sync.rs",
            "impl SyncEngine {\n    fn run_stage(&mut self) { x.unwrap(); } // lint:allow(test of the allowlist)\n}",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unguarded_indexing_is_reported_but_guarded_forms_are_not() {
        let out = with_stubs(&[(
            "crates/bgp/src/engine/sync.rs",
            "impl SyncEngine {\n    fn run_stage(&mut self, i: usize) { let _ = self.inboxes[i]; \
             let _ = FIRST[0]; let _ = self.nodes[id.index()]; let _ = path[1..path.len() - 1]; }\n}",
        )]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("indexing `self.inboxes[i]`"));
    }

    #[test]
    fn asserts_are_precondition_guards_not_panic_sites() {
        let out = with_stubs(&[(
            "crates/bgp/src/engine/sync.rs",
            "impl SyncEngine {\n    fn run_stage(&mut self) { debug_assert!(ok); assert!(ok); assert_eq!(a, b); }\n}",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn downstream_crates_contribute_no_graph_nodes() {
        // A bench fn sharing a method name with an engine call must not
        // pull bench code into reachability.
        let out = with_stubs(&[
            (
                "crates/bgp/src/engine/sync.rs",
                "impl SyncEngine {\n    fn run_stage(&mut self) { self.b.build(); }\n}",
            ),
            (
                "crates/bench/src/families.rs",
                "impl Family {\n    fn build(&self) { x.unwrap(); }\n}",
            ),
        ]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn hashmap_and_wall_clock_are_determinism_violations() {
        let out = with_stubs(&[(
            "crates/core/src/extra.rs",
            "use std::collections::HashMap;\nfn f() { let t = Instant::now(); }",
        )]);
        let rules: Vec<&str> = out.iter().map(|v| v.rule).collect();
        assert_eq!(rules, ["determinism", "determinism"], "{out:?}");
    }

    #[test]
    fn clock_seam_and_test_dirs_are_exempt() {
        let out = with_stubs(&[
            (
                "crates/telemetry/src/clock.rs",
                "fn now() { let t = Instant::now(); }",
            ),
            (
                "crates/bgp/tests/some_test.rs",
                "use std::collections::HashMap;\nfn f() { let t = Instant::now(); }",
            ),
        ]);
        assert!(out.is_empty(), "{out:?}");
    }
}
