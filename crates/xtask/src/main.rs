//! Workspace static-analysis driver (`cargo xtask …`).
//!
//! Std-only by design: the build environment has no registry access, so the
//! lint engine carries its own minimal lexer instead of depending on `syn`.
//!
//! Subcommands:
//! - `lint`  — run the four protocol lint rules (see `rules`); exit 1 on any
//!   violation outside the `// lint:allow(reason)` allowlist.
//! - `audit` — lint allowlist hygiene (stale / reason-less annotations),
//!   verify the invariant-hook wiring is present, then run the test suite
//!   with `--features invariant-checks` so the debug assertions execute.
//!   `--static-only` skips the test run.
//! - `ci`    — the full offline-tolerant pipeline: fmt check, lint, clippy
//!   wall, workspace tests, invariant-checked tests. Steps whose external
//!   tool is unavailable (no rustfmt/clippy component) are reported and
//!   skipped rather than failed, so `ci` works in minimal containers.

mod lexer;
mod rules;

use rules::SourceFile;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = workspace_root();
    match args.first().map(String::as_str) {
        Some("lint") => cmd_lint(&root),
        Some("audit") => cmd_audit(&root, args.iter().any(|a| a == "--static-only")),
        Some("ci") => cmd_ci(&root),
        Some("help") | None => {
            print_help();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown subcommand `{other}`\n");
            print_help();
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!(
        "cargo xtask <subcommand>\n\n\
         \tlint                run the protocol lint rules (no-panic, pub-docs,\n\
         \t                    wire-golden, engine-hygiene)\n\
         \taudit [--static-only]\n\
         \t                    check allowlist hygiene + invariant-hook wiring,\n\
         \t                    then run tests with --features invariant-checks\n\
         \tci                  fmt check, lint, clippy, tests, invariant tests\n\
         \thelp                this message"
    );
}

/// Locates the workspace root: the nearest ancestor of the current directory
/// containing a `Cargo.toml` with a `[workspace]` table.
fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir;
                }
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

/// Collects every tracked `.rs` file the rules care about: crate sources,
/// crate tests, and the root `src/`. Vendored stand-ins and `target/` are
/// excluded — they are not protocol code.
fn collect_sources(root: &Path) -> (Vec<SourceFile>, Vec<Vec<String>>) {
    let mut files = Vec::new();
    let mut raw_lines = Vec::new();
    let mut stack = vec![root.join("crates"), root.join("src")];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        let mut entries: Vec<_> = entries.flatten().collect();
        entries.sort_by_key(|e| e.path());
        for entry in entries {
            let path = entry.path();
            if path.is_dir() {
                let name = entry.file_name();
                if name != "target" && name != ".git" {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                let Ok(source) = std::fs::read_to_string(&path) else {
                    continue;
                };
                let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
                raw_lines.push(source.lines().map(String::from).collect());
                files.push(SourceFile {
                    rel_path: rel,
                    lexed: lexer::lex(&source),
                });
            }
        }
    }
    (files, raw_lines)
}

fn cmd_lint(root: &Path) -> ExitCode {
    let (files, raw_lines) = collect_sources(root);
    let violations = rules::run_all(&files, &raw_lines);
    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() {
        println!(
            "xtask lint: clean ({} files, 4 rules, 0 violations)",
            files.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// Files that must carry invariant-hook call sites for the
/// `invariant-checks` feature to mean anything. Checked textually so a
/// refactor cannot silently drop the audit wiring.
const INVARIANT_HOOK_SITES: &[(&str, &str)] = &[
    ("crates/core/src/invariants.rs", "relaxation_step"),
    ("crates/core/src/pricing_node.rs", "invariants::"),
    ("crates/core/src/neighbor_costs/node.rs", "invariants::"),
    ("crates/core/src/protocol.rs", "invariants::"),
    ("crates/bgp/src/engine/invariants.rs", "convergence"),
    ("crates/bgp/src/engine/sync.rs", "invariants::"),
];

fn cmd_audit(root: &Path, static_only: bool) -> ExitCode {
    let (files, raw_lines) = collect_sources(root);
    // Run the rules first so every live annotation is marked used; what
    // remains unused is stale.
    let violations = rules::run_all(&files, &raw_lines);
    let mut problems = rules::stale_allows(&files);

    for (rel, needle) in INVARIANT_HOOK_SITES {
        let hooked = files
            .iter()
            .find(|f| f.rel_path == Path::new(rel))
            .map(|f| f.lexed.code_lines.join("\n").contains(needle));
        if hooked != Some(true) {
            problems.push(rules::Violation {
                rule: "invariant-hooks",
                file: PathBuf::from(rel),
                line: 1,
                message: format!("expected invariant hook `{needle}` is missing"),
            });
        }
    }

    for p in &problems {
        println!("{p}");
    }
    let allow_count: usize = files.iter().map(|f| f.lexed.allows.len()).sum();
    println!(
        "xtask audit: {} allowlist annotation(s), {} live violation(s) suppressed elsewhere, {} problem(s)",
        allow_count,
        violations.len(),
        problems.len()
    );
    if !problems.is_empty() {
        return ExitCode::FAILURE;
    }
    if static_only {
        return ExitCode::SUCCESS;
    }
    println!("xtask audit: running tests with --features invariant-checks");
    let ok = run_step(
        root,
        "invariant tests",
        "cargo",
        &["test", "-q", "--features", "invariant-checks"],
        false,
    ) && run_step(
        root,
        "invariant tests (protocol crates)",
        "cargo",
        &[
            "test",
            "-q",
            "-p",
            "bgpvcg-core",
            "-p",
            "bgpvcg-bgp",
            "--features",
            "bgpvcg-core/invariant-checks,bgpvcg-bgp/invariant-checks",
        ],
        false,
    );
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Runs one pipeline step. When `optional` and the tool itself is absent
/// (missing binary or missing cargo component), the step is skipped with a
/// notice instead of failing — this keeps `ci` usable offline and in
/// minimal containers.
fn run_step(root: &Path, label: &str, program: &str, args: &[&str], optional: bool) -> bool {
    println!("==> {label}: {program} {}", args.join(" "));
    let output = Command::new(program).args(args).current_dir(root).output();
    match output {
        Ok(out) if out.status.success() => true,
        Ok(out) => {
            let stderr = String::from_utf8_lossy(&out.stderr);
            let tool_missing = stderr.contains("no such command")
                || stderr.contains("not installed")
                || stderr.contains("no such subcommand");
            if optional && tool_missing {
                println!("==> {label}: tool unavailable, skipped");
                true
            } else {
                print!("{}", String::from_utf8_lossy(&out.stdout));
                eprint!("{stderr}");
                println!("==> {label}: FAILED");
                false
            }
        }
        Err(err) => {
            if optional {
                println!("==> {label}: cannot launch `{program}` ({err}), skipped");
                true
            } else {
                println!("==> {label}: cannot launch `{program}` ({err})");
                false
            }
        }
    }
}

fn cmd_ci(root: &Path) -> ExitCode {
    let mut ok = true;
    ok &= run_step(root, "format check", "cargo", &["fmt", "--check"], true);
    ok &= cmd_lint(root) == ExitCode::SUCCESS;
    ok &= cmd_audit(root, true) == ExitCode::SUCCESS;
    ok &= run_step(
        root,
        "clippy wall",
        "cargo",
        &[
            "clippy",
            "--workspace",
            "--all-targets",
            "--",
            "-D",
            "warnings",
        ],
        true,
    );
    ok &= run_step(
        root,
        "workspace tests",
        "cargo",
        &["test", "-q", "--workspace"],
        false,
    );
    ok &= run_step(
        root,
        "invariant tests",
        "cargo",
        &["test", "-q", "--features", "invariant-checks"],
        false,
    );
    if ok {
        println!("xtask ci: all steps passed");
        ExitCode::SUCCESS
    } else {
        println!("xtask ci: FAILED");
        ExitCode::FAILURE
    }
}
