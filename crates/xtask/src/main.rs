//! Workspace static-analysis driver (`cargo xtask …`).
//!
//! Std-only by design: the build environment has no registry access, so the
//! lint engine carries its own minimal lexer instead of depending on `syn`.
//!
//! Subcommands:
//! - `lint`  — run the seven protocol lint rules (see `xtask::rules`);
//!   exit 1 on any violation outside the `// lint:allow(reason)` allowlist.
//! - `analyze` — the parser-backed analyses (see `xtask::analysis`): build
//!   the workspace call graph, walk panic-reachability from the engine
//!   hot-path entry points, and run the determinism lints; prints
//!   per-entry-point reachability statistics.
//! - `audit` — lint allowlist hygiene (stale / reason-less annotations),
//!   verify the invariant-hook wiring is present, then run the test suite
//!   with `--features invariant-checks` so the debug assertions execute.
//!   `--static-only` skips the test run.
//! - `obs`   — the observability pipeline: run the `obs_smoke` fixture with
//!   `--trace-out`/`--metrics-out`, validate every trace line against the
//!   golden schema, require full event-kind coverage, check both metric
//!   expositions, and print the per-stage convergence summary. `--causal`
//!   additionally runs the traced E3 sweep, rebuilds the causal provenance
//!   DAG of every run segment (acyclicity, origin-root, and
//!   critical-path-vs-stages validation), and writes a schema-validated
//!   causal summary to `target/obs/causal.json`. `--health` additionally
//!   collects and validates the SLO health report (`bgpvcg-health-v1`:
//!   zero findings on the honest phase, exactly the seeded
//!   `HealthVerdict` events in the trace); `--profile` collects and
//!   validates the span profile (`bgpvcg-profile-v1`: ≥ 6 engine phases
//!   observed, inclusive ≥ exclusive nanos, no truncated exits, non-empty
//!   collapsed stacks). See `docs/OBSERVABILITY.md`.
//! - `bench` — the perf-record pipeline: run the E14 scale benchmark
//!   (serial vs parallel, asserted bit-identical) and validate the emitted
//!   `BENCH_scale.json` against the checked-in schema. `--smoke` runs small
//!   sizes for CI and also re-validates the checked-in `BENCH_chaos.json`.
//!   `--compare` regenerates the full trajectory into `target/bench/` and
//!   diffs it field-by-field against the committed baseline (timing fields
//!   exempt, per the schema's `timing` list). See `docs/PERFORMANCE.md`.
//! - `chaos` — the robustness pipeline: run the E19 chaos benchmark (every
//!   run asserted bit-identical to the fault-free fixpoint) and validate
//!   the emitted `BENCH_chaos.json` against the checked-in schema.
//!   `--smoke` runs small sizes for CI; `--compare` diffs a fresh full
//!   trajectory against the committed baseline. See `docs/ROBUSTNESS.md`.
//! - `ci`    — the full offline-tolerant pipeline: fmt check, lint, clippy
//!   wall, workspace tests, invariant-checked tests, obs --causal --health --profile,
//!   bench --smoke --compare, chaos --smoke --compare. Steps whose
//!   external tool is unavailable (no rustfmt/clippy component) are
//!   reported and skipped rather than failed, so `ci` works in minimal
//!   containers.

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};
use xtask::rules::{self, SourceFile};
use xtask::{analysis, lexer};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = workspace_root();
    match args.first().map(String::as_str) {
        Some("lint") => cmd_lint(&root),
        Some("analyze") => cmd_analyze(&root),
        Some("audit") => cmd_audit(&root, args.iter().any(|a| a == "--static-only")),
        Some("obs") => cmd_obs(
            &root,
            args.iter().any(|a| a == "--causal"),
            args.iter().any(|a| a == "--health"),
            args.iter().any(|a| a == "--profile"),
        ),
        Some("bench") => cmd_bench(
            &root,
            args.iter().any(|a| a == "--smoke"),
            args.iter().any(|a| a == "--compare"),
        ),
        Some("chaos") => cmd_chaos(
            &root,
            args.iter().any(|a| a == "--smoke"),
            args.iter().any(|a| a == "--compare"),
        ),
        Some("ci") => cmd_ci(&root),
        Some("help") | None => {
            print_help();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown subcommand `{other}`\n");
            print_help();
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!(
        "cargo xtask <subcommand>\n\n\
         \tlint                run the protocol lint rules (no-panic, pub-docs,\n\
         \t                    wire-golden, engine-hygiene, trace-schema,\n\
         \t                    stage-alloc, unsafe-audit)\n\
         \tanalyze             parser-backed analyses: panic-reachability over\n\
         \t                    the workspace call graph from the engine entry\n\
         \t                    points, plus the determinism lints (hashed-order\n\
         \t                    leaks, wall-clock/RNG outside the clock seam)\n\
         \taudit [--static-only]\n\
         \t                    check allowlist hygiene + invariant-hook wiring,\n\
         \t                    then run tests with --features invariant-checks\n\
         \tobs [--causal] [--health] [--profile]\n\
         \t                    run the traced smoke topology, validate the JSONL\n\
         \t                    trace against the golden schema, check metric\n\
         \t                    expositions, print the convergence summary;\n\
         \t                    --causal also runs the traced E3 sweep, validates\n\
         \t                    every run's causal provenance DAG (acyclic,\n\
         \t                    stage-0 roots, critical path <= stages) and\n\
         \t                    writes target/obs/causal.json; --health validates\n\
         \t                    the SLO health report (zero findings honest,\n\
         \t                    exactly the seeded HealthVerdicts in the trace)\n\
         \t                    at target/obs/health.json; --profile validates\n\
         \t                    the span profile (>= 6 phases, no truncation)\n\
         \t                    at target/obs/profile.json + .folded\n\
         \tbench [--smoke] [--compare]\n\
         \t                    run the E14 scale benchmark (serial vs parallel)\n\
         \t                    and validate BENCH_scale.json against\n\
         \t                    crates/bench/bench-scale-schema.json; --smoke\n\
         \t                    runs small sizes into target/bench/ and also\n\
         \t                    validates the checked-in trajectory files\n\
         \t                    (scale and chaos); --compare regenerates the\n\
         \t                    full trajectory and diffs it against the\n\
         \t                    committed baseline (timing fields exempt)\n\
         \tchaos [--smoke] [--compare]\n\
         \t                    run the E19 chaos benchmark (seeded faults,\n\
         \t                    self-stabilization asserted) and validate\n\
         \t                    BENCH_chaos.json against\n\
         \t                    crates/bench/bench-chaos-schema.json; --smoke\n\
         \t                    runs small sizes into target/bench/; --compare\n\
         \t                    diffs a fresh full trajectory against the\n\
         \t                    committed baseline\n\
         \tci                  fmt check, lint, analyze, clippy, tests,\n\
         \t                    invariant tests, obs --causal --health --profile,\n\
         \t                    bench --smoke --compare, chaos --smoke --compare,\n\
         \t                    e20_adversary --smoke\n\
         \thelp                this message"
    );
}

/// Locates the workspace root: the nearest ancestor of the current directory
/// containing a `Cargo.toml` with a `[workspace]` table.
fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir;
                }
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

/// Collects every tracked `.rs` file the rules care about: crate sources,
/// crate tests, and the root `src/`. Vendored stand-ins and `target/` are
/// excluded — they are not protocol code — and so is the
/// `crates/xtask/tests/fixtures/` corpus, whose bad files violate the
/// rules on purpose (the self-tests lint them in isolation).
fn collect_sources(root: &Path) -> (Vec<SourceFile>, Vec<Vec<String>>) {
    let mut files = Vec::new();
    let mut raw_lines = Vec::new();
    let mut stack = vec![root.join("crates"), root.join("src")];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        let mut entries: Vec<_> = entries.flatten().collect();
        entries.sort_by_key(|e| e.path());
        for entry in entries {
            let path = entry.path();
            if path.is_dir() {
                let name = entry.file_name();
                if name != "target" && name != ".git" && name != "fixtures" {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                let Ok(source) = std::fs::read_to_string(&path) else {
                    continue;
                };
                let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
                raw_lines.push(source.lines().map(String::from).collect());
                files.push(SourceFile {
                    rel_path: rel,
                    lexed: lexer::lex(&source),
                });
            }
        }
    }
    (files, raw_lines)
}

/// Parses every collected file into its item tree (`trees[i]` matches
/// `files[i]`), feeding the parser-backed rules and analyses.
fn parse_trees(files: &[SourceFile]) -> Vec<xtask::parser::ParsedFile> {
    files
        .iter()
        .map(|f| xtask::parser::parse(&f.lexed))
        .collect()
}

/// Inventories `unsafe` usage in every vendored stand-in under `vendor/`
/// for the unsafe-audit rule. Scans all lines (tests included): a vendored
/// crate is third-party surface, so its unsafe count is all-or-nothing.
fn collect_vendor(root: &Path) -> Vec<rules::VendorCrate> {
    let mut out = Vec::new();
    let vendor_dir = root.join("vendor");
    let Ok(entries) = std::fs::read_dir(&vendor_dir) else {
        return out;
    };
    let mut crates: Vec<_> = entries.flatten().filter(|e| e.path().is_dir()).collect();
    crates.sort_by_key(|e| e.path());
    for krate in crates {
        let name = krate.file_name().to_string_lossy().into_owned();
        let mut first_unsafe = None;
        let mut stack = vec![krate.path()];
        while let Some(dir) = stack.pop() {
            let Ok(entries) = std::fs::read_dir(&dir) else {
                continue;
            };
            let mut entries: Vec<_> = entries.flatten().collect();
            entries.sort_by_key(|e| e.path());
            for entry in entries {
                let path = entry.path();
                if path.is_dir() {
                    if entry.file_name() != "target" {
                        stack.push(path);
                    }
                } else if path.extension().is_some_and(|e| e == "rs") {
                    let Ok(source) = std::fs::read_to_string(&path) else {
                        continue;
                    };
                    let lexed = lexer::lex(&source);
                    for (idx, line) in lexed.code_lines.iter().enumerate() {
                        let hit = line
                            .split(|c: char| !(c.is_alphanumeric() || c == '_'))
                            .any(|w| w == "unsafe");
                        if hit && first_unsafe.is_none() {
                            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
                            first_unsafe = Some((rel, idx + 1));
                        }
                    }
                }
            }
        }
        out.push(rules::VendorCrate { name, first_unsafe });
    }
    out
}

/// Reads the golden trace schema fixture for the trace-schema rule; `None`
/// if it is missing (which the rule reports as a violation).
fn trace_schema_text(root: &Path) -> Option<String> {
    std::fs::read_to_string(root.join(rules::TRACE_SCHEMA)).ok()
}

fn cmd_lint(root: &Path) -> ExitCode {
    let (files, raw_lines) = collect_sources(root);
    let trees = parse_trees(&files);
    let vendor = collect_vendor(root);
    let schema = trace_schema_text(root);
    let violations = rules::run_all(&files, &raw_lines, &trees, schema.as_deref(), &vendor);
    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() {
        println!(
            "xtask lint: clean ({} files, 7 rules, 0 violations)",
            files.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// The parser-backed analyses: panic-reachability over the workspace call
/// graph plus the determinism lints, with a per-entry-point reachability
/// report. See `docs/STATIC_ANALYSIS.md`.
fn cmd_analyze(root: &Path) -> ExitCode {
    let (files, _raw_lines) = collect_sources(root);
    let trees = parse_trees(&files);
    let graph = analysis::build_graph(&files, &trees);
    let violations = analysis::run_all(&files, &trees);
    for v in &violations {
        println!("{v}");
    }
    println!("\npanic-reachability: functions reached per entry point");
    for (spec, reached) in analysis::reachability_stats(&graph) {
        println!("  {reached:>4}  {spec}");
    }
    if violations.is_empty() {
        println!(
            "\nxtask analyze: clean ({} files, {} call-graph nodes, 0 findings)",
            files.len(),
            graph.nodes.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("\nxtask analyze: {} finding(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// Files that must carry invariant-hook call sites for the
/// `invariant-checks` feature to mean anything. Checked textually so a
/// refactor cannot silently drop the audit wiring.
const INVARIANT_HOOK_SITES: &[(&str, &str)] = &[
    ("crates/core/src/invariants.rs", "relaxation_step"),
    ("crates/core/src/pricing_node.rs", "invariants::"),
    ("crates/core/src/neighbor_costs/node.rs", "invariants::"),
    ("crates/core/src/protocol.rs", "invariants::"),
    ("crates/bgp/src/engine/invariants.rs", "convergence"),
    ("crates/bgp/src/engine/sync.rs", "invariants::"),
];

fn cmd_audit(root: &Path, static_only: bool) -> ExitCode {
    let (files, raw_lines) = collect_sources(root);
    // Run the rules AND the analyses first so every live annotation is
    // marked used; what remains unused is stale.
    let trees = parse_trees(&files);
    let vendor = collect_vendor(root);
    let schema = trace_schema_text(root);
    let mut violations = rules::run_all(&files, &raw_lines, &trees, schema.as_deref(), &vendor);
    violations.extend(analysis::run_all(&files, &trees));
    let mut problems = rules::stale_allows(&files);

    for (rel, needle) in INVARIANT_HOOK_SITES {
        let hooked = files
            .iter()
            .find(|f| f.rel_path == Path::new(rel))
            .map(|f| f.lexed.code_lines.join("\n").contains(needle));
        if hooked != Some(true) {
            problems.push(rules::Violation {
                rule: "invariant-hooks",
                file: PathBuf::from(rel),
                line: 1,
                message: format!("expected invariant hook `{needle}` is missing"),
            });
        }
    }

    for p in &problems {
        println!("{p}");
    }
    let allow_count: usize = files.iter().map(|f| f.lexed.allows.len()).sum();
    println!(
        "xtask audit: {} allowlist annotation(s), {} live violation(s) suppressed elsewhere, {} problem(s)",
        allow_count,
        violations.len(),
        problems.len()
    );
    if !problems.is_empty() {
        return ExitCode::FAILURE;
    }
    if static_only {
        return ExitCode::SUCCESS;
    }
    println!("xtask audit: running tests with --features invariant-checks");
    let ok = run_step(
        root,
        "invariant tests",
        "cargo",
        &["test", "-q", "--features", "invariant-checks"],
        false,
    ) && run_step(
        root,
        "invariant tests (protocol crates)",
        "cargo",
        &[
            "test",
            "-q",
            "-p",
            "bgpvcg-core",
            "-p",
            "bgpvcg-bgp",
            "--features",
            "bgpvcg-core/invariant-checks,bgpvcg-bgp/invariant-checks",
        ],
        false,
    );
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Runs one pipeline step. When `optional` and the tool itself is absent
/// (missing binary or missing cargo component), the step is skipped with a
/// notice instead of failing — this keeps `ci` usable offline and in
/// minimal containers.
fn run_step(root: &Path, label: &str, program: &str, args: &[&str], optional: bool) -> bool {
    println!("==> {label}: {program} {}", args.join(" "));
    let output = Command::new(program).args(args).current_dir(root).output();
    match output {
        Ok(out) if out.status.success() => true,
        Ok(out) => {
            let stderr = String::from_utf8_lossy(&out.stderr);
            let tool_missing = stderr.contains("no such command")
                || stderr.contains("not installed")
                || stderr.contains("no such subcommand");
            if optional && tool_missing {
                println!("==> {label}: tool unavailable, skipped");
                true
            } else {
                print!("{}", String::from_utf8_lossy(&out.stdout));
                eprint!("{stderr}");
                println!("==> {label}: FAILED");
                false
            }
        }
        Err(err) => {
            if optional {
                println!("==> {label}: cannot launch `{program}` ({err}), skipped");
                true
            } else {
                println!("==> {label}: cannot launch `{program}` ({err})");
                false
            }
        }
    }
}

/// The observability pipeline: run the traced smoke topology, validate
/// every JSONL line against the golden schema, require full event-kind
/// coverage, sanity-check both metric expositions, and print a per-stage
/// convergence summary table. With `causal`, additionally run the traced
/// E3 sweep and validate + summarize its causal provenance DAGs (see
/// [`run_causal`]). See `docs/OBSERVABILITY.md`.
fn cmd_obs(root: &Path, causal: bool, health: bool, profile: bool) -> ExitCode {
    use bgpvcg_telemetry::{json, Schema};
    use std::collections::BTreeMap;

    let out_dir = root.join("target").join("obs");
    if let Err(err) = std::fs::create_dir_all(&out_dir) {
        eprintln!("xtask obs: cannot create {}: {err}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let trace_path = out_dir.join("trace.jsonl");
    let metrics_path = out_dir.join("metrics.json");
    let health_path = out_dir.join("health.json");
    let profile_path = out_dir.join("profile.json");
    let mut run_args: Vec<String> = [
        "run",
        "--release",
        "-q",
        "-p",
        "bgpvcg-bench",
        "--bin",
        "obs_smoke",
        "--",
        "--trace-out",
    ]
    .map(str::to_string)
    .to_vec();
    run_args.push(trace_path.display().to_string());
    run_args.push("--metrics-out".to_string());
    run_args.push(metrics_path.display().to_string());
    if health {
        run_args.push("--health-out".to_string());
        run_args.push(health_path.display().to_string());
    }
    if profile {
        run_args.push("--profile-out".to_string());
        run_args.push(profile_path.display().to_string());
    }
    let run_args: Vec<&str> = run_args.iter().map(String::as_str).collect();
    let ran = run_step(root, "obs smoke run", "cargo", &run_args, false);
    if !ran {
        return ExitCode::FAILURE;
    }

    // Validate every trace line against the golden schema, and fold the
    // stream into kind counts and a per-stage summary.
    let trace = match std::fs::read_to_string(&trace_path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("xtask obs: cannot read {}: {err}", trace_path.display());
            return ExitCode::FAILURE;
        }
    };
    let schema = Schema::golden();
    let mut kind_counts: BTreeMap<String, u64> = BTreeMap::new();
    // stage -> [selected, relaxed, withdrawn]
    let mut per_stage: BTreeMap<u64, [u64; 3]> = BTreeMap::new();
    let mut bad_lines = 0usize;
    let mut lines = 0usize;
    for (idx, line) in trace.lines().enumerate() {
        lines += 1;
        let kind = match schema.validate_line(line) {
            Ok(kind) => kind,
            Err(err) => {
                println!("{}:{}: [trace-schema] {err}", trace_path.display(), idx + 1);
                bad_lines += 1;
                continue;
            }
        };
        let stage = json::parse(line)
            .ok()
            .and_then(|v| v.get("stage").and_then(json::JsonValue::as_u64))
            .unwrap_or(0);
        let slot = match kind.as_str() {
            "RouteSelected" => Some(0),
            "PriceRelaxed" => Some(1),
            "Withdrawn" => Some(2),
            _ => None,
        };
        if let Some(slot) = slot {
            per_stage.entry(stage).or_insert([0; 3])[slot] += 1;
        }
        *kind_counts.entry(kind).or_insert(0) += 1;
    }
    println!(
        "==> trace validation: {} line(s), {} invalid",
        lines, bad_lines
    );
    let mut missing_kinds = 0usize;
    for kind in schema.kinds() {
        if kind_counts.get(kind).copied().unwrap_or(0) == 0 {
            println!("==> event kind `{kind}` never appeared in the smoke trace");
            missing_kinds += 1;
        }
    }

    println!("\nper-stage convergence summary (stage 0 = origin/reaction broadcasts):");
    println!("  stage | routes selected | prices relaxed | withdrawals");
    for (stage, [selected, relaxed, withdrawn]) in &per_stage {
        println!("  {stage:>5} | {selected:>15} | {relaxed:>14} | {withdrawn:>11}");
    }

    // Both expositions must exist and parse/scan plausibly.
    let mut expo_problems = 0usize;
    match std::fs::read_to_string(&metrics_path) {
        Ok(text) => match json::parse(&text) {
            Ok(value) => {
                for counter in ["bgp_updates_sent_total", "bgp_price_relaxations_total"] {
                    let present = value
                        .get("counters")
                        .and_then(|c| c.get(counter))
                        .and_then(json::JsonValue::as_u64)
                        .is_some_and(|v| v > 0);
                    if !present {
                        println!("==> metrics JSON: counter `{counter}` missing or zero");
                        expo_problems += 1;
                    }
                }
            }
            Err(err) => {
                println!("==> metrics JSON does not parse: {err}");
                expo_problems += 1;
            }
        },
        Err(err) => {
            println!("==> cannot read {}: {err}", metrics_path.display());
            expo_problems += 1;
        }
    }
    let prom_path = metrics_path.with_extension("prom");
    match std::fs::read_to_string(&prom_path) {
        Ok(text) => {
            for needle in [
                "# TYPE bgp_messages_total counter",
                "# TYPE bgp_stages_to_quiescence gauge",
                "# TYPE bgp_stage_wall_nanos histogram",
            ] {
                if !text.contains(needle) {
                    println!("==> Prometheus exposition is missing `{needle}`");
                    expo_problems += 1;
                }
            }
        }
        Err(err) => {
            println!("==> cannot read {}: {err}", prom_path.display());
            expo_problems += 1;
        }
    }

    // The smoke fixture seeds exactly two SLO verdicts (one oscillation,
    // one stall) — the trace must carry exactly those, no more, no fewer.
    let mut health_problems = 0usize;
    if health {
        let verdicts = kind_counts.get("HealthVerdict").copied().unwrap_or(0);
        if verdicts != 2 {
            println!("==> expected exactly 2 HealthVerdict events in the trace, saw {verdicts}");
            health_problems += 1;
        }
        health_problems += validate_health_artifact(&health_path);
    }
    let profile_problems = if profile {
        validate_profile_artifact(&profile_path)
    } else {
        0
    };

    let causal_problems = if causal { run_causal(root) } else { 0 };

    if bad_lines == 0
        && missing_kinds == 0
        && expo_problems == 0
        && causal_problems == 0
        && health_problems == 0
        && profile_problems == 0
    {
        println!(
            "\nxtask obs: trace schema-valid, all {} event kinds covered, expositions ok{}{}{}",
            schema.kinds().len(),
            if causal { ", causal DAGs valid" } else { "" },
            if health { ", health report ok" } else { "" },
            if profile { ", span profile ok" } else { "" }
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "\nxtask obs: FAILED ({bad_lines} invalid line(s), {missing_kinds} uncovered kind(s), {expo_problems} exposition problem(s), {causal_problems} causal problem(s), {health_problems} health problem(s), {profile_problems} profile problem(s))"
        );
        ExitCode::FAILURE
    }
}

/// Validates the `bgpvcg-health-v1` artifact the smoke fixture wrote for
/// its *honest* phase: schema-pinned, zero findings, and a non-empty
/// per-destination latency section. Returns the number of problems
/// (all printed).
fn validate_health_artifact(path: &Path) -> usize {
    use bgpvcg_telemetry::json::{self, JsonValue};

    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            println!("==> cannot read {}: {err}", path.display());
            return 1;
        }
    };
    let value = match json::parse(&text) {
        Ok(value) => value,
        Err(err) => {
            println!("==> health report does not parse: {err}");
            return 1;
        }
    };
    let mut problems = 0usize;
    if value.get("schema").and_then(JsonValue::as_str) != Some("bgpvcg-health-v1") {
        println!("==> health report schema is not `bgpvcg-health-v1`");
        problems += 1;
    }
    match value.get("findings") {
        Some(JsonValue::Array(findings)) if findings.is_empty() => {}
        Some(JsonValue::Array(findings)) => {
            println!(
                "==> honest health report carries {} finding(s); expected zero",
                findings.len()
            );
            problems += 1;
        }
        _ => {
            println!("==> health report has no `findings` array");
            problems += 1;
        }
    }
    match value.get("destinations") {
        Some(JsonValue::Array(dests)) if !dests.is_empty() => {
            for dest in dests {
                let count = dest
                    .get("latency")
                    .and_then(|l| l.get("count"))
                    .and_then(JsonValue::as_u64);
                if count.is_none_or(|c| c == 0) {
                    println!("==> health report destination with an empty latency sketch");
                    problems += 1;
                    break;
                }
            }
        }
        _ => {
            println!("==> health report has no per-destination latency quantiles");
            problems += 1;
        }
    }
    problems
}

/// Validates the `bgpvcg-profile-v1` artifact plus its `.folded` sibling:
/// schema-pinned, no truncated exits, at least six engine phases actually
/// observed (count > 0) with inclusive >= exclusive nanos, and a
/// non-empty collapsed-stack rendering. Returns the number of problems
/// (all printed).
fn validate_profile_artifact(path: &Path) -> usize {
    use bgpvcg_telemetry::json::{self, JsonValue};

    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            println!("==> cannot read {}: {err}", path.display());
            return 1;
        }
    };
    let value = match json::parse(&text) {
        Ok(value) => value,
        Err(err) => {
            println!("==> span profile does not parse: {err}");
            return 1;
        }
    };
    let mut problems = 0usize;
    if value.get("schema").and_then(JsonValue::as_str) != Some("bgpvcg-profile-v1") {
        println!("==> span profile schema is not `bgpvcg-profile-v1`");
        problems += 1;
    }
    if value.get("truncated").and_then(JsonValue::as_u64) != Some(0) {
        println!("==> span profile reports truncated span exits");
        problems += 1;
    }
    match value.get("spans") {
        Some(JsonValue::Array(spans)) => {
            let mut covered = 0usize;
            for span in spans {
                let count = span.get("count").and_then(JsonValue::as_u64).unwrap_or(0);
                if count == 0 {
                    continue;
                }
                covered += 1;
                let total = span.get("total_nanos").and_then(JsonValue::as_u64);
                let self_nanos = span.get("self_nanos").and_then(JsonValue::as_u64);
                match (total, self_nanos) {
                    (Some(total), Some(self_nanos)) if total >= self_nanos => {}
                    _ => {
                        println!(
                            "==> span `{}`: inclusive nanos must dominate exclusive nanos",
                            span.get("name").and_then(JsonValue::as_str).unwrap_or("?")
                        );
                        problems += 1;
                    }
                }
            }
            if covered < 6 {
                println!(
                    "==> span profile covers {covered} engine phase(s); the smoke fixture must light up at least 6"
                );
                problems += 1;
            }
        }
        _ => {
            println!("==> span profile has no `spans` array");
            problems += 1;
        }
    }
    let folded_path = path.with_extension("folded");
    match std::fs::read_to_string(&folded_path) {
        Ok(folded) if folded.lines().any(|l| !l.trim().is_empty()) => {}
        Ok(_) => {
            println!(
                "==> collapsed-stack file {} is empty",
                folded_path.display()
            );
            problems += 1;
        }
        Err(err) => {
            println!("==> cannot read {}: {err}", folded_path.display());
            problems += 1;
        }
    }
    problems
}

/// The causal half of the observability pipeline: run the full traced E3
/// convergence sweep, rebuild one provenance DAG per run segment, validate
/// each (acyclic by monotone ids, roots are stage-0 origin advertisements,
/// critical path bounded by the reported stage count), and write the
/// schema-validated summary document to `target/obs/causal.json`. Returns
/// the number of problems found (all printed).
fn run_causal(root: &Path) -> usize {
    use bgpvcg_telemetry::causal::{self, CausalDag};

    let out_dir = root.join("target").join("obs");
    if let Err(err) = std::fs::create_dir_all(&out_dir) {
        println!("==> causal: cannot create {}: {err}", out_dir.display());
        return 1;
    }
    let trace_path = out_dir.join("causal-trace.jsonl");
    let trace_arg = trace_path.display().to_string();
    if !run_step(
        root,
        "causal e3 run",
        "cargo",
        &[
            "run",
            "--release",
            "-q",
            "-p",
            "bgpvcg-bench",
            "--bin",
            "e3_bgp_convergence",
            "--",
            "--trace-out",
            &trace_arg,
        ],
        false,
    ) {
        return 1;
    }
    let trace = match std::fs::read_to_string(&trace_path) {
        Ok(text) => text,
        Err(err) => {
            println!("==> causal: cannot read {}: {err}", trace_path.display());
            return 1;
        }
    };
    let dags = match CausalDag::from_jsonl(&trace) {
        Ok(dags) => dags,
        Err(err) => {
            println!("==> causal: trace does not build a DAG: {err}");
            return 1;
        }
    };
    let mut problems = 0usize;
    if dags.is_empty() {
        println!("==> causal: trace produced no run segments");
        problems += 1;
    }
    let mut summaries = Vec::with_capacity(dags.len());
    for (idx, dag) in dags.iter().enumerate() {
        if let Err(err) = dag.validate() {
            println!("==> causal: segment {idx}: {err}");
            problems += 1;
        }
        if let Err(err) = dag.validate_origin_roots() {
            println!("==> causal: segment {idx}: {err}");
            problems += 1;
        }
        summaries.push(dag.summary());
    }
    let doc = causal::summaries_to_json(&summaries);
    if let Err(err) = causal::validate_summary_json(&doc) {
        println!("==> causal: summary document invalid: {err}");
        problems += 1;
    }
    let summary_path = out_dir.join("causal.json");
    if let Err(err) = std::fs::write(&summary_path, &doc) {
        println!("==> causal: cannot write {}: {err}", summary_path.display());
        problems += 1;
    }

    println!("\ncausal provenance ({} run segment(s)):", summaries.len());
    println!("  segment | updates | links | roots | depth | stages | heaviest AS");
    for (idx, s) in summaries.iter().enumerate() {
        let stages = s.reported_stages.map_or("-".to_string(), |v| v.to_string());
        let heaviest = s
            .top_amplifiers
            .first()
            .map_or("-".to_string(), |(node, caused)| {
                format!("{node} ({caused} caused)")
            });
        println!(
            "  {idx:>7} | {:>7} | {:>5} | {:>5} | {:>5} | {stages:>6} | {heaviest}",
            s.updates, s.links, s.roots, s.max_depth
        );
    }
    if let Some(deepest) = summaries.iter().max_by_key(|s| s.max_depth) {
        println!(
            "  deepest causal chain: {} hop(s) through updates {:?}",
            deepest.max_depth, deepest.critical_path
        );
    }
    println!("  summary written to {}", summary_path.display());
    problems
}

/// Path of the checked-in schema BENCH_scale.json must conform to.
const BENCH_SCHEMA: &str = "crates/bench/bench-scale-schema.json";

/// Path of the checked-in schema BENCH_chaos.json must conform to.
const CHAOS_SCHEMA: &str = "crates/bench/bench-chaos-schema.json";

/// Checks one parsed JSON value against a schema type tag (see
/// [`BENCH_SCHEMA`]'s `description` for the vocabulary).
fn bench_type_ok(value: &bgpvcg_telemetry::json::JsonValue, ty: &str) -> bool {
    use bgpvcg_telemetry::json::JsonValue;
    match ty {
        "uint" => matches!(value, JsonValue::UInt(_)),
        "number" => matches!(value, JsonValue::UInt(_) | JsonValue::Float(_)),
        "string" => matches!(value, JsonValue::String(_)),
        "bool" => matches!(value, JsonValue::Bool(_)),
        "array" => matches!(value, JsonValue::Array(_)),
        "object" => matches!(value, JsonValue::Object(_)),
        _ => false,
    }
}

/// Validates one BENCH_scale.json document against the checked-in schema:
/// every `top` key present with its declared type, `rows` non-empty, and
/// every row carrying every `row` key with its declared type. Keys listed
/// under `row_optional` are type-checked only when a row carries them
/// (older committed baselines without them stay valid). Returns the
/// number of problems found (all printed).
fn validate_bench_json(
    label: &str,
    text: &str,
    schema: &bgpvcg_telemetry::json::JsonValue,
) -> usize {
    use bgpvcg_telemetry::json::{parse, JsonValue};
    let doc = match parse(text) {
        Ok(doc) => doc,
        Err(err) => {
            println!("==> {label}: does not parse: {err}");
            return 1;
        }
    };
    let mut problems = 0usize;
    let check_keys = |spec: Option<&JsonValue>, target: &JsonValue, what: &str| {
        let Some(JsonValue::Object(spec)) = spec else {
            println!("==> {label}: schema has no `{what}` object");
            return 1usize;
        };
        let mut bad = 0usize;
        for (key, ty) in spec {
            let ty = ty.as_str().unwrap_or("");
            match target.get(key) {
                Some(value) if bench_type_ok(value, ty) => {}
                Some(_) => {
                    println!("==> {label}: {what} key `{key}` is not a {ty}");
                    bad += 1;
                }
                None => {
                    println!("==> {label}: {what} key `{key}` is missing");
                    bad += 1;
                }
            }
        }
        bad
    };
    // Optional row keys: validated when present, absent rows stay valid.
    let check_optional_keys = |row: &JsonValue| {
        let Some(JsonValue::Object(spec)) = schema.get("row_optional") else {
            return 0usize;
        };
        let mut bad = 0usize;
        for (key, ty) in spec {
            let ty = ty.as_str().unwrap_or("");
            if let Some(value) = row.get(key) {
                if !bench_type_ok(value, ty) {
                    println!("==> {label}: optional row key `{key}` is not a {ty}");
                    bad += 1;
                }
            }
        }
        bad
    };
    problems += check_keys(schema.get("top"), &doc, "top");
    match doc.get("rows") {
        Some(JsonValue::Array(rows)) if !rows.is_empty() => {
            for row in rows {
                problems += check_keys(schema.get("row"), row, "row");
                problems += check_optional_keys(row);
            }
        }
        Some(JsonValue::Array(_)) => {
            println!("==> {label}: `rows` is empty");
            problems += 1;
        }
        _ => {} // already reported by the `top` check
    }
    problems
}

/// Diffs a freshly generated trajectory against the committed baseline.
/// Every schema-declared field — top-level keys and each row's — must match
/// the baseline exactly, except the row fields the schema lists under
/// `timing` (environment-dependent nanosecond measurements and their
/// ratios). Exactness flags (`exact`) and count fields are thus pinned: a
/// protocol change that shifts stage/message/byte counts fails the diff
/// until the baseline is regenerated deliberately. Returns the number of
/// mismatches (all printed).
fn compare_bench_json(
    label: &str,
    fresh_text: &str,
    baseline_text: &str,
    schema: &bgpvcg_telemetry::json::JsonValue,
) -> usize {
    use bgpvcg_telemetry::json::{parse, JsonValue};
    let (fresh, baseline) = match (parse(fresh_text), parse(baseline_text)) {
        (Ok(f), Ok(b)) => (f, b),
        (Err(err), _) => {
            println!("==> {label}: fresh output does not parse: {err}");
            return 1;
        }
        (_, Err(err)) => {
            println!("==> {label}: baseline does not parse: {err}");
            return 1;
        }
    };
    let timing: Vec<&str> = match schema.get("timing") {
        Some(JsonValue::Array(entries)) => entries.iter().filter_map(JsonValue::as_str).collect(),
        _ => {
            println!("==> {label}: schema has no `timing` exemption list");
            return 1;
        }
    };
    let mut problems = 0usize;
    let render = |v: Option<&JsonValue>| v.map(JsonValue::render);
    if let Some(JsonValue::Object(top)) = schema.get("top") {
        for key in top.keys().filter(|k| k.as_str() != "rows") {
            let (f, b) = (render(fresh.get(key)), render(baseline.get(key)));
            if f != b {
                println!(
                    "==> {label}: top key `{key}` differs: fresh {} vs baseline {}",
                    f.unwrap_or_else(|| "<missing>".into()),
                    b.unwrap_or_else(|| "<missing>".into())
                );
                problems += 1;
            }
        }
    }
    let (Some(JsonValue::Array(fresh_rows)), Some(JsonValue::Array(baseline_rows))) =
        (fresh.get("rows"), baseline.get("rows"))
    else {
        println!("==> {label}: both documents need a `rows` array");
        return problems + 1;
    };
    if fresh_rows.len() != baseline_rows.len() {
        println!(
            "==> {label}: row count differs: fresh {} vs baseline {}",
            fresh_rows.len(),
            baseline_rows.len()
        );
        return problems + 1;
    }
    let Some(JsonValue::Object(row_spec)) = schema.get("row") else {
        println!("==> {label}: schema has no `row` object");
        return problems + 1;
    };
    for (idx, (f_row, b_row)) in fresh_rows.iter().zip(baseline_rows).enumerate() {
        for key in row_spec.keys() {
            if timing.contains(&key.as_str()) {
                continue;
            }
            let (f, b) = (render(f_row.get(key)), render(b_row.get(key)));
            if f != b {
                println!(
                    "==> {label}: row {idx} key `{key}` differs: fresh {} vs baseline {}",
                    f.unwrap_or_else(|| "<missing>".into()),
                    b.unwrap_or_else(|| "<missing>".into())
                );
                problems += 1;
            }
        }
    }
    problems
}

/// Runs one benchmark binary in full (non-smoke) mode into
/// `target/bench/<name>.fresh.json` and diffs the result against the
/// committed repo-root baseline via [`compare_bench_json`]. Returns the
/// number of problems (all printed).
fn compare_against_baseline(
    root: &Path,
    bin: &str,
    baseline_name: &str,
    schema: &bgpvcg_telemetry::json::JsonValue,
) -> usize {
    let out_dir = root.join("target").join("bench");
    if let Err(err) = std::fs::create_dir_all(&out_dir) {
        println!("==> compare: cannot create {}: {err}", out_dir.display());
        return 1;
    }
    let fresh_path = out_dir.join(format!("{baseline_name}.fresh.json"));
    let fresh_arg = fresh_path.display().to_string();
    if !run_step(
        root,
        &format!("{bin} full run (compare)"),
        "cargo",
        &[
            "run",
            "--release",
            "-q",
            "-p",
            "bgpvcg-bench",
            "--bin",
            bin,
            "--",
            "--out",
            &fresh_arg,
        ],
        false,
    ) {
        return 1;
    }
    let label = format!("{baseline_name}.json compare");
    let fresh_text = match std::fs::read_to_string(&fresh_path) {
        Ok(text) => text,
        Err(err) => {
            println!("==> {label}: cannot read {}: {err}", fresh_path.display());
            return 1;
        }
    };
    let baseline_path = root.join(format!("{baseline_name}.json"));
    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => text,
        Err(err) => {
            println!(
                "==> {label}: cannot read {}: {err}",
                baseline_path.display()
            );
            return 1;
        }
    };
    let problems = compare_bench_json(&label, &fresh_text, &baseline_text, schema);
    if problems == 0 {
        println!("==> {label}: fresh run matches the committed baseline (timing exempt)");
    }
    problems
}

/// The perf-record pipeline: run E14 (serial vs parallel — the binary
/// itself asserts the two are bit-identical) and validate the emitted
/// JSON against [`BENCH_SCHEMA`]. With `--smoke`, small sizes run into
/// `target/bench/` and the checked-in repo-root `BENCH_scale.json` is
/// validated as well, so CI catches both a broken emitter and a stale or
/// hand-mangled trajectory file. With `--compare`, a fresh full trajectory
/// is diffed field-by-field against the committed baseline (timing exempt).
fn cmd_bench(root: &Path, smoke: bool, compare: bool) -> ExitCode {
    use bgpvcg_telemetry::json;

    let schema_text = match std::fs::read_to_string(root.join(BENCH_SCHEMA)) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("xtask bench: cannot read {BENCH_SCHEMA}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let schema = match json::parse(&schema_text) {
        Ok(schema) => schema,
        Err(err) => {
            eprintln!("xtask bench: {BENCH_SCHEMA} does not parse: {err}");
            return ExitCode::FAILURE;
        }
    };

    let out_path = if smoke {
        let out_dir = root.join("target").join("bench");
        if let Err(err) = std::fs::create_dir_all(&out_dir) {
            eprintln!("xtask bench: cannot create {}: {err}", out_dir.display());
            return ExitCode::FAILURE;
        }
        out_dir.join("BENCH_scale.smoke.json")
    } else {
        root.join("BENCH_scale.json")
    };
    let out_arg = out_path.display().to_string();
    let mut cargo_args = vec![
        "run",
        "--release",
        "-q",
        "-p",
        "bgpvcg-bench",
        "--bin",
        "e14_scale",
        "--",
        "--out",
        &out_arg,
    ];
    if smoke {
        cargo_args.push("--smoke");
    }
    if !run_step(root, "e14 scale run", "cargo", &cargo_args, false) {
        return ExitCode::FAILURE;
    }

    let mut problems = 0usize;
    match std::fs::read_to_string(&out_path) {
        Ok(text) => problems += validate_bench_json("bench output", &text, &schema),
        Err(err) => {
            println!("==> cannot read {}: {err}", out_path.display());
            problems += 1;
        }
    }
    if smoke {
        // The checked-in trajectories must stay schema-valid too.
        let tracked = root.join("BENCH_scale.json");
        match std::fs::read_to_string(&tracked) {
            Ok(text) => problems += validate_bench_json("BENCH_scale.json", &text, &schema),
            Err(err) => {
                println!("==> cannot read {}: {err}", tracked.display());
                problems += 1;
            }
        }
        problems += validate_tracked_chaos(root);
    }
    if compare {
        problems += compare_against_baseline(root, "e14_scale", "BENCH_scale", &schema);
    }

    if problems == 0 {
        println!("\nxtask bench: BENCH_scale.json schema-valid");
        ExitCode::SUCCESS
    } else {
        println!("\nxtask bench: FAILED ({problems} problem(s))");
        ExitCode::FAILURE
    }
}

/// Validates the checked-in repo-root `BENCH_chaos.json` against
/// [`CHAOS_SCHEMA`]; returns the number of problems (all printed).
fn validate_tracked_chaos(root: &Path) -> usize {
    use bgpvcg_telemetry::json;

    let schema_text = match std::fs::read_to_string(root.join(CHAOS_SCHEMA)) {
        Ok(text) => text,
        Err(err) => {
            println!("==> cannot read {CHAOS_SCHEMA}: {err}");
            return 1;
        }
    };
    let schema = match json::parse(&schema_text) {
        Ok(schema) => schema,
        Err(err) => {
            println!("==> {CHAOS_SCHEMA} does not parse: {err}");
            return 1;
        }
    };
    let tracked = root.join("BENCH_chaos.json");
    match std::fs::read_to_string(&tracked) {
        Ok(text) => validate_bench_json("BENCH_chaos.json", &text, &schema),
        Err(err) => {
            println!("==> cannot read {}: {err}", tracked.display());
            1
        }
    }
}

/// The robustness pipeline: run E19 (every run asserts chaos self-stabilizes
/// to the bit-identical fault-free fixpoint before reporting) and validate
/// the emitted JSON against [`CHAOS_SCHEMA`]. With `--smoke`, small sizes
/// run into `target/bench/` and the checked-in repo-root `BENCH_chaos.json`
/// is validated as well. With `--compare`, a fresh full trajectory is
/// diffed field-by-field against the committed baseline (every chaos field
/// is a deterministic count, so nothing is exempt).
fn cmd_chaos(root: &Path, smoke: bool, compare: bool) -> ExitCode {
    use bgpvcg_telemetry::json;

    let schema_text = match std::fs::read_to_string(root.join(CHAOS_SCHEMA)) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("xtask chaos: cannot read {CHAOS_SCHEMA}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let schema = match json::parse(&schema_text) {
        Ok(schema) => schema,
        Err(err) => {
            eprintln!("xtask chaos: {CHAOS_SCHEMA} does not parse: {err}");
            return ExitCode::FAILURE;
        }
    };

    let out_path = if smoke {
        let out_dir = root.join("target").join("bench");
        if let Err(err) = std::fs::create_dir_all(&out_dir) {
            eprintln!("xtask chaos: cannot create {}: {err}", out_dir.display());
            return ExitCode::FAILURE;
        }
        out_dir.join("BENCH_chaos.smoke.json")
    } else {
        root.join("BENCH_chaos.json")
    };
    let out_arg = out_path.display().to_string();
    let mut cargo_args = vec![
        "run",
        "--release",
        "-q",
        "-p",
        "bgpvcg-bench",
        "--bin",
        "e19_chaos",
        "--",
        "--out",
        &out_arg,
    ];
    if smoke {
        cargo_args.push("--smoke");
    }
    if !run_step(root, "e19 chaos run", "cargo", &cargo_args, false) {
        return ExitCode::FAILURE;
    }

    let mut problems = 0usize;
    match std::fs::read_to_string(&out_path) {
        Ok(text) => problems += validate_bench_json("chaos output", &text, &schema),
        Err(err) => {
            println!("==> cannot read {}: {err}", out_path.display());
            problems += 1;
        }
    }
    if smoke {
        problems += validate_tracked_chaos(root);
    }
    if compare {
        problems += compare_against_baseline(root, "e19_chaos", "BENCH_chaos", &schema);
    }

    if problems == 0 {
        println!("\nxtask chaos: BENCH_chaos.json schema-valid");
        ExitCode::SUCCESS
    } else {
        println!("\nxtask chaos: FAILED ({problems} problem(s))");
        ExitCode::FAILURE
    }
}

fn cmd_ci(root: &Path) -> ExitCode {
    let mut ok = true;
    ok &= run_step(root, "format check", "cargo", &["fmt", "--check"], true);
    ok &= cmd_lint(root) == ExitCode::SUCCESS;
    ok &= cmd_analyze(root) == ExitCode::SUCCESS;
    ok &= cmd_audit(root, true) == ExitCode::SUCCESS;
    ok &= run_step(
        root,
        "clippy wall",
        "cargo",
        &[
            "clippy",
            "--workspace",
            "--all-targets",
            "--",
            "-D",
            "warnings",
        ],
        true,
    );
    ok &= run_step(
        root,
        "workspace tests",
        "cargo",
        &["test", "-q", "--workspace"],
        false,
    );
    ok &= run_step(
        root,
        "invariant tests",
        "cargo",
        &["test", "-q", "--features", "invariant-checks"],
        false,
    );
    ok &= cmd_obs(root, true, true, true) == ExitCode::SUCCESS;
    ok &= cmd_bench(root, true, true) == ExitCode::SUCCESS;
    ok &= cmd_chaos(root, true, true) == ExitCode::SUCCESS;
    ok &= run_step(
        root,
        "adversary smoke",
        "cargo",
        &[
            "run",
            "-q",
            "-p",
            "bgpvcg-bench",
            "--bin",
            "e20_adversary",
            "--",
            "--smoke",
        ],
        false,
    );
    ok &= run_step(
        root,
        "codec microbench smoke",
        "cargo",
        &[
            "bench",
            "-q",
            "-p",
            "bgpvcg-bench",
            "--bench",
            "codec",
            "--",
            "--test",
        ],
        false,
    );
    if ok {
        println!("xtask ci: all steps passed");
        ExitCode::SUCCESS
    } else {
        println!("xtask ci: FAILED");
        ExitCode::FAILURE
    }
}
