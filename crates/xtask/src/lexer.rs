//! A minimal line-oriented Rust lexer for the lint rules.
//!
//! Full parsing is neither available (std-only, offline: no syn) nor
//! needed: every rule matches *code* tokens, so it suffices to blank out
//! the three things that cause textual false positives — comments, string
//! literals, and char literals — while preserving line structure and byte
//! columns. Doc comments are comments here, which is exactly right: a
//! `panic!` inside a doc example must not trip the no-panic rule.

/// One source file, split into per-line code text with comments/strings
/// blanked, plus the line-level lint annotations found in comments.
#[derive(Debug)]
pub struct LexedFile {
    /// Code-only text per line: comments, string contents, and char
    /// literals replaced by spaces (delimiters of strings are kept so
    /// token boundaries survive).
    pub code_lines: Vec<String>,
    /// `lint:allow(reason)` annotations: (line index, reason).
    pub allows: Vec<Allow>,
    /// Line indices (0-based) that belong to `#[cfg(test)]` modules.
    pub test_lines: Vec<bool>,
}

/// One `// lint:allow(reason)` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// 0-based line index the annotation sits on.
    pub line: usize,
    /// The reason text between the parentheses.
    pub reason: String,
    /// Set by the rule engine when the annotation suppresses a violation;
    /// audited afterwards so stale annotations are themselves errors.
    pub used: std::cell::Cell<bool>,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Lexes `source` into code-only lines plus annotations.
pub fn lex(source: &str) -> LexedFile {
    let mut code = String::with_capacity(source.len());
    let mut comment = String::with_capacity(64);
    let mut code_lines = Vec::new();
    let mut allows = Vec::new();
    let mut mode = Mode::Code;
    // Doc comments (`///`, `//!`, `/**`, `/*!`) are documentation, not
    // annotations: an allow-shaped string inside them (this file's own
    // docs, for instance) must not register as a live allow.
    let mut doc_comment = false;
    let mut line_no = 0usize;

    let bytes = source.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            if let Mode::LineComment = mode {
                mode = Mode::Code;
                doc_comment = false;
            }
            if let Some(reason) = parse_allow(&comment) {
                allows.push(Allow {
                    line: line_no,
                    reason,
                    used: std::cell::Cell::new(false),
                });
            }
            comment.clear();
            code_lines.push(std::mem::take(&mut code));
            line_no += 1;
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    mode = Mode::LineComment;
                    doc_comment = matches!(bytes.get(i + 2), Some(&b'/') | Some(&b'!'));
                    code.push(' ');
                    i += 1;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    mode = Mode::BlockComment(1);
                    doc_comment = matches!(bytes.get(i + 2), Some(&b'*') | Some(&b'!'));
                    code.push(' ');
                    i += 1;
                } else if b == b'"' {
                    mode = Mode::Str;
                    code.push('"');
                } else if b == b'r' && matches!(bytes.get(i + 1), Some(&b'"') | Some(&b'#')) {
                    // Possible raw string: r"..." or r#"..."#.
                    let mut hashes = 0u32;
                    let mut j = i + 1;
                    while bytes.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&b'"') {
                        mode = Mode::RawStr(hashes);
                        code.push('"');
                        i = j;
                    } else {
                        code.push(b as char);
                    }
                } else if b == b'\'' {
                    // Char literal vs lifetime: a lifetime is ' followed by
                    // an identifier NOT closed by another quote soon. Treat
                    // as char literal when the matching close quote is
                    // within 3 bytes (covers '\n', '\\', 'x').
                    let close = (i + 1..=(i + 4).min(bytes.len().saturating_sub(1)))
                        .find(|&j| bytes[j] == b'\'' && (j > i + 1 || bytes[i + 1] == b'\\'));
                    if let Some(_j) = close {
                        mode = Mode::Char;
                        code.push('\'');
                    } else {
                        code.push('\'');
                    }
                } else {
                    code.push(b as char);
                }
            }
            Mode::LineComment => {
                if !doc_comment {
                    comment.push(b as char);
                }
                code.push(' ');
            }
            Mode::BlockComment(depth) => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    code.push(' ');
                    i += 1;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    mode = Mode::BlockComment(depth + 1);
                    code.push(' ');
                    i += 1;
                } else {
                    code.push(' ');
                }
                if let Mode::BlockComment(_) = mode {
                    if !doc_comment {
                        comment.push(b as char);
                    }
                } else {
                    doc_comment = false;
                }
            }
            Mode::Str => {
                if b == b'\\' {
                    code.push(' ');
                    i += 1;
                    if i < bytes.len() && bytes[i] != b'\n' {
                        code.push(' ');
                    } else {
                        continue; // escaped newline: reprocess the \n above
                    }
                } else if b == b'"' {
                    mode = Mode::Code;
                    code.push('"');
                } else {
                    code.push(' ');
                }
            }
            Mode::RawStr(hashes) => {
                if b == b'"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && bytes.get(j) == Some(&b'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        mode = Mode::Code;
                        code.push('"');
                        i = j - 1;
                    } else {
                        code.push(' ');
                    }
                } else {
                    code.push(' ');
                }
            }
            Mode::Char => {
                if b == b'\\' {
                    code.push(' ');
                    i += 1;
                    if i < bytes.len() && bytes[i] != b'\n' {
                        code.push(' ');
                    } else {
                        continue;
                    }
                } else if b == b'\'' {
                    mode = Mode::Code;
                    code.push('\'');
                } else {
                    code.push(' ');
                }
            }
        }
        i += 1;
    }
    if let Some(reason) = parse_allow(&comment) {
        allows.push(Allow {
            line: line_no,
            reason,
            used: std::cell::Cell::new(false),
        });
    }
    code_lines.push(code);

    let test_lines = mark_test_lines(&code_lines);
    LexedFile {
        code_lines,
        allows,
        test_lines,
    }
}

/// Extracts the reason from a `lint:allow(reason)` comment, if present.
fn parse_allow(comment: &str) -> Option<String> {
    let idx = comment.find("lint:allow(")?;
    let rest = &comment[idx + "lint:allow(".len()..];
    let close = rest.find(')')?;
    Some(rest[..close].trim().to_string())
}

/// Marks every line inside a `#[cfg(test)]`-gated item (module or fn) by
/// tracking brace depth from the gated item's opening brace to its close.
fn mark_test_lines(code_lines: &[String]) -> Vec<bool> {
    let mut marks = vec![false; code_lines.len()];
    let mut pending_cfg_test = false;
    let mut depth_stack: Vec<i32> = Vec::new(); // brace depth at each gated item entry
    let mut depth: i32 = 0;
    for (idx, line) in code_lines.iter().enumerate() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("#[cfg(test)]") {
            pending_cfg_test = true;
        }
        if !depth_stack.is_empty() {
            marks[idx] = true;
        }
        for ch in line.chars() {
            match ch {
                '{' => {
                    if pending_cfg_test {
                        depth_stack.push(depth);
                        pending_cfg_test = false;
                        marks[idx] = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if depth_stack.last() == Some(&depth) {
                        depth_stack.pop();
                    }
                }
                _ => {}
            }
        }
    }
    marks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let lexed = lex("let x = \"panic!\"; // panic! here\nlet y = 1; /* unwrap() */");
        assert!(!lexed.code_lines[0].contains("panic"));
        assert!(!lexed.code_lines[1].contains("unwrap"));
        assert!(lexed.code_lines[0].contains("let x"));
    }

    #[test]
    fn allow_annotations_are_collected() {
        let lexed = lex("foo(); // lint:allow(engine precondition)\nbar();");
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].line, 0);
        assert_eq!(lexed.allows[0].reason, "engine precondition");
    }

    #[test]
    fn cfg_test_blocks_are_marked() {
        let src = "pub fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\npub fn c() {}";
        let lexed = lex(src);
        assert!(!lexed.test_lines[0]);
        assert!(lexed.test_lines[3]);
        assert!(!lexed.test_lines[5]);
    }

    #[test]
    fn doc_comments_do_not_register_allows() {
        let src = "/// The `lint:allow(reason)` grammar.\n//! lint:allow(inner doc)\n/** lint:allow(block doc) */\nfoo(); // lint:allow(real one)";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1, "{:?}", lexed.allows);
        assert_eq!(lexed.allows[0].line, 3);
        assert_eq!(lexed.allows[0].reason, "real one");
    }

    #[test]
    fn raw_strings_are_blanked() {
        let lexed = lex("let s = r#\"unwrap() panic!\"#; s.len();");
        assert!(!lexed.code_lines[0].contains("unwrap"));
        assert!(lexed.code_lines[0].contains("len"));
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> &'a str { x } // unwrap()");
        assert!(lexed.code_lines[0].contains("fn f<'a>"));
        assert!(!lexed.code_lines[0].contains("unwrap"));
    }
}
