//! A workspace call graph over the parsed item trees.
//!
//! Nodes are non-test functions; edges over-approximate "may call": a
//! method call `.name(…)` resolves to every known method `name`, a path
//! call `Type::name(…)` resolves to the named impl's method (or, when the
//! qualifier is a module, to free functions in that module), and a bare
//! call `name(…)` resolves to every free function `name`. Calls whose
//! target is not defined in the workspace (std, vendored stand-ins) have
//! no edge — their panic behavior is governed by the callee crates'
//! documented contracts, not this analysis.
//!
//! Over-approximation is the right default for a *reachability* analysis:
//! a spurious edge can only surface an extra path to audit (and annotate
//! with `// lint:allow(reason)`), never hide a real one.

use crate::parser::{FnItem, ParsedFile};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::PathBuf;

/// One call site extracted from a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called name's last segment (`update_size`).
    pub name: String,
    /// `Some("wire")` for path calls `wire::update_size(…)`; `None` for
    /// bare and method calls.
    pub qualifier: Option<String>,
    /// True for `.name(…)` receiver calls.
    pub is_method: bool,
}

/// One function node in the graph.
#[derive(Debug)]
pub struct FnNode {
    /// Which source file the function lives in (index into the driver's
    /// file list).
    pub file: usize,
    /// Workspace-relative path of that file.
    pub rel_path: PathBuf,
    /// The parsed item.
    pub item: FnItem,
    /// Outgoing call-site list (unresolved).
    pub calls: Vec<CallSite>,
}

/// The assembled graph plus name-resolution indexes.
#[derive(Debug)]
pub struct CallGraph {
    /// All non-test functions in the workspace.
    pub nodes: Vec<FnNode>,
    /// name → node indices of methods (fns with an owner) with that name.
    methods: BTreeMap<String, Vec<usize>>,
    /// name → node indices of free fns with that name.
    free: BTreeMap<String, Vec<usize>>,
    /// `Owner::name` → node indices.
    qualified: BTreeMap<String, Vec<usize>>,
    /// Every known impl/trait owner name (to tell `Type::f` from `mod::f`).
    owners: BTreeSet<String>,
    /// module-name → node indices of free fns whose file stem or inline
    /// module path contains that name.
    by_module: BTreeMap<String, Vec<usize>>,
    /// Resolved adjacency, built once by [`CallGraph::build`].
    edges: Vec<Vec<usize>>,
}

/// Rust keywords and control-flow words that look like calls (`if (…)`)
/// but are not.
const NON_CALLS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "move", "in", "as", "ref", "mut",
    "else", "let", "impl", "dyn", "where", "break", "continue", "unsafe", "use", "pub", "crate",
];

impl CallGraph {
    /// Builds the graph from every parsed file. `files[i]` is the parse of
    /// the file at `paths[i]`; `is_test_file[i]` marks integration-test /
    /// bench / example files whose fns never join the graph.
    pub fn build(paths: &[PathBuf], files: &[ParsedFile], is_test_file: &[bool]) -> CallGraph {
        let mut graph = CallGraph {
            nodes: Vec::new(),
            methods: BTreeMap::new(),
            free: BTreeMap::new(),
            qualified: BTreeMap::new(),
            owners: BTreeSet::new(),
            by_module: BTreeMap::new(),
            edges: Vec::new(),
        };
        for (file_idx, (path, parsed)) in paths.iter().zip(files).enumerate() {
            if is_test_file[file_idx] {
                continue;
            }
            let stem = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            for item in &parsed.fns {
                if item.is_test {
                    continue;
                }
                let idx = graph.nodes.len();
                if let Some(owner) = &item.owner {
                    graph.owners.insert(owner.clone());
                    graph
                        .methods
                        .entry(item.name.clone())
                        .or_default()
                        .push(idx);
                    graph
                        .qualified
                        .entry(format!("{owner}::{}", item.name))
                        .or_default()
                        .push(idx);
                } else {
                    graph.free.entry(item.name.clone()).or_default().push(idx);
                }
                let mut mods: Vec<String> = vec![stem.clone()];
                mods.extend(item.modules.iter().cloned());
                for m in mods {
                    graph.by_module.entry(m).or_default().push(idx);
                }
                graph.nodes.push(FnNode {
                    file: file_idx,
                    rel_path: path.clone(),
                    item: item.clone(),
                    calls: Vec::new(),
                });
            }
        }
        graph.edges = vec![Vec::new(); graph.nodes.len()];
        graph
    }

    /// Extracts call sites from each node's body lines and resolves edges.
    /// `code_lines[file]` are the lexed code-only lines of that file.
    pub fn resolve(&mut self, code_lines: &[&[String]]) {
        for idx in 0..self.nodes.len() {
            let node = &self.nodes[idx];
            let lines = code_lines[node.file];
            let mut calls = Vec::new();
            for (line_idx, line) in lines
                .iter()
                .enumerate()
                .take(node.item.body_end + 1)
                .skip(node.item.body_start)
            {
                // The body's first line still carries the tail of the
                // signature (`fn name(args) {`): scanning it whole would
                // read `name(` as a recursive call and resolve it to every
                // same-named fn. Only the text after the opening brace is
                // body.
                let text = if line_idx == node.item.body_start {
                    line.split_once('{').map_or("", |(_, rest)| rest)
                } else {
                    line.as_str()
                };
                extract_calls(text, &mut calls);
            }
            let mut targets = BTreeSet::new();
            for call in &calls {
                self.resolve_call(idx, call, &mut targets);
            }
            self.edges[idx] = targets.into_iter().collect();
            self.nodes[idx].calls = calls;
        }
    }

    /// Resolves one call site to target node indices (appended to `out`).
    fn resolve_call(&self, caller: usize, call: &CallSite, out: &mut BTreeSet<usize>) {
        match &call.qualifier {
            Some(q) if q == "Self" || q == "self" => {
                // Within the caller's own impl.
                if let Some(owner) = &self.nodes[caller].item.owner {
                    if let Some(hits) = self.qualified.get(&format!("{owner}::{}", call.name)) {
                        out.extend(hits.iter().copied());
                    }
                }
            }
            Some(q) if self.owners.contains(q) => {
                if let Some(hits) = self.qualified.get(&format!("{q}::{}", call.name)) {
                    out.extend(hits.iter().copied());
                }
            }
            Some(q) => {
                // Module-qualified call: free fns in any module named `q`.
                if let (Some(in_mod), Some(named)) =
                    (self.by_module.get(q), self.free.get(&call.name))
                {
                    let in_mod: BTreeSet<usize> = in_mod.iter().copied().collect();
                    out.extend(named.iter().copied().filter(|i| in_mod.contains(i)));
                }
            }
            None if call.is_method => {
                if let Some(hits) = self.methods.get(&call.name) {
                    out.extend(hits.iter().copied());
                }
            }
            None => {
                if let Some(hits) = self.free.get(&call.name) {
                    out.extend(hits.iter().copied());
                }
            }
        }
    }

    /// Node indices matching an entry-point spec: `Owner::name` exact, or a
    /// bare free-fn name.
    pub fn entry_nodes(&self, spec: &str) -> Vec<usize> {
        if spec.contains("::") {
            self.qualified.get(spec).cloned().unwrap_or_default()
        } else {
            self.free.get(spec).cloned().unwrap_or_default()
        }
    }

    /// BFS from `entries`, returning for each reached node the index of the
    /// node it was first reached from (entry nodes map to themselves).
    pub fn reach(&self, entries: &[usize]) -> BTreeMap<usize, usize> {
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &e in entries {
            if let std::collections::btree_map::Entry::Vacant(slot) = parent.entry(e) {
                slot.insert(e);
                queue.push_back(e);
            }
        }
        while let Some(at) = queue.pop_front() {
            for &next in &self.edges[at] {
                if let std::collections::btree_map::Entry::Vacant(slot) = parent.entry(next) {
                    slot.insert(at);
                    queue.push_back(next);
                }
            }
        }
        parent
    }

    /// The call chain `entry → … → node` implied by a BFS parent map,
    /// rendered as qualified names.
    pub fn chain(&self, parent: &BTreeMap<usize, usize>, mut node: usize) -> String {
        let mut names = vec![self.nodes[node].item.qualified()];
        while let Some(&p) = parent.get(&node) {
            if p == node {
                break;
            }
            names.push(self.nodes[p].item.qualified());
            node = p;
        }
        names.reverse();
        if names.len() > 7 {
            let skipped = names.len() - 6;
            let tail = names.split_off(names.len() - 3);
            names.truncate(3);
            names.push(format!("… {skipped} more …"));
            names.extend(tail);
        }
        names.join(" → ")
    }
}

/// Scans one code-only line for call sites, appending to `out`.
///
/// Recognized shapes: `name(`, `a::b::name(`, `.name(`. Macro invocations
/// (`name!(`) are skipped — the panic-family macros are handled as panic
/// *sites*, not calls. Uppercase bare/path targets are tuple-struct or
/// enum-variant constructors, which cannot panic, and are skipped too.
pub fn extract_calls(line: &str, out: &mut Vec<CallSite>) {
    let bytes = line.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if !(b.is_ascii_alphabetic() || b == b'_') {
            i += 1;
            continue;
        }
        // An identifier-path run: idents joined by `::`.
        let start = i;
        let mut segments: Vec<&str> = Vec::new();
        let mut seg_start = i;
        while i < bytes.len() {
            let c = bytes[i];
            if c.is_ascii_alphanumeric() || c == b'_' {
                i += 1;
            } else if c == b':' && bytes.get(i + 1) == Some(&b':') && i > seg_start {
                if bytes.get(i + 2) == Some(&b'<') {
                    break; // turbofish `name::<T>(` — handled below
                }
                segments.push(&line[seg_start..i]);
                i += 2;
                seg_start = i;
            } else {
                break;
            }
        }
        if seg_start < i {
            segments.push(&line[seg_start..i]);
        }
        let Some(&name) = segments.last() else {
            continue;
        };
        // Generic turbofish between the path and the parens: `name::<T>(`.
        let mut j = i;
        if line[j..].starts_with("::<") {
            let mut angle = 0i32;
            for (off, ch) in line[j + 2..].char_indices() {
                match ch {
                    '<' => angle += 1,
                    '>' => {
                        angle -= 1;
                        if angle == 0 {
                            j = j + 2 + off + 1;
                            break;
                        }
                    }
                    _ => {}
                }
            }
        }
        if line.as_bytes().get(j) != Some(&b'(') {
            continue;
        }
        // `name!(` is a macro, not a call.
        if bytes.get(i) == Some(&b'!') {
            continue;
        }
        if NON_CALLS.contains(&name) {
            continue;
        }
        let is_method = start > 0 && bytes[start - 1] == b'.';
        if name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            continue; // constructor / variant, not a fn
        }
        let qualifier = if segments.len() >= 2 {
            Some(segments[segments.len() - 2].to_string())
        } else {
            None
        };
        out.push(CallSite {
            name: name.to_string(),
            qualifier,
            is_method,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn names(line: &str) -> Vec<(String, Option<String>, bool)> {
        let mut out = Vec::new();
        extract_calls(line, &mut out);
        out.into_iter()
            .map(|c| (c.name, c.qualifier, c.is_method))
            .collect()
    }

    #[test]
    fn call_shapes_are_extracted() {
        assert_eq!(
            names("let x = wire::update_size(update);"),
            [("update_size".into(), Some("wire".into()), false)]
        );
        assert_eq!(
            names("self.nodes[i].handle(&delivered[i]);"),
            [("handle".into(), None, true)]
        );
        assert_eq!(names("free_fn(1, 2)"), [("free_fn".into(), None, false)]);
    }

    #[test]
    fn macros_keywords_and_constructors_are_not_calls() {
        assert!(names("panic!(\"boom\")").is_empty());
        assert!(names("if (x) { }").is_empty());
        assert!(names("Some(1); Err(2); RouteInfo::Withdrawn;").is_empty());
        assert!(names("AsId::Variant(3)").is_empty());
    }

    #[test]
    fn turbofish_calls_are_extracted() {
        assert_eq!(
            names("let v = collect::<Vec<u32>>(it);"),
            [("collect".into(), None, false)]
        );
    }

    fn graph_for(srcs: &[(&str, &str)]) -> CallGraph {
        let lexed: Vec<_> = srcs.iter().map(|(_, s)| lex(s)).collect();
        let parsed: Vec<_> = lexed.iter().map(parse).collect();
        let paths: Vec<PathBuf> = srcs.iter().map(|(p, _)| PathBuf::from(p)).collect();
        let is_test = vec![false; srcs.len()];
        let mut graph = CallGraph::build(&paths, &parsed, &is_test);
        let code: Vec<&[String]> = lexed.iter().map(|l| l.code_lines.as_slice()).collect();
        graph.resolve(&code);
        graph
    }

    #[test]
    fn method_calls_resolve_to_all_impls_and_bfs_reaches() {
        let graph = graph_for(&[
            (
                "crates/bgp/src/engine/sync.rs",
                "impl Engine {\n  fn run_stage(&mut self) { self.nodes[0].handle(); }\n}",
            ),
            (
                "crates/bgp/src/node.rs",
                "impl PlainNode {\n  fn handle(&mut self) { helper(); }\n}\nfn helper() {}",
            ),
        ]);
        let entries = graph.entry_nodes("Engine::run_stage");
        assert_eq!(entries.len(), 1);
        let reached = graph.reach(&entries);
        let reached_names: Vec<String> = reached
            .keys()
            .map(|&i| graph.nodes[i].item.qualified())
            .collect();
        assert!(reached_names.contains(&"PlainNode::handle".to_string()));
        assert!(reached_names.contains(&"helper".to_string()));
        let helper = *graph.free.get("helper").and_then(|v| v.first()).unwrap();
        assert_eq!(
            graph.chain(&reached, helper),
            "Engine::run_stage → PlainNode::handle → helper"
        );
    }

    #[test]
    fn module_qualified_calls_resolve_by_file_stem() {
        let graph = graph_for(&[
            (
                "crates/bgp/src/engine/sync.rs",
                "fn caller() { wire::update_size(); }",
            ),
            ("crates/bgp/src/wire.rs", "pub fn update_size() {}"),
            ("crates/bgp/src/other.rs", "pub fn update_size() {}"),
        ]);
        let entries = graph.entry_nodes("caller");
        let reached = graph.reach(&entries);
        let reached_files: Vec<&str> = reached
            .keys()
            .map(|&i| graph.nodes[i].rel_path.to_str().unwrap())
            .collect();
        assert!(reached_files.contains(&"crates/bgp/src/wire.rs"));
        assert!(!reached_files.contains(&"crates/bgp/src/other.rs"));
    }

    #[test]
    fn test_fns_are_excluded_from_the_graph() {
        let graph = graph_for(&[(
            "crates/bgp/src/x.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { live(); }\n}",
        )]);
        assert_eq!(graph.nodes.len(), 1);
    }
}
