//! A small item-tree parser layered on the lexer.
//!
//! The PR-1 lint rules matched tokens line by line; the call-graph analyses
//! (panic-reachability, determinism) need to know *which function* a token
//! sits in and *which functions that function calls*. This module parses
//! the lexer's code-only lines into a per-file item tree: functions with
//! their impl/trait owner and body span, and enums with their variants.
//!
//! It is deliberately not a full Rust grammar. Strings/comments are already
//! blanked by the lexer, so brace/paren counting is exact; items are
//! recognized by their introducing keyword after visibility/qualifier
//! prefixes. Constructs the workspace does not use (macros defining items,
//! nested functions outside `#[cfg(test)]`, `impl Trait for &T`) degrade to
//! attributing lines to the enclosing item — safe for the analyses, which
//! only ever *over*-approximate reachability.

use crate::lexer::LexedFile;

/// One parsed function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The bare function name (`run_stage`).
    pub name: String,
    /// The impl/trait self-type context, if any (`SyncEngine`), giving the
    /// qualified name `SyncEngine::run_stage`.
    pub owner: Option<String>,
    /// Inline-module path within the file (e.g. `["tests"]`).
    pub modules: Vec<String>,
    /// 0-based line of the `fn` keyword.
    pub sig_line: usize,
    /// 0-based line range covering the body (first line = the one with the
    /// opening brace, last = the one with the closing brace).
    pub body_start: usize,
    /// Inclusive 0-based last body line.
    pub body_end: usize,
    /// True when the item is inside `#[cfg(test)]` (per the lexer's marks).
    pub is_test: bool,
}

impl FnItem {
    /// `Owner::name` when the fn has an owner, else just `name`.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(owner) => format!("{owner}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One parsed enum with its variant names.
#[derive(Debug, Clone)]
pub struct EnumItem {
    /// The enum's name.
    pub name: String,
    /// Whether it is `pub` (rules only care about public vocabularies).
    pub is_pub: bool,
    /// `(variant name, 0-based line)` pairs, top-level variants only.
    pub variants: Vec<(String, usize)>,
    /// True when the enum is inside `#[cfg(test)]`.
    pub is_test: bool,
}

/// The item tree of one source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Every function item, in source order.
    pub fns: Vec<FnItem>,
    /// Every enum item, in source order.
    pub enums: Vec<EnumItem>,
    /// True when the file carries an inner `#![forbid(unsafe_code)]`.
    pub forbids_unsafe: bool,
}

/// What kind of item a pending (not-yet-braced) introduction opens.
#[derive(Debug, Clone, Copy, PartialEq)]
enum PendingKind {
    Fn,
    ImplOrTrait,
    Enum,
    Mod,
    /// struct/union: consumes its braces without opening a named scope.
    Opaque,
}

/// An item introduction whose opening brace has not been seen yet
/// (signatures and impl headers may span lines).
#[derive(Debug)]
struct Pending {
    kind: PendingKind,
    /// Accumulated header text (intro line onward, code-only).
    text: String,
    sig_line: usize,
    /// Paren/bracket/angle nesting inside the header; the `{` that opens
    /// the item body is the first one seen at nesting level 0.
    paren_depth: i32,
}

/// One open scope on the stack.
#[derive(Debug)]
struct Scope {
    kind: ScopeKind,
    /// Brace depth *before* the scope's opening brace; the scope closes
    /// when depth returns to this value.
    entry_depth: i32,
}

#[derive(Debug)]
enum ScopeKind {
    Mod(String),
    ImplOrTrait(String),
    /// Index into `ParsedFile::fns` to backfill `body_end`.
    Fn(usize),
    /// Index into `ParsedFile::enums` to collect variants into.
    Enum(usize),
    Opaque,
}

/// Parses one lexed file into its item tree.
pub fn parse(lexed: &LexedFile) -> ParsedFile {
    let mut out = ParsedFile::default();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut pending: Option<Pending> = None;
    let mut depth = 0i32;

    for (idx, line) in lexed.code_lines.iter().enumerate() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("#![forbid(unsafe_code)]") {
            out.forbids_unsafe = true;
        }
        let in_fn = matches!(
            scopes.last(),
            Some(Scope {
                kind: ScopeKind::Fn(_),
                ..
            })
        );
        if pending.is_none() && !in_fn && !trimmed.starts_with('#') {
            if let Some(kind) = intro_kind(trimmed) {
                pending = Some(Pending {
                    kind,
                    text: String::new(),
                    sig_line: idx,
                    paren_depth: 0,
                });
            }
        }
        if let Some(p) = pending.as_mut() {
            if !p.text.is_empty() {
                p.text.push(' ');
            }
            p.text.push_str(trimmed.trim_end());
        }

        // Character scan: header nesting, brace depth, scope transitions.
        let depth_at_line_start = depth;
        for ch in line.chars() {
            match ch {
                '(' | '[' => {
                    if let Some(p) = pending.as_mut() {
                        p.paren_depth += 1;
                    }
                }
                ')' | ']' => {
                    if let Some(p) = pending.as_mut() {
                        p.paren_depth -= 1;
                    }
                }
                // Header ended without a body: trait fn declaration,
                // `mod x;`, tuple struct, etc.
                ';' if pending.as_ref().is_some_and(|p| p.paren_depth <= 0) => {
                    pending = None;
                }
                '{' => {
                    if let Some(p) = pending.take_if(|p| p.paren_depth <= 0) {
                        let kind = open_scope(&p, idx, &scopes, lexed, &mut out);
                        scopes.push(Scope {
                            kind,
                            entry_depth: depth,
                        });
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    while scopes.last().is_some_and(|s| s.entry_depth == depth) {
                        let closed = scopes.pop();
                        if let Some(Scope {
                            kind: ScopeKind::Fn(fn_idx),
                            ..
                        }) = closed
                        {
                            out.fns[fn_idx].body_end = idx;
                        }
                    }
                }
                _ => {}
            }
        }

        // Enum variants: leading uppercase identifier at variant level. The
        // depth *at line start* is what matters — a braced payload opening
        // on the variant's own line (`Reachable {`) has already bumped
        // `depth` by the time the scan above finishes.
        if let Some(Scope {
            kind: ScopeKind::Enum(enum_idx),
            entry_depth,
        }) = scopes.last()
        {
            if depth_at_line_start == entry_depth + 1 && !trimmed.starts_with('#') {
                let ident: String = trimmed
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !ident.is_empty()
                    && ident.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                    && !trimmed.starts_with("pub ")
                {
                    out.enums[*enum_idx].variants.push((ident, idx));
                }
            }
        }
    }
    // Unclosed fn at EOF (truncated file): close at the last line.
    for f in &mut out.fns {
        if f.body_end < f.body_start {
            f.body_end = lexed.code_lines.len().saturating_sub(1);
        }
    }
    out
}

/// Converts a finalized pending header into a scope, registering the item.
fn open_scope(
    p: &Pending,
    brace_line: usize,
    scopes: &[Scope],
    lexed: &LexedFile,
    out: &mut ParsedFile,
) -> ScopeKind {
    let stripped = strip_qualifiers(&p.text);
    match p.kind {
        PendingKind::Fn => {
            let name = ident_after(stripped, "fn ");
            let owner = scopes.iter().rev().find_map(|s| match &s.kind {
                ScopeKind::ImplOrTrait(t) => Some(t.clone()),
                _ => None,
            });
            let modules: Vec<String> = scopes
                .iter()
                .filter_map(|s| match &s.kind {
                    ScopeKind::Mod(m) => Some(m.clone()),
                    _ => None,
                })
                .collect();
            let is_test = lexed.test_lines.get(p.sig_line).copied().unwrap_or(false)
                || modules.iter().any(|m| m == "tests");
            out.fns.push(FnItem {
                name,
                owner,
                modules,
                sig_line: p.sig_line,
                body_start: brace_line,
                body_end: 0,
                is_test,
            });
            ScopeKind::Fn(out.fns.len() - 1)
        }
        PendingKind::ImplOrTrait => {
            let name = if stripped.starts_with("trait ") {
                ident_after(stripped, "trait ")
            } else {
                impl_target(stripped)
            };
            ScopeKind::ImplOrTrait(name)
        }
        PendingKind::Enum => {
            let name = ident_after(stripped, "enum ");
            let is_test = lexed.test_lines.get(p.sig_line).copied().unwrap_or(false);
            out.enums.push(EnumItem {
                name,
                is_pub: p.text.trim_start().starts_with("pub"),
                variants: Vec::new(),
                is_test,
            });
            ScopeKind::Enum(out.enums.len() - 1)
        }
        PendingKind::Mod => ScopeKind::Mod(ident_after(stripped, "mod ")),
        PendingKind::Opaque => ScopeKind::Opaque,
    }
}

/// Strips visibility and fn-qualifier prefixes (`pub`, `pub(crate)`,
/// `const`, `async`, `unsafe`, `extern "C"`, `default`) from an item header.
fn strip_qualifiers(text: &str) -> &str {
    let mut rest = text.trim_start();
    loop {
        if let Some(after) = rest.strip_prefix("pub") {
            let after = after.trim_start();
            if let Some(close) = after.strip_prefix('(').and_then(|a| a.find(')')) {
                rest = after[close + 1..].trim_start();
            } else {
                rest = after;
            }
            continue;
        }
        let mut advanced = false;
        for q in ["const ", "async ", "unsafe ", "default ", "extern "] {
            if let Some(after) = rest.strip_prefix(q) {
                rest = after.trim_start();
                advanced = true;
            }
        }
        if !advanced {
            return rest;
        }
    }
}

/// The identifier following `prefix` in `text` (empty if absent).
fn ident_after(text: &str, prefix: &str) -> String {
    text.strip_prefix(prefix)
        .map(|rest| {
            rest.trim_start()
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect()
        })
        .unwrap_or_default()
}

/// Extracts the self-type name from an `impl` header: the last path segment
/// of the type after `for` (trait impls) or directly after the generics
/// (inherent impls). `impl<N: ProtocolNode> SyncEngine<N>` → `SyncEngine`;
/// `impl fmt::Display for RunReport` → `RunReport`.
fn impl_target(text: &str) -> String {
    let rest = text.strip_prefix("impl").unwrap_or(text);
    // Skip the generic parameter list, tracking angle-bracket nesting.
    let mut chars = rest.char_indices().peekable();
    let mut angle = 0i32;
    let mut start = 0usize;
    for (i, ch) in chars.by_ref() {
        match ch {
            '<' => angle += 1,
            '>' => angle -= 1,
            _ if angle == 0 => {
                start = i;
                break;
            }
            _ => {}
        }
    }
    let mut tail = rest[start..].trim();
    // Trait impl: the self type follows ` for ` at angle level 0.
    let mut angle = 0i32;
    let bytes = tail.as_bytes();
    for i in 0..bytes.len() {
        match bytes[i] {
            b'<' => angle += 1,
            b'>' => angle -= 1,
            b'f' if angle == 0
                && tail[i..].starts_with("for ")
                && i > 0
                && bytes[i - 1] == b' ' =>
            {
                tail = tail[i + 4..].trim_start();
                break;
            }
            _ => {}
        }
    }
    // Cut the type expression at its generics / where clause / brace.
    let mut end = tail.len();
    for (i, ch) in tail.char_indices() {
        if ch == '<' || ch == '{' {
            end = i;
            break;
        }
        if tail[i..].starts_with(" where") || tail[i..].starts_with(" {") {
            end = i;
            break;
        }
    }
    let ty = tail[..end].trim().trim_start_matches('&');
    ty.rsplit("::")
        .next()
        .unwrap_or(ty)
        .trim()
        .trim_start_matches("dyn ")
        .chars()
        .filter(|c| c.is_alphanumeric() || *c == '_')
        .collect()
}

/// Classifies an item-introduction line, if it is one.
fn intro_kind(trimmed: &str) -> Option<PendingKind> {
    let stripped = strip_qualifiers(trimmed);
    if stripped.starts_with("fn ") {
        Some(PendingKind::Fn)
    } else if stripped.starts_with("impl ")
        || stripped.starts_with("impl<")
        || stripped.starts_with("trait ")
    {
        Some(PendingKind::ImplOrTrait)
    } else if stripped.starts_with("enum ") {
        Some(PendingKind::Enum)
    } else if stripped.starts_with("mod ") {
        Some(PendingKind::Mod)
    } else if stripped.starts_with("struct ") || stripped.starts_with("union ") {
        Some(PendingKind::Opaque)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&lex(src))
    }

    #[test]
    fn free_and_method_fns_are_parsed_with_owners() {
        let src = "\
pub fn free(x: u32) -> u32 { x }
impl<N: ProtocolNode> SyncEngine<N> {
    fn run_stage(
        &mut self,
        stage: usize,
    ) -> usize {
        stage
    }
}
impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Ok(())
    }
}";
        let tree = parse_src(src);
        let names: Vec<String> = tree.fns.iter().map(FnItem::qualified).collect();
        assert_eq!(
            names,
            ["free", "SyncEngine::run_stage", "RunReport::fmt"],
            "{tree:?}"
        );
        let run_stage = &tree.fns[1];
        assert_eq!(run_stage.sig_line, 2);
        assert_eq!(run_stage.body_start, 5);
        assert_eq!(run_stage.body_end, 7);
    }

    #[test]
    fn trait_decls_without_bodies_are_skipped_but_defaults_parse() {
        let src = "\
pub trait ProtocolNode {
    fn id(&self) -> AsId;
    fn start(&mut self) -> Option<Update> {
        None
    }
}";
        let tree = parse_src(src);
        let names: Vec<String> = tree.fns.iter().map(FnItem::qualified).collect();
        assert_eq!(names, ["ProtocolNode::start"], "{tree:?}");
    }

    #[test]
    fn cfg_test_and_mod_tests_fns_are_marked() {
        let src = "\
fn live() {}
#[cfg(test)]
mod tests {
    fn helper() {}
}";
        let tree = parse_src(src);
        assert!(!tree.fns[0].is_test);
        assert!(tree.fns[1].is_test);
        assert_eq!(tree.fns[1].modules, ["tests"]);
    }

    #[test]
    fn enums_collect_variants_not_fields() {
        let src = "\
pub enum RouteInfo {
    Reachable {
        path: Vec<AsId>,
        path_cost: Cost,
    },
    Withdrawn,
}";
        let tree = parse_src(src);
        assert_eq!(tree.enums.len(), 1);
        let vars: Vec<&str> = tree.enums[0]
            .variants
            .iter()
            .map(|(v, _)| v.as_str())
            .collect();
        assert_eq!(vars, ["Reachable", "Withdrawn"]);
        assert!(tree.enums[0].is_pub);
    }

    #[test]
    fn forbid_unsafe_is_detected() {
        assert!(parse_src("#![forbid(unsafe_code)]\nfn f() {}").forbids_unsafe);
        assert!(!parse_src("fn f() {}").forbids_unsafe);
    }

    #[test]
    fn one_line_fns_close_on_their_own_line() {
        let src =
            "impl AsId {\n    pub fn index(self) -> usize { self.0 as usize }\n}\nfn after() {}";
        let tree = parse_src(src);
        assert_eq!(tree.fns[0].qualified(), "AsId::index");
        assert_eq!(tree.fns[0].body_end, 1);
        assert_eq!(tree.fns[1].qualified(), "after");
    }

    #[test]
    fn impl_headers_with_where_clauses_resolve_the_self_type() {
        let src = "impl<T> Clock for ManualClock\nwhere\n    T: Send,\n{\n    fn now_nanos(&self) -> u64 { 0 }\n}";
        let tree = parse_src(src);
        assert_eq!(tree.fns[0].qualified(), "ManualClock::now_nanos");
    }
}
