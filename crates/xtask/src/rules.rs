//! The protocol-specific lint rules layered on top of the
//! `[workspace.lints]` wall (see `docs/STATIC_ANALYSIS.md` for the full
//! catalogue, and DESIGN.md § "Static analysis & invariants"):
//!
//! 1. **no-panic** — no `unwrap()` / `expect()` / `panic!` family macros in
//!    the protocol hot-path *directories* (`crates/bgp/src`,
//!    `crates/core/src`), outside `#[cfg(test)]` items, unless annotated
//!    `// lint:allow(reason)`. The call-graph analysis in
//!    [`crate::analysis`] complements this directory wall with
//!    reachability from the engine entry points (including indexing and
//!    asserts, and crossing into other crates).
//! 2. **pub-docs** — every public item carries a doc comment.
//! 3. **wire-golden** — every wire-enum variant is exercised by name in the
//!    golden round-trip suite `crates/bgp/tests/wire_golden.rs`.
//! 4. **engine-hygiene** — no `Ordering::Relaxed` and no bare
//!    `thread::spawn` inside `crates/bgp/src/engine/`.
//! 5. **trace-schema** — every `TraceEvent` variant (definition and every
//!    emission site) is described by the golden trace schema
//!    `crates/telemetry/trace-schema.json`; additionally, every
//!    construction of a causal kind ([`CAUSAL_EVENT_KINDS`]) must thread
//!    explicit `cause`/`effect` provenance ids.
//! 6. **stage-alloc** — no `Vec::new()` / `HashMap::new()` / `vec![`
//!    allocation inside the stage-loop bodies of the synchronous engine
//!    (`run_stage`, `parallel_handle`), whose buffers are reused by design.
//! 7. **unsafe-audit** — every first-party crate root carries
//!    `#![forbid(unsafe_code)]`, no first-party line uses `unsafe`, and
//!    vendored stand-ins are unsafe-free unless enumerated (with a reason)
//!    in [`VENDOR_UNSAFE_EXCEPTIONS`].
//!
//! Rules 3, 5, and 6 are parser-backed: enum variants and function body
//! spans come from [`crate::parser`] item trees rather than ad-hoc brace
//! tracking.

use crate::lexer::{Allow, LexedFile};
use crate::parser::ParsedFile;
use std::path::{Path, PathBuf};

/// One lint finding: rule, location, and the offending token.
#[derive(Debug)]
pub struct Violation {
    /// Short rule identifier (e.g. `no-panic`).
    pub rule: &'static str,
    /// Path relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of what was matched.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// A lexed source file plus its workspace-relative path.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root.
    pub rel_path: PathBuf,
    /// Lexer output (code-only lines, allows, test-line marks).
    pub lexed: LexedFile,
}

impl SourceFile {
    /// True if the file lives under `dir` (workspace-relative prefix).
    pub fn under(&self, dir: &str) -> bool {
        self.rel_path.starts_with(Path::new(dir))
    }
}

/// Returns `true` when a violation on `line_idx` (0-based) is covered by an
/// annotation on the same line or the line directly above; marks the
/// annotation used so `audit` can flag stale ones.
pub fn allowed(allows: &[Allow], line_idx: usize) -> bool {
    for allow in allows {
        if allow.line == line_idx || allow.line + 1 == line_idx {
            allow.used.set(true);
            return true;
        }
    }
    false
}

/// Tokens banned in protocol hot paths, with the reason shown on match.
const PANIC_TOKENS: &[(&str, &str)] = &[
    (".unwrap()", "use a typed error instead of unwrap()"),
    (".expect(", "use a typed error instead of expect()"),
    ("panic!(", "protocol paths must return errors, not panic"),
    (
        "unreachable!(",
        "encode the impossibility in the type system",
    ),
    ("todo!(", "no unfinished protocol code"),
    ("unimplemented!(", "no unfinished protocol code"),
];

/// Directories whose non-test code must be panic-free.
pub const HOT_PATHS: &[&str] = &["crates/bgp/src", "crates/core/src"];

/// Rule 1: no panic-family calls in protocol hot paths.
pub fn check_no_panic(files: &[SourceFile], out: &mut Vec<Violation>) {
    for file in files {
        if !HOT_PATHS.iter().any(|d| file.under(d)) {
            continue;
        }
        for (idx, line) in file.lexed.code_lines.iter().enumerate() {
            if file.lexed.test_lines[idx] {
                continue;
            }
            for (token, hint) in PANIC_TOKENS {
                if line.contains(token) && !allowed(&file.lexed.allows, idx) {
                    out.push(Violation {
                        rule: "no-panic",
                        file: file.rel_path.clone(),
                        line: idx + 1,
                        message: format!(
                            "`{}` in protocol hot path: {hint}",
                            token.trim_end_matches('(')
                        ),
                    });
                }
            }
        }
    }
}

/// True if the trimmed code line declares a public item that needs docs.
/// `pub use` re-exports and restricted visibility (`pub(crate)` etc.) are
/// exempt, matching rustc's `missing_docs`; so are semicolon module
/// declarations (`pub mod x;`), which are documented by the module file's
/// inner `//!` docs — rustc's wall verifies those.
fn is_public_item(trimmed: &str) -> bool {
    if !trimmed.starts_with("pub ") {
        return false;
    }
    let rest = &trimmed[4..];
    if rest.starts_with("mod ") && rest.trim_end().ends_with(';') {
        return false;
    }
    const ITEM_KEYWORDS: &[&str] = &[
        "fn ",
        "struct ",
        "enum ",
        "trait ",
        "mod ",
        "type ",
        "const ",
        "static ",
        "union ",
        "unsafe fn ",
        "async fn ",
        "unsafe trait ",
    ];
    ITEM_KEYWORDS.iter().any(|kw| rest.starts_with(kw))
}

/// Rule 2: every public item is documented. This is a belt-and-braces
/// double of the workspace `missing_docs = "deny"` wall that also works on
/// code rustc skips (e.g. items gated out by cfg on this platform).
pub fn check_pub_docs(files: &[SourceFile], raw_lines: &[Vec<String>], out: &mut Vec<Violation>) {
    for (file, raw) in files.iter().zip(raw_lines) {
        if !file.rel_path.starts_with("crates") && !file.rel_path.starts_with("src") {
            continue;
        }
        if file.rel_path.components().any(|c| {
            c.as_os_str() == "tests" || c.as_os_str() == "benches" || c.as_os_str() == "examples"
        }) {
            continue;
        }
        for (idx, line) in file.lexed.code_lines.iter().enumerate() {
            if file.lexed.test_lines[idx] {
                continue;
            }
            let trimmed = line.trim_start();
            if !is_public_item(trimmed) {
                continue;
            }
            // Walk upward over attributes (including multi-line ones,
            // tracked by `[`/`]` balance on code-only lines) looking for a
            // doc comment in the ORIGINAL source (doc comments are blanked
            // in code_lines).
            let mut documented = false;
            let mut bracket_balance = 0i32;
            let mut j = idx;
            while j > 0 {
                j -= 1;
                let code_above = &file.lexed.code_lines[j];
                let opens = code_above.matches('[').count() as i32;
                let closes = code_above.matches(']').count() as i32;
                bracket_balance += opens - closes;
                if bracket_balance < 0 {
                    continue; // inside a multi-line attribute, keep walking
                }
                let above = raw[j].trim_start();
                if above.starts_with("///") || above.starts_with("#[doc") {
                    documented = true;
                    break;
                }
                if above.starts_with("#[") {
                    continue;
                }
                break;
            }
            if !documented && !allowed(&file.lexed.allows, idx) {
                out.push(Violation {
                    rule: "pub-docs",
                    file: file.rel_path.clone(),
                    line: idx + 1,
                    message: format!(
                        "public item `{}` has no doc comment",
                        first_words(trimmed, 3)
                    ),
                });
            }
        }
    }
}

fn first_words(s: &str, n: usize) -> String {
    s.split_whitespace().take(n).collect::<Vec<_>>().join(" ")
}

/// Files whose `pub enum`s define the wire/dynamics vocabulary that the
/// golden suite must cover exhaustively.
pub const WIRE_ENUM_FILES: &[&str] = &["crates/bgp/src/message.rs", "crates/bgp/src/dynamics.rs"];

/// The golden round-trip suite.
pub const GOLDEN_TEST: &str = "crates/bgp/tests/wire_golden.rs";

/// Rule 3: every wire-enum variant must appear by name in the golden suite.
/// Variant inventory comes from the parsed item trees.
pub fn check_wire_golden(files: &[SourceFile], trees: &[ParsedFile], out: &mut Vec<Violation>) {
    let Some(golden) = files.iter().find(|f| f.rel_path == Path::new(GOLDEN_TEST)) else {
        out.push(Violation {
            rule: "wire-golden",
            file: PathBuf::from(GOLDEN_TEST),
            line: 1,
            message: "golden round-trip suite is missing".into(),
        });
        return;
    };
    let golden_text = golden.lexed.code_lines.join("\n");
    for (file, tree) in files.iter().zip(trees) {
        if !WIRE_ENUM_FILES
            .iter()
            .any(|p| file.rel_path == Path::new(p))
        {
            continue;
        }
        for item in &tree.enums {
            if item.is_test || !item.is_pub {
                continue;
            }
            for (variant, line) in &item.variants {
                let qualified = format!("{}::{variant}", item.name);
                if !golden_text.contains(&qualified) && !allowed(&file.lexed.allows, *line) {
                    out.push(Violation {
                        rule: "wire-golden",
                        file: file.rel_path.clone(),
                        line: line + 1,
                        message: format!(
                            "`{qualified}` has no golden round-trip coverage in {GOLDEN_TEST}"
                        ),
                    });
                }
            }
        }
    }
}

/// Directory covered by the engine concurrency-hygiene rule.
pub const ENGINE_DIR: &str = "crates/bgp/src/engine";

/// Tokens banned in the message-passing engine.
const ENGINE_TOKENS: &[(&str, &str)] = &[
    (
        "Ordering::Relaxed",
        "engine counters must use SeqCst (or stronger reasoning, annotated)",
    ),
    (
        "thread::spawn",
        "use std::thread::scope so engine workers cannot leak",
    ),
];

/// Rule 4: engine concurrency hygiene.
pub fn check_engine_hygiene(files: &[SourceFile], out: &mut Vec<Violation>) {
    for file in files {
        if !file.under(ENGINE_DIR) {
            continue;
        }
        for (idx, line) in file.lexed.code_lines.iter().enumerate() {
            if file.lexed.test_lines[idx] {
                continue;
            }
            for (token, hint) in ENGINE_TOKENS {
                if line.contains(token) && !allowed(&file.lexed.allows, idx) {
                    out.push(Violation {
                        rule: "engine-hygiene",
                        file: file.rel_path.clone(),
                        line: idx + 1,
                        message: format!("`{token}` in engine: {hint}"),
                    });
                }
            }
        }
    }
}

/// The telemetry event enum whose variants define the trace vocabulary.
pub const TRACE_EVENT_FILE: &str = "crates/telemetry/src/event.rs";

/// The golden trace schema fixture `cargo xtask obs` validates against.
pub const TRACE_SCHEMA: &str = "crates/telemetry/trace-schema.json";

/// Rule 5: every `TraceEvent` variant must be described (named as a JSON
/// key) in the golden trace schema. `schema_text` is the fixture's content,
/// read by the driver (it is JSON, not a lexed source file). Variant
/// inventory comes from the parsed item trees.
pub fn check_trace_schema(
    files: &[SourceFile],
    trees: &[ParsedFile],
    schema_text: Option<&str>,
    out: &mut Vec<Violation>,
) {
    let Some(schema) = schema_text else {
        out.push(Violation {
            rule: "trace-schema",
            file: PathBuf::from(TRACE_SCHEMA),
            line: 1,
            message: "golden trace schema fixture is missing".into(),
        });
        return;
    };
    for (file, tree) in files.iter().zip(trees) {
        if file.rel_path != Path::new(TRACE_EVENT_FILE) {
            continue;
        }
        for item in &tree.enums {
            if item.name != "TraceEvent" || item.is_test {
                continue;
            }
            for (variant, line) in &item.variants {
                let key = format!("\"{variant}\"");
                if !schema.contains(&key) && !allowed(&file.lexed.allows, *line) {
                    out.push(Violation {
                        rule: "trace-schema",
                        file: file.rel_path.clone(),
                        line: line + 1,
                        message: format!(
                            "`TraceEvent::{variant}` is not described by {TRACE_SCHEMA}"
                        ),
                    });
                }
            }
        }
    }
    // Emission-site coverage: every `TraceEvent::Kind` construction in the
    // workspace must name a schema-described kind.
    for file in files {
        if file.rel_path == Path::new(TRACE_EVENT_FILE) {
            continue; // definitions handled above
        }
        for (idx, line) in file.lexed.code_lines.iter().enumerate() {
            for variant in trace_event_mentions(line) {
                let key = format!("\"{variant}\"");
                if !schema.contains(&key) && !allowed(&file.lexed.allows, idx) {
                    out.push(Violation {
                        rule: "trace-schema",
                        file: file.rel_path.clone(),
                        line: idx + 1,
                        message: format!(
                            "emission of `TraceEvent::{variant}` not described by {TRACE_SCHEMA}"
                        ),
                    });
                }
            }
        }
        check_causal_provenance(file, out);
    }
}

/// Trace kinds that carry causal provenance. Every construction of one of
/// these must thread explicit `cause`/`effect` ids — a site that drops them
/// breaks the convergence DAG (`bgpvcg_telemetry::causal`) silently.
pub const CAUSAL_EVENT_KINDS: &[&str] = &["RouteSelected", "PriceRelaxed", "Withdrawn"];

/// The provenance half of rule 5: every causal-kind construction site must
/// name both `cause` and `effect`. Spans destructuring with `..` are
/// patterns — they consume events rather than emit them — and are exempt;
/// a pattern that binds every field names the ids anyway.
fn check_causal_provenance(file: &SourceFile, out: &mut Vec<Violation>) {
    for idx in 0..file.lexed.code_lines.len() {
        let line = &file.lexed.code_lines[idx];
        for (pos, _) in line.match_indices("TraceEvent::") {
            let rest = &line[pos + "TraceEvent::".len()..];
            let ident: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !CAUSAL_EVENT_KINDS.contains(&ident.as_str()) {
                continue;
            }
            let after = pos + "TraceEvent::".len() + ident.len();
            let Some(span) = brace_span(&file.lexed.code_lines, idx, after) else {
                continue; // bare path mention, not a construction
            };
            if span.contains("..") {
                continue; // destructuring pattern
            }
            let names = |field: &str| {
                span.split(|c: char| !(c.is_alphanumeric() || c == '_'))
                    .any(|w| w == field)
            };
            if (!names("cause") || !names("effect")) && !allowed(&file.lexed.allows, idx) {
                out.push(Violation {
                    rule: "trace-schema",
                    file: file.rel_path.clone(),
                    line: idx + 1,
                    message: format!(
                        "emission of `TraceEvent::{ident}` must thread `cause`/`effect` \
                         provenance ids"
                    ),
                });
            }
        }
    }
}

/// Collects the text of the brace-balanced span opening at the first `{`
/// after column `after` on `code_lines[idx]` (spanning lines as needed, up
/// to a 64-line cap against malformed input); `None` when the next
/// non-whitespace character is not `{`.
fn brace_span(code_lines: &[String], idx: usize, after: usize) -> Option<String> {
    let mut span = String::new();
    let mut depth = 0usize;
    let mut opened = false;
    for (n, line) in code_lines.iter().enumerate().skip(idx).take(64) {
        let text = if n == idx {
            &line[after..]
        } else {
            line.as_str()
        };
        for c in text.chars() {
            if !opened {
                if c.is_whitespace() {
                    continue;
                }
                if c != '{' {
                    return None;
                }
                opened = true;
                depth = 1;
                continue;
            }
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(span);
                    }
                }
                c => span.push(c),
            }
        }
        span.push(' ');
    }
    None
}

/// Extracts every `Kind` out of `TraceEvent::Kind` mentions on one code
/// line (CamelCase identifiers only, so paths like `TraceEvent::default()`
/// or a bare `use …::TraceEvent;` do not match).
fn trace_event_mentions(line: &str) -> Vec<String> {
    let mut found = Vec::new();
    for (pos, _) in line.match_indices("TraceEvent::") {
        let rest = &line[pos + "TraceEvent::".len()..];
        let ident: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if ident.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            found.push(ident);
        }
    }
    found
}

/// The (file, hot-path functions) scopes whose bodies must not allocate,
/// matched by bare name against the parsed item tree: the synchronous
/// engine's per-stage loop, the wire codec's zero-allocation encode
/// path (every broadcast runs it; the `*_v2` entry points write into a
/// caller-owned scratch buffer, and the size models are pure arithmetic),
/// and the span profiler's enter/exit brackets (they wrap every hot-path
/// phase, so an allocation there would tax everything they measure).
pub const STAGE_ALLOC_SCOPES: &[(&str, &[&str])] = &[
    (
        "crates/bgp/src/engine/sync.rs",
        &["run_stage", "parallel_handle"],
    ),
    ("crates/telemetry/src/profile.rs", &["enter", "exit"]),
    (
        "crates/bgp/src/wire.rs",
        &[
            "encode_update_v2_into",
            "encode_advertisement_v2",
            "encode_frame_v2_into",
            "update_size_v2_with",
            "frame_size_v2_with",
            "advertisement_size",
            "update_size",
        ],
    ),
];

/// Allocation tokens banned inside the stage loop, with the reason shown
/// on match.
const STAGE_ALLOC_TOKENS: &[(&str, &str)] = &[
    (
        "Vec::new()",
        "stage buffers are reused — preallocate and mem::take/swap instead",
    ),
    (
        "HashMap::new()",
        "stage buffers are reused — preallocate and mem::take/swap instead",
    ),
    (
        "vec![",
        "stage buffers are reused — preallocate and mem::take/swap instead",
    ),
];

/// Rule 6: no allocation in the stage-loop or codec hot paths listed in
/// [`STAGE_ALLOC_SCOPES`]. Body spans come from the parsed item trees.
pub fn check_stage_alloc(files: &[SourceFile], trees: &[ParsedFile], out: &mut Vec<Violation>) {
    for (file, tree) in files.iter().zip(trees) {
        let Some((_, hot_fns)) = STAGE_ALLOC_SCOPES
            .iter()
            .find(|(path, _)| file.rel_path == Path::new(path))
        else {
            continue;
        };
        for item in &tree.fns {
            if item.is_test || !hot_fns.contains(&item.name.as_str()) {
                continue;
            }
            for idx in item.body_start..=item.body_end {
                let Some(line) = file.lexed.code_lines.get(idx) else {
                    continue;
                };
                for (token, hint) in STAGE_ALLOC_TOKENS {
                    if line.contains(token) && !allowed(&file.lexed.allows, idx) {
                        out.push(Violation {
                            rule: "stage-alloc",
                            file: file.rel_path.clone(),
                            line: idx + 1,
                            message: format!("`{token}` in hot path `{}`: {hint}", item.name),
                        });
                    }
                }
            }
        }
    }
}

/// Vendored crates that are allowed to contain `unsafe`, with the reviewed
/// reason. Currently empty: every stand-in under `vendor/` is std-only
/// safe Rust. A new vendored dependency that genuinely needs `unsafe`
/// must be enumerated here — and the entry goes stale (reported by
/// `audit`) the moment the unsafe code is removed.
pub const VENDOR_UNSAFE_EXCEPTIONS: &[(&str, &str)] = &[];

/// One vendored crate's unsafe inventory, collected by the driver.
#[derive(Debug)]
pub struct VendorCrate {
    /// Directory name under `vendor/`.
    pub name: String,
    /// First `unsafe` occurrence (workspace-relative path, 1-based line),
    /// if any.
    pub first_unsafe: Option<(PathBuf, usize)>,
}

/// Crate-root files that must carry `#![forbid(unsafe_code)]`. The
/// workspace `unsafe_code = "deny"` lint already covers rustc-visible
/// code; the forbid makes the guarantee un-overridable per item.
fn is_first_party_crate_root(path: &Path) -> bool {
    let comps: Vec<&str> = path
        .components()
        .filter_map(|c| c.as_os_str().to_str())
        .collect();
    matches!(
        comps.as_slice(),
        ["src", "lib.rs"] | ["crates", _, "src", "lib.rs"]
    )
}

/// Rule 7: the unsafe audit. First-party crate roots must forbid unsafe
/// code, no first-party line may use `unsafe`, and vendored crates must be
/// unsafe-free unless enumerated in [`VENDOR_UNSAFE_EXCEPTIONS`].
pub fn check_unsafe_audit(
    files: &[SourceFile],
    trees: &[ParsedFile],
    vendor: &[VendorCrate],
    out: &mut Vec<Violation>,
) {
    for (file, tree) in files.iter().zip(trees) {
        if is_first_party_crate_root(&file.rel_path) && !tree.forbids_unsafe {
            out.push(Violation {
                rule: "unsafe-audit",
                file: file.rel_path.clone(),
                line: 1,
                message: "crate root is missing `#![forbid(unsafe_code)]`".into(),
            });
        }
        for (idx, line) in file.lexed.code_lines.iter().enumerate() {
            if file.lexed.test_lines[idx] {
                continue;
            }
            let has_unsafe = line
                .split(|c: char| !(c.is_alphanumeric() || c == '_'))
                .any(|w| w == "unsafe");
            if has_unsafe && !allowed(&file.lexed.allows, idx) {
                out.push(Violation {
                    rule: "unsafe-audit",
                    file: file.rel_path.clone(),
                    line: idx + 1,
                    message: "`unsafe` in first-party code — the mechanism's guarantees are \
                              proven over safe Rust only"
                        .into(),
                });
            }
        }
    }
    for v in vendor {
        let excepted = VENDOR_UNSAFE_EXCEPTIONS.iter().any(|(n, _)| n == &v.name);
        match (&v.first_unsafe, excepted) {
            (Some((path, line)), false) => out.push(Violation {
                rule: "unsafe-audit",
                file: path.clone(),
                line: *line,
                message: format!(
                    "vendored crate `{}` uses `unsafe` but is not enumerated in \
                     VENDOR_UNSAFE_EXCEPTIONS",
                    v.name
                ),
            }),
            (None, true) => out.push(Violation {
                rule: "unsafe-audit",
                file: PathBuf::from(format!("vendor/{}", v.name)),
                line: 1,
                message: format!(
                    "vendored crate `{}` is enumerated in VENDOR_UNSAFE_EXCEPTIONS but \
                     contains no `unsafe` — remove the stale entry",
                    v.name
                ),
            }),
            _ => {}
        }
    }
}

/// Runs all seven rules; `raw_lines[i]` are the unlexed lines of `files[i]`
/// (needed by pub-docs to see doc comments, which the lexer blanks),
/// `trees[i]` is the parsed item tree of `files[i]`, `schema_text` is the
/// golden trace schema's content if it exists, and `vendor` is the
/// vendored-crate unsafe inventory.
pub fn run_all(
    files: &[SourceFile],
    raw_lines: &[Vec<String>],
    trees: &[ParsedFile],
    schema_text: Option<&str>,
    vendor: &[VendorCrate],
) -> Vec<Violation> {
    let mut out = Vec::new();
    check_no_panic(files, &mut out);
    check_pub_docs(files, raw_lines, &mut out);
    check_wire_golden(files, trees, &mut out);
    check_engine_hygiene(files, &mut out);
    check_trace_schema(files, trees, schema_text, &mut out);
    check_stage_alloc(files, trees, &mut out);
    check_unsafe_audit(files, trees, vendor, &mut out);
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

/// Annotations that suppressed nothing this run — reported by `audit` so
/// the allowlist cannot rot. Every collected file is scanned by at least
/// one rule or analysis (determinism and unsafe-audit are workspace-wide),
/// so staleness is checked everywhere. Callers must run both
/// [`run_all`] and [`crate::analysis::run_all`] first so live annotations
/// are marked used.
pub fn stale_allows(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for file in files {
        for allow in &file.lexed.allows {
            if !allow.used.get() {
                out.push(Violation {
                    rule: "stale-allow",
                    file: file.rel_path.clone(),
                    line: allow.line + 1,
                    message: format!(
                        "lint:allow({}) suppresses nothing — remove it",
                        allow.reason
                    ),
                });
            }
            if allow.reason.is_empty() {
                out.push(Violation {
                    rule: "empty-allow",
                    file: file.rel_path.clone(),
                    line: allow.line + 1,
                    message: "lint:allow() requires a reason".into(),
                });
            }
        }
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile {
            rel_path: PathBuf::from(path),
            lexed: lex(src),
        }
    }

    fn trees(files: &[SourceFile]) -> Vec<ParsedFile> {
        files.iter().map(|f| parse(&f.lexed)).collect()
    }

    #[test]
    fn no_panic_flags_unwrap_outside_tests() {
        let files = vec![file(
            "crates/bgp/src/x.rs",
            "fn f() { y.unwrap(); }\n#[cfg(test)]\nmod t {\n fn g() { z.unwrap(); }\n}",
        )];
        let mut out = Vec::new();
        check_no_panic(&files, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn no_panic_respects_allow_on_same_and_previous_line() {
        let files = vec![file(
            "crates/core/src/x.rs",
            "fn f() { y.unwrap(); } // lint:allow(checked above)\n// lint:allow(checked)\nfn g() { z.expect(\"msg\"); }",
        )];
        let mut out = Vec::new();
        check_no_panic(&files, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn no_panic_ignores_other_crates() {
        let files = vec![file("crates/netgraph/src/x.rs", "fn f() { y.unwrap(); }")];
        let mut out = Vec::new();
        check_no_panic(&files, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn pub_docs_requires_doc_comment() {
        let src = "/// Documented.\npub fn a() {}\npub fn b() {}\n#[derive(Debug)]\npub struct C;";
        let files = vec![file("crates/lcp/src/x.rs", src)];
        let raws = vec![src.lines().map(String::from).collect::<Vec<_>>()];
        let mut out = Vec::new();
        check_pub_docs(&files, &raws, &mut out);
        let lines: Vec<usize> = out.iter().map(|v| v.line).collect();
        assert_eq!(lines, vec![3, 5], "{out:?}");
    }

    #[test]
    fn pub_docs_sees_doc_above_attributes() {
        let src = "/// Documented.\n#[derive(Debug)]\n#[must_use]\npub struct C;";
        let files = vec![file("crates/lcp/src/x.rs", src)];
        let raws = vec![src.lines().map(String::from).collect::<Vec<_>>()];
        let mut out = Vec::new();
        check_pub_docs(&files, &raws, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn wire_golden_finds_uncovered_variant() {
        let files = vec![
            file(
                "crates/bgp/src/message.rs",
                "/// E.\npub enum RouteInfo {\n    Reachable { cost: u64 },\n    Withdrawn,\n}",
            ),
            file(
                "crates/bgp/tests/wire_golden.rs",
                "fn t() { let _ = RouteInfo::Reachable { cost: 1 }; }",
            ),
        ];
        let trees = trees(&files);
        let mut out = Vec::new();
        check_wire_golden(&files, &trees, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("RouteInfo::Withdrawn"));
    }

    #[test]
    fn engine_hygiene_flags_relaxed_and_spawn() {
        let files = vec![file(
            "crates/bgp/src/engine/ev.rs",
            "use std::sync::atomic::Ordering;\nfn f() { c.load(Ordering::Relaxed); std::thread::spawn(|| {}); }",
        )];
        let mut out = Vec::new();
        check_engine_hygiene(&files, &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn trace_schema_finds_undescribed_variant() {
        let files = vec![file(
            "crates/telemetry/src/event.rs",
            "/// E.\npub enum TraceEvent {\n    StageStart { stage: u64 },\n    Quiescent { stage: u64 },\n}",
        )];
        let trees = trees(&files);
        let schema = r#"{"version":1,"events":{"StageStart":{"stage":"u64"}}}"#;
        let mut out = Vec::new();
        check_trace_schema(&files, &trees, Some(schema), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("TraceEvent::Quiescent"));
    }

    #[test]
    fn trace_schema_flags_undescribed_emission_site() {
        let files = vec![file(
            "crates/bgp/src/chaos.rs",
            "fn f(t: &Telemetry) {\n    t.record(&TraceEvent::FaultInjected { stage: 0 });\n    t.record(&TraceEvent::Mystery { stage: 0 });\n}",
        )];
        let trees = trees(&files);
        let schema = r#"{"version":1,"events":{"FaultInjected":{"stage":"u64"}}}"#;
        let mut out = Vec::new();
        check_trace_schema(&files, &trees, Some(schema), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("TraceEvent::Mystery"));
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn trace_schema_requires_provenance_on_causal_emissions() {
        let schema = r#"{"version":1,"events":{"RouteSelected":{},"Withdrawn":{}}}"#;
        // Multi-line construction missing the ids: fires.
        let files = vec![file(
            "crates/bgp/src/telemetry.rs",
            "fn f(t: &Telemetry) {\n    t.record(&TraceEvent::RouteSelected {\n        node: 1,\n        dest: 2,\n        stage: 0,\n    });\n}",
        )];
        let trees_ = trees(&files);
        let mut out = Vec::new();
        check_trace_schema(&files, &trees_, Some(schema), &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("provenance"), "{out:?}");
        assert_eq!(out[0].line, 2);

        // Construction threading both ids, and a `..` pattern: silent.
        let files = vec![file(
            "crates/bgp/src/telemetry.rs",
            "fn f(t: &Telemetry) {\n    t.record(&TraceEvent::RouteSelected {\n        node: 1, dest: 2, stage: 0, cause: 0, effect: 7,\n    });\n    if matches!(e, TraceEvent::Withdrawn { .. }) {}\n}",
        )];
        let trees_ = trees(&files);
        let mut out = Vec::new();
        check_trace_schema(&files, &trees_, Some(schema), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn trace_schema_missing_fixture_is_itself_a_violation() {
        let mut out = Vec::new();
        check_trace_schema(&[], &[], None, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "trace-schema");
    }

    #[test]
    fn stage_alloc_flags_allocation_in_stage_loop_only() {
        let src = "fn run_stage(&mut self) {\n    let v = Vec::new();\n    let m = vec![0; 4];\n}\nfn elsewhere() {\n    let fine = Vec::new();\n}";
        let files = vec![file("crates/bgp/src/engine/sync.rs", src)];
        let trees = trees(&files);
        let mut out = Vec::new();
        check_stage_alloc(&files, &trees, &mut out);
        let lines: Vec<usize> = out.iter().map(|v| v.line).collect();
        assert_eq!(lines, vec![2, 3], "{out:?}");
    }

    #[test]
    fn stage_alloc_respects_allow_and_other_files() {
        let allowed_src = "fn parallel_handle() {\n    // lint:allow(one-off merge buffer, sized below)\n    let v = Vec::new();\n}";
        let files = vec![
            file("crates/bgp/src/engine/sync.rs", allowed_src),
            file(
                "crates/bgp/src/engine/event.rs",
                "fn f() { let v = Vec::new(); }",
            ),
        ];
        let trees = trees(&files);
        let mut out = Vec::new();
        check_stage_alloc(&files, &trees, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn stale_allow_is_reported() {
        let files = vec![file(
            "crates/bgp/src/x.rs",
            "// lint:allow(nothing here needs this)\nfn f() {}",
        )];
        let mut out = Vec::new();
        check_no_panic(&files, &mut out);
        let stale = stale_allows(&files);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].rule, "stale-allow");
    }

    #[test]
    fn unsafe_audit_requires_forbid_on_crate_roots() {
        let files = vec![
            file(
                "crates/bgp/src/lib.rs",
                "#![forbid(unsafe_code)]\nfn f() {}",
            ),
            file("crates/core/src/lib.rs", "fn f() {}"),
            file("crates/core/src/other.rs", "fn f() {}"),
        ];
        let trees = trees(&files);
        let mut out = Vec::new();
        check_unsafe_audit(&files, &trees, &[], &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].file, PathBuf::from("crates/core/src/lib.rs"));
    }

    #[test]
    fn unsafe_audit_flags_unsafe_tokens_but_not_words_in_idents() {
        let files = vec![file(
            "crates/bgp/src/x.rs",
            "fn f() { unsafe { g() } }\nfn unsafe_free_name() {}",
        )];
        let trees = trees(&files);
        let mut out = Vec::new();
        check_unsafe_audit(&files, &trees, &[], &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn unsafe_audit_vendor_exceptions_are_exact() {
        let vendor = vec![
            VendorCrate {
                name: "sneaky".into(),
                first_unsafe: Some((PathBuf::from("vendor/sneaky/src/lib.rs"), 3)),
            },
            VendorCrate {
                name: "clean".into(),
                first_unsafe: None,
            },
        ];
        let mut out = Vec::new();
        check_unsafe_audit(&[], &[], &vendor, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("sneaky"));
    }
}
