//! The workspace static-analysis library behind `cargo xtask`.
//!
//! Std-only by design: the build environment has no registry access, so the
//! engine carries its own minimal lexer ([`lexer`]), a small item-tree
//! parser ([`parser`]), a workspace call graph ([`callgraph`]), the
//! protocol lint rules ([`rules`]), and the parser-backed analyses
//! ([`analysis`]: panic-reachability and the determinism lints) instead of
//! depending on `syn` or `rust-analyzer`.
//!
//! The binary target (`main.rs`) is a thin driver over this library; the
//! fixture self-tests under `tests/` exercise the library directly. See
//! `docs/STATIC_ANALYSIS.md` for the rule catalogue and allowlist policy.

#![forbid(unsafe_code)]

pub mod analysis;
pub mod callgraph;
pub mod lexer;
pub mod parser;
pub mod rules;
