//! Lint self-test: every rule and analysis must fire on the `bad` fixture
//! corpus and stay silent on the `good` one.
//!
//! The fixtures under `tests/fixtures/{good,bad}/` are miniature workspace
//! trees mirroring the real layout (so path-scoped rules see the paths
//! they key on: `crates/bgp/src/engine/sync.rs`, the wire-enum files, the
//! clock seam, …). They are loaded through the same lex → parse → rules →
//! analysis pipeline the `cargo xtask lint`/`analyze` driver runs; the
//! driver's source walk skips directories named `fixtures`, so these trees
//! are invisible to the real lint wall and only exist to prove it works.

use std::fs;
use std::path::{Path, PathBuf};

use xtask::parser::ParsedFile;
use xtask::rules::{self, SourceFile, Violation};
use xtask::{analysis, lexer, parser};

/// One loaded fixture corpus, aligned the way `rules::run_all` expects.
struct Corpus {
    files: Vec<SourceFile>,
    raws: Vec<Vec<String>>,
    trees: Vec<ParsedFile>,
    schema: Option<String>,
}

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn walk(dir: &Path, root: &Path, files: &mut Vec<SourceFile>, raws: &mut Vec<Vec<String>>) {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .expect("fixture directory")
        .map(|e| e.expect("fixture entry").path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(&path, root, files, raws);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let source = fs::read_to_string(&path).expect("fixture source");
            files.push(SourceFile {
                rel_path: path
                    .strip_prefix(root)
                    .expect("fixture under root")
                    .to_path_buf(),
                lexed: lexer::lex(&source),
            });
            raws.push(source.lines().map(str::to_string).collect());
        }
    }
}

fn load(name: &str) -> Corpus {
    let root = fixture_root(name);
    let mut files = Vec::new();
    let mut raws = Vec::new();
    walk(&root, &root, &mut files, &mut raws);
    assert!(!files.is_empty(), "fixture corpus `{name}` is empty");
    let trees: Vec<ParsedFile> = files.iter().map(|f| parser::parse(&f.lexed)).collect();
    let schema = fs::read_to_string(root.join(rules::TRACE_SCHEMA)).ok();
    Corpus {
        files,
        raws,
        trees,
        schema,
    }
}

/// The full wall, in driver order: rules, then analyses, then the stale
/// sweep (which must run last so live allows are already marked used).
fn all_violations(corpus: &Corpus, vendor: &[rules::VendorCrate]) -> Vec<Violation> {
    let mut out = rules::run_all(
        &corpus.files,
        &corpus.raws,
        &corpus.trees,
        corpus.schema.as_deref(),
        vendor,
    );
    out.extend(analysis::run_all(&corpus.files, &corpus.trees));
    out.extend(rules::stale_allows(&corpus.files));
    out
}

fn fires_at(violations: &[Violation], rule: &str, path_suffix: &str) -> bool {
    violations
        .iter()
        .any(|v| v.rule == rule && v.file.to_string_lossy().ends_with(path_suffix))
}

#[test]
fn good_corpus_is_silent() {
    let corpus = load("good");
    let violations = all_violations(&corpus, &[]);
    assert!(
        violations.is_empty(),
        "good fixture corpus must be clean, got:\n{}",
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn good_corpus_exercises_the_allowlist() {
    let corpus = load("good");
    let _ = all_violations(&corpus, &[]);
    let allows: Vec<_> = corpus
        .files
        .iter()
        .flat_map(|f| f.lexed.allows.iter())
        .collect();
    assert!(
        !allows.is_empty(),
        "good corpus must contain at least one allow annotation so the \
         suppression path is exercised"
    );
    assert!(
        allows.iter().all(|a| a.used.get()),
        "every allow in the good corpus must suppress something (else the \
         stale sweep would have flagged it)"
    );
}

#[test]
fn bad_corpus_trips_every_rule_and_analysis() {
    let corpus = load("bad");
    let violations = all_violations(&corpus, &[]);
    let expected = [
        "no-panic",
        "pub-docs",
        "wire-golden",
        "engine-hygiene",
        "trace-schema",
        "stage-alloc",
        "unsafe-audit",
        "panic-reachability",
        "determinism",
        "stale-allow",
    ];
    let observed: std::collections::BTreeSet<&str> = violations.iter().map(|v| v.rule).collect();
    let expected_set: std::collections::BTreeSet<&str> = expected.into_iter().collect();
    assert_eq!(
        observed,
        expected_set,
        "bad corpus must trip exactly the full rule inventory; violations:\n{}",
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn bad_corpus_fires_at_the_planted_sites() {
    let corpus = load("bad");
    let violations = all_violations(&corpus, &[]);
    let planted = [
        // (rule, file the violation was planted in)
        ("no-panic", "crates/bgp/src/engine/sync.rs"), // handle.join().unwrap()
        ("no-panic", "crates/bgp/src/chaos.rs"),       // panic! in tick_parity
        ("pub-docs", "crates/bgp/src/node.rs"),        // undocumented_helper
        ("wire-golden", "crates/bgp/src/message.rs"),  // Message::Bogus uncovered
        ("engine-hygiene", "crates/bgp/src/engine/sync.rs"), // thread::spawn + Relaxed
        ("trace-schema", "crates/telemetry/src/event.rs"), // TraceEvent::Mystery
        ("trace-schema", "crates/bgp/src/telemetry.rs"), // RouteSelected without cause/effect
        ("stage-alloc", "crates/bgp/src/engine/sync.rs"), // vec![ and Vec::new()
        ("stage-alloc", "crates/bgp/src/wire.rs"),     // Vec::new() in the codec hot path
        ("stage-alloc", "crates/telemetry/src/profile.rs"), // vec![ / Vec::new() in enter/exit
        ("unsafe-audit", "crates/bgp/src/lib.rs"),     // missing #![forbid(unsafe_code)]
        ("unsafe-audit", "crates/bgp/src/engine/sync.rs"), // unsafe block
        ("panic-reachability", "crates/bgp/src/engine/sync.rs"), // unwrap in run_stage
        ("panic-reachability", "crates/bgp/src/chaos.rs"), // step -> tick_parity -> panic!
        ("panic-reachability", "crates/core/src/protocol.rs"), // nodes[i + 1] unguarded
        ("determinism", "crates/core/src/protocol.rs"), // HashMap + Instant::now
        ("determinism", "crates/core/src/pricing_node.rs"), // thread_rng
        ("stale-allow", "crates/bgp/src/node.rs"),     // allow above a clean const
    ];
    for (rule, file) in planted {
        assert!(
            fires_at(&violations, rule, file),
            "expected `{rule}` to fire in {file}; violations:\n{}",
            violations
                .iter()
                .map(|v| format!("  {v}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[test]
fn byzantine_trace_kinds_are_guarded() {
    let corpus = load("bad");
    let violations = all_violations(&corpus, &[]);
    // The quarantine variant added to the enum without a schema entry, and
    // the two Byzantine emission sites the schema never learned, must each
    // be called out by name.
    for needle in [
        "`TraceEvent::NodeQuarantined` is not described",
        "emission of `TraceEvent::AdversaryInjected` not described",
        "emission of `TraceEvent::AuditViolation` not described",
        "emission of `TraceEvent::HealthVerdict` not described",
    ] {
        assert!(
            violations
                .iter()
                .any(|v| v.rule == "trace-schema" && v.message.contains(needle)),
            "expected a trace-schema violation matching `{needle}`; got:\n{}",
            violations
                .iter()
                .map(|v| format!("  {v}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[test]
fn panic_reachability_reports_the_call_chain() {
    let corpus = load("bad");
    let violations = all_violations(&corpus, &[]);
    let chained = violations
        .iter()
        .find(|v| v.rule == "panic-reachability" && v.message.contains("ChaosEngine::step"));
    let chained = chained.unwrap_or_else(|| {
        panic!(
            "expected the chaos panic to be reported with its call chain; got:\n{}",
            violations
                .iter()
                .map(|v| format!("  {v}"))
                .collect::<Vec<_>>()
                .join("\n")
        )
    });
    assert!(
        chained.message.contains("tick_parity"),
        "chain must name the intermediate helper: {}",
        chained.message
    );
}

#[test]
fn missing_entry_point_is_reported_not_silently_vacuous() {
    let mut corpus = load("good");
    // Delete the file that defines `PlainBgpNode::handle`; the analysis
    // must complain instead of quietly shrinking its coverage.
    let node_idx = corpus
        .files
        .iter()
        .position(|f| f.rel_path.ends_with("node.rs"))
        .expect("good corpus has node.rs");
    corpus.files.remove(node_idx);
    corpus.raws.remove(node_idx);
    corpus.trees.remove(node_idx);
    let violations = analysis::run_all(&corpus.files, &corpus.trees);
    assert!(
        violations.iter().any(|v| {
            v.rule == "panic-reachability" && v.message.contains("PlainBgpNode::handle")
        }),
        "expected a missing-entry-point violation, got:\n{}",
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn unenumerated_vendored_unsafe_is_flagged() {
    let corpus = load("good");
    let vendor = [rules::VendorCrate {
        name: "fake".into(),
        first_unsafe: Some((PathBuf::from("vendor/fake/src/lib.rs"), 3)),
    }];
    let violations = all_violations(&corpus, &vendor);
    assert!(
        violations.iter().any(|v| {
            v.rule == "unsafe-audit" && v.message.contains("VENDOR_UNSAFE_EXCEPTIONS")
        }),
        "vendored unsafe outside the exception list must be flagged"
    );
    // And an unsafe-free vendor inventory keeps the good corpus clean.
    let clean = all_violations(
        &corpus,
        &[rules::VendorCrate {
            name: "fake".into(),
            first_unsafe: None,
        }],
    );
    assert!(
        clean.is_empty(),
        "unsafe-free vendor crates are not findings"
    );
}
