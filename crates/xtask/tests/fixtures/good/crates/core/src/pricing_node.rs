//! Fixture: the pricing node.

/// A VCG-pricing node.
#[derive(Debug)]
pub struct PricingBgpNode {
    prices: Vec<u64>,
}

impl PricingBgpNode {
    /// Handles a delivered batch and may emit an update.
    pub fn handle(&mut self, delivered: &[u64]) -> Option<u64> {
        let sum: u64 = delivered.iter().sum();
        self.refresh_prices(sum);
        self.prices.last().copied()
    }

    /// Relaxes the per-transit price vector toward `candidate`.
    pub fn refresh_prices(&mut self, candidate: u64) {
        for slot in self.prices.iter_mut() {
            *slot = (*slot).min(candidate);
        }
    }
}
