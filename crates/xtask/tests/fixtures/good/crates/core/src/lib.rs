//! Fixture: pricing crate root.

#![forbid(unsafe_code)]

pub mod pricing_node;
pub mod protocol;
