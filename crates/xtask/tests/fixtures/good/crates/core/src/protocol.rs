//! Fixture: the parallel protocol runner, deterministic by construction.

use std::collections::BTreeMap;

/// Runs the protocol over every node in parallel and merges outcomes.
pub fn run_sync_parallel(nodes: &[u32]) -> Result<BTreeMap<u32, u32>, String> {
    let mut merged = BTreeMap::new();
    for &node in nodes {
        merged.insert(node, node.wrapping_mul(2));
    }
    Ok(merged)
}
