//! Fixture: the golden round-trip suite, covering every wire variant.

enum Message {
    Update,
    Withdraw,
}

enum TopologyEvent {
    LinkDown,
}

#[test]
fn round_trips() {
    let _ = (Message::Update, Message::Withdraw, TopologyEvent::LinkDown);
}
