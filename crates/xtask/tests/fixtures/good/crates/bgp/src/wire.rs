//! Fixture: the wire codec's zero-allocation encode path, clean.

/// Encodes `update` into the caller's scratch buffer and returns the
/// encoded length; the buffer is cleared, never reallocated from scratch.
pub fn update_size_v2_with(scratch: &mut Vec<u8>, update: &[u32]) -> usize {
    scratch.clear();
    for value in update {
        scratch.push((*value & 0x7F) as u8);
    }
    scratch.len()
}

/// Pure-arithmetic size model for one advertisement.
pub fn advertisement_size(entries: usize) -> usize {
    5 + entries * 10
}
