//! Fixture: the plain BGP node.

/// A best-route-selection node.
#[derive(Debug)]
pub struct PlainBgpNode {
    best: Option<u64>,
}

impl PlainBgpNode {
    /// Handles one delivered update batch.
    pub fn handle(&mut self, delivered: &[u64]) -> Option<u64> {
        let best = delivered.iter().copied().min()?;
        if Some(best) < self.best.or(Some(u64::MAX)) {
            self.best = Some(best);
            return self.best;
        }
        None
    }
}
