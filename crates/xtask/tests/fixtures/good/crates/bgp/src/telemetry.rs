//! Fixture: causal emission sites thread full provenance.

/// Emits a route selection carrying its `cause`/`effect` ids.
pub fn observe_selection(t: &Telemetry) {
    t.record(&TraceEvent::RouteSelected {
        node: 1,
        dest: 2,
        stage: 0,
        cause: 0,
        effect: 1,
    });
}

/// Narrates a quarantine; Byzantine-audit kinds are schema-described but
/// carry no causal provenance, so a plain construction is clean.
pub fn observe_quarantine(t: &Telemetry) {
    t.record(&TraceEvent::NodeQuarantined { stage: 3, node: 4 });
}

/// Narrates an SLO finding and a span rollup; both kinds are
/// schema-described and carry no causal provenance.
pub fn observe_health(t: &Telemetry) {
    t.record(&TraceEvent::HealthVerdict {
        stage: 9,
        detector: 0,
        node: 2,
        dest: 0,
        count: 3,
        threshold: 3,
    });
    t.record(&TraceEvent::SpanSummary {
        stage: 9,
        span: 1,
        count: 40,
        total_nanos: 900,
        self_nanos: 700,
    });
}

/// Consumes events; destructuring patterns are exempt from the
/// provenance requirement.
pub fn count_selections(events: &[TraceEvent]) -> usize {
    events
        .iter()
        .filter(|e| matches!(e, TraceEvent::RouteSelected { .. }))
        .count()
}
