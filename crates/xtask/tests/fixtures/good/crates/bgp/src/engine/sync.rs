//! Fixture: the synchronous stage engine, hygiene-clean.

/// The stage engine, with buffers preallocated at construction.
#[derive(Debug)]
pub struct SyncEngine {
    buffers: Vec<u32>,
}

impl SyncEngine {
    /// Runs one stage, reusing the preallocated buffers.
    pub fn run_stage(&mut self) -> Result<u32, String> {
        let total: u32 = self.buffers.iter().sum();
        self.buffers.clear();
        Ok(total)
    }
}

/// Partitions receivers across scoped workers and merges emissions.
pub fn parallel_handle(receiving: &mut [u32]) -> Result<(), String> {
    std::thread::scope(|scope| {
        for chunk in receiving.chunks_mut(2) {
            scope.spawn(move || {
                for slot in chunk.iter_mut() {
                    *slot = slot.saturating_add(1);
                }
            });
        }
    });
    Ok(())
}
