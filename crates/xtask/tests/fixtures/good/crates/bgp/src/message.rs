//! Fixture: wire vocabulary, fully covered by the golden suite.

/// A BGP wire message.
#[derive(Debug)]
pub enum Message {
    /// Route announcement.
    Update,
    /// Route withdrawal.
    Withdraw,
}
