//! Fixture: topology dynamics vocabulary.

/// A topology event.
#[derive(Debug)]
pub enum TopologyEvent {
    /// A link fails.
    LinkDown,
}
