//! Fixture: the chaos session engine, with one consciously-accepted
//! panic site proving the allowlist mechanism end to end.

/// Chaos-mode engine with seeded fault injection.
#[derive(Debug)]
pub struct ChaosEngine {
    stable: bool,
    ticks: u32,
}

impl ChaosEngine {
    /// Advances one chaotic step.
    pub fn step(&mut self) -> Result<bool, String> {
        self.ticks = self.ticks.checked_add(1).ok_or("tick overflow")?;
        // lint:allow(fixture: checked_rem by a nonzero constant is always Some)
        let parity = self.ticks.checked_rem(2).unwrap();
        self.stable = parity == 0;
        Ok(self.stable)
    }

    /// Runs until the session stabilizes.
    pub fn run_to_stable(&mut self) -> Result<u32, String> {
        while !self.step()? {}
        Ok(self.ticks)
    }
}
