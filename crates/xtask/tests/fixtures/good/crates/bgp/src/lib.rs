//! Fixture: a clean hot-path crate root.

#![forbid(unsafe_code)]

pub mod chaos;
pub mod dynamics;
pub mod message;
pub mod node;
