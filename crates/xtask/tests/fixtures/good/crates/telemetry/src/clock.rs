//! Fixture: the injectable clock seam — the one file allowed to read
//! wall clocks.

use std::time::Instant;

/// Nanoseconds since the given process-local epoch.
pub fn now_nanos(epoch: Instant) -> u128 {
    Instant::now().duration_since(epoch).as_nanos()
}
