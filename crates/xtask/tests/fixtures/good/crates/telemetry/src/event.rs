//! Fixture: the trace vocabulary, fully described by the schema.

/// A trace event.
#[derive(Debug)]
pub enum TraceEvent {
    /// A stage began.
    StageStart,
    /// A wire adversary corrupted a delivery.
    AdversaryInjected,
    /// The online auditor caught a divergent advertisement.
    AuditViolation,
    /// An accused node was cut from the topology.
    NodeQuarantined,
}
