//! Fixture: the trace vocabulary, fully described by the schema.

/// A trace event.
#[derive(Debug)]
pub enum TraceEvent {
    /// A stage began.
    StageStart,
}
