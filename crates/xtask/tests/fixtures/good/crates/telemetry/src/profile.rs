//! Fixture: the span profiler's hot-path brackets, allocation-free.

/// A zero-allocation span profiler over a fixed engine span table.
#[derive(Debug)]
pub struct SpanProfiler {
    stack: Vec<u32>,
    depth: usize,
    total: Vec<u64>,
}

impl SpanProfiler {
    /// Opens `span` at `now` nanoseconds, writing into the fixed-depth
    /// stack slot.
    pub fn enter(&mut self, span: u32, now: u64) {
        if self.depth < self.stack.len() {
            self.stack[self.depth] = span;
            self.total[span as usize] = self.total[span as usize].wrapping_sub(now);
            self.depth += 1;
        }
    }

    /// Closes the innermost open span at `now` nanoseconds.
    pub fn exit(&mut self, now: u64) {
        if self.depth > 0 {
            self.depth -= 1;
            let span = self.stack[self.depth];
            self.total[span as usize] = self.total[span as usize].wrapping_add(now);
        }
    }
}
