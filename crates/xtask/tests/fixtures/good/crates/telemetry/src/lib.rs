//! Fixture: telemetry crate root.

#![forbid(unsafe_code)]

pub mod clock;
pub mod event;
