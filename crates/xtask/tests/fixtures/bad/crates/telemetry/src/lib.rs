//! Fixture: telemetry crate root.

#![forbid(unsafe_code)]

pub mod event;
