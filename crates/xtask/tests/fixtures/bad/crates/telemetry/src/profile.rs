//! Fixture: span-profiler brackets that allocate on the paths they time.

/// A span profiler whose brackets tax everything they measure.
#[derive(Debug)]
pub struct SpanProfiler {
    stack: Vec<u32>,
    total: Vec<u64>,
}

impl SpanProfiler {
    /// Opens `span`, growing a fresh frame vector on every call.
    pub fn enter(&mut self, span: u32, now: u64) {
        let frame: Vec<u64> = vec![now];
        self.stack.push(span);
        self.total[span as usize] = self.total[span as usize].wrapping_sub(frame[0]);
    }

    /// Closes the innermost span through a freshly allocated scratch.
    pub fn exit(&mut self, now: u64) {
        let mut scratch: Vec<u64> = Vec::new();
        scratch.push(now);
        if let Some(span) = self.stack.pop() {
            self.total[span as usize] = self.total[span as usize].wrapping_add(scratch[0]);
        }
    }
}
