//! Fixture: a trace vocabulary that outgrew its schema.

/// A trace event.
#[derive(Debug)]
pub enum TraceEvent {
    /// A stage began.
    StageStart,
    /// Mystery event the schema does not describe.
    Mystery,
    /// Quarantine narration added without updating the schema.
    NodeQuarantined,
}
