//! Fixture: a golden suite that lags the wire vocabulary.

enum Message {
    Update,
}

#[test]
fn round_trips() {
    let _ = Message::Update;
}
