//! Fixture: a node with an undocumented public helper and a stale allow.

/// A best-route node.
#[derive(Debug)]
pub struct PlainBgpNode {
    best: u64,
}

impl PlainBgpNode {
    /// Handles a batch.
    pub fn handle(&mut self, delivered: &[u64]) -> u64 {
        self.best = delivered.first().copied().unwrap_or(self.best);
        self.best
    }
}

pub fn undocumented_helper() -> u32 {
    7
}

// lint:allow(stale: this suppresses nothing and must be reported)
const NODE_VERSION: u32 = 3;
