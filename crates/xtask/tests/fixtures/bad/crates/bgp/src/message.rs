//! Fixture: wire vocabulary that outgrew its golden suite.

/// A BGP wire message.
#[derive(Debug)]
pub enum Message {
    /// Route announcement.
    Update,
    /// New variant with no golden round-trip coverage.
    Bogus,
}
