//! Fixture: a crate root that forgot to forbid unsafe code.

pub mod chaos;
pub mod message;
pub mod node;
