//! Fixture: a chaos engine whose helper chain panics.

/// Chaos-mode engine.
#[derive(Debug)]
pub struct ChaosEngine {
    ticks: u32,
}

impl ChaosEngine {
    /// Advances one step.
    pub fn step(&mut self) -> bool {
        self.ticks += 1;
        tick_parity(self.ticks)
    }

    /// Runs until stable.
    pub fn run_to_stable(&mut self) -> u32 {
        while !self.step() {}
        self.ticks
    }
}

fn tick_parity(ticks: u32) -> bool {
    if ticks == u32::MAX {
        panic!("tick counter saturated");
    }
    ticks % 2 == 0
}
