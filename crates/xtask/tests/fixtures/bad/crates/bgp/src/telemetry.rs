//! Fixture: a causal event emitted without its provenance ids.

/// Emits a route selection that forgot to thread `cause`/`effect`.
pub fn observe_selection(t: &Telemetry) {
    t.record(&TraceEvent::RouteSelected {
        node: 1,
        dest: 2,
        stage: 0,
    });
}
