//! Fixture: a causal event emitted without its provenance ids.

/// Emits a route selection that forgot to thread `cause`/`effect`.
pub fn observe_selection(t: &Telemetry) {
    t.record(&TraceEvent::RouteSelected {
        node: 1,
        dest: 2,
        stage: 0,
    });
}

/// Narrates an SLO verdict whose kind the schema never learned.
pub fn observe_health(t: &Telemetry) {
    t.record(&TraceEvent::HealthVerdict {
        stage: 9,
        detector: 0,
        node: 2,
        dest: 0,
        count: 3,
        threshold: 3,
    });
}

/// Narrates Byzantine-audit events whose kinds the schema never learned.
pub fn observe_adversary(t: &Telemetry) {
    t.record(&TraceEvent::AdversaryInjected {
        stage: 1,
        node: 4,
        peer: 2,
        strategy: 0,
    });
    t.record(&TraceEvent::AuditViolation {
        stage: 2,
        node: 4,
        dest: 7,
        expected: 10,
        advertised: 12,
        violation: 1,
    });
}
