//! Fixture: a codec hot path that allocates a fresh buffer per call.

/// Sizes `update` by encoding into a brand-new buffer every call instead
/// of reusing the caller's scratch.
pub fn update_size_v2_with(_scratch: &mut Vec<u8>, update: &[u32]) -> usize {
    let mut fresh: Vec<u8> = Vec::new();
    for value in update {
        fresh.push((*value & 0x7F) as u8);
    }
    fresh.len()
}
