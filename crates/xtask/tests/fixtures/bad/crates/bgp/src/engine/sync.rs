//! Fixture: a stage engine that allocates per stage, leaks a thread,
//! relaxes an ordering, panics on a hot path, and dips into unsafe.

/// The stage engine.
#[derive(Debug)]
pub struct SyncEngine {
    buffers: Vec<u32>,
}

impl SyncEngine {
    /// Runs one stage, allocating fresh buffers every time.
    pub fn run_stage(&mut self) -> u32 {
        let staged: Vec<u32> = vec![0; self.buffers.len()];
        let handle = std::thread::spawn(move || staged.len() as u32);
        handle.join().unwrap()
    }
}

/// Merges worker emissions into the caller's buffer.
pub fn parallel_handle(merged: &mut Vec<u32>) {
    let extra: Vec<u32> = Vec::new();
    merged.extend(extra);
}

/// Bumps the stage counter without ordering guarantees.
pub fn bump(counter: &std::sync::atomic::AtomicU32) {
    counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
}

/// Reads the first buffer slot without a bounds check.
pub fn first_unchecked(buffers: &[u32]) -> u32 {
    unsafe { *buffers.get_unchecked(0) }
}
