//! Fixture: a runner that leaks hash order, reads the wall clock on a
//! hot path, and indexes without a guard.

use std::collections::HashMap;
use std::time::Instant;

/// Runs the protocol over every node in parallel.
pub fn run_sync_parallel(nodes: &[u32]) -> HashMap<u32, u32> {
    let started = Instant::now();
    let mut merged = HashMap::new();
    for (i, _) in nodes.iter().enumerate() {
        let node = nodes[i + 1];
        merged.insert(node, started.elapsed().subsec_nanos());
    }
    merged
}
