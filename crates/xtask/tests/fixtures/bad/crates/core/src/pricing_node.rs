//! Fixture: a pricing node that reaches for ambient randomness.

/// A VCG-pricing node.
#[derive(Debug)]
pub struct PricingBgpNode {
    prices: Vec<u64>,
}

impl PricingBgpNode {
    /// Handles a batch.
    pub fn handle(&mut self, delivered: &[u64]) -> Option<u64> {
        let sum: u64 = delivered.iter().sum();
        self.refresh_prices(sum);
        self.prices.last().copied()
    }

    /// Relaxes prices with an ambient RNG jitter.
    pub fn refresh_prices(&mut self, candidate: u64) {
        let jitter = rand::thread_rng().next_u64() % 2;
        for slot in self.prices.iter_mut() {
            *slot = (*slot).min(candidate + jitter);
        }
    }
}
