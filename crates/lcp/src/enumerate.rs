//! Exhaustive simple-path enumeration — the brute-force oracle.
//!
//! Exponential in the graph size and only usable on small instances, which
//! is exactly its role: an implementation-independent ground truth that the
//! production algorithms (Dijkstra, the Bellman–Ford fixpoint, the
//! avoidance tables, the VCG prices) are differentially tested against.
//! Kept public so downstream test suites can use the same oracle.

use crate::route::Route;
use bgpvcg_netgraph::{AsGraph, AsId};

/// Enumerates **every** simple path from `source` to `destination` as
/// [`Route`]s (in DFS discovery order, not sorted).
///
/// # Complexity
///
/// Exponential; intended for graphs of at most a dozen nodes.
///
/// # Panics
///
/// Panics if either endpoint is not in the graph.
///
/// # Example
///
/// ```
/// use bgpvcg_lcp::enumerate::all_simple_routes;
/// use bgpvcg_lcp::shortest_tree;
/// use bgpvcg_netgraph::generators::structured::{fig1, Fig1};
///
/// let g = fig1();
/// let all = all_simple_routes(&g, Fig1::X, Fig1::Z);
/// // The production LCP is the minimum of the exhaustive enumeration.
/// let best = all.iter().min().unwrap();
/// let tree = shortest_tree(&g, Fig1::Z);
/// assert_eq!(tree.route(Fig1::X), Some(best));
/// ```
pub fn all_simple_routes(graph: &AsGraph, source: AsId, destination: AsId) -> Vec<Route> {
    assert!(
        graph.contains_node(source) && graph.contains_node(destination),
        "endpoints must be in the graph"
    );
    fn dfs(
        graph: &AsGraph,
        at: AsId,
        destination: AsId,
        path: &mut Vec<AsId>,
        out: &mut Vec<Route>,
    ) {
        if at == destination {
            out.push(Route::from_nodes(graph, path.clone()));
            return;
        }
        for &next in graph.neighbors(at) {
            if !path.contains(&next) {
                path.push(next);
                dfs(graph, next, destination, path, out);
                path.pop();
            }
        }
    }
    let mut out = Vec::new();
    let mut path = vec![source];
    dfs(graph, source, destination, &mut path, &mut out);
    out
}

/// The brute-force lowest-cost route under the deterministic order, or
/// `None` if the pair is disconnected.
pub fn brute_force_lcp(graph: &AsGraph, source: AsId, destination: AsId) -> Option<Route> {
    all_simple_routes(graph, source, destination)
        .into_iter()
        .min()
}

/// The brute-force lowest-cost `avoid`-avoiding route under the
/// deterministic order, or `None` if none exists.
pub fn brute_force_avoiding(
    graph: &AsGraph,
    source: AsId,
    destination: AsId,
    avoid: AsId,
) -> Option<Route> {
    all_simple_routes(graph, source, destination)
        .into_iter()
        .filter(|r| !r.contains(avoid))
        .min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::avoiding::avoiding_tree;
    use crate::shortest_tree;
    use bgpvcg_netgraph::generators::structured::{fig1, Fig1};
    use bgpvcg_netgraph::generators::{erdos_renyi, random_costs};
    use bgpvcg_netgraph::Cost;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fig1_enumeration_counts() {
        let g = fig1();
        let all = all_simple_routes(&g, Fig1::X, Fig1::Z);
        // X to Z: XAZ, XBDZ, XBYDZ — and that is all.
        assert_eq!(all.len(), 3);
        assert!(all.iter().any(|r| r.nodes() == [Fig1::X, Fig1::A, Fig1::Z]));
        assert!(all
            .iter()
            .any(|r| r.nodes() == [Fig1::X, Fig1::B, Fig1::D, Fig1::Z]));
        assert!(all
            .iter()
            .any(|r| r.nodes() == [Fig1::X, Fig1::B, Fig1::Y, Fig1::D, Fig1::Z]));
    }

    #[test]
    fn brute_force_matches_dijkstra_everywhere() {
        for seed in 0..4 {
            let mut rng = StdRng::seed_from_u64(seed);
            let costs = random_costs(8, 0, 7, &mut rng);
            let g = erdos_renyi(costs, 0.4, &mut rng);
            for j in g.nodes() {
                let tree = shortest_tree(&g, j);
                for i in g.nodes() {
                    if i == j {
                        continue;
                    }
                    assert_eq!(
                        tree.route(i),
                        brute_force_lcp(&g, i, j).as_ref(),
                        "seed {seed}: {i}->{j}"
                    );
                }
            }
        }
    }

    #[test]
    fn brute_force_matches_avoiding_dijkstra() {
        for seed in 0..3 {
            let mut rng = StdRng::seed_from_u64(10 + seed);
            let costs = random_costs(8, 0, 7, &mut rng);
            let g = erdos_renyi(costs, 0.45, &mut rng);
            for j in g.nodes() {
                for k in g.nodes() {
                    if k == j {
                        continue;
                    }
                    let tree = avoiding_tree(&g, j, k);
                    for i in g.nodes() {
                        if i == j || i == k {
                            continue;
                        }
                        assert_eq!(
                            tree.route(i),
                            brute_force_avoiding(&g, i, j, k).as_ref(),
                            "seed {seed}: {i}->{j} avoiding {k}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn trivial_pair_enumerates_itself() {
        let g = fig1();
        let all = all_simple_routes(&g, Fig1::Z, Fig1::Z);
        assert_eq!(all, vec![crate::Route::trivial(Fig1::Z)]);
        assert_eq!(
            brute_force_lcp(&g, Fig1::Z, Fig1::Z),
            Some(crate::Route::trivial(Fig1::Z))
        );
    }

    #[test]
    fn avoiding_nonexistent_alternative_is_none() {
        // Path graph 0-1-2: avoiding 1 leaves no 0->2 route.
        let g = bgpvcg_netgraph::generators::from_edges(vec![Cost::new(1); 3], &[(0, 1), (1, 2)]);
        assert_eq!(
            brute_force_avoiding(&g, AsId::new(0), AsId::new(2), AsId::new(1)),
            None
        );
    }
}
