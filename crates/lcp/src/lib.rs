//! Centralized lowest-cost-path (LCP) routing with node costs.
//!
//! This crate is the routing substrate the BGP-VCG mechanism assumes exists
//! ("BGP, suitably configured" — paper, Sect. 3): given an AS graph with
//! declared per-packet transit costs, it computes
//!
//! * the lowest-cost route between every pair of ASs, with a **deterministic
//!   loop-free tie-break** so that for each destination `j` the selected
//!   routes form the tree `T(j)` the paper's Sect. 6 requires
//!   ([`DestinationTree`], [`AllPairsLcp`]);
//! * lowest-cost **k-avoiding** routes — the counterfactual paths that
//!   define VCG prices ([`avoiding`]);
//! * the hop diameters `d` (max hops of any LCP) and `d′` (max hops of any
//!   lowest-cost k-avoiding path) that bound the protocol's convergence time
//!   ([`diameter`]);
//! * a synchronous Bellman–Ford fixpoint ([`bellman`]) whose per-stage
//!   semantics exactly match the distributed protocol, used as a
//!   cross-check and to measure convergence stages centrally.
//!
//! Path costs count **transit nodes only**: the endpoints of a route
//! contribute nothing (paper, Sect. 3: `I_i(c; i, j) = I_j(c; i, j) = 0`).
//!
//! # Example
//!
//! ```
//! use bgpvcg_netgraph::generators::structured::{fig1, Fig1};
//! use bgpvcg_lcp::AllPairsLcp;
//! use bgpvcg_netgraph::Cost;
//!
//! let g = fig1();
//! let lcp = AllPairsLcp::compute(&g);
//! let route = lcp.route(Fig1::X, Fig1::Z).expect("connected");
//! // The paper: the LCP from X to Z is X B D Z with transit cost 3.
//! assert_eq!(route.transit_cost(), Cost::new(3));
//! assert_eq!(route.nodes(), &[Fig1::X, Fig1::B, Fig1::D, Fig1::Z]);
//! ```

#![forbid(unsafe_code)]

pub mod avoiding;
pub mod bellman;
pub mod diameter;
pub mod enumerate;

mod all_pairs;
mod dijkstra;
mod route;
mod tree;

pub use all_pairs::AllPairsLcp;
pub use dijkstra::shortest_tree;
pub use route::Route;
pub use tree::{DestinationTree, Relation};
