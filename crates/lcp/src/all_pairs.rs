//! All-pairs lowest-cost routes.

use crate::dijkstra::shortest_tree;
use crate::route::Route;
use crate::tree::DestinationTree;
use bgpvcg_netgraph::{AsGraph, AsId, Cost};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Lowest-cost routes for **all** source–destination pairs: one
/// [`DestinationTree`] per destination.
///
/// This is the all-pairs formulation that distinguishes the paper from the
/// single-pair mechanisms of Nisan–Ronen and Hershberger–Suri: the mechanism
/// must produce `n²` routes and the prices for every transit node on each.
///
/// # Example
///
/// ```
/// use bgpvcg_netgraph::generators::structured::{fig1, Fig1};
/// use bgpvcg_lcp::AllPairsLcp;
///
/// let g = fig1();
/// let lcp = AllPairsLcp::compute(&g);
/// assert!(lcp.is_transit(Fig1::D, Fig1::X, Fig1::Z));
/// assert!(!lcp.is_transit(Fig1::A, Fig1::X, Fig1::Z));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllPairsLcp {
    trees: Vec<DestinationTree>,
}

impl AllPairsLcp {
    /// Computes selected routes for every destination by running
    /// per-destination Dijkstra `n` times.
    pub fn compute(graph: &AsGraph) -> Self {
        let trees = graph.nodes().map(|j| shortest_tree(graph, j)).collect();
        AllPairsLcp { trees }
    }

    /// Number of ASs covered.
    pub fn node_count(&self) -> usize {
        self.trees.len()
    }

    /// The tree `T(j)` for destination `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn tree(&self, j: AsId) -> &DestinationTree {
        &self.trees[j.index()]
    }

    /// Iterates over all destination trees in destination order.
    pub fn trees(&self) -> impl Iterator<Item = &DestinationTree> {
        self.trees.iter()
    }

    /// The selected route from `i` to `j` (`None` if unreachable; the
    /// trivial route if `i == j`).
    pub fn route(&self, i: AsId, j: AsId) -> Option<&Route> {
        self.trees[j.index()].route(i)
    }

    /// The LCP cost `c(i, j)`; zero when `i == j`, infinite when
    /// unreachable.
    pub fn cost(&self, i: AsId, j: AsId) -> Cost {
        self.trees[j.index()].cost(i)
    }

    /// The indicator `I_k(c; i, j)`: is `k` a transit node on the selected
    /// route from `i` to `j`? Always `false` when `k ∈ {i, j}`.
    pub fn is_transit(&self, k: AsId, i: AsId, j: AsId) -> bool {
        self.trees[j.index()].is_transit(k, i)
    }

    /// Total cost incurred by node `k` across all unit flows: the number of
    /// `(i, j)` pairs for which `k` is transit, times `c_k`, matching the
    /// paper's `u_k(c)` for the uniform traffic matrix.
    pub fn transit_pair_count(&self, k: AsId) -> usize {
        let n = self.node_count();
        let mut count = 0;
        for j in 0..n {
            let tree = &self.trees[j];
            for i in 0..n {
                if i != j && tree.is_transit(k, AsId::new(i as u32)) {
                    count += 1;
                }
            }
        }
        count
    }
}

impl fmt::Display for AllPairsLcp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "AllPairsLcp over {} ASs", self.node_count())?;
        for tree in &self.trees {
            write!(f, "{tree}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpvcg_netgraph::generators::structured::{fig1, ring, Fig1};

    #[test]
    fn computes_every_tree() {
        let g = fig1();
        let lcp = AllPairsLcp::compute(&g);
        assert_eq!(lcp.node_count(), 6);
        for j in g.nodes() {
            assert_eq!(lcp.tree(j).destination(), j);
        }
        assert_eq!(lcp.trees().count(), 6);
    }

    #[test]
    fn route_and_cost_delegate_to_trees() {
        let g = fig1();
        let lcp = AllPairsLcp::compute(&g);
        assert_eq!(lcp.cost(Fig1::X, Fig1::Z), Cost::new(3));
        assert_eq!(lcp.cost(Fig1::Z, Fig1::Z), Cost::ZERO);
        assert_eq!(
            lcp.route(Fig1::Y, Fig1::Z).unwrap().nodes(),
            &[Fig1::Y, Fig1::D, Fig1::Z]
        );
    }

    #[test]
    fn symmetric_costs_on_symmetric_graph() {
        // Uniform ring: cost(i, j) must equal cost(j, i) because transit
        // sets coincide on the reversed path.
        let g = ring(7, Cost::new(2));
        let lcp = AllPairsLcp::compute(&g);
        for i in g.nodes() {
            for j in g.nodes() {
                assert_eq!(lcp.cost(i, j), lcp.cost(j, i));
            }
        }
    }

    #[test]
    fn transit_pair_count_on_fig1() {
        let g = fig1();
        let lcp = AllPairsLcp::compute(&g);
        // D carries X<->Z, Y<->Z, B<->Z, X<->Y(?) ... verify against the
        // direct definition rather than a hand count.
        for k in g.nodes() {
            let mut expected = 0;
            for i in g.nodes() {
                for j in g.nodes() {
                    if i != j && lcp.is_transit(k, i, j) {
                        expected += 1;
                    }
                }
            }
            assert_eq!(lcp.transit_pair_count(k), expected);
        }
    }

    #[test]
    fn endpoints_are_never_transit() {
        let g = fig1();
        let lcp = AllPairsLcp::compute(&g);
        for i in g.nodes() {
            for j in g.nodes() {
                if i == j {
                    continue;
                }
                assert!(!lcp.is_transit(i, i, j));
                assert!(!lcp.is_transit(j, i, j));
            }
        }
    }
}
