//! Routes and the deterministic route order.

use bgpvcg_netgraph::{AsGraph, AsId, Cost};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A simple path through the AS graph, from a source to a destination,
/// together with its transit cost.
///
/// The node sequence includes **both endpoints**; the transit cost counts
/// **only the intermediate nodes** (paper, Sect. 3: endpoints are never paid
/// and never counted). A route from a node to itself is the trivial
/// single-node path with cost zero.
///
/// Routes are totally ordered by `(transit cost, hop count, lexicographic
/// node sequence)` — see [`Ord`] below. The order is *monotone under
/// extension* (prepending the same node to two routes preserves their
/// order), which is what lets Dijkstra, the Bellman–Ford fixpoint, and the
/// distributed path-vector protocol all converge to the same selected route
/// for every pair. That agreement is what makes exact equality between the
/// centralized Theorem-1 prices and the distributed protocol's prices
/// testable.
///
/// # Example
///
/// ```
/// use bgpvcg_lcp::Route;
/// use bgpvcg_netgraph::{AsId, Cost};
///
/// let r = Route::from_parts(
///     vec![AsId::new(0), AsId::new(4), AsId::new(3), AsId::new(2)],
///     Cost::new(3),
/// );
/// assert_eq!(r.source(), AsId::new(0));
/// assert_eq!(r.destination(), AsId::new(2));
/// assert_eq!(r.hops(), 3);
/// assert_eq!(r.transit_nodes(), &[AsId::new(4), AsId::new(3)]);
/// assert!(r.is_transit(AsId::new(4)));
/// assert!(!r.is_transit(AsId::new(0)), "endpoints are not transit nodes");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Route {
    nodes: Vec<AsId>,
    transit_cost: Cost,
}

/// The intermediate nodes of a node sequence; empty for sequences of one
/// or two nodes (endpoints are never transit).
fn transit_slice(nodes: &[AsId]) -> &[AsId] {
    if nodes.len() <= 2 {
        &[]
    } else {
        &nodes[1..nodes.len() - 1]
    }
}

impl Route {
    /// The trivial route from a node to itself (zero hops, zero cost).
    pub fn trivial(node: AsId) -> Self {
        Route {
            nodes: vec![node],
            transit_cost: Cost::ZERO,
        }
    }

    /// Builds a route from an explicit node sequence, computing the transit
    /// cost from the graph's declared costs.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty, repeats a node, or traverses a
    /// non-existent link.
    pub fn from_nodes(graph: &AsGraph, nodes: Vec<AsId>) -> Self {
        assert!(!nodes.is_empty(), "a route has at least one node");
        for w in nodes.windows(2) {
            assert!(
                graph.has_link(w[0], w[1]),
                "no link between {} and {}",
                w[0],
                w[1]
            );
        }
        let mut seen = vec![false; graph.node_count()];
        for &k in &nodes {
            assert!(!seen[k.index()], "route repeats {k}");
            seen[k.index()] = true;
        }
        let transit_cost = transit_slice(&nodes).iter().map(|&k| graph.cost(k)).sum();
        Route {
            nodes,
            transit_cost,
        }
    }

    /// Builds a route from a node sequence and a precomputed transit cost.
    ///
    /// Used where the graph is not at hand (e.g. reconstructing a route from
    /// a protocol message). The caller is responsible for consistency.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty.
    pub fn from_parts(nodes: Vec<AsId>, transit_cost: Cost) -> Self {
        assert!(!nodes.is_empty(), "a route has at least one node");
        Route {
            nodes,
            transit_cost,
        }
    }

    /// Extends this route by prepending a new source `head`, adding the old
    /// source's cost (`head_neighbor_cost`) to the transit cost — unless the
    /// old source *is* the destination, in which case it remains an endpoint
    /// and contributes nothing.
    ///
    /// This is exactly the operation a path-vector node performs when it
    /// selects a neighbor's advertised route.
    ///
    /// # Panics
    ///
    /// Panics if `head` already appears on the route (the extension would
    /// not be a simple path).
    pub fn extend(&self, head: AsId, old_source_cost: Cost) -> Route {
        assert!(
            !self.contains(head),
            "extending route {self} with {head} creates a loop"
        );
        let added = if self.nodes.len() == 1 {
            // Old source is the destination itself: it stays an endpoint.
            Cost::ZERO
        } else {
            old_source_cost
        };
        let mut nodes = Vec::with_capacity(self.nodes.len() + 1);
        nodes.push(head);
        nodes.extend_from_slice(&self.nodes);
        Route {
            nodes,
            transit_cost: self.transit_cost + added,
        }
    }

    /// The full node sequence, source first.
    pub fn nodes(&self) -> &[AsId] {
        &self.nodes
    }

    /// The source AS.
    pub fn source(&self) -> AsId {
        self.nodes[0]
    }

    /// The destination AS.
    pub fn destination(&self) -> AsId {
        *self.nodes.last().expect("routes are non-empty")
    }

    /// Number of hops (links) on the route; zero for the trivial route.
    pub fn hops(&self) -> usize {
        self.nodes.len() - 1
    }

    /// The transit (intermediate) nodes, in path order.
    pub fn transit_nodes(&self) -> &[AsId] {
        transit_slice(&self.nodes)
    }

    /// The transit cost `c(i, j)` of the route: the sum of its intermediate
    /// nodes' declared costs.
    pub fn transit_cost(&self) -> Cost {
        self.transit_cost
    }

    /// Returns `true` if `k` appears anywhere on the route (endpoints
    /// included).
    pub fn contains(&self, k: AsId) -> bool {
        self.nodes.contains(&k)
    }

    /// Returns `true` if `k` is a *transit* node of the route — the
    /// indicator `I_k(c; i, j)` of the paper.
    pub fn is_transit(&self, k: AsId) -> bool {
        self.transit_nodes().contains(&k)
    }

    /// The suffix of this route starting at `k`, or `None` if `k` is not on
    /// the route. The suffix of an LCP is itself an LCP (and the suffix of a
    /// lowest-cost k-avoiding path is either an LCP or a lowest-cost
    /// k-avoiding path — paper, Sect. 6.2), which the correctness argument
    /// of the distributed algorithm leans on.
    ///
    /// The transit cost of the suffix must be supplied-free: it is computed
    /// by subtracting the costs of the dropped transit nodes, so the caller
    /// needs the graph.
    pub fn suffix_from(&self, graph: &AsGraph, k: AsId) -> Option<Route> {
        let pos = self.nodes.iter().position(|&x| x == k)?;
        let nodes = self.nodes[pos..].to_vec();
        let transit_cost = transit_slice(&nodes).iter().map(|&x| graph.cost(x)).sum();
        Some(Route {
            nodes,
            transit_cost,
        })
    }
}

impl PartialOrd for Route {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Route {
    /// The deterministic route order: transit cost, then hop count, then
    /// lexicographic node sequence.
    ///
    /// Two distinct simple routes between the same pair always differ in the
    /// node sequence, so the order is total and tie-free per pair — the
    /// "appropriate way to break ties" the paper assumes (Sect. 3).
    fn cmp(&self, other: &Self) -> Ordering {
        self.transit_cost
            .cmp(&other.transit_cost)
            .then_with(|| self.nodes.len().cmp(&other.nodes.len()))
            .then_with(|| self.nodes.cmp(&other.nodes))
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = self.nodes.iter().map(|k| k.to_string()).collect();
        write!(f, "{} (cost {})", names.join(" → "), self.transit_cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpvcg_netgraph::generators::structured::{fig1, Fig1};

    #[test]
    fn trivial_route() {
        let r = Route::trivial(AsId::new(3));
        assert_eq!(r.source(), AsId::new(3));
        assert_eq!(r.destination(), AsId::new(3));
        assert_eq!(r.hops(), 0);
        assert_eq!(r.transit_cost(), Cost::ZERO);
        assert!(r.transit_nodes().is_empty());
    }

    #[test]
    fn from_nodes_computes_transit_cost() {
        let g = fig1();
        let r = Route::from_nodes(&g, vec![Fig1::X, Fig1::B, Fig1::D, Fig1::Z]);
        assert_eq!(r.transit_cost(), Cost::new(3)); // c_B + c_D = 2 + 1
        assert_eq!(r.transit_nodes(), &[Fig1::B, Fig1::D]);
    }

    #[test]
    fn two_hop_route_has_one_transit_node() {
        let g = fig1();
        let r = Route::from_nodes(&g, vec![Fig1::X, Fig1::A, Fig1::Z]);
        assert_eq!(r.transit_cost(), Cost::new(5)); // c_A
        assert_eq!(r.transit_nodes(), &[Fig1::A]);
    }

    #[test]
    fn one_hop_route_is_free() {
        let g = fig1();
        let r = Route::from_nodes(&g, vec![Fig1::D, Fig1::Z]);
        assert_eq!(r.transit_cost(), Cost::ZERO);
    }

    #[test]
    #[should_panic(expected = "no link")]
    fn from_nodes_rejects_missing_link() {
        let g = fig1();
        let _ = Route::from_nodes(&g, vec![Fig1::X, Fig1::Z]);
    }

    #[test]
    #[should_panic(expected = "repeats")]
    fn from_nodes_rejects_loops() {
        let g = fig1();
        let _ = Route::from_nodes(&g, vec![Fig1::X, Fig1::B, Fig1::X]);
    }

    #[test]
    fn extend_adds_old_source_cost() {
        let g = fig1();
        let dz = Route::from_nodes(&g, vec![Fig1::D, Fig1::Z]);
        let bdz = dz.extend(Fig1::B, g.cost(Fig1::D));
        assert_eq!(bdz.nodes(), &[Fig1::B, Fig1::D, Fig1::Z]);
        assert_eq!(bdz.transit_cost(), Cost::new(1)); // c_D
        let xbdz = bdz.extend(Fig1::X, g.cost(Fig1::B));
        assert_eq!(xbdz.transit_cost(), Cost::new(3)); // c_D + c_B
    }

    #[test]
    fn extend_from_trivial_costs_nothing() {
        let z = Route::trivial(Fig1::Z);
        let dz = z.extend(Fig1::D, Cost::new(999));
        assert_eq!(dz.transit_cost(), Cost::ZERO, "destination is an endpoint");
    }

    #[test]
    #[should_panic(expected = "loop")]
    fn extend_rejects_loops() {
        let g = fig1();
        let r = Route::from_nodes(&g, vec![Fig1::B, Fig1::D, Fig1::Z]);
        let _ = r.extend(Fig1::D, Cost::ZERO);
    }

    #[test]
    fn order_prefers_cheaper() {
        let g = fig1();
        let cheap = Route::from_nodes(&g, vec![Fig1::X, Fig1::B, Fig1::D, Fig1::Z]);
        let dear = Route::from_nodes(&g, vec![Fig1::X, Fig1::A, Fig1::Z]);
        assert!(cheap < dear, "cost 3 beats cost 5 despite more hops");
    }

    #[test]
    fn order_breaks_cost_ties_by_hops_then_lex() {
        let a = Route::from_parts(vec![AsId::new(0), AsId::new(9), AsId::new(5)], Cost::new(4));
        let b = Route::from_parts(
            vec![AsId::new(0), AsId::new(1), AsId::new(2), AsId::new(5)],
            Cost::new(4),
        );
        assert!(a < b, "equal cost: fewer hops wins");
        let c = Route::from_parts(vec![AsId::new(0), AsId::new(3), AsId::new(5)], Cost::new(4));
        assert!(
            c < a,
            "equal cost and hops: lexicographically smaller path wins"
        );
    }

    #[test]
    fn order_is_monotone_under_extension() {
        // If r1 < r2 (same source), then extending both by the same head
        // preserves the order.
        let r1 = Route::from_parts(vec![AsId::new(1), AsId::new(5)], Cost::new(2));
        let r2 = Route::from_parts(vec![AsId::new(1), AsId::new(3), AsId::new(5)], Cost::new(2));
        assert!(r1 < r2);
        let e1 = r1.extend(AsId::new(7), Cost::new(4));
        let e2 = r2.extend(AsId::new(7), Cost::new(4));
        assert!(e1 < e2);
    }

    #[test]
    fn suffix_from_recomputes_cost() {
        let g = fig1();
        let r = Route::from_nodes(&g, vec![Fig1::X, Fig1::B, Fig1::D, Fig1::Z]);
        let suffix = r.suffix_from(&g, Fig1::B).unwrap();
        assert_eq!(suffix.nodes(), &[Fig1::B, Fig1::D, Fig1::Z]);
        assert_eq!(suffix.transit_cost(), Cost::new(1)); // c_D only
        assert_eq!(r.suffix_from(&g, Fig1::Y), None);
        let whole = r.suffix_from(&g, Fig1::X).unwrap();
        assert_eq!(whole, r);
    }

    #[test]
    fn suffix_from_destination_is_trivial() {
        // Regression: slicing the single-node suffix used to panic.
        let g = fig1();
        let r = Route::from_nodes(&g, vec![Fig1::X, Fig1::B, Fig1::D, Fig1::Z]);
        let end = r.suffix_from(&g, Fig1::Z).unwrap();
        assert_eq!(end, Route::trivial(Fig1::Z));
        assert_eq!(end.transit_cost(), Cost::ZERO);
    }

    #[test]
    fn is_transit_excludes_endpoints() {
        let g = fig1();
        let r = Route::from_nodes(&g, vec![Fig1::X, Fig1::B, Fig1::D, Fig1::Z]);
        assert!(r.is_transit(Fig1::B));
        assert!(r.is_transit(Fig1::D));
        assert!(!r.is_transit(Fig1::X));
        assert!(!r.is_transit(Fig1::Z));
        assert!(!r.is_transit(Fig1::A));
        assert!(r.contains(Fig1::X));
    }

    #[test]
    fn display_shows_path_and_cost() {
        let g = fig1();
        let r = Route::from_nodes(&g, vec![Fig1::D, Fig1::Z]);
        let text = r.to_string();
        assert!(text.contains("AS3"));
        assert!(text.contains("AS2"));
        assert!(text.contains("cost 0"));
    }
}
