//! Lowest-cost k-avoiding paths.
//!
//! The VCG price paid to a transit node `k` on the LCP from `i` to `j` is
//! determined by the lowest-cost path from `i` to `j` that does **not** pass
//! through `k` — the *k-avoiding path* `P_{-k}(c; i, j)` (paper, Sect. 4).
//! In a biconnected graph such a path always exists, which is exactly why
//! the paper assumes biconnectivity.
//!
//! The price formula only needs the avoiding path's **cost**, which is
//! tie-independent; the avoiding path's **hop count** additionally feeds the
//! convergence bound `max(d, d′)` of Lemma 2, so this module records both.

use crate::all_pairs::AllPairsLcp;
use crate::route::Route;
use crate::tree::DestinationTree;
use bgpvcg_netgraph::{AsGraph, AsId, Cost};
use std::fmt;

/// Computes the tree of lowest-cost `avoid`-avoiding routes to
/// `destination`: Dijkstra on the graph with node `avoid` removed, under the
/// same deterministic route order as [`crate::shortest_tree`].
///
/// `avoid` itself (and any node separated from `destination` by removing
/// `avoid`) ends up unreachable in the returned tree; in a biconnected graph
/// only `avoid` does.
///
/// # Panics
///
/// Panics if `destination` or `avoid` is not in the graph, or if
/// `destination == avoid`.
///
/// # Example
///
/// ```
/// use bgpvcg_netgraph::generators::structured::{fig1, Fig1};
/// use bgpvcg_lcp::avoiding::avoiding_tree;
/// use bgpvcg_netgraph::Cost;
///
/// let g = fig1();
/// let t = avoiding_tree(&g, Fig1::Z, Fig1::D);
/// // The paper: the lowest-cost D-avoiding path from X to Z is X A Z, cost 5.
/// assert_eq!(t.cost(Fig1::X), Cost::new(5));
/// ```
pub fn avoiding_tree(graph: &AsGraph, destination: AsId, avoid: AsId) -> DestinationTree {
    assert!(
        graph.contains_node(destination) && graph.contains_node(avoid),
        "nodes must be in the graph"
    );
    assert!(destination != avoid, "cannot avoid the destination itself");
    // Dijkstra on the punctured graph. Rather than materializing a copy of
    // the graph, run the same algorithm and skip `avoid`.
    let n = graph.node_count();
    let mut selected: Vec<Option<Route>> = vec![None; n];
    // Pre-settling `avoid` (with no route) keeps pops and relaxations from
    // ever touching it.
    let mut settled = vec![false; n];
    settled[avoid.index()] = true;

    let mut heap = std::collections::BinaryHeap::new();
    heap.push(std::cmp::Reverse(Route::trivial(destination)));

    while let Some(std::cmp::Reverse(route)) = heap.pop() {
        let u: AsId = route.source();
        if settled[u.index()] {
            continue;
        }
        settled[u.index()] = true;
        selected[u.index()] = Some(route.clone());
        for &v in graph.neighbors(u) {
            if settled[v.index()] || route.contains(v) {
                continue;
            }
            let candidate = route.extend(v, graph.cost(u));
            let better = match &selected[v.index()] {
                None => true,
                Some(current) => candidate < *current,
            };
            if better {
                selected[v.index()] = Some(candidate.clone());
                heap.push(std::cmp::Reverse(candidate));
            }
        }
    }

    for (idx, slot) in selected.iter_mut().enumerate() {
        if !settled[idx] || idx == avoid.index() {
            *slot = None;
        }
    }
    DestinationTree::from_routes(destination, selected)
}

/// One recorded avoiding-path fact: for a transit node `k` on the LCP from
/// some `i` to some `j`, the cost and hop count of the lowest-cost
/// k-avoiding path from `i` to `j`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AvoidingEntry {
    /// The avoided transit node `k`.
    pub avoided: AsId,
    /// `Cost(P_{-k}(c; i, j))`; infinite only if the graph is not
    /// biconnected.
    pub cost: Cost,
    /// Hop count of the selected lowest-cost k-avoiding path (`0` when the
    /// cost is infinite).
    pub hops: usize,
}

/// All the k-avoiding facts the mechanism needs: for every pair `(i, j)` and
/// every transit node `k` on the selected LCP from `i` to `j`, the cost and
/// hop count of `P_{-k}(c; i, j)`.
///
/// Built with one punctured Dijkstra per (destination, avoided-node) pair
/// where the avoided node actually carries transit traffic toward that
/// destination — `O(n²)` Dijkstras worst case, far less on sparse trees.
///
/// # Example
///
/// ```
/// use bgpvcg_netgraph::generators::structured::{fig1, Fig1};
/// use bgpvcg_lcp::{avoiding::AvoidanceTable, AllPairsLcp};
/// use bgpvcg_netgraph::Cost;
///
/// let g = fig1();
/// let lcp = AllPairsLcp::compute(&g);
/// let avoid = AvoidanceTable::compute(&g, &lcp);
/// let entry = avoid.get(Fig1::X, Fig1::Z, Fig1::D).expect("D is transit");
/// assert_eq!(entry.cost, Cost::new(5)); // X A Z
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AvoidanceTable {
    n: usize,
    /// `entries[j][i]` lists, in LCP path order, one entry per transit node
    /// on the selected route from `i` to `j`. Empty when the route has no
    /// transit nodes (or does not exist).
    entries: Vec<Vec<Vec<AvoidingEntry>>>,
}

impl AvoidanceTable {
    /// Computes the table for the given graph and its all-pairs routes.
    ///
    /// For graphs that are not biconnected, entries whose avoiding path does
    /// not exist carry [`Cost::INFINITE`]; callers that require the
    /// mechanism's preconditions should validate the graph first.
    pub fn compute(graph: &AsGraph, lcp: &AllPairsLcp) -> Self {
        let n = graph.node_count();
        let mut entries: Vec<Vec<Vec<AvoidingEntry>>> = vec![vec![Vec::new(); n]; n];
        for j in graph.nodes() {
            let tree = lcp.tree(j);
            // A node k carries transit traffic toward j iff it has children
            // in T(j) and is not j itself (its subtree routes pass through it).
            let transit_nodes: Vec<AsId> = graph
                .nodes()
                .filter(|&k| k != j && !tree.children(k).is_empty())
                .collect();
            for &k in &transit_nodes {
                let avoid = avoiding_tree(graph, j, k);
                for i in graph.nodes() {
                    if i == j || !tree.is_transit(k, i) {
                        continue;
                    }
                    let (cost, hops) = match avoid.route(i) {
                        Some(route) => (route.transit_cost(), route.hops()),
                        None => (Cost::INFINITE, 0),
                    };
                    entries[j.index()][i.index()].push(AvoidingEntry {
                        avoided: k,
                        cost,
                        hops,
                    });
                }
            }
            // Keep each (i, j) list in LCP path order so downstream price
            // arrays line up with the advertised path.
            for i in graph.nodes() {
                if i == j {
                    continue;
                }
                let Some(route) = tree.route(i) else { continue };
                let order: Vec<AsId> = route.transit_nodes().to_vec();
                entries[j.index()][i.index()].sort_by_key(|e| {
                    order
                        .iter()
                        .position(|&t| t == e.avoided)
                        .expect("entry for non-transit node")
                });
            }
        }
        AvoidanceTable { n, entries }
    }

    /// Computes the table by relaxing **within the avoided node's subtree
    /// only** — the centralized counterpart of the paper's Sect. 6.2 suffix
    /// structure, and the reason its distributed algorithm is local:
    ///
    /// A node `i` needs a k-avoiding cost only if `k` is transit on its
    /// LCP, i.e. `i` lies in `k`'s subtree of the tree `T(j)`. For such an
    /// `i`, the lowest-cost k-avoiding path either exits the subtree
    /// immediately (first hop to a neighbor `a` outside the subtree, whose
    /// own LCP is already k-free — cost `c_a + c(a, j)`), or moves to
    /// another subtree node `a` and continues along *its* best k-avoiding
    /// path (cost `c_a + A(a)`). Solving that recurrence with a
    /// Dijkstra-style priority queue over the subtree alone costs
    /// `O(S log S + edges(S))` per `(j, k)` with `S` the subtree size —
    /// usually a small fraction of `n` — instead of a full punctured
    /// Dijkstra over the whole graph.
    ///
    /// Produces **exactly** the same table as [`AvoidanceTable::compute`]
    /// (asserted by tests and the `routing` Criterion bench group measures
    /// the speedup): costs are tie-free quantities and hop counts are
    /// minimized among minimum-cost paths under both orderings.
    pub fn compute_fast(graph: &AsGraph, lcp: &AllPairsLcp) -> Self {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let n = graph.node_count();
        let mut entries: Vec<Vec<Vec<AvoidingEntry>>> = vec![vec![Vec::new(); n]; n];
        for j in graph.nodes() {
            let tree = lcp.tree(j);
            let transit_nodes: Vec<AsId> = graph
                .nodes()
                .filter(|&k| k != j && !tree.children(k).is_empty())
                .collect();
            for &k in &transit_nodes {
                // Membership: i is in k's subtree iff k is transit on P(i, j).
                let in_subtree: Vec<bool> = (0..n)
                    .map(|i| tree.is_transit(k, AsId::new(i as u32)))
                    .collect();
                // Best-known (cost, hops) per subtree node.
                let mut best: Vec<Option<(Cost, usize)>> = vec![None; n];
                let mut settled = vec![false; n];
                let mut heap: BinaryHeap<Reverse<(Cost, usize, u32)>> = BinaryHeap::new();

                // Seed: exits from the subtree to an already-k-free LCP.
                for i in graph.nodes() {
                    if !in_subtree[i.index()] {
                        continue;
                    }
                    for &a in graph.neighbors(i) {
                        if a == k || in_subtree[a.index()] {
                            continue;
                        }
                        let Some(a_route) = tree.route(a) else {
                            continue;
                        };
                        let exit_cost = if a == j {
                            Cost::ZERO
                        } else {
                            graph.cost(a) + a_route.transit_cost()
                        };
                        let exit_hops = 1 + a_route.hops();
                        let candidate = (exit_cost, exit_hops);
                        if best[i.index()].is_none_or(|cur| candidate < cur) {
                            best[i.index()] = Some(candidate);
                            heap.push(Reverse((exit_cost, exit_hops, i.raw())));
                        }
                    }
                }

                // Relax within the subtree.
                while let Some(Reverse((cost, hops, raw))) = heap.pop() {
                    let u = AsId::new(raw);
                    if settled[u.index()] {
                        continue;
                    }
                    settled[u.index()] = true;
                    for &v in graph.neighbors(u) {
                        if v == k || !in_subtree[v.index()] || settled[v.index()] {
                            continue;
                        }
                        // v -> u -> (u's best k-avoiding path): u becomes
                        // transit and pays its declared cost.
                        let candidate = (cost + graph.cost(u), hops + 1);
                        if best[v.index()].is_none_or(|cur| candidate < cur) {
                            best[v.index()] = Some(candidate);
                            heap.push(Reverse((candidate.0, candidate.1, v.raw())));
                        }
                    }
                }

                for i in graph.nodes() {
                    if !in_subtree[i.index()] {
                        continue;
                    }
                    let (cost, hops) = match best[i.index()] {
                        Some((c, h)) if settled[i.index()] => (c, h),
                        _ => (Cost::INFINITE, 0),
                    };
                    entries[j.index()][i.index()].push(AvoidingEntry {
                        avoided: k,
                        cost,
                        hops,
                    });
                }
            }
            for i in graph.nodes() {
                if i == j {
                    continue;
                }
                let Some(route) = tree.route(i) else { continue };
                let order: Vec<AsId> = route.transit_nodes().to_vec();
                entries[j.index()][i.index()].sort_by_key(|e| {
                    order
                        .iter()
                        .position(|&t| t == e.avoided)
                        .expect("entry for non-transit node")
                });
            }
        }
        AvoidanceTable { n, entries }
    }

    /// Number of ASs covered.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The avoiding-path facts for the pair `(i, j)`, in LCP path order.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn entries(&self, i: AsId, j: AsId) -> &[AvoidingEntry] {
        &self.entries[j.index()][i.index()]
    }

    /// The avoiding-path fact for transit node `k` on the LCP from `i` to
    /// `j`, or `None` if `k` is not a transit node of that route.
    pub fn get(&self, i: AsId, j: AsId, k: AsId) -> Option<AvoidingEntry> {
        self.entries(i, j).iter().copied().find(|e| e.avoided == k)
    }

    /// The largest hop count of any recorded lowest-cost k-avoiding path —
    /// the paper's `d′`. Returns 0 for graphs with no transit traffic.
    pub fn max_hops(&self) -> usize {
        self.entries
            .iter()
            .flatten()
            .flatten()
            .map(|e| e.hops)
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for AvoidanceTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "AvoidanceTable over {} ASs (d' = {})",
            self.n,
            self.max_hops()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::shortest_tree;
    use bgpvcg_netgraph::generators::structured::{fig1, ring, Fig1};
    use bgpvcg_netgraph::generators::{erdos_renyi, from_edges, random_costs};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fig1_d_avoiding_path_from_x() {
        let g = fig1();
        let t = avoiding_tree(&g, Fig1::Z, Fig1::D);
        let route = t.route(Fig1::X).unwrap();
        assert_eq!(route.nodes(), &[Fig1::X, Fig1::A, Fig1::Z]);
        assert_eq!(route.transit_cost(), Cost::new(5));
    }

    #[test]
    fn fig1_b_avoiding_path_from_x() {
        let g = fig1();
        let t = avoiding_tree(&g, Fig1::Z, Fig1::B);
        assert_eq!(t.cost(Fig1::X), Cost::new(5)); // X A Z again
    }

    #[test]
    fn fig1_d_avoiding_path_from_y_is_the_long_way() {
        // The paper's overcharging example: the best D-avoiding path from Y
        // to Z is Y B X A Z with cost 9.
        let g = fig1();
        let t = avoiding_tree(&g, Fig1::Z, Fig1::D);
        let route = t.route(Fig1::Y).unwrap();
        assert_eq!(
            route.nodes(),
            &[Fig1::Y, Fig1::B, Fig1::X, Fig1::A, Fig1::Z]
        );
        assert_eq!(route.transit_cost(), Cost::new(9));
    }

    #[test]
    fn avoided_node_is_unreachable_in_tree() {
        let g = fig1();
        let t = avoiding_tree(&g, Fig1::Z, Fig1::D);
        assert!(t.route(Fig1::D).is_none());
        assert_eq!(t.cost(Fig1::D), Cost::INFINITE);
    }

    #[test]
    fn avoiding_routes_never_contain_avoided_node() {
        let mut rng = StdRng::seed_from_u64(3);
        let costs = random_costs(20, 0, 8, &mut rng);
        let g = erdos_renyi(costs, 0.2, &mut rng);
        for j in g.nodes() {
            for k in g.nodes() {
                if k == j {
                    continue;
                }
                let t = avoiding_tree(&g, j, k);
                for i in g.nodes() {
                    if let Some(route) = t.route(i) {
                        assert!(!route.contains(k), "route {route} contains avoided {k}");
                    }
                }
            }
        }
    }

    #[test]
    fn avoiding_cost_at_least_lcp_cost() {
        let mut rng = StdRng::seed_from_u64(4);
        let costs = random_costs(18, 1, 9, &mut rng);
        let g = erdos_renyi(costs, 0.25, &mut rng);
        for j in g.nodes() {
            let plain = shortest_tree(&g, j);
            for k in g.nodes() {
                if k == j {
                    continue;
                }
                let avoid = avoiding_tree(&g, j, k);
                for i in g.nodes() {
                    if i == j || i == k {
                        continue;
                    }
                    assert!(
                        avoid.cost(i) >= plain.cost(i),
                        "restricting paths cannot reduce cost"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "avoid the destination")]
    fn rejects_avoiding_destination() {
        let g = fig1();
        let _ = avoiding_tree(&g, Fig1::Z, Fig1::Z);
    }

    #[test]
    fn non_biconnected_graph_yields_unreachable() {
        // Path 0-1-2: avoiding node 1 disconnects 0 from 2.
        let g = from_edges(vec![Cost::new(1); 3], &[(0, 1), (1, 2)]);
        let t = avoiding_tree(&g, AsId::new(2), AsId::new(1));
        assert!(t.route(AsId::new(0)).is_none());
    }

    #[test]
    fn table_matches_per_tree_computation_on_fig1() {
        let g = fig1();
        let lcp = AllPairsLcp::compute(&g);
        let table = AvoidanceTable::compute(&g, &lcp);
        // X -> Z has transit nodes B, D in that order.
        let entries = table.entries(Fig1::X, Fig1::Z);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].avoided, Fig1::B);
        assert_eq!(entries[0].cost, Cost::new(5));
        assert_eq!(entries[1].avoided, Fig1::D);
        assert_eq!(entries[1].cost, Cost::new(5));
        // Y -> Z has one transit node D with avoiding cost 9 over 4 hops.
        let entries = table.entries(Fig1::Y, Fig1::Z);
        assert_eq!(entries.len(), 1);
        assert_eq!(
            entries[0],
            AvoidingEntry {
                avoided: Fig1::D,
                cost: Cost::new(9),
                hops: 4
            }
        );
    }

    #[test]
    fn table_get_returns_none_for_non_transit() {
        let g = fig1();
        let lcp = AllPairsLcp::compute(&g);
        let table = AvoidanceTable::compute(&g, &lcp);
        assert!(table.get(Fig1::X, Fig1::Z, Fig1::A).is_none());
        assert!(table.get(Fig1::X, Fig1::Z, Fig1::D).is_some());
    }

    #[test]
    fn table_agrees_with_direct_avoiding_trees() {
        let mut rng = StdRng::seed_from_u64(9);
        let costs = random_costs(16, 0, 7, &mut rng);
        let g = erdos_renyi(costs, 0.3, &mut rng);
        let lcp = AllPairsLcp::compute(&g);
        let table = AvoidanceTable::compute(&g, &lcp);
        for j in g.nodes() {
            for i in g.nodes() {
                if i == j {
                    continue;
                }
                let route = lcp.route(i, j).unwrap();
                let entries = table.entries(i, j);
                assert_eq!(entries.len(), route.transit_nodes().len());
                for (slot, &k) in route.transit_nodes().iter().enumerate() {
                    let direct = avoiding_tree(&g, j, k);
                    assert_eq!(entries[slot].avoided, k);
                    assert_eq!(entries[slot].cost, direct.cost(i));
                }
            }
        }
    }

    #[test]
    fn compute_fast_equals_compute_on_fig1() {
        let g = fig1();
        let lcp = AllPairsLcp::compute(&g);
        assert_eq!(
            AvoidanceTable::compute_fast(&g, &lcp),
            AvoidanceTable::compute(&g, &lcp)
        );
    }

    #[test]
    fn compute_fast_equals_compute_on_random_families() {
        use bgpvcg_netgraph::generators::barabasi_albert;
        for seed in 0..8 {
            let mut rng = StdRng::seed_from_u64(500 + seed);
            let costs = random_costs(24, 0, 9, &mut rng);
            let g = if seed % 2 == 0 {
                erdos_renyi(costs, 0.2, &mut rng)
            } else {
                barabasi_albert(costs, 2, &mut rng)
            };
            let lcp = AllPairsLcp::compute(&g);
            assert_eq!(
                AvoidanceTable::compute_fast(&g, &lcp),
                AvoidanceTable::compute(&g, &lcp),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn compute_fast_equals_compute_with_zero_costs() {
        // Zero costs maximize ties; cost and hop values must still agree.
        let g = ring(9, Cost::ZERO);
        let lcp = AllPairsLcp::compute(&g);
        assert_eq!(
            AvoidanceTable::compute_fast(&g, &lcp),
            AvoidanceTable::compute(&g, &lcp)
        );
    }

    #[test]
    fn max_hops_on_ring() {
        // On a uniform ring, avoiding a node on the short arc forces the
        // long way around. The shortest LCP with a transit node has 2 hops,
        // so the longest avoiding detour has n - 2 hops.
        let g = ring(8, Cost::new(1));
        let lcp = AllPairsLcp::compute(&g);
        let table = AvoidanceTable::compute(&g, &lcp);
        assert_eq!(table.max_hops(), 6);
    }
}
