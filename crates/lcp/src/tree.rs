//! Per-destination routing trees `T(j)`.

use crate::route::Route;
use bgpvcg_netgraph::{AsId, Cost};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The relation of a neighbor `a` to a node `i` in the tree `T(j)`, which
/// selects among the four price-relaxation cases of the paper's Sect. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Relation {
    /// `a` is `i`'s parent: the LCP from `i` to `j` goes `i → a → … → j`
    /// (case i).
    Parent,
    /// `a` is one of `i`'s children: `i` is on the LCP from `a` to `j`
    /// (case ii).
    Child,
    /// `a` is neither parent nor child of `i` (cases iii and iv).
    Unrelated,
}

/// The selected-routes tree `T(j)` for one destination `j`: every node's
/// lowest-cost route to `j` under the deterministic route order, arranged as
/// a tree rooted at `j` (paper, Sect. 6: "the LCPs selected form a tree
/// rooted at `j`").
///
/// For a connected graph every node has a route; `route` returns `None`
/// only for nodes disconnected from `j`.
///
/// # Example
///
/// ```
/// use bgpvcg_netgraph::generators::structured::{fig1, Fig1};
/// use bgpvcg_lcp::{shortest_tree, Relation};
///
/// let g = fig1();
/// let t = shortest_tree(&g, Fig1::Z);
/// // Fig. 2 of the paper: in T(Z), D is the parent of B.
/// assert_eq!(t.parent(Fig1::B), Some(Fig1::D));
/// assert_eq!(t.relation(Fig1::B, Fig1::D), Relation::Parent);
/// assert_eq!(t.relation(Fig1::D, Fig1::B), Relation::Child);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DestinationTree {
    destination: AsId,
    /// Selected route per node (`None` = unreachable). The destination's
    /// own entry is the trivial route.
    routes: Vec<Option<Route>>,
    /// Parent per node (`None` for the destination and unreachable nodes).
    parents: Vec<Option<AsId>>,
    /// Children lists, sorted ascending.
    children: Vec<Vec<AsId>>,
}

impl DestinationTree {
    /// Assembles a tree from per-node selected routes.
    ///
    /// # Panics
    ///
    /// Panics if the routes are inconsistent: the destination's entry is not
    /// trivial, some route does not end at the destination, or a node's
    /// route is not its parent's route extended by one hop (i.e. the routes
    /// do not form a tree).
    pub fn from_routes(destination: AsId, routes: Vec<Option<Route>>) -> Self {
        let n = routes.len();
        assert!(destination.index() < n, "destination out of range");
        let mut parents: Vec<Option<AsId>> = vec![None; n];
        let mut children: Vec<Vec<AsId>> = vec![Vec::new(); n];
        for (idx, entry) in routes.iter().enumerate() {
            let Some(route) = entry else { continue };
            assert_eq!(
                route.source(),
                AsId::new(idx as u32),
                "route stored under the wrong node"
            );
            assert_eq!(
                route.destination(),
                destination,
                "route does not end at the destination"
            );
            if idx == destination.index() {
                assert_eq!(route.hops(), 0, "destination's route must be trivial");
                continue;
            }
            assert!(route.hops() >= 1, "non-destination route must have hops");
            let parent = route.nodes()[1];
            parents[idx] = Some(parent);
            children[parent.index()].push(AsId::new(idx as u32));
        }
        // Verify the suffix property: each route is parent's route + 1 hop.
        for (idx, entry) in routes.iter().enumerate() {
            let Some(route) = entry else { continue };
            if idx == destination.index() {
                continue;
            }
            let parent = parents[idx].expect("set above");
            let parent_route = routes[parent.index()]
                .as_ref()
                .expect("parent on a selected route must itself have a route");
            assert_eq!(
                &route.nodes()[1..],
                parent_route.nodes(),
                "node {idx}: route is not an extension of its parent's route"
            );
        }
        for list in &mut children {
            list.sort_unstable();
        }
        DestinationTree {
            destination,
            routes,
            parents,
            children,
        }
    }

    /// The destination (root) of the tree.
    pub fn destination(&self) -> AsId {
        self.destination
    }

    /// Number of nodes the tree covers (the graph's node count).
    pub fn node_count(&self) -> usize {
        self.routes.len()
    }

    /// The selected route from `i` to the destination, or `None` if `i` is
    /// unreachable.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn route(&self, i: AsId) -> Option<&Route> {
        self.routes[i.index()].as_ref()
    }

    /// The LCP cost `c(i, j)`, or [`Cost::INFINITE`] if unreachable.
    pub fn cost(&self, i: AsId) -> Cost {
        self.routes[i.index()]
            .as_ref()
            .map_or(Cost::INFINITE, Route::transit_cost)
    }

    /// The number of hops on `i`'s selected route, or `None` if
    /// unreachable.
    pub fn hops(&self, i: AsId) -> Option<usize> {
        self.routes[i.index()].as_ref().map(Route::hops)
    }

    /// `i`'s parent in `T(j)` (`None` for the destination and unreachable
    /// nodes).
    pub fn parent(&self, i: AsId) -> Option<AsId> {
        self.parents[i.index()]
    }

    /// `i`'s children in `T(j)`, ascending.
    pub fn children(&self, i: AsId) -> &[AsId] {
        &self.children[i.index()]
    }

    /// Classifies node `a` relative to node `i`: parent, child, or
    /// unrelated. `a` is typically a physical neighbor of `i`.
    ///
    /// # Panics
    ///
    /// Panics if `a == i`.
    pub fn relation(&self, i: AsId, a: AsId) -> Relation {
        assert!(a != i, "a node has no relation to itself");
        if self.parents[i.index()] == Some(a) {
            Relation::Parent
        } else if self.parents[a.index()] == Some(i) {
            Relation::Child
        } else {
            Relation::Unrelated
        }
    }

    /// The indicator `I_k(c; i, j)`: `true` iff `k` is a *transit* node on
    /// the selected route from `i` to the destination.
    pub fn is_transit(&self, k: AsId, i: AsId) -> bool {
        self.routes[i.index()]
            .as_ref()
            .is_some_and(|r| r.is_transit(k))
    }

    /// All reachable sources, ascending (includes the destination itself).
    pub fn reachable(&self) -> impl Iterator<Item = AsId> + '_ {
        self.routes
            .iter()
            .enumerate()
            .filter_map(|(idx, r)| r.as_ref().map(|_| AsId::new(idx as u32)))
    }
}

impl fmt::Display for DestinationTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "T({}):", self.destination)?;
        for (idx, entry) in self.routes.iter().enumerate() {
            match entry {
                Some(route) => writeln!(f, "  {}: {}", AsId::new(idx as u32), route)?,
                None => writeln!(f, "  {}: unreachable", AsId::new(idx as u32))?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::shortest_tree;
    use bgpvcg_netgraph::generators::structured::{fig1, Fig1};
    use bgpvcg_netgraph::AsGraph;

    fn t_z() -> (AsGraph, DestinationTree) {
        let g = fig1();
        let t = shortest_tree(&g, Fig1::Z);
        (g, t)
    }

    #[test]
    fn fig2_tree_shape() {
        // The paper's Fig. 2: T(Z) has A and D as children of Z, B and Y as
        // children of D, and X as a child of B.
        let (_, t) = t_z();
        assert_eq!(t.parent(Fig1::A), Some(Fig1::Z));
        assert_eq!(t.parent(Fig1::D), Some(Fig1::Z));
        assert_eq!(t.parent(Fig1::B), Some(Fig1::D));
        assert_eq!(t.parent(Fig1::Y), Some(Fig1::D));
        assert_eq!(t.parent(Fig1::X), Some(Fig1::B));
        assert_eq!(t.parent(Fig1::Z), None);
        assert_eq!(t.children(Fig1::D), &[Fig1::B, Fig1::Y]);
        assert_eq!(t.children(Fig1::Z), &[Fig1::A, Fig1::D]);
        assert_eq!(t.children(Fig1::X), &[] as &[AsId]);
    }

    #[test]
    fn relations_match_fig2() {
        let (_, t) = t_z();
        assert_eq!(t.relation(Fig1::B, Fig1::D), Relation::Parent);
        assert_eq!(t.relation(Fig1::D, Fig1::B), Relation::Child);
        assert_eq!(t.relation(Fig1::X, Fig1::A), Relation::Unrelated);
        assert_eq!(t.relation(Fig1::Y, Fig1::B), Relation::Unrelated);
    }

    #[test]
    #[should_panic(expected = "no relation to itself")]
    fn relation_to_self_panics() {
        let (_, t) = t_z();
        let _ = t.relation(Fig1::X, Fig1::X);
    }

    #[test]
    fn costs_match_paper() {
        let (_, t) = t_z();
        assert_eq!(t.cost(Fig1::X), Cost::new(3)); // X B D Z
        assert_eq!(t.cost(Fig1::Y), Cost::new(1)); // Y D Z
        assert_eq!(t.cost(Fig1::B), Cost::new(1)); // B D Z
        assert_eq!(t.cost(Fig1::D), Cost::ZERO); // D Z
        assert_eq!(t.cost(Fig1::A), Cost::ZERO); // A Z
        assert_eq!(t.cost(Fig1::Z), Cost::ZERO); // trivial
    }

    #[test]
    fn transit_indicator() {
        let (_, t) = t_z();
        assert!(t.is_transit(Fig1::D, Fig1::X));
        assert!(t.is_transit(Fig1::B, Fig1::X));
        assert!(!t.is_transit(Fig1::A, Fig1::X));
        assert!(!t.is_transit(Fig1::X, Fig1::X), "source is not transit");
        assert!(
            !t.is_transit(Fig1::Z, Fig1::X),
            "destination is not transit"
        );
    }

    #[test]
    fn reachable_lists_everyone_in_connected_graph() {
        let (g, t) = t_z();
        assert_eq!(t.reachable().count(), g.node_count());
    }

    #[test]
    fn hops_counts_links() {
        let (_, t) = t_z();
        assert_eq!(t.hops(Fig1::X), Some(3));
        assert_eq!(t.hops(Fig1::Z), Some(0));
    }

    #[test]
    #[should_panic(expected = "extension of its parent")]
    fn from_routes_rejects_non_tree() {
        let g = fig1();
        // X's route claims to go via A, but A's stored route goes via Z
        // directly — fine; now corrupt: give X a route whose tail is not A's
        // route.
        let mut routes: Vec<Option<Route>> = vec![None; g.node_count()];
        routes[Fig1::Z.index()] = Some(Route::trivial(Fig1::Z));
        routes[Fig1::A.index()] = Some(Route::from_nodes(&g, vec![Fig1::A, Fig1::Z]));
        routes[Fig1::D.index()] = Some(Route::from_nodes(&g, vec![Fig1::D, Fig1::Z]));
        // Corrupt entry: X -> A -> Z is a real path, but we deliberately
        // store X's route as X,B,D,Z while claiming B is absent; the parent
        // B has no route, which must be rejected.
        routes[Fig1::X.index()] = Some(Route::from_nodes(&g, vec![Fig1::X, Fig1::A, Fig1::Z]));
        // Make A's route inconsistent instead: A routes via X (loopy tree).
        routes[Fig1::A.index()] = Some(Route::from_nodes(
            &g,
            vec![Fig1::A, Fig1::X, Fig1::B, Fig1::D, Fig1::Z],
        ));
        let _ = DestinationTree::from_routes(Fig1::Z, routes);
    }

    #[test]
    #[should_panic(expected = "wrong node")]
    fn from_routes_rejects_misfiled_route() {
        let g = fig1();
        let mut routes: Vec<Option<Route>> = vec![None; g.node_count()];
        routes[Fig1::Z.index()] = Some(Route::trivial(Fig1::Z));
        routes[Fig1::X.index()] = Some(Route::from_nodes(&g, vec![Fig1::A, Fig1::Z]));
        let _ = DestinationTree::from_routes(Fig1::Z, routes);
    }

    #[test]
    fn display_contains_routes() {
        let (_, t) = t_z();
        let text = t.to_string();
        assert!(text.contains("T(AS2)"));
        assert!(text.contains("AS0"));
    }
}
