//! Per-destination Dijkstra under the deterministic route order.

use crate::route::Route;
use crate::tree::DestinationTree;
use bgpvcg_netgraph::{AsGraph, AsId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Computes the tree `T(j)` of selected lowest-cost routes to `destination`.
///
/// This is Dijkstra's algorithm run *from the destination outward*, with the
/// composite route order `(transit cost, hops, lexicographic path)` as the
/// priority. Because the order is total and monotone under extension, the
/// selected route for every node is unique, the selected routes form a tree,
/// and — crucially — the result coincides with the stable state of the
/// distributed path-vector protocol (tested extensively in `bgpvcg-bgp`).
///
/// Nodes unreachable from `destination` get no route.
///
/// # Complexity
///
/// `O(m log n)` heap operations; each carries a route clone of length
/// `O(d)`, so the total work is `O(m d log n)` — ample for the laptop-scale
/// experiments this repository targets.
///
/// # Example
///
/// ```
/// use bgpvcg_netgraph::generators::structured::{fig1, Fig1};
/// use bgpvcg_lcp::shortest_tree;
/// use bgpvcg_netgraph::Cost;
///
/// let g = fig1();
/// let t = shortest_tree(&g, Fig1::Z);
/// assert_eq!(t.cost(Fig1::X), Cost::new(3));
/// ```
pub fn shortest_tree(graph: &AsGraph, destination: AsId) -> DestinationTree {
    assert!(
        graph.contains_node(destination),
        "destination {destination} not in graph"
    );
    let n = graph.node_count();
    let mut selected: Vec<Option<Route>> = vec![None; n];
    let mut settled = vec![false; n];

    // Max-heap + Reverse = min-heap on the route order.
    let mut heap: BinaryHeap<Reverse<Route>> = BinaryHeap::new();
    heap.push(Reverse(Route::trivial(destination)));

    while let Some(Reverse(route)) = heap.pop() {
        let u = route.source();
        if settled[u.index()] {
            continue; // stale entry
        }
        settled[u.index()] = true;
        selected[u.index()] = Some(route.clone());
        for &v in graph.neighbors(u) {
            if settled[v.index()] || route.contains(v) {
                continue;
            }
            let candidate = route.extend(v, graph.cost(u));
            let better = match &selected[v.index()] {
                None => true,
                Some(current) => candidate < *current,
            };
            if better {
                // Track the best-known candidate to cut heap churn; final
                // selection still happens at pop time.
                selected[v.index()] = Some(candidate.clone());
                heap.push(Reverse(candidate));
            }
        }
    }

    // Unsettled nodes keep provisional candidates only if they were settled;
    // clear leftovers for unreachable nodes (none exist in connected graphs,
    // but stay safe).
    for idx in 0..n {
        if !settled[idx] {
            selected[idx] = None;
        }
    }

    DestinationTree::from_routes(destination, selected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpvcg_netgraph::generators::structured::{complete, fig1, ring, Fig1};
    use bgpvcg_netgraph::generators::{erdos_renyi, from_edges, random_costs};
    use bgpvcg_netgraph::Cost;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fig1_lcp_to_z_matches_paper() {
        let g = fig1();
        let t = shortest_tree(&g, Fig1::Z);
        let x_route = t.route(Fig1::X).unwrap();
        assert_eq!(x_route.nodes(), &[Fig1::X, Fig1::B, Fig1::D, Fig1::Z]);
        assert_eq!(x_route.transit_cost(), Cost::new(3));
        let y_route = t.route(Fig1::Y).unwrap();
        assert_eq!(y_route.nodes(), &[Fig1::Y, Fig1::D, Fig1::Z]);
        assert_eq!(y_route.transit_cost(), Cost::new(1));
    }

    #[test]
    fn destination_route_is_trivial() {
        let g = fig1();
        let t = shortest_tree(&g, Fig1::Z);
        assert_eq!(t.route(Fig1::Z).unwrap(), &Route::trivial(Fig1::Z));
    }

    #[test]
    fn ring_routes_take_shorter_arc() {
        let g = ring(6, Cost::new(1));
        let t = shortest_tree(&g, AsId::new(0));
        // Node 2 reaches 0 via 1 (one transit node) rather than via 3,4,5.
        assert_eq!(
            t.route(AsId::new(2)).unwrap().nodes(),
            &[AsId::new(2), AsId::new(1), AsId::new(0)]
        );
        assert_eq!(t.cost(AsId::new(2)), Cost::new(1));
        // The antipode (node 3) has two equal-cost 3-hop arcs:
        // 3,2,1,0 and 3,4,5,0. The lexicographic tie-break picks 3,2,1,0.
        assert_eq!(
            t.route(AsId::new(3)).unwrap().nodes(),
            &[AsId::new(3), AsId::new(2), AsId::new(1), AsId::new(0)]
        );
    }

    #[test]
    fn zero_cost_ties_break_by_hops_then_lex() {
        let g = complete(5, Cost::ZERO);
        let t = shortest_tree(&g, AsId::new(4));
        // Every node has a direct link to 4; with all costs zero the 1-hop
        // route still wins on the hop count.
        for i in 0..4u32 {
            assert_eq!(t.hops(AsId::new(i)), Some(1));
        }
    }

    #[test]
    fn expensive_direct_link_is_bypassed() {
        // 0 -- 1 -- 2 and 0 -- 2, with node 1 cheap: does 0 -> 2 go via 1?
        // Path 0,1,2 transit cost = c_1 = 1; path 0,2 cost = 0. Direct wins.
        let g = from_edges(
            vec![Cost::new(5), Cost::new(1), Cost::new(5)],
            &[(0, 1), (1, 2), (0, 2)],
        );
        let t = shortest_tree(&g, AsId::new(2));
        assert_eq!(t.route(AsId::new(0)).unwrap().hops(), 1);
        assert_eq!(t.cost(AsId::new(0)), Cost::ZERO);
    }

    #[test]
    fn transit_cost_drives_selection() {
        // 0 -- 1 -- 3 (via cheap 1) vs 0 -- 2 -- 3 (via dear 2).
        let g = from_edges(
            vec![Cost::new(1), Cost::new(2), Cost::new(7), Cost::new(1)],
            &[(0, 1), (1, 3), (0, 2), (2, 3)],
        );
        let t = shortest_tree(&g, AsId::new(3));
        assert_eq!(
            t.route(AsId::new(0)).unwrap().nodes(),
            &[AsId::new(0), AsId::new(1), AsId::new(3)]
        );
        assert_eq!(t.cost(AsId::new(0)), Cost::new(2));
    }

    #[test]
    fn unreachable_nodes_have_no_route() {
        let g = from_edges(vec![Cost::ZERO; 4], &[(0, 1), (2, 3)]);
        let t = shortest_tree(&g, AsId::new(0));
        assert!(t.route(AsId::new(1)).is_some());
        assert!(t.route(AsId::new(2)).is_none());
        assert_eq!(t.cost(AsId::new(3)), Cost::INFINITE);
    }

    #[test]
    fn all_trees_are_consistent_on_random_graphs() {
        // from_routes re-verifies the tree property internally, so building
        // trees for every destination on random graphs is itself a test.
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let costs = random_costs(30, 0, 10, &mut rng);
            let g = erdos_renyi(costs, 0.15, &mut rng);
            for j in g.nodes() {
                let t = shortest_tree(&g, j);
                assert_eq!(t.reachable().count(), g.node_count());
            }
        }
    }

    #[test]
    fn routes_are_optimal_versus_brute_force() {
        // Exhaustive DFS enumeration of all simple paths on small graphs.
        fn best_route_brute(g: &AsGraph, i: AsId, j: AsId) -> Route {
            fn dfs(
                g: &AsGraph,
                current: AsId,
                j: AsId,
                path: &mut Vec<AsId>,
                best: &mut Option<Route>,
            ) {
                if current == j {
                    let r = Route::from_nodes(g, path.clone());
                    if best.as_ref().is_none_or(|b| r < *b) {
                        *best = Some(r);
                    }
                    return;
                }
                for &next in g.neighbors(current) {
                    if !path.contains(&next) {
                        path.push(next);
                        dfs(g, next, j, path, best);
                        path.pop();
                    }
                }
            }
            let mut best = None;
            let mut path = vec![i];
            dfs(g, i, j, &mut path, &mut best);
            best.expect("connected")
        }

        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let costs = random_costs(8, 0, 6, &mut rng);
            let g = erdos_renyi(costs, 0.4, &mut rng);
            for j in g.nodes() {
                let t = shortest_tree(&g, j);
                for i in g.nodes() {
                    if i == j {
                        continue;
                    }
                    let expected = best_route_brute(&g, i, j);
                    assert_eq!(t.route(i).unwrap(), &expected, "seed {seed}, {i}->{j}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "not in graph")]
    fn rejects_unknown_destination() {
        let g = fig1();
        let _ = shortest_tree(&g, AsId::new(99));
    }
}
