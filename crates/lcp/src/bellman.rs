//! Synchronous Bellman–Ford fixpoint with protocol semantics.
//!
//! The paper's BGP model (Sect. 5) computes routes by synchronous stages:
//! each stage, every node ingests its neighbors' previously advertised
//! routes, re-selects, and advertises on change. This module runs that exact
//! computation centrally, which serves two purposes:
//!
//! * it is an independent cross-check that [`shortest_tree`] (Dijkstra)
//!   selects the same routes the staged protocol converges to, and
//! * it measures the number of stages to convergence, the quantity bounded
//!   by `d` in the paper's Sect. 5 claim.
//!
//! [`shortest_tree`]: crate::shortest_tree

use crate::route::Route;
use crate::tree::DestinationTree;
use bgpvcg_netgraph::{AsGraph, AsId};

/// Result of the staged fixpoint computation for one destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixpointResult {
    /// The selected-routes tree at convergence.
    pub tree: DestinationTree,
    /// Number of stages until no route changed (a graph of diameter `d`
    /// converges in `d` stages; the final, change-free stage is not
    /// counted).
    pub stages: usize,
}

/// Runs the synchronous path-vector fixpoint for one destination.
///
/// Stage semantics (paper, Sect. 5): all nodes simultaneously read the
/// routes their neighbors selected at the end of the previous stage, pick
/// the best loop-free extension under the deterministic route order, and
/// expose the result to the next stage. Iteration stops at the first stage
/// in which nothing changed.
///
/// # Panics
///
/// Panics if `destination` is not a node of `graph`.
///
/// # Example
///
/// ```
/// use bgpvcg_netgraph::generators::structured::{fig1, Fig1};
/// use bgpvcg_lcp::{bellman, shortest_tree};
///
/// let g = fig1();
/// let fix = bellman::fixpoint(&g, Fig1::Z);
/// assert_eq!(fix.tree, shortest_tree(&g, Fig1::Z));
/// ```
pub fn fixpoint(graph: &AsGraph, destination: AsId) -> FixpointResult {
    assert!(
        graph.contains_node(destination),
        "destination {destination} not in graph"
    );
    let n = graph.node_count();
    let mut current: Vec<Option<Route>> = vec![None; n];
    current[destination.index()] = Some(Route::trivial(destination));

    let mut stages = 0;
    loop {
        let mut next = current.clone();
        let mut changed = false;
        for u in graph.nodes() {
            if u == destination {
                continue;
            }
            let mut best: Option<Route> = None;
            for &a in graph.neighbors(u) {
                let Some(advertised) = &current[a.index()] else {
                    continue;
                };
                if advertised.contains(u) {
                    continue; // loop suppression
                }
                let candidate = advertised.extend(u, graph.cost(a));
                if best.as_ref().is_none_or(|b| candidate < *b) {
                    best = Some(candidate);
                }
            }
            if best != current[u.index()] {
                changed = true;
            }
            next[u.index()] = best;
        }
        if !changed {
            break;
        }
        current = next;
        stages += 1;
    }

    FixpointResult {
        tree: DestinationTree::from_routes(destination, current),
        stages,
    }
}

/// Runs [`fixpoint`] for every destination and returns the maximum stage
/// count — the whole-protocol convergence time under synchronous stages.
pub fn max_stages(graph: &AsGraph) -> usize {
    graph
        .nodes()
        .map(|j| fixpoint(graph, j).stages)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diameter;
    use crate::dijkstra::shortest_tree;
    use crate::AllPairsLcp;
    use bgpvcg_netgraph::generators::structured::{fig1, ring, torus, Fig1};
    use bgpvcg_netgraph::generators::{
        barabasi_albert, erdos_renyi, random_costs, waxman, WaxmanConfig,
    };
    use bgpvcg_netgraph::Cost;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixpoint_matches_dijkstra_on_fig1() {
        let g = fig1();
        for j in g.nodes() {
            let fix = fixpoint(&g, j);
            assert_eq!(fix.tree, shortest_tree(&g, j), "destination {j}");
        }
    }

    #[test]
    fn fixpoint_matches_dijkstra_on_random_families() {
        for seed in 0..8 {
            let mut rng = StdRng::seed_from_u64(seed);
            let costs = random_costs(24, 0, 9, &mut rng);
            let g = match seed % 3 {
                0 => erdos_renyi(costs, 0.2, &mut rng),
                1 => barabasi_albert(costs, 2, &mut rng),
                _ => waxman(costs, WaxmanConfig::default(), &mut rng),
            };
            for j in g.nodes() {
                let fix = fixpoint(&g, j);
                assert_eq!(fix.tree, shortest_tree(&g, j), "seed {seed} dest {j}");
            }
        }
    }

    #[test]
    fn stage_count_equals_route_depth_on_ring() {
        // On an n-ring the deepest LCP has ceil(n/2) hops... but the paper's
        // bound is stages <= d where d is the max LCP hop count.
        let g = ring(9, Cost::new(1));
        let fix = fixpoint(&g, AsId::new(0));
        let d = g.nodes().filter_map(|i| fix.tree.hops(i)).max().unwrap();
        assert!(fix.stages <= d, "stages {} > d {}", fix.stages, d);
        assert!(
            fix.stages >= d,
            "must take at least d stages to reach depth-d nodes"
        );
    }

    #[test]
    fn stage_count_bounded_by_lcp_diameter() {
        for seed in 0..6 {
            let mut rng = StdRng::seed_from_u64(50 + seed);
            let costs = random_costs(30, 1, 10, &mut rng);
            let g = erdos_renyi(costs, 0.15, &mut rng);
            let lcp = AllPairsLcp::compute(&g);
            let d = diameter::lcp_hop_diameter(&lcp);
            for j in g.nodes() {
                let fix = fixpoint(&g, j);
                assert!(
                    fix.stages <= d,
                    "seed {seed}: stages {} exceed d {}",
                    fix.stages,
                    d
                );
            }
        }
    }

    #[test]
    fn torus_converges() {
        let g = torus(4, 4, Cost::new(2));
        for j in g.nodes() {
            let fix = fixpoint(&g, j);
            assert_eq!(fix.tree, shortest_tree(&g, j));
        }
    }

    #[test]
    fn max_stages_spans_destinations() {
        let g = fig1();
        let per_dest: Vec<usize> = g.nodes().map(|j| fixpoint(&g, j).stages).collect();
        assert_eq!(max_stages(&g), per_dest.into_iter().max().unwrap());
    }

    #[test]
    fn disconnected_nodes_never_get_routes() {
        use bgpvcg_netgraph::generators::from_edges;
        let g = from_edges(vec![Cost::ZERO; 4], &[(0, 1), (2, 3)]);
        let fix = fixpoint(&g, AsId::new(0));
        assert!(fix.tree.route(AsId::new(2)).is_none());
        assert!(fix.tree.route(AsId::new(3)).is_none());
        assert!(fix.tree.route(AsId::new(1)).is_some());
    }

    #[test]
    fn fig1_converges_in_at_most_three_stages() {
        // The deepest route to Z is X B D Z (3 hops).
        let g = fig1();
        let fix = fixpoint(&g, Fig1::Z);
        assert!(fix.stages <= 3);
    }
}
