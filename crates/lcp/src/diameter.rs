//! The convergence-governing diameters `d` and `d′`.
//!
//! The paper's Theorem 2 bounds the pricing protocol's convergence at
//! `max(d, d′)` synchronous stages, where
//!
//! * `d` is the maximum number of hops of any selected LCP (the "lowest-cost
//!   diameter"), which also bounds plain BGP's convergence (Sect. 5), and
//! * `d′` is the maximum number of hops of any lowest-cost k-avoiding path
//!   `P_{-k}(c; i, j)` for `k` a transit node of the LCP from `i` to `j`
//!   (Sect. 6.3, Lemma 2).
//!
//! Sect. 6.2 remarks that `d′` *can* be much larger than `d` in adversarial
//! graphs but is not for "the current AS graph" — experiment E7 measures
//! `d′/d` on Internet-like synthetic families to reproduce that remark.

use crate::all_pairs::AllPairsLcp;
use crate::avoiding::AvoidanceTable;

/// The LCP hop diameter `d`: the maximum hop count over all selected
/// lowest-cost routes. Returns 0 when no pair is connected.
///
/// # Example
///
/// ```
/// use bgpvcg_netgraph::generators::structured::fig1;
/// use bgpvcg_lcp::{diameter, AllPairsLcp};
///
/// let lcp = AllPairsLcp::compute(&fig1());
/// assert_eq!(diameter::lcp_hop_diameter(&lcp), 3); // X B D Z
/// ```
pub fn lcp_hop_diameter(lcp: &AllPairsLcp) -> usize {
    let n = lcp.node_count();
    let mut d = 0;
    for j in 0..n {
        let tree = lcp.tree(bgpvcg_netgraph::AsId::new(j as u32));
        for i in tree.reachable() {
            if let Some(h) = tree.hops(i) {
                d = d.max(h);
            }
        }
    }
    d
}

/// The k-avoiding hop diameter `d′`: the maximum hop count over all
/// recorded lowest-cost k-avoiding paths.
pub fn avoiding_hop_diameter(table: &AvoidanceTable) -> usize {
    table.max_hops()
}

/// The paper's convergence bound `max(d, d′)` (Corollary 1).
pub fn convergence_bound(lcp: &AllPairsLcp, table: &AvoidanceTable) -> usize {
    lcp_hop_diameter(lcp).max(avoiding_hop_diameter(table))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpvcg_netgraph::generators::structured::{complete, fig1, ring};
    use bgpvcg_netgraph::Cost;

    fn tables(g: &bgpvcg_netgraph::AsGraph) -> (AllPairsLcp, AvoidanceTable) {
        let lcp = AllPairsLcp::compute(g);
        let table = AvoidanceTable::compute(g, &lcp);
        (lcp, table)
    }

    #[test]
    fn fig1_diameters() {
        let (lcp, table) = tables(&fig1());
        assert_eq!(lcp_hop_diameter(&lcp), 3);
        // The D-avoiding path Y B X A Z has 4 hops.
        assert_eq!(avoiding_hop_diameter(&table), 4);
        assert_eq!(convergence_bound(&lcp, &table), 4);
    }

    #[test]
    fn complete_graph_diameter_is_small() {
        let (lcp, table) = tables(&complete(6, Cost::new(3)));
        assert_eq!(lcp_hop_diameter(&lcp), 1);
        // No LCP has a transit node (direct links always win at equal cost),
        // so d' has nothing to measure.
        assert_eq!(avoiding_hop_diameter(&table), 0);
    }

    #[test]
    fn ring_diameters_grow_linearly() {
        let (lcp, table) = tables(&ring(10, Cost::new(1)));
        assert_eq!(lcp_hop_diameter(&lcp), 5); // antipodal pairs
                                               // Avoiding the middle of a 2-hop LCP forces the n-2 hop detour.
        assert_eq!(avoiding_hop_diameter(&table), 8);
        assert_eq!(convergence_bound(&lcp, &table), 8);
    }
}
