//! Property tests for the deterministic route order and the routing
//! algorithms built on it. The order's totality and monotonicity are what
//! let Dijkstra, the Bellman–Ford fixpoint, and the distributed protocol
//! agree on selected routes — the precondition of every exact-equality test
//! in the workspace.

use bgpvcg_lcp::{bellman, shortest_tree, Route};
use bgpvcg_netgraph::generators::{erdos_renyi, random_costs};
use bgpvcg_netgraph::{AsGraph, AsId, Cost};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Arbitrary routes (not necessarily realizable in a graph — the order is
/// defined on the data alone).
fn route_strategy() -> impl Strategy<Value = Route> {
    (proptest::collection::vec(0u32..40, 1..8), 0u64..1000).prop_map(|(mut raw, cost)| {
        raw.dedup();
        // Ensure simple path (unique nodes) by disambiguating repeats.
        let mut seen = std::collections::BTreeSet::new();
        let nodes: Vec<AsId> = raw
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                let mut v = r;
                while !seen.insert(v) {
                    v = v.wrapping_add(41 + i as u32);
                }
                AsId::new(v)
            })
            .collect();
        Route::from_parts(nodes, Cost::new(cost))
    })
}

fn graph_from(n: usize, density: f64, seed: u64) -> AsGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let costs = random_costs(n, 0, 9, &mut rng);
    erdos_renyi(costs, density, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The order is total and antisymmetric: exactly one of <, ==, > holds,
    /// and equality only for identical routes.
    #[test]
    fn order_is_total_and_antisymmetric(a in route_strategy(), b in route_strategy()) {
        use std::cmp::Ordering;
        match a.cmp(&b) {
            Ordering::Equal => prop_assert_eq!(&a, &b),
            Ordering::Less => prop_assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(b.cmp(&a), Ordering::Less),
        }
    }

    /// Transitivity (sorting sanity): sorting three routes twice gives the
    /// same result as sorting once.
    #[test]
    fn order_sorts_consistently(
        a in route_strategy(),
        b in route_strategy(),
        c in route_strategy(),
    ) {
        let mut v1 = vec![a.clone(), b.clone(), c.clone()];
        v1.sort();
        let mut v2 = vec![c, a, b];
        v2.sort();
        prop_assert_eq!(v1, v2);
    }

    /// Monotonicity under extension: prepending the same head with the same
    /// added cost preserves strict order between two routes from the same
    /// source.
    #[test]
    fn order_monotone_under_extension(
        a in route_strategy(),
        b in route_strategy(),
        head in 100u32..200,
        added in 0u64..50,
    ) {
        let head = AsId::new(head + 1000); // disjoint from route nodes
        prop_assume!(!a.contains(head) && !b.contains(head));
        prop_assume!(a < b);
        // Only comparable when both routes have >1 node or both trivial
        // (the trivial route's extension adds no cost); align by skipping
        // mixed cases.
        prop_assume!((a.nodes().len() == 1) == (b.nodes().len() == 1));
        let ea = a.extend(head, Cost::new(added));
        let eb = b.extend(head, Cost::new(added));
        prop_assert!(ea < eb, "{ea} vs {eb}");
    }

    /// Dijkstra and the synchronous Bellman–Ford fixpoint select identical
    /// trees on arbitrary graphs — the static heart of Theorem 2's
    /// "distributed equals centralized".
    #[test]
    fn dijkstra_equals_bellman(
        n in 5usize..16,
        density in 0.15f64..0.8,
        seed in 0u64..u64::MAX,
    ) {
        let g = graph_from(n, density, seed);
        for j in g.nodes() {
            prop_assert_eq!(shortest_tree(&g, j), bellman::fixpoint(&g, j).tree, "dest {}", j);
        }
    }

    /// Suffix optimality: every suffix of a selected route is itself the
    /// selected route of its source (the tree property of Sect. 6).
    #[test]
    fn selected_routes_have_optimal_suffixes(
        n in 5usize..16,
        density in 0.15f64..0.8,
        seed in 0u64..u64::MAX,
    ) {
        let g = graph_from(n, density, seed);
        for j in g.nodes() {
            let tree = shortest_tree(&g, j);
            for i in g.nodes() {
                let Some(route) = tree.route(i) else { continue };
                for &s in route.nodes() {
                    let suffix = route.suffix_from(&g, s).unwrap();
                    prop_assert_eq!(tree.route(s), Some(&suffix), "suffix from {}", s);
                }
            }
        }
    }

    /// Stage counts of the fixpoint equal the depth of the final tree.
    #[test]
    fn fixpoint_stages_equal_tree_depth(
        n in 5usize..16,
        density in 0.15f64..0.8,
        seed in 0u64..u64::MAX,
    ) {
        let g = graph_from(n, density, seed);
        for j in g.nodes() {
            let fix = bellman::fixpoint(&g, j);
            let depth = g
                .nodes()
                .filter_map(|i| fix.tree.hops(i))
                .max()
                .unwrap_or(0);
            prop_assert_eq!(fix.stages, depth, "dest {}", j);
        }
    }
}
