//! The distributed price computation as a BGP extension (paper, Sect. 6).
//!
//! A [`PricingBgpNode`] is a BGP speaker whose UPDATE messages additionally
//! carry, for every advertised route, the sender's current price entries for
//! the route's transit nodes. Price entries start at `∞` and relax downward
//! via the paper's four neighbor-case rules (Fig. 3) — implemented here as
//! one unified bound; Lemma 1 shows the component-wise minimum over
//! neighbors is exactly the VCG price, and Lemma 2 bounds convergence at
//! `max(d, d′)` stages.
//!
//! No new message types are introduced and all communication stays between
//! physical neighbors — the paper's design constraint that makes the
//! mechanism deployable as "a straightforward extension to BGP".

use bgpvcg_bgp::{
    LocalEvent, PathEntry, ProtocolNode, RouteAdvertisement, RouteInfo, RouteSelector,
    StateSnapshot, Update,
};
use bgpvcg_netgraph::{AsGraph, AsId, Cost};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A BGP speaker extended with the paper's distributed VCG price
/// computation.
///
/// Route selection is byte-identical to [`bgpvcg_bgp::PlainBgpNode`] (both
/// drive the shared [`RouteSelector`]); the extension adds a per-destination price
/// array aligned with the selected route's transit nodes, relaxed from
/// neighbors' advertised arrays.
///
/// # Example
///
/// ```
/// use bgpvcg_core::PricingBgpNode;
/// use bgpvcg_netgraph::generators::structured::fig1;
///
/// let g = fig1();
/// let nodes = PricingBgpNode::from_graph(&g);
/// assert_eq!(nodes.len(), g.node_count());
/// ```
#[derive(Debug, Clone)]
pub struct PricingBgpNode {
    selector: RouteSelector,
    /// Per destination: price entries `p^k_ij`, aligned with the selected
    /// route's transit nodes. Recomputed from scratch (all `∞`, then one
    /// relaxation pass over the current Rib-In) on every refresh — the
    /// realization of the paper's "price computation must start over
    /// whenever there is a route change"; see [`Self::refresh_prices`].
    prices: BTreeMap<AsId, Vec<Cost>>,
    /// Last advertised state per destination, for change suppression.
    /// Always holds the *full* route state — when a compressed
    /// [`RouteInfo::PriceDelta`] goes out on the wire, this map records the
    /// reassembled `Reachable` it stands for.
    advertised: BTreeMap<AsId, RouteInfo>,
    /// Whether change advertisements may be compressed to
    /// [`RouteInfo::PriceDelta`] when only price entries relaxed on an
    /// unchanged selected path (the monotone-relaxation common case of
    /// Sect. 6). On by default.
    delta_encoding: bool,
}

impl PricingBgpNode {
    /// Creates the pricing node for AS `id` of the graph.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the graph.
    pub fn new(graph: &AsGraph, id: AsId) -> Self {
        PricingBgpNode {
            selector: RouteSelector::new(id, graph.cost(id), graph.neighbors(id).iter().copied()),
            prices: BTreeMap::new(),
            advertised: BTreeMap::new(),
            delta_encoding: true,
        }
    }

    /// Enables or disables [`RouteInfo::PriceDelta`] compression of change
    /// advertisements (on by default). The delta-stream equivalence
    /// proptests run both settings and assert identical fixpoints.
    pub fn set_delta_encoding(&mut self, on: bool) {
        self.delta_encoding = on;
    }

    /// Creates one pricing node per AS, in AS order.
    pub fn from_graph(graph: &AsGraph) -> Vec<Self> {
        graph
            .nodes()
            .map(|id| PricingBgpNode::new(graph, id))
            .collect()
    }

    /// Read access to the routing decision process.
    pub fn selector(&self) -> &RouteSelector {
        &self.selector
    }

    /// The current price array for `dest`, aligned with the selected
    /// route's transit nodes.
    pub fn prices(&self, dest: AsId) -> Option<&[Cost]> {
        self.prices.get(&dest).map(Vec::as_slice)
    }

    /// The current price `p^k_{i,dest}` for transit node `k` of the
    /// selected route to `dest` (`None` if `k` is not transit on it).
    pub fn price(&self, dest: AsId, k: AsId) -> Option<Cost> {
        let route = self.selector.selected(dest)?;
        let transit = &route.path[1..route.path.len().saturating_sub(1)];
        let pos = transit.iter().position(|e| e.node == k)?;
        self.prices.get(&dest)?.get(pos).copied()
    }

    /// One relaxation pass for `dest`: recomputes the price array *from
    /// scratch* — reset every entry to `∞`, then apply every neighbor bound
    /// available in the current Rib-In. Returns `true` if the stored array
    /// changed.
    ///
    /// Recomputing from scratch (rather than taking a running minimum
    /// across passes, as the paper's static-network presentation does) is
    /// the realization of the paper's rule that "price computation must
    /// start over whenever there is a route change": the array is a pure
    /// function of the current Rib-In, so bounds grounded in routes that no
    /// longer exist are flushed as soon as the corrected advertisements
    /// arrive. In a static network every available bound is valid (never
    /// below the true price — see the case analysis below), so the result
    /// and the `max(d, d′)` convergence bound are unchanged; within one
    /// pass the entries still only relax downward from `∞`, exactly as in
    /// Fig. 3.
    fn refresh_prices(&mut self, dest: AsId) -> bool {
        let me = self.selector.id();
        if dest == me {
            return false;
        }
        let Some(route) = self.selector.selected(dest) else {
            return self.prices.remove(&dest).is_some();
        };
        let transit: &[PathEntry] = &route.path[1..route.path.len() - 1];
        if transit.is_empty() {
            return self.prices.remove(&dest).is_some();
        }

        let mut arr = vec![Cost::INFINITE; transit.len()];

        let my_route_cost = route.cost;

        // The paper states its relaxation as four cases by the neighbor's
        // position in the tree T(j) — parent (i), child (ii), unrelated
        // with k on the neighbor's LCP (iii), unrelated without (iv). All
        // of (i)–(iii) are instances of a single bound,
        //
        //   p^k_ij ≤ p^k_aj + c_a + c(a,j) − c(i,j),
        //
        // evaluated on the advertisement's own (prices, path cost) pair:
        // for a parent, c(i,j) = c_a + c(a,j) collapses it to case (i); for
        // a child, c(a,j) = c_i + c(i,j) collapses it to case (ii). Using
        // the unified form is not just shorter — it is *required* for
        // asynchronous correctness: classifying parent/child from the
        // Rib-In can be stale (the neighbor's advertised path may pass
        // through an old route of ours), and applying case (ii) with our
        // current c(i,j) against a stale advertisement can produce an
        // invalid, too-low bound that monotone relaxation never recovers
        // from. The unified bound only combines values from one internally
        // consistent advertisement plus our current route cost, and is
        // valid for every neighbor and every interleaving (the advertised
        // prices-plus-path-cost sum is grounded in real k-avoiding paths).
        // Neighbors are the outer loop so the per-advertisement values
        // (declared cost, shift) are hoisted out of the transit scan and the
        // Rib-In is probed once per neighbor instead of once per
        // `(transit, neighbor)` pair. The component-wise minimum is
        // order-independent, so the array is identical either way.
        for (a, info) in self.selector.rib_for(dest) {
            let RouteInfo::Reachable {
                path: a_path,
                path_cost: a_route_cost,
                ..
            } = info
            else {
                continue;
            };
            let a_declared = a_path[0].cost;
            // Shift shared by all cases; a transiently inconsistent
            // Rib-In can make it negative, in which case the bound is
            // skipped (it would have been invalid anyway).
            let Some(shift) = (a_declared + *a_route_cost).checked_sub(my_route_cost) else {
                continue;
            };
            for (pos, k_entry) in transit.iter().enumerate() {
                let k = k_entry.node;
                // Excluded case: the link i–a is never on a k-avoiding path
                // when a IS k, so that neighbor offers no bound for k.
                if a == k {
                    continue;
                }
                let bound = if let Some(p) = info.price_of(k) {
                    // Cases (i)/(ii)/(iii): k is a transit node of a's
                    // advertised path, whose price array bounds the cost of
                    // a's best k-avoiding path.
                    p + shift
                } else if !info.contains(k) {
                    // Case (iv): k is not on a's path at all, so that path
                    // extended by the link i–a is itself k-avoiding.
                    k_entry.cost + shift
                } else {
                    // k is an endpoint of a's path. k == a was excluded
                    // above and k == dest cannot be transit on our route,
                    // so this is only reachable on transiently inconsistent
                    // state; no bound.
                    continue;
                };
                // lint:allow(bounds: pos enumerates transit and arr is sized to transit len)
                if bound < arr[pos] {
                    // lint:allow(bounds: pos enumerates transit and arr is sized to transit len)
                    arr[pos] = bound;
                }
            }
        }

        crate::invariants::relaxation_step(transit, arr.as_slice());
        let changed = self.prices.get(&dest) != Some(&arr);
        self.prices.insert(dest, arr);
        changed
    }

    /// The advertisement for `dest` reflecting current state (route +
    /// prices, or withdrawal).
    fn advertisement_for(&self, dest: AsId) -> RouteInfo {
        match self.selector.selected(dest) {
            Some(route) => RouteInfo::Reachable {
                path: route.path.clone(),
                path_cost: route.cost,
                prices: self.prices.get(&dest).cloned().unwrap_or_default(),
            },
            None => RouteInfo::Withdrawn,
        }
    }

    /// Emits changed advertisements, mirroring
    /// [`bgpvcg_bgp::PlainBgpNode`]'s change-suppression rule. Environment
    /// paths (start, local events) pass no cause map, so provenance stays
    /// cause 0.
    fn emit(&mut self, dests: impl IntoIterator<Item = AsId>) -> Option<Update> {
        self.emit_caused(dests, &BTreeMap::new())
    }

    /// [`emit`](Self::emit) with provenance: the emitted update's `causes`
    /// vector is built in lockstep with its advertisements from the
    /// per-destination cause map `handle` assembled.
    fn emit_caused(
        &mut self,
        dests: impl IntoIterator<Item = AsId>,
        causes: &BTreeMap<AsId, u64>,
    ) -> Option<Update> {
        let mut ads = Vec::new();
        let mut ad_causes = Vec::new();
        for dest in dests {
            let info = self.advertisement_for(dest);
            let changed = match self.advertised.get(&dest) {
                Some(prev) => *prev != info,
                None => !matches!(info, RouteInfo::Withdrawn),
            };
            if changed {
                // When only price entries moved on an unchanged path (the
                // monotone-relaxation common case), send a compressed delta
                // against the previously advertised route; the receiver
                // patches its retained copy. `advertised` always records
                // the full state the wire form stands for.
                let wire_info = self
                    .advertised
                    .get(&dest)
                    .filter(|_| self.delta_encoding)
                    .and_then(|prev| RouteInfo::delta_from(prev, &info))
                    .unwrap_or_else(|| info.clone());
                self.advertised.insert(dest, info);
                ads.push(RouteAdvertisement {
                    destination: dest,
                    info: wire_info,
                });
                ad_causes.push(causes.get(&dest).copied().unwrap_or(0));
            }
        }
        let mut update = Update::if_nonempty(self.selector.id(), ads)?;
        update.causes = ad_causes;
        Some(update)
    }
}

impl ProtocolNode for PricingBgpNode {
    fn id(&self) -> AsId {
        self.selector.id()
    }

    fn configure_delta_encoding(&mut self, on: bool) {
        self.set_delta_encoding(on);
    }

    fn start(&mut self) -> Option<Update> {
        self.emit([self.selector.id()])
    }

    fn handle(&mut self, updates: &[Arc<Update>]) -> Option<Update> {
        let mut affected: BTreeSet<AsId> = BTreeSet::new();
        // Provenance: each affected destination is attributed to the last
        // inbound update (in inbox order) whose ingestion touched it.
        let mut causes: BTreeMap<AsId, u64> = BTreeMap::new();
        for update in updates {
            for dest in self.selector.ingest(update) {
                causes.insert(dest, update.id);
                affected.insert(dest);
            }
        }
        let mut out = BTreeSet::new();
        for &dest in &affected {
            let route_changed = self.selector.decide(dest);
            if self.refresh_prices(dest) || route_changed {
                out.insert(dest);
            }
        }
        self.emit_caused(out, &causes)
    }

    fn apply_event(&mut self, event: LocalEvent) -> Option<Update> {
        match event {
            LocalEvent::LinkDown(neighbor) => {
                if !self.selector.has_neighbor(neighbor) {
                    return None;
                }
                // Only the destinations the vanished Rib-In covered can
                // change: both route selection and the relaxation draw
                // their candidates/bounds for `dest` exclusively from rib
                // entries *for `dest`*, and a refresh recomputes from
                // scratch as a pure function of the current Rib-In — so
                // every other destination's route and price array are
                // provably unchanged and need no recompute (and the dead
                // link's bounds are flushed exactly where they could
                // exist).
                let affected = self.selector.rib_destinations(neighbor);
                self.selector.link_down(neighbor); // re-decides `affected`
                for &dest in &affected {
                    self.refresh_prices(dest);
                }
                self.emit(affected)
            }
            LocalEvent::LinkUp(neighbor) => {
                self.selector.link_up(neighbor);
                None // the engine sends `full_table` to the new neighbor
            }
            LocalEvent::CostChange(cost) => {
                // The declared cost never enters this node's *own*
                // relaxation — the unified bound combines neighbor-
                // advertised values with our route's transit cost only —
                // so the price arrays are untouched. Re-advertise exactly
                // the table entries whose first path entry restamped.
                let changed = self.selector.set_declared_cost(cost);
                self.emit(changed)
            }
        }
    }

    fn full_table(&self) -> Option<Update> {
        let ads: Vec<RouteAdvertisement> = self
            .selector
            .destinations()
            .map(|dest| RouteAdvertisement {
                destination: dest,
                info: self.advertisement_for(dest),
            })
            .collect();
        Update::if_nonempty(self.selector.id(), ads)
    }

    fn reset(&mut self) {
        self.selector.reset();
        self.prices.clear();
        self.advertised.clear();
    }

    fn state(&self) -> StateSnapshot {
        // Reuse the plain node's accounting for the shared structures...
        let mut snapshot = StateSnapshot::default();
        for dest in self.selector.destinations() {
            if let Some(route) = self.selector.selected(dest) {
                snapshot.table_entries += 1;
                snapshot.table_path_nodes += route.path.len();
            }
        }
        let neighbors: Vec<AsId> = self.selector.neighbors().collect();
        for a in neighbors {
            for dest in self.selector.destinations().collect::<Vec<_>>() {
                if let Some(info) = self.selector.rib(a, dest) {
                    snapshot.rib_entries += 1;
                    snapshot.rib_path_nodes += info.path().map_or(0, <[_]>::len);
                }
            }
        }
        // ...plus the extension's price state (own arrays and the arrays
        // remembered in the Rib-In are both part of the node's footprint;
        // the former is the paper's "added state"). The arrays are stored
        // here aligned with the selected route's transit slice, but a
        // deployable encoding labels each price with the transit node it
        // prices — one AS cell per entry, counted as `price_path_nodes`.
        snapshot.price_entries = self.prices.values().map(Vec::len).sum();
        snapshot.price_path_nodes = snapshot.price_entries;
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpvcg_netgraph::generators::structured::{fig1, Fig1};

    #[test]
    fn start_advertises_origin_with_no_prices() {
        let g = fig1();
        let mut node = PricingBgpNode::new(&g, Fig1::D);
        let update = node.start().unwrap();
        assert_eq!(update.entry_count(), 1);
        let RouteInfo::Reachable { prices, .. } = &update.advertisements[0].info else {
            panic!("origin must be reachable");
        };
        assert!(prices.is_empty());
    }

    #[test]
    fn two_hop_route_has_empty_price_array() {
        let g = fig1();
        let mut d = PricingBgpNode::new(&g, Fig1::D);
        let mut z = PricingBgpNode::new(&g, Fig1::Z);
        d.handle(&[Arc::new(z.start().unwrap())]);
        assert_eq!(d.prices(Fig1::Z), None, "no transit nodes, no prices");
        assert_eq!(d.price(Fig1::Z, Fig1::B), None);
    }

    #[test]
    fn case_iv_bound_applies_from_unrelated_neighbor() {
        // Hand-drive a tiny interaction: node X learns route X,B,D,Z and an
        // unrelated route via A; the case-(iv) bound for both B and D is
        // c_k + c_A + c(A,Z) − c(X,Z) = c_k + 5 + 0 − 3 = c_k + 2.
        let g = fig1();
        let mut x = PricingBgpNode::new(&g, Fig1::X);
        let b_ad = Update {
            from: Fig1::B,
            sender_costs: Vec::new(),
            advertisements: vec![RouteAdvertisement {
                destination: Fig1::Z,
                info: RouteInfo::Reachable {
                    path: vec![
                        PathEntry {
                            node: Fig1::B,
                            cost: Cost::new(2),
                        },
                        PathEntry {
                            node: Fig1::D,
                            cost: Cost::new(1),
                        },
                        PathEntry {
                            node: Fig1::Z,
                            cost: Cost::new(4),
                        },
                    ]
                    .into(),
                    path_cost: Cost::new(1),
                    prices: vec![Cost::INFINITE],
                },
            }],
            id: 0,
            causes: Vec::new(),
        };
        let a_ad = Update {
            from: Fig1::A,
            sender_costs: Vec::new(),
            advertisements: vec![RouteAdvertisement {
                destination: Fig1::Z,
                info: RouteInfo::Reachable {
                    path: vec![
                        PathEntry {
                            node: Fig1::A,
                            cost: Cost::new(5),
                        },
                        PathEntry {
                            node: Fig1::Z,
                            cost: Cost::new(4),
                        },
                    ]
                    .into(),
                    path_cost: Cost::ZERO,
                    prices: vec![],
                },
            }],
            id: 0,
            causes: Vec::new(),
        };
        x.handle(&[Arc::new(b_ad), Arc::new(a_ad)]);
        // Selected route must be X,B,D,Z at cost 3.
        assert_eq!(x.selector().route_cost(Fig1::Z), Cost::new(3));
        assert_eq!(x.price(Fig1::Z, Fig1::B), Some(Cost::new(4)));
        assert_eq!(x.price(Fig1::Z, Fig1::D), Some(Cost::new(3)));
    }

    #[test]
    fn route_change_resets_prices() {
        let g = fig1();
        let mut x = PricingBgpNode::new(&g, Fig1::X);
        // First: only the expensive route via A is known.
        let a_ad = Update {
            from: Fig1::A,
            sender_costs: Vec::new(),
            advertisements: vec![RouteAdvertisement {
                destination: Fig1::Z,
                info: RouteInfo::Reachable {
                    path: vec![
                        PathEntry {
                            node: Fig1::A,
                            cost: Cost::new(5),
                        },
                        PathEntry {
                            node: Fig1::Z,
                            cost: Cost::new(4),
                        },
                    ]
                    .into(),
                    path_cost: Cost::ZERO,
                    prices: vec![],
                },
            }],
            id: 0,
            causes: Vec::new(),
        };
        x.handle(&[Arc::new(a_ad)]);
        assert_eq!(x.selector().route_cost(Fig1::Z), Cost::new(5));
        assert_eq!(x.prices(Fig1::Z).unwrap(), &[Cost::INFINITE]);
        // Then the better route via B arrives: the array must track the new
        // route's transit nodes (B, D), not A.
        let b_ad = Update {
            from: Fig1::B,
            sender_costs: Vec::new(),
            advertisements: vec![RouteAdvertisement {
                destination: Fig1::Z,
                info: RouteInfo::Reachable {
                    path: vec![
                        PathEntry {
                            node: Fig1::B,
                            cost: Cost::new(2),
                        },
                        PathEntry {
                            node: Fig1::D,
                            cost: Cost::new(1),
                        },
                        PathEntry {
                            node: Fig1::Z,
                            cost: Cost::new(4),
                        },
                    ]
                    .into(),
                    path_cost: Cost::new(1),
                    prices: vec![Cost::INFINITE],
                },
            }],
            id: 0,
            causes: Vec::new(),
        };
        x.handle(&[Arc::new(b_ad)]);
        assert_eq!(x.selector().route_cost(Fig1::Z), Cost::new(3));
        let arr = x.prices(Fig1::Z).unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(x.price(Fig1::Z, Fig1::B), Some(Cost::new(4)));
        assert_eq!(x.price(Fig1::Z, Fig1::A), None);
    }

    #[test]
    fn price_state_counted_in_snapshot() {
        let g = fig1();
        let mut x = PricingBgpNode::new(&g, Fig1::X);
        let b_ad = Update {
            from: Fig1::B,
            sender_costs: Vec::new(),
            advertisements: vec![RouteAdvertisement {
                destination: Fig1::Z,
                info: RouteInfo::Reachable {
                    path: vec![
                        PathEntry {
                            node: Fig1::B,
                            cost: Cost::new(2),
                        },
                        PathEntry {
                            node: Fig1::D,
                            cost: Cost::new(1),
                        },
                        PathEntry {
                            node: Fig1::Z,
                            cost: Cost::new(4),
                        },
                    ]
                    .into(),
                    path_cost: Cost::new(1),
                    prices: vec![Cost::INFINITE],
                },
            }],
            id: 0,
            causes: Vec::new(),
        };
        x.handle(&[Arc::new(b_ad)]);
        assert_eq!(x.state().price_entries, 2);
        // Each price entry carries one transit-node AS label cell.
        assert_eq!(x.state().price_path_nodes, 2);
    }
}
