//! Overcharging analysis (paper, Sect. 7).
//!
//! VCG payments exceed actual path costs: for a `Y→Z` packet in the paper's
//! Fig. 1 the single transit node is paid 9 against a path cost of 1. This
//! module quantifies that premium across all pairs — the ratio
//! `Σ_k p^k_ij / c(i, j)` and the absolute surplus — which the paper leaves
//! as a (still essentially open) concern and experiment E8 reproduces.

use crate::outcome::RoutingOutcome;
use bgpvcg_netgraph::AsId;
use std::fmt;

/// The payment premium for one source–destination pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairPremium {
    /// Source.
    pub source: AsId,
    /// Destination.
    pub destination: AsId,
    /// True (declared) cost of the selected route.
    pub route_cost: u64,
    /// Total per-packet payments across the route's transit nodes.
    pub total_payment: u64,
}

impl PairPremium {
    /// The absolute surplus `payments − cost` (≥ 0).
    pub fn surplus(&self) -> u64 {
        self.total_payment - self.route_cost
    }

    /// The overcharging ratio `payments / cost`; `None` for free routes
    /// (cost zero — ratio undefined; use [`surplus`](Self::surplus)).
    pub fn ratio(&self) -> Option<f64> {
        if self.route_cost == 0 {
            None
        } else {
            Some(self.total_payment as f64 / self.route_cost as f64)
        }
    }
}

/// Aggregate overcharging statistics over all pairs of an outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct OverchargeReport {
    /// Per-pair premiums for every pair with at least one transit node.
    pub pairs: Vec<PairPremium>,
}

impl OverchargeReport {
    /// Computes premiums from a converged outcome.
    ///
    /// Pairs whose route has no transit nodes (directly linked ASs) carry
    /// no payments and are skipped.
    ///
    /// # Panics
    ///
    /// Panics if some price has not converged (is infinite).
    pub fn analyze(outcome: &RoutingOutcome) -> Self {
        let mut pairs = Vec::new();
        for (i, j, pair) in outcome.pairs() {
            if pair.prices().is_empty() {
                continue;
            }
            let route_cost = pair
                .route()
                .transit_cost()
                .finite()
                .expect("selected routes have finite cost"); // lint:allow(documented # Panics contract: caller passes a converged outcome)
            let total_payment = pair
                .prices()
                .iter()
                .map(|(_, p)| p.finite().expect("converged prices are finite")) // lint:allow(documented # Panics contract: caller passes a converged outcome)
                .sum();
            pairs.push(PairPremium {
                source: i,
                destination: j,
                route_cost,
                total_payment,
            });
        }
        OverchargeReport { pairs }
    }

    /// The worst ratio across pairs with non-zero cost.
    pub fn max_ratio(&self) -> Option<f64> {
        self.pairs
            .iter()
            .filter_map(PairPremium::ratio)
            .max_by(|a, b| a.total_cmp(b))
    }

    /// The mean ratio across pairs with non-zero cost.
    pub fn mean_ratio(&self) -> Option<f64> {
        let ratios: Vec<f64> = self.pairs.iter().filter_map(PairPremium::ratio).collect();
        if ratios.is_empty() {
            None
        } else {
            Some(ratios.iter().sum::<f64>() / ratios.len() as f64)
        }
    }

    /// Total payments and total true cost over all analyzed pairs — the
    /// network-wide premium under uniform traffic.
    pub fn totals(&self) -> (u64, u64) {
        let payment = self.pairs.iter().map(|p| p.total_payment).sum();
        let cost = self.pairs.iter().map(|p| p.route_cost).sum();
        (payment, cost)
    }

    /// The pair with the largest absolute surplus.
    pub fn worst_pair(&self) -> Option<&PairPremium> {
        self.pairs.iter().max_by_key(|p| p.surplus())
    }

    /// Since every per-node price satisfies `p^k ≥ c_k`, payments dominate
    /// costs pair-wise; exposed for tests and sanity checks.
    pub fn payments_dominate_costs(&self) -> bool {
        self.pairs.iter().all(|p| p.total_payment >= p.route_cost)
    }
}

impl fmt::Display for OverchargeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (payment, cost) = self.totals();
        write!(
            f,
            "{} transit pairs; total payments {payment} vs costs {cost}; max ratio {:?}",
            self.pairs.len(),
            self.max_ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vcg;
    use bgpvcg_netgraph::generators::structured::{fig1, wheel, Fig1};
    use bgpvcg_netgraph::generators::{erdos_renyi, random_costs};
    use bgpvcg_netgraph::Cost;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fig1_y_to_z_is_the_papers_extreme_example() {
        let outcome = vcg::compute(&fig1()).unwrap();
        let report = OverchargeReport::analyze(&outcome);
        let yz = report
            .pairs
            .iter()
            .find(|p| p.source == Fig1::Y && p.destination == Fig1::Z)
            .unwrap();
        assert_eq!(yz.route_cost, 1);
        assert_eq!(yz.total_payment, 9);
        assert_eq!(yz.surplus(), 8);
        assert_eq!(yz.ratio(), Some(9.0));
    }

    #[test]
    fn fig1_x_to_z_premium() {
        // Payments 3 + 4 = 7 against cost 3.
        let outcome = vcg::compute(&fig1()).unwrap();
        let report = OverchargeReport::analyze(&outcome);
        let xz = report
            .pairs
            .iter()
            .find(|p| p.source == Fig1::X && p.destination == Fig1::Z)
            .unwrap();
        assert_eq!(xz.total_payment, 7);
        assert_eq!(xz.route_cost, 3);
    }

    #[test]
    fn payments_always_dominate_costs() {
        let mut rng = StdRng::seed_from_u64(5);
        let costs = random_costs(14, 0, 9, &mut rng);
        let g = erdos_renyi(costs, 0.3, &mut rng);
        let outcome = vcg::compute(&g).unwrap();
        let report = OverchargeReport::analyze(&outcome);
        assert!(report.payments_dominate_costs());
        if let Some(r) = report.max_ratio() {
            assert!(r >= 1.0);
        }
    }

    #[test]
    fn wheel_hub_premium_is_extreme() {
        // Free hub, expensive rim: every hub price carries the full rim
        // detour, so surplus is large while route cost is zero.
        let g = wheel(8, Cost::ZERO, Cost::new(10));
        let outcome = vcg::compute(&g).unwrap();
        let report = OverchargeReport::analyze(&outcome);
        let worst = report.worst_pair().unwrap();
        assert_eq!(worst.route_cost, 0, "hub routes are free");
        assert!(worst.surplus() >= 10, "hub extracts at least one rim hop");
        assert_eq!(worst.ratio(), None, "ratio undefined at zero cost");
    }

    #[test]
    fn mean_ratio_between_one_and_max() {
        let outcome = vcg::compute(&fig1()).unwrap();
        let report = OverchargeReport::analyze(&outcome);
        let mean = report.mean_ratio().unwrap();
        let max = report.max_ratio().unwrap();
        assert!(mean >= 1.0);
        assert!(mean <= max);
    }

    #[test]
    fn direct_links_are_skipped() {
        let outcome = vcg::compute(&fig1()).unwrap();
        let report = OverchargeReport::analyze(&outcome);
        for p in &report.pairs {
            assert!(
                p.total_payment > 0 || p.route_cost == 0,
                "transit pairs only"
            );
        }
        // X–B are adjacent: no premium entry.
        assert!(!report
            .pairs
            .iter()
            .any(|p| p.source == Fig1::X && p.destination == Fig1::B));
    }
}
