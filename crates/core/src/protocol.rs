//! Turnkey runners for the full pricing protocol.
//!
//! These helpers validate the graph, wire [`PricingBgpNode`]s into an
//! engine, run to convergence, and extract a [`RoutingOutcome`] directly
//! comparable (by `==`) with the centralized Theorem-1 reference from
//! [`crate::vcg`].

use crate::errors::MechanismError;
use crate::outcome::{PairOutcome, RoutingOutcome};
use crate::pricing_node::PricingBgpNode;
use crate::telemetry::metric;
use bgpvcg_bgp::chaos::{ChaosEngine, ChaosReport, FaultPlan};
use bgpvcg_bgp::engine::{
    run_event_driven, run_event_driven_faulty, run_event_driven_telemetry, EventReport, RunReport,
    SyncEngine,
};
use bgpvcg_bgp::{ProtocolNode, StateSnapshot};
use bgpvcg_netgraph::{AsGraph, GraphError};
use bgpvcg_telemetry::{HealthConfig, HealthMonitor, SpanProfiler, Telemetry};

/// Everything a synchronous pricing run produces.
#[derive(Debug, Clone)]
pub struct PricingRun {
    /// Routes and prices extracted from the converged nodes.
    pub outcome: RoutingOutcome,
    /// Stage/message/byte statistics of the run.
    pub report: RunReport,
    /// Per-node state sizes at convergence (for the E5 experiment).
    pub snapshots: Vec<StateSnapshot>,
}

/// Builds a synchronous engine loaded with pricing nodes, without running
/// it — used by experiments that interleave convergence with topology
/// events.
///
/// # Errors
///
/// Returns the graph-validation error if the mechanism's preconditions
/// fail.
pub fn build_sync_engine(graph: &AsGraph) -> Result<SyncEngine<PricingBgpNode>, GraphError> {
    graph.validate_for_mechanism()?;
    crate::invariants::mechanism_preconditions(graph);
    Ok(SyncEngine::new(graph, PricingBgpNode::from_graph(graph)))
}

/// Runs the pricing protocol to convergence on the synchronous engine.
///
/// # Errors
///
/// Returns the graph-validation error if the mechanism's preconditions
/// fail.
///
/// # Example
///
/// ```
/// use bgpvcg_core::{protocol, vcg};
/// use bgpvcg_netgraph::generators::structured::fig1;
///
/// # fn main() -> Result<(), bgpvcg_core::MechanismError> {
/// let g = fig1();
/// let run = protocol::run_sync(&g)?;
/// assert_eq!(run.outcome, vcg::compute(&g)?);
/// # Ok(())
/// # }
/// ```
pub fn run_sync(graph: &AsGraph) -> Result<PricingRun, MechanismError> {
    let mut engine = build_sync_engine(graph)?;
    let report = engine.run_to_convergence();
    let snapshots = engine.state_snapshots();
    let outcome = outcome_from_nodes(&engine.into_nodes())?;
    Ok(PricingRun {
        outcome,
        report,
        snapshots,
    })
}

/// Like [`build_sync_engine`], but with an [`OnlineAuditor`] attached:
/// the run is cross-checked stage by stage against honest shadow replays,
/// and (unless [`SyncEngine::set_auto_quarantine`] is turned off) nodes
/// caught lying on the wire are quarantined mid-run via the engine's
/// `NodeDown` machinery. See [`crate::audit`] for the detection model.
///
/// # Errors
///
/// Returns the graph-validation error if the mechanism's preconditions
/// fail.
///
/// [`OnlineAuditor`]: crate::audit::OnlineAuditor
pub fn build_audited_sync_engine(
    graph: &AsGraph,
) -> Result<SyncEngine<PricingBgpNode>, GraphError> {
    let mut engine = build_sync_engine(graph)?;
    engine.attach_auditor(Box::new(crate::audit::OnlineAuditor::new(graph)));
    Ok(engine)
}

/// Like [`build_audited_sync_engine`], with a deterministic worker pool —
/// the auditor observes the engine's canonical broadcast order, which is
/// identical for any worker count.
///
/// # Errors
///
/// Returns the graph-validation error if the mechanism's preconditions
/// fail.
pub fn build_audited_sync_engine_parallel(
    graph: &AsGraph,
    workers: usize,
) -> Result<SyncEngine<PricingBgpNode>, GraphError> {
    Ok(build_audited_sync_engine(graph)?.with_parallelism(workers))
}

/// Like [`build_sync_engine`], but with a deterministic worker pool of
/// `workers` stage threads (`1` selects the serial reference path). The
/// parallel engine is bit-for-bit identical to the serial one — emitted
/// updates are merged in node-index order before broadcast; see
/// `docs/PERFORMANCE.md` for the determinism argument.
///
/// # Errors
///
/// Returns the graph-validation error if the mechanism's preconditions
/// fail.
pub fn build_sync_engine_parallel(
    graph: &AsGraph,
    workers: usize,
) -> Result<SyncEngine<PricingBgpNode>, GraphError> {
    Ok(build_sync_engine(graph)?.with_parallelism(workers))
}

/// Like [`run_sync`], but stages execute on `workers` threads. The result
/// (outcome, report, and snapshots) is identical to the serial run for any
/// worker count.
///
/// # Errors
///
/// Returns the graph-validation error if the mechanism's preconditions
/// fail.
///
/// # Example
///
/// ```
/// use bgpvcg_core::protocol;
/// use bgpvcg_netgraph::generators::structured::fig1;
///
/// # fn main() -> Result<(), bgpvcg_core::MechanismError> {
/// let g = fig1();
/// let serial = protocol::run_sync(&g)?;
/// let parallel = protocol::run_sync_parallel(&g, 4)?;
/// assert_eq!(serial.outcome, parallel.outcome);
/// assert_eq!(serial.report, parallel.report);
/// # Ok(())
/// # }
/// ```
pub fn run_sync_parallel(graph: &AsGraph, workers: usize) -> Result<PricingRun, MechanismError> {
    let mut engine = build_sync_engine_parallel(graph, workers)?;
    let report = engine.run_to_convergence();
    let snapshots = engine.state_snapshots();
    let outcome = outcome_from_nodes(&engine.into_nodes())?;
    Ok(PricingRun {
        outcome,
        report,
        snapshots,
    })
}

/// Like [`run_sync`], but the run narrates itself through `telemetry`: the
/// engine traces every stage and broadcast (the `bgp_*` metrics and the
/// JSONL event stream), and the price extraction records the `vcg_*`
/// extraction counters.
///
/// # Errors
///
/// Returns the graph-validation error if the mechanism's preconditions
/// fail.
pub fn run_sync_telemetry(
    graph: &AsGraph,
    telemetry: &Telemetry,
) -> Result<PricingRun, MechanismError> {
    let mut engine = build_sync_engine(graph)?;
    engine.attach_telemetry(telemetry);
    let report = engine.run_to_convergence();
    let snapshots = engine.state_snapshots();
    let outcome = outcome_from_nodes(&engine.into_nodes())?;
    record_extraction(&outcome, telemetry);
    Ok(PricingRun {
        outcome,
        report,
        snapshots,
    })
}

/// A [`PricingRun`] plus the health and profiling artifacts of a fully
/// observed run (see [`run_sync_observed`]).
#[derive(Debug)]
pub struct ObservedRun {
    /// The run itself.
    pub run: PricingRun,
    /// Final health-monitor state: findings, latency sketches, stage
    /// count.
    pub health: HealthMonitor,
    /// The span profiler's totals over the run.
    pub profile: SpanProfiler,
}

/// Like [`run_sync_telemetry`], but with the full observability stack
/// attached: the streaming [`HealthMonitor`] folds the trace as it is
/// emitted (verdicts traced as `HealthVerdict` events) and the span
/// profiler times the engine phases (totals traced as `SpanSummary`
/// events). Returns both artifacts alongside the run.
///
/// # Errors
///
/// Returns the graph-validation error if the mechanism's preconditions
/// fail.
pub fn run_sync_observed(
    graph: &AsGraph,
    telemetry: &Telemetry,
    health: HealthConfig,
) -> Result<ObservedRun, MechanismError> {
    let mut engine = build_sync_engine(graph)?;
    engine.attach_telemetry(telemetry);
    engine.attach_health(health);
    engine.attach_profiler();
    let report = engine.run_to_convergence();
    let snapshots = engine.state_snapshots();
    let health = engine
        .health_sink()
        // lint:allow(infallible: attach_health ran unconditionally four lines up)
        .expect("health attached above")
        .snapshot();
    // lint:allow(infallible: attach_profiler ran unconditionally above)
    let profile = engine.take_profiler().expect("profiler attached above");
    let outcome = outcome_from_nodes(&engine.into_nodes())?;
    record_extraction(&outcome, telemetry);
    Ok(ObservedRun {
        run: PricingRun {
            outcome,
            report,
            snapshots,
        },
        health,
        profile,
    })
}

/// The chaos twin of [`run_sync_observed`]: session-layer recovery under
/// the fault plan with the health monitor and span profiler attached.
///
/// # Errors
///
/// As for [`run_chaos`].
pub fn run_chaos_observed(
    graph: &AsGraph,
    plan: FaultPlan,
    max_stages: u64,
    telemetry: &Telemetry,
    health: HealthConfig,
) -> Result<(RoutingOutcome, ChaosReport, HealthMonitor, SpanProfiler), MechanismError> {
    let mut engine = build_chaos_engine(graph, plan)?;
    engine.attach_telemetry(telemetry);
    engine.attach_health(health);
    engine.attach_profiler();
    let report = engine.run_to_stable(max_stages);
    let health = engine
        .health_sink()
        // lint:allow(infallible: attach_health ran unconditionally four lines up)
        .expect("health attached above")
        .snapshot();
    // lint:allow(infallible: attach_profiler ran unconditionally above)
    let profile = engine.take_profiler().expect("profiler attached above");
    let outcome = outcome_from_nodes(&engine.into_nodes())?;
    record_extraction(&outcome, telemetry);
    Ok((outcome, report, health, profile))
}

/// Like [`run_async`], but observed through `telemetry` (broadcast-keyed
/// trace events plus the shared `bgp_*` / `vcg_*` counters).
///
/// # Errors
///
/// Returns the graph-validation error if the mechanism's preconditions
/// fail.
pub fn run_async_telemetry(
    graph: &AsGraph,
    telemetry: &Telemetry,
) -> Result<(RoutingOutcome, EventReport), MechanismError> {
    graph.validate_for_mechanism()?;
    crate::invariants::mechanism_preconditions(graph);
    let (nodes, report) =
        run_event_driven_telemetry(graph, PricingBgpNode::from_graph(graph), telemetry);
    let outcome = outcome_from_nodes(&nodes)?;
    record_extraction(&outcome, telemetry);
    Ok((outcome, report))
}

/// Counts what price extraction pulled out of the converged nodes.
fn record_extraction(outcome: &RoutingOutcome, telemetry: &Telemetry) {
    let mut pairs = 0u64;
    let mut price_entries = 0u64;
    let n = outcome.node_count();
    for i in 0..n {
        for j in 0..n {
            let (i, j) = (
                bgpvcg_netgraph::AsId::new(i as u32),
                bgpvcg_netgraph::AsId::new(j as u32),
            );
            if let Some(pair) = outcome.pair(i, j) {
                pairs += 1;
                price_entries += pair.prices().len() as u64;
            }
        }
    }
    telemetry.counter(metric::PAIRS_EXTRACTED).add(pairs);
    telemetry
        .counter(metric::PRICE_ENTRIES_EXTRACTED)
        .add(price_entries);
}

/// Runs the pricing protocol on the asynchronous (threads + channels)
/// engine until quiescence.
///
/// # Errors
///
/// Returns the graph-validation error if the mechanism's preconditions
/// fail.
pub fn run_async(graph: &AsGraph) -> Result<(RoutingOutcome, EventReport), MechanismError> {
    graph.validate_for_mechanism()?;
    crate::invariants::mechanism_preconditions(graph);
    let (nodes, report) = run_event_driven(graph, PricingBgpNode::from_graph(graph));
    Ok((outcome_from_nodes(&nodes)?, report))
}

/// Like [`run_async`], but deliveries are perturbed by the plan's
/// transport-survivable faults (duplication, delay, adversarial
/// reordering — loss-class faults are ignored; see
/// [`run_event_driven_faulty`]). The outcome must still equal the
/// fault-free one: the pricing fixpoint is unique and the faults preserve
/// per-sender FIFO.
///
/// # Errors
///
/// Returns the graph-validation error if the mechanism's preconditions
/// fail, or [`MechanismError::MissingPrice`] if the run somehow quiesced
/// short of the pricing fixpoint.
///
/// # Panics
///
/// Panics if a plan rate is outside `[0, 1)`.
pub fn run_async_faulty(
    graph: &AsGraph,
    plan: &FaultPlan,
) -> Result<(RoutingOutcome, EventReport), MechanismError> {
    graph.validate_for_mechanism()?;
    crate::invariants::mechanism_preconditions(graph);
    let (nodes, report) = run_event_driven_faulty(graph, PricingBgpNode::from_graph(graph), plan);
    Ok((outcome_from_nodes(&nodes)?, report))
}

/// Builds a chaos harness loaded with pricing nodes, without running it.
///
/// # Errors
///
/// Returns the graph-validation error if the mechanism's preconditions
/// fail.
pub fn build_chaos_engine(
    graph: &AsGraph,
    plan: FaultPlan,
) -> Result<ChaosEngine<PricingBgpNode>, GraphError> {
    graph.validate_for_mechanism()?;
    crate::invariants::mechanism_preconditions(graph);
    Ok(ChaosEngine::new(
        graph,
        PricingBgpNode::from_graph(graph),
        plan,
    ))
}

/// Runs the pricing protocol over seeded-faulty channels until the network
/// self-stabilizes (or `max_stages` runs out), then extracts the outcome.
///
/// Once the plan's faults cease, the sequenced session layer recovers
/// every lost exchange, so the extracted `(routes, prices)` must be
/// *identical* to a fault-free run — the self-stabilization property the
/// parity suite checks. See `docs/ROBUSTNESS.md`.
///
/// # Errors
///
/// Returns the graph-validation error if the mechanism's preconditions
/// fail, [`MechanismError::MissingPrice`] if the run was cut off before
/// the pricing fixpoint (check [`ChaosReport::converged`]).
pub fn run_chaos(
    graph: &AsGraph,
    plan: FaultPlan,
    max_stages: u64,
) -> Result<(RoutingOutcome, ChaosReport), MechanismError> {
    let mut engine = build_chaos_engine(graph, plan)?;
    let report = engine.run_to_stable(max_stages);
    Ok((outcome_from_nodes(&engine.into_nodes())?, report))
}

/// Like [`run_chaos`], but narrated through `telemetry`: fault injections,
/// retransmissions, session resets, and node restarts all trace, alongside
/// the usual route/price events.
///
/// # Errors
///
/// As for [`run_chaos`].
pub fn run_chaos_telemetry(
    graph: &AsGraph,
    plan: FaultPlan,
    max_stages: u64,
    telemetry: &Telemetry,
) -> Result<(RoutingOutcome, ChaosReport), MechanismError> {
    let mut engine = build_chaos_engine(graph, plan)?;
    engine.attach_telemetry(telemetry);
    let report = engine.run_to_stable(max_stages);
    let outcome = outcome_from_nodes(&engine.into_nodes())?;
    record_extraction(&outcome, telemetry);
    Ok((outcome, report))
}

/// Extracts the distributed state of converged nodes into a
/// [`RoutingOutcome`].
///
/// # Errors
///
/// Returns [`MechanismError::MissingPrice`] if a selected route carries a
/// transit node without a converged price entry — i.e. the nodes were read
/// before the pricing fixpoint was reached.
///
/// # Panics
///
/// Panics if the nodes are not in AS order (engines return them sorted).
pub fn outcome_from_nodes(nodes: &[PricingBgpNode]) -> Result<RoutingOutcome, MechanismError> {
    let n = nodes.len();
    let mut pairs: Vec<Option<PairOutcome>> = vec![None; n * n];
    for (idx, node) in nodes.iter().enumerate() {
        assert_eq!(node.id().index(), idx, "nodes must be in AS order");
        let i = node.id();
        for j in node.selector().destinations().collect::<Vec<_>>() {
            if j == i {
                continue;
            }
            let Some(route) = node.selector().route(j) else {
                continue;
            };
            let mut prices = Vec::with_capacity(route.transit_nodes().len());
            for &k in route.transit_nodes() {
                let price = node.price(j, k).ok_or(MechanismError::MissingPrice {
                    source: i,
                    destination: j,
                    transit: k,
                })?;
                prices.push((k, price));
            }
            crate::invariants::converged_prices(node.selector().selected(j), prices.as_slice());
            pairs[i.index() * n + j.index()] = Some(PairOutcome::new(route, prices));
        }
    }
    Ok(RoutingOutcome::from_pairs(n, pairs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vcg;
    use bgpvcg_netgraph::generators::structured::{fig1, petersen, ring, torus, wheel, Fig1};
    use bgpvcg_netgraph::generators::{
        barabasi_albert, erdos_renyi, hierarchy, random_costs, waxman, HierarchyConfig,
        WaxmanConfig,
    };
    use bgpvcg_netgraph::Cost;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fig1_distributed_equals_centralized() {
        let g = fig1();
        let run = run_sync(&g).unwrap();
        assert!(run.report.converged);
        assert_eq!(run.outcome, vcg::compute(&g).unwrap());
    }

    #[test]
    fn fig1_worked_example_prices() {
        let run = run_sync(&fig1()).unwrap();
        assert_eq!(
            run.outcome.price(Fig1::X, Fig1::Z, Fig1::D),
            Some(Cost::new(3))
        );
        assert_eq!(
            run.outcome.price(Fig1::X, Fig1::Z, Fig1::B),
            Some(Cost::new(4))
        );
        assert_eq!(
            run.outcome.price(Fig1::Y, Fig1::Z, Fig1::D),
            Some(Cost::new(9))
        );
    }

    #[test]
    fn parallel_run_matches_serial_bit_for_bit() {
        for seed in [3u64, 17, 61] {
            let mut rng = StdRng::seed_from_u64(seed);
            let costs = random_costs(20, 0, 9, &mut rng);
            let g = barabasi_albert(costs, 2, &mut rng);
            let serial = run_sync(&g).unwrap();
            for workers in [2usize, 3, 8] {
                let parallel = run_sync_parallel(&g, workers).unwrap();
                assert_eq!(serial.outcome, parallel.outcome, "workers={workers}");
                assert_eq!(serial.report, parallel.report, "workers={workers}");
                assert_eq!(serial.snapshots, parallel.snapshots, "workers={workers}");
            }
        }
    }

    #[test]
    fn structured_families_distributed_equals_centralized() {
        for g in [
            ring(8, Cost::new(2)),
            torus(3, 4, Cost::new(1)),
            wheel(7, Cost::ZERO, Cost::new(6)),
            petersen(Cost::new(3)),
        ] {
            let run = run_sync(&g).unwrap();
            assert!(run.report.converged);
            assert_eq!(run.outcome, vcg::compute(&g).unwrap());
        }
    }

    #[test]
    fn random_families_distributed_equals_centralized() {
        for seed in 0..8 {
            let mut rng = StdRng::seed_from_u64(seed);
            let costs = random_costs(18, 0, 9, &mut rng);
            let g = match seed % 4 {
                0 => erdos_renyi(costs, 0.25, &mut rng),
                1 => barabasi_albert(costs, 2, &mut rng),
                2 => waxman(costs, WaxmanConfig::default(), &mut rng),
                _ => hierarchy(
                    HierarchyConfig {
                        core_size: 4,
                        stub_count: 14,
                        ..HierarchyConfig::default()
                    },
                    &mut rng,
                ),
            };
            let run = run_sync(&g).unwrap();
            assert!(run.report.converged, "seed {seed}");
            assert_eq!(run.outcome, vcg::compute(&g).unwrap(), "seed {seed}");
        }
    }

    #[test]
    fn convergence_within_max_d_dprime_stages() {
        use bgpvcg_lcp::avoiding::AvoidanceTable;
        use bgpvcg_lcp::{diameter, AllPairsLcp};
        for seed in 0..6 {
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let costs = random_costs(20, 1, 9, &mut rng);
            let g = erdos_renyi(costs, 0.2, &mut rng);
            let lcp = AllPairsLcp::compute(&g);
            let avoidance = AvoidanceTable::compute(&g, &lcp);
            let bound = diameter::convergence_bound(&lcp, &avoidance);
            let run = run_sync(&g).unwrap();
            assert!(
                run.report.stages <= bound,
                "seed {seed}: {} stages > max(d, d') = {bound}",
                run.report.stages
            );
        }
    }

    #[test]
    fn async_engine_matches_centralized() {
        let g = fig1();
        let (outcome, report) = run_async(&g).unwrap();
        assert!(report.messages > 0);
        assert_eq!(outcome, vcg::compute(&g).unwrap());
    }

    #[test]
    fn async_engine_matches_on_random_graph() {
        let mut rng = StdRng::seed_from_u64(42);
        let costs = random_costs(14, 0, 8, &mut rng);
        let g = erdos_renyi(costs, 0.3, &mut rng);
        let (outcome, _) = run_async(&g).unwrap();
        assert_eq!(outcome, vcg::compute(&g).unwrap());
    }

    #[test]
    fn chaotic_async_delivery_still_computes_vcg_prices() {
        use bgpvcg_bgp::engine::run_event_driven_chaotic;
        let mut rng = StdRng::seed_from_u64(77);
        let costs = random_costs(14, 1, 9, &mut rng);
        let g = erdos_renyi(costs, 0.3, &mut rng);
        let reference = vcg::compute(&g).unwrap();
        for seed in 0..2 {
            let (nodes, _) =
                run_event_driven_chaotic(&g, crate::PricingBgpNode::from_graph(&g), 0.35, seed);
            assert_eq!(
                outcome_from_nodes(&nodes).unwrap(),
                reference,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn chaos_run_self_stabilizes_to_vcg_prices() {
        let g = fig1();
        let reference = vcg::compute(&g).unwrap();
        for seed in 0..3 {
            let (outcome, report) = run_chaos(&g, FaultPlan::lossy(seed, 16), 400).unwrap();
            assert!(report.converged, "seed {seed}: {report}");
            assert_eq!(outcome, reference, "seed {seed}");
        }
    }

    #[test]
    fn chaos_run_with_crash_recovers_vcg_prices() {
        let g = petersen(Cost::new(2));
        let reference = vcg::compute(&g).unwrap();
        let plan = FaultPlan::lossy(5, 24).with_crash(6, bgpvcg_netgraph::AsId::new(4), 14);
        let (outcome, report) = run_chaos(&g, plan, 600).unwrap();
        assert!(report.converged, "{report}");
        assert_eq!(report.crashes, 1);
        assert_eq!(outcome, reference);
    }

    #[test]
    fn faulty_async_delivery_still_computes_vcg_prices() {
        let mut rng = StdRng::seed_from_u64(91);
        let costs = random_costs(12, 1, 9, &mut rng);
        let g = erdos_renyi(costs, 0.3, &mut rng);
        let reference = vcg::compute(&g).unwrap();
        for seed in 0..2 {
            let plan = FaultPlan {
                duplicate_rate: 0.2,
                delay_rate: 0.2,
                ..FaultPlan::lossy(seed, 0)
            };
            let (outcome, _) = run_async_faulty(&g, &plan).unwrap();
            assert_eq!(outcome, reference, "seed {seed}");
        }
    }

    #[test]
    fn rejects_invalid_graphs() {
        let path =
            bgpvcg_netgraph::generators::from_edges(vec![Cost::new(1); 3], &[(0, 1), (1, 2)]);
        assert!(run_sync(&path).is_err());
        assert!(run_async(&path).is_err());
        assert!(build_sync_engine(&path).is_err());
    }

    #[test]
    fn price_state_is_order_nd() {
        // Theorem 2: price state is O(nd) — at most (n−1)(d−1) entries.
        let g = petersen(Cost::new(2));
        let run = run_sync(&g).unwrap();
        let lcp = bgpvcg_lcp::AllPairsLcp::compute(&g);
        let d = bgpvcg_lcp::diameter::lcp_hop_diameter(&lcp);
        let n = g.node_count();
        for snap in &run.snapshots {
            assert!(snap.price_entries <= (n - 1) * d);
        }
    }
}
