//! Per-stage economic attribution: overpayment premiums and welfare.
//!
//! The mechanism pays each transit node `k` on the `i → j` lowest-cost
//! path the VCG price `p^k_{ij} ≥ c_k` (Theorem 1). The difference
//! `p^k_{ij} − c_k` is node `k`'s *overpayment premium* on that flow, and
//! under the uniform one-packet-per-pair traffic matrix the per-AS sum of
//! premiums equals the node's settled ledger welfare
//! `τ_k = payment − incurred cost` ([`crate::accounting`]) — the identity
//! `e18_overcharge_vs_diversity` asserts.
//!
//! [`EconomicsSampler`] computes these premiums from live node state at
//! every executed stage (through [`SyncEngine::set_stage_observer`]),
//! publishes them as registry gauges
//! ([`metric::PREMIUM_AS_PREFIX`]`<k>`, [`metric::WELFARE_TOTAL`]), and
//! records them into deterministic [`TimeSeries`] rings keyed by stage —
//! the convergence trajectory of the economy, not just its fixpoint.

use crate::pricing_node::PricingBgpNode;
use crate::telemetry::metric;
use bgpvcg_bgp::engine::SyncEngine;
use bgpvcg_bgp::ProtocolNode;
use bgpvcg_netgraph::{AsGraph, Cost};
use bgpvcg_telemetry::{Telemetry, TimeSeries};
use std::sync::{Arc, Mutex};

/// Samples per-AS overpayment premiums and aggregate welfare from live
/// pricing-node state, stage by stage.
#[derive(Debug)]
pub struct EconomicsSampler {
    true_costs: Vec<Cost>,
    per_as: Vec<TimeSeries>,
    aggregate: TimeSeries,
    telemetry: Option<Telemetry>,
}

impl EconomicsSampler {
    /// A sampler for `graph`'s declared costs, with `capacity`-point
    /// rings per AS.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(graph: &AsGraph, capacity: usize) -> Self {
        EconomicsSampler {
            true_costs: graph.costs().to_vec(),
            per_as: (0..graph.node_count())
                .map(|_| TimeSeries::new("vcg_premium", capacity))
                .collect(),
            aggregate: TimeSeries::new("vcg_welfare", capacity),
            telemetry: None,
        }
    }

    /// Additionally publishes each sample as registry gauges on
    /// `telemetry` (builder-style).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.telemetry = Some(telemetry.clone());
        self
    }

    /// Computes the current per-AS premium vector and folds it into the
    /// time series (and gauges) under `stage`.
    pub fn sample(&mut self, stage: u64, nodes: &[PricingBgpNode]) {
        let premiums = premiums(&self.true_costs, nodes);
        let mut total = 0u64;
        for (k, &p) in premiums.iter().enumerate() {
            self.per_as[k].push(stage, p);
            total = total.saturating_add(p);
        }
        self.aggregate.push(stage, total);
        if let Some(t) = &self.telemetry {
            for (k, &p) in premiums.iter().enumerate() {
                t.gauge(&format!("{}{k}", metric::PREMIUM_AS_PREFIX)).set(p);
            }
            t.gauge(metric::WELFARE_TOTAL).set(total);
        }
    }

    /// Per-AS premium trajectories, indexed by `AsId::index`.
    pub fn per_as(&self) -> &[TimeSeries] {
        &self.per_as
    }

    /// The aggregate-welfare trajectory.
    pub fn aggregate(&self) -> &TimeSeries {
        &self.aggregate
    }

    /// The most recent per-AS premium vector (zeros if never sampled).
    pub fn final_premiums(&self) -> Vec<u64> {
        self.per_as
            .iter()
            .map(|series| series.last().map_or(0, |(_, v)| v))
            .collect()
    }

    /// JSON report: the aggregate trajectory plus one per-AS series.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.per_as.len() * 64);
        out.push_str("{\"aggregate\":");
        out.push_str(&self.aggregate.to_json());
        out.push_str(",\"per_as\":[");
        for (k, series) in self.per_as.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push_str(&series.to_json());
        }
        out.push_str("]}");
        out
    }
}

/// The premium vector at a point in time: for each AS `k`, the sum over
/// all source/destination pairs whose currently-selected route transits
/// `k` of `p^k_{ij} − c_k` (pairs whose price entry is still infinite —
/// not yet relaxed — contribute nothing). At the fixpoint under uniform
/// 1-packet-per-pair traffic this equals the settled ledger welfare
/// `τ_k`.
pub fn premiums(true_costs: &[Cost], nodes: &[PricingBgpNode]) -> Vec<u64> {
    let mut premium = vec![0u64; true_costs.len()];
    for node in nodes {
        let i = node.id();
        for j in node.selector().destinations().collect::<Vec<_>>() {
            if j == i {
                continue;
            }
            let Some(route) = node.selector().route(j) else {
                continue;
            };
            for &k in route.transit_nodes() {
                let Some(price) = node.price(j, k) else {
                    continue;
                };
                if let (Some(p), Some(c)) = (price.finite(), true_costs[k.index()].finite()) {
                    premium[k.index()] += p.saturating_sub(c);
                }
            }
        }
    }
    premium
}

/// Attaches an [`EconomicsSampler`] to `engine` as its per-stage
/// observer, returning the shared handle the caller reads trajectories
/// back from after the run. Pass the engine's telemetry to publish
/// gauges; `capacity` bounds each ring.
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn attach_economics(
    engine: &mut SyncEngine<PricingBgpNode>,
    graph: &AsGraph,
    capacity: usize,
    telemetry: Option<&Telemetry>,
) -> Arc<Mutex<EconomicsSampler>> {
    let mut sampler = EconomicsSampler::new(graph, capacity);
    if let Some(t) = telemetry {
        sampler = sampler.with_telemetry(t);
    }
    let shared = Arc::new(Mutex::new(sampler));
    let observer = Arc::clone(&shared);
    engine.set_stage_observer(Box::new(move |stage, nodes| {
        observer
            .lock()
            // lint:allow(poisoning requires a prior panic while sampling; propagating it is the only sound move)
            .expect("economics sampler poisoned")
            .sample(stage, nodes);
    }));
    shared
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accounting::PaymentLedger;
    use crate::protocol;
    use bgpvcg_netgraph::generators::structured::{fig1, petersen};
    use bgpvcg_netgraph::{AsId, TrafficMatrix};

    fn premium_equals_settled_welfare(g: &AsGraph) {
        let mut engine = protocol::build_sync_engine(g).unwrap();
        let telemetry = Telemetry::null();
        engine.attach_telemetry(&telemetry);
        let shared = attach_economics(&mut engine, g, 256, Some(&telemetry));
        let report = engine.run_to_convergence();
        assert!(report.converged);
        let nodes = engine.into_nodes();
        let sampler = shared.lock().unwrap();
        let finals = sampler.final_premiums();
        let traffic = TrafficMatrix::uniform(g.node_count(), 1);
        let ledger = PaymentLedger::settle_from_nodes(&nodes, &traffic).unwrap();
        let mut total = 0u64;
        for k in g.nodes() {
            let welfare = ledger.welfare(k, g.cost(k));
            assert!(welfare >= 0, "truthful welfare must be non-negative");
            assert_eq!(
                i128::from(finals[k.index()]),
                welfare,
                "premium({k}) != settled welfare"
            );
            total += finals[k.index()];
        }
        // The aggregate series' final point is the economy-wide welfare.
        assert_eq!(sampler.aggregate().last().unwrap().1, total);
        // Gauges carry the same final values.
        let snapshot = telemetry.snapshot();
        assert_eq!(snapshot.gauges[metric::WELFARE_TOTAL], total);
        for k in g.nodes() {
            assert_eq!(
                snapshot.gauges[&format!("{}{}", metric::PREMIUM_AS_PREFIX, k.index())],
                finals[k.index()]
            );
        }
    }

    #[test]
    fn fig1_premiums_match_ledger() {
        premium_equals_settled_welfare(&fig1());
    }

    #[test]
    fn petersen_premiums_match_ledger() {
        premium_equals_settled_welfare(&petersen(Cost::new(3)));
    }

    #[test]
    fn premium_trajectory_is_stage_keyed_and_settles() {
        // Mid-run premiums are not monotone (routes and transit sets
        // switch while prices relax), but the trajectory must be keyed by
        // ascending execution stage and settle: the final point repeats
        // once tables stop changing, and it equals the fixpoint total.
        let g = fig1();
        let mut engine = protocol::build_sync_engine(&g).unwrap();
        let shared = attach_economics(&mut engine, &g, 256, None);
        assert!(engine.run_to_convergence().converged);
        let nodes = engine.into_nodes();
        let sampler = shared.lock().unwrap();
        let points: Vec<(u64, u64)> = sampler.aggregate().iter().collect();
        assert!(points.len() >= 2);
        assert!(points.windows(2).all(|w| w[0].0 < w[1].0));
        let settled: u64 = premiums(g.costs(), &nodes).iter().sum();
        assert_eq!(points.last().unwrap().1, settled);
        // The drain stage recomputes on final tables: same value twice.
        assert_eq!(points[points.len() - 2].1, settled);
    }

    #[test]
    fn premiums_ignore_unpriced_routes() {
        let g = fig1();
        let nodes: Vec<PricingBgpNode> = PricingBgpNode::from_graph(&g);
        // Fresh nodes have no selected routes yet: zero premium all round.
        assert!(premiums(g.costs(), &nodes).iter().all(|&p| p == 0));
        let _ = AsId::new(0);
    }
}
