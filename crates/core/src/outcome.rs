//! The mechanism's output: routes and prices for every pair.

use bgpvcg_lcp::Route;
use bgpvcg_netgraph::{AsId, Cost};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The mechanism's output for one source–destination pair: the selected
/// lowest-cost route and the per-packet price `p^k_ij` for every transit
/// node `k` on it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairOutcome {
    route: Route,
    /// `(k, p^k_ij)` for each transit node, in path order.
    prices: Vec<(AsId, Cost)>,
}

impl PairOutcome {
    /// Bundles a route with its transit prices.
    ///
    /// # Panics
    ///
    /// Panics if the price list does not match the route's transit nodes in
    /// order.
    pub fn new(route: Route, prices: Vec<(AsId, Cost)>) -> Self {
        assert_eq!(
            prices.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            route.transit_nodes(),
            "prices must cover exactly the transit nodes, in path order"
        );
        PairOutcome { route, prices }
    }

    /// The selected route.
    pub fn route(&self) -> &Route {
        &self.route
    }

    /// `(k, p^k_ij)` pairs in path order.
    pub fn prices(&self) -> &[(AsId, Cost)] {
        &self.prices
    }

    /// The price of one transit node, if it is on the route.
    pub fn price_of(&self, k: AsId) -> Option<Cost> {
        self.prices.iter().find(|(n, _)| *n == k).map(|(_, p)| *p)
    }

    /// Total per-packet payment across all transit nodes of this pair —
    /// what one packet from `i` to `j` costs the mechanism in payments.
    pub fn total_price(&self) -> Cost {
        self.prices.iter().map(|(_, p)| *p).sum()
    }
}

/// The complete mechanism output: a [`PairOutcome`] for every ordered pair
/// of distinct ASs.
///
/// Both the centralized Theorem-1 computation ([`crate::vcg::compute`]) and
/// the distributed protocol ([`crate::protocol::run_sync`]) produce this
/// type, and the reproduction's headline test is that they are **equal** —
/// the distributed algorithm computes exactly the VCG prices (Theorem 2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingOutcome {
    n: usize,
    /// Row-major `[i][j]`; `None` on the diagonal.
    pairs: Vec<Option<PairOutcome>>,
}

impl RoutingOutcome {
    /// Assembles an outcome from a pair table (row-major `[i][j]`, `None`
    /// on the diagonal).
    ///
    /// # Panics
    ///
    /// Panics if the table is not `n × n` or has a non-`None` diagonal.
    pub fn from_pairs(n: usize, pairs: Vec<Option<PairOutcome>>) -> Self {
        assert_eq!(pairs.len(), n * n, "pair table must be n × n");
        for i in 0..n {
            // lint:allow(bounds: pairs len is asserted to be n * n on the line above)
            assert!(pairs[i * n + i].is_none(), "diagonal must be empty");
        }
        RoutingOutcome { n, pairs }
    }

    /// Number of ASs covered.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The outcome for the pair `(i, j)`, `None` when `i == j` or the pair
    /// is unreachable.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn pair(&self, i: AsId, j: AsId) -> Option<&PairOutcome> {
        assert!(
            i.index() < self.n && j.index() < self.n,
            "index out of range"
        );
        self.pairs[i.index() * self.n + j.index()].as_ref()
    }

    /// The selected route from `i` to `j`.
    pub fn route(&self, i: AsId, j: AsId) -> Option<&Route> {
        self.pair(i, j).map(PairOutcome::route)
    }

    /// The price `p^k_ij`: `Some` iff `k` is a transit node on the selected
    /// route from `i` to `j`. Nodes off the route have price zero in the
    /// mechanism; this accessor distinguishes "zero because off-route" as
    /// `None`.
    pub fn price(&self, i: AsId, j: AsId, k: AsId) -> Option<Cost> {
        self.pair(i, j).and_then(|p| p.price_of(k))
    }

    /// Iterates over all ordered pairs with an outcome.
    pub fn pairs(&self) -> impl Iterator<Item = (AsId, AsId, &PairOutcome)> {
        (0..self.n).flat_map(move |i| {
            (0..self.n).filter_map(move |j| {
                self.pairs[i * self.n + j]
                    .as_ref()
                    .map(|p| (AsId::new(i as u32), AsId::new(j as u32), p))
            })
        })
    }
}

impl fmt::Display for RoutingOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "RoutingOutcome over {} ASs:", self.n)?;
        for (i, j, pair) in self.pairs() {
            write!(f, "  {i} -> {j}: {}", pair.route())?;
            let prices: Vec<String> = pair
                .prices()
                .iter()
                .map(|(k, p)| format!("{k}={p}"))
                .collect();
            writeln!(f, " prices [{}]", prices.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpvcg_netgraph::generators::structured::{fig1, Fig1};

    fn xz_pair() -> PairOutcome {
        let g = fig1();
        let route = Route::from_nodes(&g, vec![Fig1::X, Fig1::B, Fig1::D, Fig1::Z]);
        PairOutcome::new(
            route,
            vec![(Fig1::B, Cost::new(4)), (Fig1::D, Cost::new(3))],
        )
    }

    #[test]
    fn pair_accessors() {
        let pair = xz_pair();
        assert_eq!(pair.price_of(Fig1::B), Some(Cost::new(4)));
        assert_eq!(pair.price_of(Fig1::D), Some(Cost::new(3)));
        assert_eq!(pair.price_of(Fig1::A), None);
        assert_eq!(pair.total_price(), Cost::new(7));
    }

    #[test]
    #[should_panic(expected = "transit nodes")]
    fn pair_rejects_mismatched_prices() {
        let g = fig1();
        let route = Route::from_nodes(&g, vec![Fig1::X, Fig1::B, Fig1::D, Fig1::Z]);
        let _ = PairOutcome::new(route, vec![(Fig1::D, Cost::new(3))]);
    }

    #[test]
    fn outcome_round_trip() {
        let n = 6;
        let mut pairs: Vec<Option<PairOutcome>> = vec![None; n * n];
        pairs[Fig1::X.index() * n + Fig1::Z.index()] = Some(xz_pair());
        let outcome = RoutingOutcome::from_pairs(n, pairs);
        assert_eq!(outcome.node_count(), 6);
        assert_eq!(outcome.price(Fig1::X, Fig1::Z, Fig1::D), Some(Cost::new(3)));
        assert_eq!(outcome.price(Fig1::X, Fig1::Z, Fig1::A), None);
        assert_eq!(
            outcome.price(Fig1::Z, Fig1::X, Fig1::D),
            None,
            "unpopulated"
        );
        assert_eq!(outcome.pairs().count(), 1);
        assert!(outcome.route(Fig1::X, Fig1::Z).is_some());
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn outcome_rejects_diagonal_entries() {
        let n = 6;
        let mut pairs: Vec<Option<PairOutcome>> = vec![None; n * n];
        pairs[0] = Some(PairOutcome::new(Route::trivial(Fig1::X), vec![]));
        let _ = RoutingOutcome::from_pairs(n, pairs);
    }

    #[test]
    fn display_lists_prices() {
        let n = 6;
        let mut pairs: Vec<Option<PairOutcome>> = vec![None; n * n];
        pairs[Fig1::X.index() * n + Fig1::Z.index()] = Some(xz_pair());
        let outcome = RoutingOutcome::from_pairs(n, pairs);
        let text = outcome.to_string();
        assert!(text.contains("AS4=4"), "B's price shown: {text}");
    }
}
