//! Payment accounting (paper, Sect. 6.4).
//!
//! Once prices have converged, revenue collection is mechanical: every
//! packet from `i` to `j` increments, at each transit node `k` of the
//! selected route, a running tally by `p^k_ij`. The total payment to `k` is
//! `p_k = Σ_ij T_ij · p^k_ij`; totals are submitted to the clearing system
//! out of band ("at various intervals" — the paper assumes this traffic is
//! negligible, and so does this module).

use crate::errors::MechanismError;
use crate::outcome::RoutingOutcome;
use crate::pricing_node::PricingBgpNode;
use bgpvcg_bgp::forwarding::{self, ForwardingError};
use bgpvcg_bgp::RouteSelector;
use bgpvcg_netgraph::{AsId, Cost, TrafficMatrix};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-node payment tallies accumulated from routed traffic.
///
/// # Example
///
/// ```
/// use bgpvcg_core::{accounting::PaymentLedger, vcg};
/// use bgpvcg_netgraph::generators::structured::{fig1, Fig1};
/// use bgpvcg_netgraph::TrafficMatrix;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = fig1();
/// let outcome = vcg::compute(&g)?;
/// // One packet from X to Z: D is owed 3, B is owed 4, A nothing.
/// let mut t = TrafficMatrix::zero(g.node_count());
/// t.set(Fig1::X, Fig1::Z, 1);
/// let ledger = PaymentLedger::settle(&outcome, &t)?;
/// assert_eq!(ledger.payment(Fig1::D), 3);
/// assert_eq!(ledger.payment(Fig1::B), 4);
/// assert_eq!(ledger.payment(Fig1::A), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PaymentLedger {
    /// Total payment owed to each node, indexed by `AsId::index`.
    payments: Vec<u128>,
    /// Total true transit volume handled by each node (packets carried).
    packets_carried: Vec<u128>,
}

impl PaymentLedger {
    /// Settles the whole traffic matrix against converged prices by
    /// simulating the per-packet counters of Sect. 6.4.
    ///
    /// # Errors
    ///
    /// Returns [`MechanismError::UnroutedPair`] if traffic is demanded for a
    /// pair no selected route serves, and [`MechanismError::MissingPrice`]
    /// if some price on a demanded route has not converged (is infinite).
    ///
    /// # Panics
    ///
    /// Panics if the matrix covers a different node count than the outcome.
    pub fn settle(
        outcome: &RoutingOutcome,
        traffic: &TrafficMatrix,
    ) -> Result<Self, MechanismError> {
        assert_eq!(
            outcome.node_count(),
            traffic.node_count(),
            "matrix and outcome must cover the same ASs"
        );
        let mut ledger = PaymentLedger {
            payments: vec![0; outcome.node_count()],
            packets_carried: vec![0; outcome.node_count()],
        };
        for (i, j, packets) in traffic.flows() {
            let pair = outcome.pair(i, j).ok_or(MechanismError::UnroutedPair {
                source: i,
                destination: j,
            })?;
            for &(k, price) in pair.prices() {
                let per_packet = price.finite().ok_or(MechanismError::MissingPrice {
                    source: i,
                    destination: j,
                    transit: k,
                })?;
                ledger.payments[k.index()] += u128::from(per_packet) * u128::from(packets);
                ledger.packets_carried[k.index()] += u128::from(packets);
            }
        }
        Ok(ledger)
    }

    /// Like [`PaymentLedger::settle`], but records the settlement's volume
    /// into `telemetry`'s shared registry: flows settled, packets those
    /// flows carried, and total payments disbursed (the `vcg_*` metrics —
    /// see [`crate::telemetry::metric`]). Failed settlements record
    /// nothing.
    ///
    /// # Errors
    ///
    /// Exactly as [`PaymentLedger::settle`].
    ///
    /// # Panics
    ///
    /// Panics if the matrix covers a different node count than the outcome.
    pub fn settle_with_telemetry(
        outcome: &RoutingOutcome,
        traffic: &TrafficMatrix,
        telemetry: &bgpvcg_telemetry::Telemetry,
    ) -> Result<Self, MechanismError> {
        let ledger = PaymentLedger::settle(outcome, traffic)?;
        let flows = traffic.flows().count() as u64;
        let packets: u128 = traffic.flows().map(|(_, _, t)| u128::from(t)).sum();
        telemetry
            .counter(crate::telemetry::metric::FLOWS_SETTLED)
            .add(flows);
        telemetry
            .counter(crate::telemetry::metric::PACKETS_SETTLED)
            .add(u64::try_from(packets).unwrap_or(u64::MAX));
        telemetry
            .counter(crate::telemetry::metric::PAYMENTS_SETTLED)
            .add(u64::try_from(ledger.total_payments()).unwrap_or(u64::MAX));
        Ok(ledger)
    }

    /// Settles traffic **using only distributed node state**, the way the
    /// paper's Sect. 6.4 actually deploys: the *source* of every packet
    /// holds the full price vector for its route, so tallies accumulate at
    /// sources ("each node i keep[s] running tallies of owed charges") and
    /// are submitted to the clearing system out of band. Each flow's packet
    /// is additionally forwarded hop-by-hop across the converged tables, so
    /// settlement only succeeds if the data plane really delivers along the
    /// priced route.
    ///
    /// The result is identical to [`PaymentLedger::settle`] on the
    /// extracted outcome — asserted in the tests — but it exercises the
    /// distributed code path end to end.
    ///
    /// # Example
    ///
    /// ```
    /// use bgpvcg_core::{accounting::PaymentLedger, protocol};
    /// use bgpvcg_netgraph::generators::structured::{fig1, Fig1};
    /// use bgpvcg_netgraph::TrafficMatrix;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let g = fig1();
    /// let mut engine = protocol::build_sync_engine(&g)?;
    /// engine.run_to_convergence();
    /// let nodes = engine.into_nodes();
    /// let mut t = TrafficMatrix::zero(g.node_count());
    /// t.set(Fig1::Y, Fig1::Z, 1);
    /// let ledger = PaymentLedger::settle_from_nodes(&nodes, &t)?;
    /// assert_eq!(ledger.payment(Fig1::D), 9); // the paper's overcharged packet
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`MechanismError::Forwarding`] if some demanded flow cannot
    /// be delivered (no route, loop, unknown hop) or if the forwarding path
    /// diverges from the source's priced route, and
    /// [`MechanismError::MissingPrice`] if a price on a demanded route has
    /// not converged.
    ///
    /// # Panics
    ///
    /// Panics if node count and matrix disagree.
    pub fn settle_from_nodes(
        nodes: &[PricingBgpNode],
        traffic: &TrafficMatrix,
    ) -> Result<Self, MechanismError> {
        assert_eq!(nodes.len(), traffic.node_count(), "one node per AS");
        let selectors: Vec<&RouteSelector> = nodes.iter().map(PricingBgpNode::selector).collect();
        let mut ledger = PaymentLedger {
            payments: vec![0; nodes.len()],
            packets_carried: vec![0; nodes.len()],
        };
        for (i, j, packets) in traffic.flows() {
            let delivered = forwarding::forward_packet(&selectors, i, j)?;
            let source = &nodes[i.index()];
            let route = source.selector().route(j).ok_or(ForwardingError::NoRoute {
                at: i,
                destination: j,
            })?;
            // Data plane must match the priced control-plane route.
            if delivered != route.nodes() {
                return Err(ForwardingError::NoRoute {
                    at: i,
                    destination: j,
                }
                .into());
            }
            for &k in route.transit_nodes() {
                let price = source.price(j, k).and_then(Cost::finite).ok_or(
                    MechanismError::MissingPrice {
                        source: i,
                        destination: j,
                        transit: k,
                    },
                )?;
                ledger.payments[k.index()] += u128::from(price) * u128::from(packets);
                ledger.packets_carried[k.index()] += u128::from(packets);
            }
        }
        Ok(ledger)
    }

    /// The total payment `p_k` owed to node `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn payment(&self, k: AsId) -> u128 {
        self.payments[k.index()]
    }

    /// Total transit packets node `k` carried.
    pub fn packets_carried(&self, k: AsId) -> u128 {
        self.packets_carried[k.index()]
    }

    /// The true cost node `k` incurred (`u_k(c) = c_k · packets carried`),
    /// given its *true* per-packet cost.
    pub fn incurred_cost(&self, k: AsId, true_cost: Cost) -> u128 {
        u128::from(true_cost.finite().expect("true costs are finite")) // lint:allow(caller passes a node's declared cost, finite by AsGraph construction)
            * self.packets_carried[k.index()]
    }

    /// Node `k`'s welfare `τ_k = p_k − u_k(c)`: payment minus incurred cost.
    /// Non-negative for truthful nodes (the mechanism pays at least cost).
    pub fn welfare(&self, k: AsId, true_cost: Cost) -> i128 {
        self.payment(k) as i128 - self.incurred_cost(k, true_cost) as i128
    }

    /// Sum of payments over all nodes — the mechanism's total disbursement.
    pub fn total_payments(&self) -> u128 {
        self.payments.iter().sum()
    }

    /// Number of ASs covered.
    pub fn node_count(&self) -> usize {
        self.payments.len()
    }
}

impl fmt::Display for PaymentLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "PaymentLedger:")?;
        for (idx, (p, carried)) in self.payments.iter().zip(&self.packets_carried).enumerate() {
            writeln!(
                f,
                "  {}: paid {p} for {carried} transit packets",
                AsId::new(idx as u32)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vcg;
    use bgpvcg_netgraph::generators::structured::{fig1, Fig1};
    use bgpvcg_netgraph::generators::{erdos_renyi, random_costs};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn single_packet_example() {
        let g = fig1();
        let outcome = vcg::compute(&g).unwrap();
        let mut t = TrafficMatrix::zero(6);
        t.set(Fig1::Y, Fig1::Z, 1);
        let ledger = PaymentLedger::settle(&outcome, &t).unwrap();
        assert_eq!(ledger.payment(Fig1::D), 9);
        assert_eq!(ledger.packets_carried(Fig1::D), 1);
        assert_eq!(ledger.total_payments(), 9);
        assert_eq!(ledger.incurred_cost(Fig1::D, g.cost(Fig1::D)), 1);
        assert_eq!(ledger.welfare(Fig1::D, g.cost(Fig1::D)), 8);
    }

    #[test]
    fn payments_scale_linearly_with_traffic() {
        // Theorem 1: payments are per-packet prices summed over the matrix,
        // so doubling every demand doubles every payment.
        let g = fig1();
        let outcome = vcg::compute(&g).unwrap();
        let t1 = TrafficMatrix::uniform(6, 1);
        let t2 = TrafficMatrix::uniform(6, 2);
        let l1 = PaymentLedger::settle(&outcome, &t1).unwrap();
        let l2 = PaymentLedger::settle(&outcome, &t2).unwrap();
        for k in g.nodes() {
            assert_eq!(l2.payment(k), 2 * l1.payment(k));
        }
    }

    #[test]
    fn zero_traffic_means_zero_payments() {
        let g = fig1();
        let outcome = vcg::compute(&g).unwrap();
        let ledger = PaymentLedger::settle(&outcome, &TrafficMatrix::zero(6)).unwrap();
        assert_eq!(ledger.total_payments(), 0);
        for k in g.nodes() {
            assert_eq!(ledger.payment(k), 0);
            assert_eq!(ledger.packets_carried(k), 0);
        }
    }

    #[test]
    fn nodes_carrying_no_transit_get_nothing() {
        // The defining normalization of Theorem 1.
        let mut rng = StdRng::seed_from_u64(3);
        let costs = random_costs(12, 1, 8, &mut rng);
        let g = erdos_renyi(costs, 0.3, &mut rng);
        let outcome = vcg::compute(&g).unwrap();
        let t = TrafficMatrix::uniform(g.node_count(), 1);
        let ledger = PaymentLedger::settle(&outcome, &t).unwrap();
        for k in g.nodes() {
            if ledger.packets_carried(k) == 0 {
                assert_eq!(ledger.payment(k), 0);
            }
        }
    }

    #[test]
    fn welfare_is_nonnegative_under_truth() {
        // p^k ≥ c_k per packet, so payment ≥ incurred cost.
        let mut rng = StdRng::seed_from_u64(4);
        let costs = random_costs(12, 0, 9, &mut rng);
        let g = erdos_renyi(costs, 0.3, &mut rng);
        let outcome = vcg::compute(&g).unwrap();
        let t = TrafficMatrix::uniform(g.node_count(), 3);
        let ledger = PaymentLedger::settle(&outcome, &t).unwrap();
        for k in g.nodes() {
            assert!(ledger.welfare(k, g.cost(k)) >= 0, "{k}");
        }
    }

    #[test]
    #[should_panic(expected = "same ASs")]
    fn settle_rejects_mismatched_sizes() {
        let g = fig1();
        let outcome = vcg::compute(&g).unwrap();
        let _ = PaymentLedger::settle(&outcome, &TrafficMatrix::zero(4));
    }

    #[test]
    fn distributed_settlement_matches_closed_form() {
        let g = fig1();
        let run = crate::protocol::run_sync(&g).unwrap();
        let nodes = {
            let mut engine = crate::protocol::build_sync_engine(&g).unwrap();
            engine.run_to_convergence();
            engine.into_nodes()
        };
        let mut rng = StdRng::seed_from_u64(9);
        let traffic = TrafficMatrix::random(6, 0, 4, &mut rng);
        let distributed = PaymentLedger::settle_from_nodes(&nodes, &traffic).unwrap();
        let closed_form = PaymentLedger::settle(&run.outcome, &traffic).unwrap();
        assert_eq!(distributed, closed_form);
    }

    #[test]
    fn distributed_settlement_fails_before_convergence() {
        let g = fig1();
        let nodes = crate::pricing_node::PricingBgpNode::from_graph(&g);
        let mut t = TrafficMatrix::zero(6);
        t.set(Fig1::X, Fig1::Z, 1);
        assert!(PaymentLedger::settle_from_nodes(&nodes, &t).is_err());
    }
}
